#include "topology/persistence.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qtda {

namespace {

/// Sparse Z2 column: sorted filtration positions of nonzero rows.
using Z2Column = std::vector<std::size_t>;

/// Symmetric difference of two sorted columns (Z2 addition).
Z2Column z2_add(const Z2Column& a, const Z2Column& b) {
  Z2Column out;
  out.reserve(a.size() + b.size());
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

}  // namespace

PersistenceDiagram compute_persistence(const Filtration& filtration) {
  const std::size_t n = filtration.size();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Boundary columns in filtration order.
  std::vector<Z2Column> columns(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Simplex& s = filtration[j].simplex;
    if (s.dimension() == 0) continue;
    Z2Column col;
    col.reserve(s.vertex_count());
    for (const Simplex& face : s.facets())
      col.push_back(filtration.position_of(face));
    std::sort(col.begin(), col.end());
    columns[j] = std::move(col);
  }

  // pivot_owner[i] = column whose lowest nonzero row is i.
  std::vector<std::size_t> pivot_owner(n, kNone);
  std::vector<std::size_t> killer(n, kNone);  // killer[i] = j pairing i
  for (std::size_t j = 0; j < n; ++j) {
    Z2Column& col = columns[j];
    while (!col.empty()) {
      const std::size_t low = col.back();
      const std::size_t owner = pivot_owner[low];
      if (owner == kNone) {
        pivot_owner[low] = j;
        killer[low] = j;
        break;
      }
      col = z2_add(col, columns[owner]);
    }
  }

  // Positive simplices: columns that reduced to zero (creators).
  std::vector<PersistencePair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    if (!columns[i].empty()) continue;  // negative column: destroyer
    PersistencePair pair;
    pair.dimension = filtration[i].simplex.dimension();
    pair.birth = filtration[i].birth;
    pair.birth_position = i;
    if (killer[i] != kNone) {
      pair.death = filtration[killer[i]].birth;
      pair.death_position = killer[i];
      pair.essential = false;
    } else {
      pair.essential = true;
      pair.death_position = kNone;
    }
    pairs.push_back(pair);
  }
  return PersistenceDiagram(std::move(pairs));
}

PersistenceDiagram::PersistenceDiagram(std::vector<PersistencePair> pairs)
    : pairs_(std::move(pairs)) {
  std::sort(pairs_.begin(), pairs_.end(),
            [](const PersistencePair& a, const PersistencePair& b) {
              if (a.dimension != b.dimension) return a.dimension < b.dimension;
              if (a.birth != b.birth) return a.birth < b.birth;
              return a.death < b.death;
            });
}

std::vector<PersistencePair> PersistenceDiagram::pairs_in_dimension(
    int k) const {
  std::vector<PersistencePair> out;
  for (const PersistencePair& p : pairs_)
    if (p.dimension == k) out.push_back(p);
  return out;
}

std::size_t PersistenceDiagram::persistent_betti(int k, double b,
                                                 double d) const {
  QTDA_REQUIRE(b <= d, "persistent_betti requires birth scale <= death scale");
  std::size_t count = 0;
  for (const PersistencePair& p : pairs_) {
    if (p.dimension != k) continue;
    if (p.birth <= b && (p.essential || p.death > d)) ++count;
  }
  return count;
}

std::size_t PersistenceDiagram::betti_at(int k, double epsilon) const {
  return persistent_betti(k, epsilon, epsilon);
}

std::size_t PersistenceDiagram::essential_count(int k) const {
  std::size_t count = 0;
  for (const PersistencePair& p : pairs_)
    if (p.dimension == k && p.essential) ++count;
  return count;
}

}  // namespace qtda
