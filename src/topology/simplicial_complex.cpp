#include "topology/simplicial_complex.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qtda {

const std::vector<Simplex> SimplicialComplex::kEmpty{};

SimplicialComplex SimplicialComplex::from_simplices(
    const std::vector<Simplex>& simplices, bool close_downward) {
  SimplicialComplex complex;
  if (close_downward) {
    for (const Simplex& s : simplices) complex.insert_with_faces(s);
  } else {
    for (const Simplex& s : simplices) complex.insert_sorted(s);
    for (int k = 0; k <= complex.max_dimension(); ++k)
      complex.rebuild_index(k);
    const auto missing = complex.find_missing_face();
    QTDA_REQUIRE(!missing, "complex is not downward closed: missing face "
                               << missing->to_string());
    return complex;
  }
  for (int k = 0; k <= complex.max_dimension(); ++k) complex.rebuild_index(k);
  return complex;
}

void SimplicialComplex::insert_with_faces(const Simplex& s) {
  QTDA_REQUIRE(s.dimension() >= 0, "cannot insert the empty simplex");
  if (contains(s)) return;
  insert_sorted(s);
  rebuild_index(s.dimension());
  if (s.dimension() > 0) {
    for (const Simplex& face : s.facets()) insert_with_faces(face);
  }
}

void SimplicialComplex::insert_sorted(const Simplex& s) {
  const auto k = static_cast<std::size_t>(s.dimension());
  if (by_dimension_.size() <= k) {
    by_dimension_.resize(k + 1);
    index_.resize(k + 1);
  }
  auto& list = by_dimension_[k];
  const auto it = std::lower_bound(list.begin(), list.end(), s);
  if (it != list.end() && *it == s) return;  // already present
  list.insert(it, s);
}

void SimplicialComplex::rebuild_index(int k) {
  const auto uk = static_cast<std::size_t>(k);
  if (uk >= by_dimension_.size()) return;
  auto& map = index_[uk];
  map.clear();
  const auto& list = by_dimension_[uk];
  map.reserve(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) map.emplace(list[i], i);
}

int SimplicialComplex::max_dimension() const {
  for (std::size_t k = by_dimension_.size(); k > 0; --k)
    if (!by_dimension_[k - 1].empty()) return static_cast<int>(k) - 1;
  return -1;
}

std::size_t SimplicialComplex::count(int k) const {
  if (k < 0 || static_cast<std::size_t>(k) >= by_dimension_.size()) return 0;
  return by_dimension_[static_cast<std::size_t>(k)].size();
}

std::size_t SimplicialComplex::total_count() const {
  std::size_t total = 0;
  for (const auto& list : by_dimension_) total += list.size();
  return total;
}

const std::vector<Simplex>& SimplicialComplex::simplices(int k) const {
  if (k < 0 || static_cast<std::size_t>(k) >= by_dimension_.size())
    return kEmpty;
  return by_dimension_[static_cast<std::size_t>(k)];
}

std::optional<std::size_t> SimplicialComplex::index_of(
    const Simplex& s) const {
  const int k = s.dimension();
  if (k < 0 || static_cast<std::size_t>(k) >= index_.size())
    return std::nullopt;
  const auto& map = index_[static_cast<std::size_t>(k)];
  const auto it = map.find(s);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

bool SimplicialComplex::contains(const Simplex& s) const {
  return index_of(s).has_value();
}

long long SimplicialComplex::euler_characteristic() const {
  long long chi = 0;
  for (int k = 0; k <= max_dimension(); ++k) {
    const auto term = static_cast<long long>(count(k));
    chi += (k % 2 == 0) ? term : -term;
  }
  return chi;
}

std::optional<Simplex> SimplicialComplex::find_missing_face() const {
  for (int k = 1; k <= max_dimension(); ++k) {
    for (const Simplex& s : simplices(k)) {
      for (const Simplex& face : s.facets()) {
        if (!contains(face)) return face;
      }
    }
  }
  return std::nullopt;
}

}  // namespace qtda
