/// \file persistent_laplacian.hpp
/// \brief Persistent combinatorial Laplacians (Mémoli–Wan–Wang).
///
/// The paper's future work points at persistent Betti numbers as the
/// scale-invariant alternative to β_k(ε).  The persistent Laplacian makes
/// them accessible to the very same QPE machinery: for a pair of complexes
/// K ⊆ L, the operator
///
///   Δ_k^{K,L} = (∂_k^K)†∂_k^K + Schur_K( Δ_k^{L,up} )
///
/// is symmetric positive semidefinite on the k-simplices of K and its
/// kernel dimension equals the persistent Betti number β_k^{K,L} — the rank
/// of the map H_k(K) → H_k(L).  The Schur complement removes the block of
/// the up-Laplacian supported on the simplices of L \ K, using the
/// Moore–Penrose pseudo-inverse since that block is typically singular.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "topology/filtration.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Sparse Δ_k^{K,L} for K ⊆ L, assembled on the CSR spine
/// (gram_sparse/sparse_add) like the combinatorial Laplacian: the down part
/// and the up-Laplacian of L never densify.  When K and L share their
/// k-simplices the whole build stays sparse; otherwise only the Schur
/// correction B·C⁺·Bᵀ — inherently dense through the pseudo-inverse — is
/// formed densely, at |S_k(K)| size, with B and C extracted straight from
/// the CSR of Δ_k^{L,up}.  This is the operator the sparse/sharded QPE path
/// consumes without ever forming a dense |S_k|×|S_k| matrix in the
/// shared-k-simplex case.  Throws if K's k- or (k+1)-simplices are not a
/// subset of L's; requires K to have at least one k-simplex.
SparseMatrix sparse_persistent_laplacian(const SimplicialComplex& sub,
                                         const SimplicialComplex& super,
                                         int k);

/// Sparse Δ_k^{b,d} from a filtration (complexes at scales b ≤ d).
SparseMatrix sparse_persistent_laplacian(const Filtration& filtration, int k,
                                         double birth_scale,
                                         double death_scale);

/// Builds Δ_k^{K,L} for K ⊆ L (thin densifying wrapper over the sparse
/// assembly, kept for the eigensolver-based small cases and existing
/// callers).  Requires K to have at least one k-simplex.
RealMatrix persistent_laplacian(const SimplicialComplex& sub,
                                const SimplicialComplex& super, int k);

/// Builds Δ_k^{b,d} from a filtration (complexes at scales b ≤ d).
RealMatrix persistent_laplacian(const Filtration& filtration, int k,
                                double birth_scale, double death_scale);

/// Classical persistent Betti number via the kernel of Δ_k^{K,L}.
/// Returns 0 when K has no k-simplices.
std::size_t persistent_betti_via_laplacian(const SimplicialComplex& sub,
                                           const SimplicialComplex& super,
                                           int k, double tolerance = 1e-8);

}  // namespace qtda
