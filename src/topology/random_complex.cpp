#include "topology/random_complex.hpp"

#include "common/error.hpp"
#include "topology/rips.hpp"

namespace qtda {

SimplicialComplex random_flag_complex(const RandomComplexOptions& options,
                                      Rng& rng) {
  QTDA_REQUIRE(options.num_vertices > 0, "need at least one vertex");
  QTDA_REQUIRE(options.max_dimension >= 0, "max_dimension must be >= 0");
  const double p = options.edge_probability.has_value()
                       ? *options.edge_probability
                       : rng.uniform(0.25, 0.75);
  QTDA_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability out of [0,1]");

  NeighborhoodGraph graph(options.num_vertices);
  for (VertexId u = 0; u < options.num_vertices; ++u) {
    for (VertexId v = u + 1; v < options.num_vertices; ++v) {
      if (rng.bernoulli(p)) graph.add_edge(u, v);
    }
  }
  return flag_complex(graph, options.max_dimension);
}

std::vector<std::vector<double>> random_point_cloud(std::size_t n,
                                                    std::size_t m, Rng& rng) {
  QTDA_REQUIRE(m > 0, "point dimension must be positive");
  std::vector<std::vector<double>> points(n, std::vector<double>(m));
  for (auto& p : points)
    for (auto& coordinate : p) coordinate = rng.uniform();
  return points;
}

}  // namespace qtda
