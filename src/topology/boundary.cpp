#include "topology/boundary.hpp"

#include "common/error.hpp"

namespace qtda {

SparseMatrix boundary_operator(const SimplicialComplex& complex, int k) {
  QTDA_REQUIRE(k >= 0, "boundary operator dimension must be >= 0");
  const std::size_t rows = complex.count(k - 1);
  const std::size_t cols = complex.count(k);
  if (k == 0 || cols == 0) return SparseMatrix(rows, cols);

  std::vector<Triplet> triplets;
  triplets.reserve(cols * static_cast<std::size_t>(k + 1));
  const auto& k_simplices = complex.simplices(k);
  for (std::size_t col = 0; col < cols; ++col) {
    const Simplex& s = k_simplices[col];
    for (std::size_t t = 0; t < s.vertex_count(); ++t) {
      const Simplex face = s.face_without(t);
      const auto row = complex.index_of(face);
      QTDA_REQUIRE(row.has_value(), "complex not closed: face "
                                        << face.to_string() << " of "
                                        << s.to_string() << " missing");
      const double sign = (t % 2 == 0) ? 1.0 : -1.0;
      triplets.push_back({*row, col, sign});
    }
  }
  return SparseMatrix::from_triplets(rows, cols, std::move(triplets));
}

}  // namespace qtda
