#include "topology/components.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace qtda {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), count_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  QTDA_REQUIRE(x < parent_.size(), "union-find index out of range");
  std::size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {  // path compression
    const std::size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --count_;
  return true;
}

std::size_t connected_components(const NeighborhoodGraph& graph) {
  UnionFind forest(graph.num_vertices());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v : graph.neighbors(u)) {
      if (v > u) forest.unite(u, v);
    }
  }
  return forest.count();
}

std::size_t betti0_fast(const SimplicialComplex& complex) {
  const std::size_t vertices = complex.count(0);
  if (vertices == 0) return 0;
  // Vertex ids may be sparse; map them to dense indices first.
  std::unordered_map<VertexId, std::size_t> dense;
  dense.reserve(vertices);
  for (const Simplex& v : complex.simplices(0))
    dense.emplace(v[0], dense.size());
  UnionFind forest(vertices);
  for (const Simplex& e : complex.simplices(1))
    forest.unite(dense.at(e[0]), dense.at(e[1]));
  return forest.count();
}

std::vector<std::size_t> component_labels(const NeighborhoodGraph& graph) {
  UnionFind forest(graph.num_vertices());
  for (VertexId u = 0; u < graph.num_vertices(); ++u)
    for (VertexId v : graph.neighbors(u))
      if (v > u) forest.unite(u, v);
  std::vector<std::size_t> labels(graph.num_vertices());
  std::unordered_map<std::size_t, std::size_t> relabel;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t root = forest.find(i);
    const auto it = relabel.emplace(root, relabel.size()).first;
    labels[i] = it->second;
  }
  return labels;
}

}  // namespace qtda
