/// \file point_cloud.hpp
/// \brief Point clouds in R^m with pairwise distances.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// A finite set of points in a common m-dimensional space.
class PointCloud {
 public:
  PointCloud() = default;

  /// Builds from row-per-point coordinates; all rows must share a length.
  explicit PointCloud(std::vector<std::vector<double>> points);

  std::size_t size() const { return points_.size(); }
  std::size_t dimension() const {
    return points_.empty() ? 0 : points_.front().size();
  }
  const std::vector<double>& point(std::size_t i) const { return points_[i]; }
  const std::vector<std::vector<double>>& points() const { return points_; }

  /// Euclidean distance between points i and j.
  double distance(std::size_t i, std::size_t j) const;

  /// Full symmetric distance matrix.
  RealMatrix distance_matrix() const;

  /// Appends one point (must match the dimension of existing points).
  void add_point(std::vector<double> p);

 private:
  std::vector<std::vector<double>> points_;
};

}  // namespace qtda
