/// \file betti.hpp
/// \brief Classical (exact) Betti numbers — the baseline the quantum
/// estimator is compared against.
///
/// Two independent computations are provided and cross-checked in tests:
///  * rank route:      β_k = |S_k| − rank ∂_k − rank ∂_{k+1}
///  * Laplacian route: β_k = dim ker Δ_k   (zero-eigenvalue count)
#pragma once

#include <vector>

#include "topology/simplicial_complex.hpp"

namespace qtda {

/// β_k via boundary-operator ranks.  Returns 0 when |S_k| = 0.
std::size_t betti_number(const SimplicialComplex& complex, int k);

/// β_k via the kernel of the combinatorial Laplacian.
std::size_t betti_number_via_laplacian(const SimplicialComplex& complex,
                                       int k, double tolerance = 1e-8);

/// β_0..β_kmax in one call (rank route).
std::vector<std::size_t> betti_numbers(const SimplicialComplex& complex,
                                       int max_k);

}  // namespace qtda
