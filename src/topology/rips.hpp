/// \file rips.hpp
/// \brief Vietoris–Rips (flag) complex construction.
///
/// The paper builds K_eps by connecting points within the grouping scale ε
/// and taking every clique of the resulting graph as a simplex.  The
/// expansion uses Zomorodian's incremental algorithm: each clique is grown
/// from its highest vertex through common lower-neighbour intersections, so
/// every simplex is enumerated exactly once.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "topology/point_cloud.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Undirected graph on [0, n) stored as sorted adjacency lists.
class NeighborhoodGraph {
 public:
  explicit NeighborhoodGraph(std::size_t num_vertices);

  /// Builds the ε-neighbourhood graph of a point cloud: edge (i, j) iff
  /// d(x_i, x_j) ≤ ε.
  static NeighborhoodGraph from_point_cloud(const PointCloud& cloud,
                                            double epsilon);

  /// Builds from a precomputed symmetric distance matrix.
  static NeighborhoodGraph from_distance_matrix(const RealMatrix& distances,
                                                double epsilon);

  std::size_t num_vertices() const { return adjacency_.size(); }
  std::size_t num_edges() const;

  void add_edge(VertexId u, VertexId v);
  bool has_edge(VertexId u, VertexId v) const;

  /// Sorted neighbours of u.
  const std::vector<VertexId>& neighbors(VertexId u) const;

  /// Sorted neighbours of u smaller than u (used by the expansion).
  std::vector<VertexId> lower_neighbors(VertexId u) const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;
};

/// Expands a graph into its flag complex with simplices up to dimension
/// \p max_dimension (inclusive).
SimplicialComplex flag_complex(const NeighborhoodGraph& graph,
                               int max_dimension);

/// Convenience: point cloud → ε-graph → flag complex.
SimplicialComplex rips_complex(const PointCloud& cloud, double epsilon,
                               int max_dimension);

/// Convenience: distance matrix → ε-graph → flag complex.
SimplicialComplex rips_complex(const RealMatrix& distances, double epsilon,
                               int max_dimension);

}  // namespace qtda
