/// \file laplacian.hpp
/// \brief Combinatorial (Hodge) Laplacians Δ_k = ∂_k†∂_k + ∂_{k+1}∂_{k+1}†.
///
/// Δ_k is a real symmetric positive semidefinite |S_k|×|S_k| matrix whose
/// kernel dimension is the k-th Betti number (paper Eq. (5)–(6)).
///
/// The sparse builders are the primary path: boundary operators have k+1
/// nonzeros per column, so Δ_k assembles in CSR without ever densifying —
/// this is what feeds the matrix-free QPE oracle at system sizes where a
/// dense |S_k|×|S_k| matrix would not fit.  The dense functions are thin
/// wrappers over the sparse build, kept for the eigensolver-based small
/// cases and the existing tests.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Sparse combinatorial Laplacian of dimension k.  Requires |S_k| > 0.
SparseMatrix sparse_combinatorial_laplacian(const SimplicialComplex& complex,
                                            int k);

/// The "down" part ∂_k†∂_k alone, in CSR.
SparseMatrix sparse_down_laplacian(const SimplicialComplex& complex, int k);

/// The "up" part ∂_{k+1}∂_{k+1}† alone, in CSR.
SparseMatrix sparse_up_laplacian(const SimplicialComplex& complex, int k);

/// Dense combinatorial Laplacian of dimension k (wrapper densifying the
/// sparse build).  Requires |S_k| > 0.
RealMatrix combinatorial_laplacian(const SimplicialComplex& complex, int k);

/// The "down" part ∂_k†∂_k alone.
RealMatrix down_laplacian(const SimplicialComplex& complex, int k);

/// The "up" part ∂_{k+1}∂_{k+1}† alone.
RealMatrix up_laplacian(const SimplicialComplex& complex, int k);

}  // namespace qtda
