/// \file laplacian.hpp
/// \brief Combinatorial (Hodge) Laplacians Δ_k = ∂_k†∂_k + ∂_{k+1}∂_{k+1}†.
///
/// Δ_k is a real symmetric positive semidefinite |S_k|×|S_k| matrix whose
/// kernel dimension is the k-th Betti number (paper Eq. (5)–(6)).
#pragma once

#include "linalg/dense_matrix.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Dense combinatorial Laplacian of dimension k.  Requires |S_k| > 0.
RealMatrix combinatorial_laplacian(const SimplicialComplex& complex, int k);

/// The "down" part ∂_k†∂_k alone.
RealMatrix down_laplacian(const SimplicialComplex& complex, int k);

/// The "up" part ∂_{k+1}∂_{k+1}† alone.
RealMatrix up_laplacian(const SimplicialComplex& complex, int k);

}  // namespace qtda
