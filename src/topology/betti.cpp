#include "topology/betti.hpp"

#include "common/error.hpp"
#include "linalg/rank.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/boundary.hpp"
#include "topology/laplacian.hpp"

namespace qtda {

std::size_t betti_number(const SimplicialComplex& complex, int k) {
  QTDA_REQUIRE(k >= 0, "Betti number index must be >= 0");
  const std::size_t nk = complex.count(k);
  if (nk == 0) return 0;
  const std::size_t rank_k = rank(boundary_operator(complex, k));
  const std::size_t rank_k1 = rank(boundary_operator(complex, k + 1));
  QTDA_ASSERT(rank_k + rank_k1 <= nk,
              "rank inequality violated: " << rank_k << '+' << rank_k1 << " > "
                                           << nk);
  return nk - rank_k - rank_k1;
}

std::size_t betti_number_via_laplacian(const SimplicialComplex& complex,
                                       int k, double tolerance) {
  if (complex.count(k) == 0) return 0;
  return count_zero_eigenvalues(combinatorial_laplacian(complex, k),
                                tolerance);
}

std::vector<std::size_t> betti_numbers(const SimplicialComplex& complex,
                                       int max_k) {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(max_k) + 1);
  for (int k = 0; k <= max_k; ++k) out.push_back(betti_number(complex, k));
  return out;
}

}  // namespace qtda
