#include "topology/laplacian.hpp"

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "topology/boundary.hpp"

namespace qtda {

SparseMatrix sparse_down_laplacian(const SimplicialComplex& complex, int k) {
  QTDA_REQUIRE(complex.count(k) > 0,
               "Laplacian of dimension " << k << " with no k-simplices");
  // ∂_k is |S_{k−1}|×|S_k|; the Gram AᵀA is |S_k|×|S_k|.
  return boundary_operator(complex, k).gram_sparse();
}

SparseMatrix sparse_up_laplacian(const SimplicialComplex& complex, int k) {
  QTDA_REQUIRE(complex.count(k) > 0,
               "Laplacian of dimension " << k << " with no k-simplices");
  const std::size_t nk = complex.count(k);
  if (complex.count(k + 1) == 0) return SparseMatrix(nk, nk);
  // ∂_{k+1} is |S_k|×|S_{k+1}|; AAᵀ is |S_k|×|S_k|.
  return boundary_operator(complex, k + 1).outer_gram_sparse();
}

SparseMatrix sparse_combinatorial_laplacian(const SimplicialComplex& complex,
                                            int k) {
  QTDA_SPAN("laplacian_assembly");
  return sparse_add(sparse_down_laplacian(complex, k),
                    sparse_up_laplacian(complex, k));
}

RealMatrix down_laplacian(const SimplicialComplex& complex, int k) {
  return sparse_down_laplacian(complex, k).to_dense();
}

RealMatrix up_laplacian(const SimplicialComplex& complex, int k) {
  return sparse_up_laplacian(complex, k).to_dense();
}

RealMatrix combinatorial_laplacian(const SimplicialComplex& complex, int k) {
  return sparse_combinatorial_laplacian(complex, k).to_dense();
}

}  // namespace qtda
