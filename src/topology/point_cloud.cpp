#include "topology/point_cloud.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qtda {

PointCloud::PointCloud(std::vector<std::vector<double>> points)
    : points_(std::move(points)) {
  for (const auto& p : points_) {
    QTDA_REQUIRE(p.size() == points_.front().size(),
                 "all points must share a dimension");
  }
}

double PointCloud::distance(std::size_t i, std::size_t j) const {
  QTDA_REQUIRE(i < size() && j < size(), "point index out of range");
  const auto& a = points_[i];
  const auto& b = points_[j];
  double s = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}

RealMatrix PointCloud::distance_matrix() const {
  const std::size_t n = size();
  RealMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = distance(i, j);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

void PointCloud::add_point(std::vector<double> p) {
  QTDA_REQUIRE(points_.empty() || p.size() == points_.front().size(),
               "new point dimension mismatch");
  points_.push_back(std::move(p));
}

}  // namespace qtda
