/// \file components.hpp
/// \brief Union-find connected components: a fast exact β0.
///
/// β0 is just the number of connected components of the 1-skeleton; the
/// union-find route is near-linear versus the O(n³) rank computation, so
/// the classification pipelines use it when only β0 is needed.  Tests
/// cross-check it against the homological definition.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/rips.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Disjoint-set forest with union by rank and path compression.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::size_t find(std::size_t x);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool unite(std::size_t a, std::size_t b);

  /// Current number of disjoint sets.
  std::size_t count() const { return count_; }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t count_;
};

/// Number of connected components of a graph.
std::size_t connected_components(const NeighborhoodGraph& graph);

/// β0 of a simplicial complex via its 1-skeleton (equals
/// betti_number(complex, 0); near-linear time).
std::size_t betti0_fast(const SimplicialComplex& complex);

/// Per-vertex component labels of a graph, in [0, #components).
std::vector<std::size_t> component_labels(const NeighborhoodGraph& graph);

}  // namespace qtda
