/// \file random_complex.hpp
/// \brief Random simplicial complexes for the Fig. 3 error sweeps.
///
/// The paper evaluates on "randomly generated simplicial complexes" for
/// n ∈ {5, 10, 15}.  We use random flag complexes: an Erdős–Rényi graph
/// G(n, p) (p itself drawn uniformly unless fixed) expanded to cliques —
/// the same construction an ε-graph induces on random data.
#pragma once

#include <optional>

#include "common/random.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Configuration of the random complex generator.
struct RandomComplexOptions {
  std::size_t num_vertices = 10;
  /// Edge probability; when unset, drawn uniformly from [0.25, 0.75] per
  /// complex so the sweep covers sparse and dense regimes.
  std::optional<double> edge_probability;
  /// Flag expansion cap; k+1 is enough to compute Δ_k.
  int max_dimension = 2;
};

/// Draws one random flag complex.  Always contains all n vertices.
SimplicialComplex random_flag_complex(const RandomComplexOptions& options,
                                      Rng& rng);

/// Draws a random point cloud in [0, 1]^m (uniform), n points.
/// Useful for Rips-pipeline property tests.
std::vector<std::vector<double>> random_point_cloud(std::size_t n,
                                                    std::size_t m, Rng& rng);

}  // namespace qtda
