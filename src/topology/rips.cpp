#include "topology/rips.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace qtda {

NeighborhoodGraph::NeighborhoodGraph(std::size_t num_vertices)
    : adjacency_(num_vertices) {}

NeighborhoodGraph NeighborhoodGraph::from_point_cloud(const PointCloud& cloud,
                                                      double epsilon) {
  return from_distance_matrix(cloud.distance_matrix(), epsilon);
}

NeighborhoodGraph NeighborhoodGraph::from_distance_matrix(
    const RealMatrix& distances, double epsilon) {
  QTDA_REQUIRE(distances.is_square(), "distance matrix must be square");
  QTDA_REQUIRE(epsilon >= 0.0, "grouping scale must be non-negative");
  NeighborhoodGraph g(distances.rows());
  for (std::size_t i = 0; i < distances.rows(); ++i) {
    for (std::size_t j = i + 1; j < distances.cols(); ++j) {
      if (distances(i, j) <= epsilon) {
        g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  return g;
}

std::size_t NeighborhoodGraph::num_edges() const {
  std::size_t total = 0;
  for (const auto& nbrs : adjacency_) total += nbrs.size();
  return total / 2;
}

void NeighborhoodGraph::add_edge(VertexId u, VertexId v) {
  QTDA_REQUIRE(u != v, "self-loops are not simplices");
  QTDA_REQUIRE(u < adjacency_.size() && v < adjacency_.size(),
               "edge endpoint out of range");
  auto insert_sorted = [](std::vector<VertexId>& list, VertexId x) {
    const auto it = std::lower_bound(list.begin(), list.end(), x);
    if (it == list.end() || *it != x) list.insert(it, x);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
}

bool NeighborhoodGraph::has_edge(VertexId u, VertexId v) const {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  const auto& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

const std::vector<VertexId>& NeighborhoodGraph::neighbors(VertexId u) const {
  QTDA_REQUIRE(u < adjacency_.size(), "vertex out of range");
  return adjacency_[u];
}

std::vector<VertexId> NeighborhoodGraph::lower_neighbors(VertexId u) const {
  const auto& nbrs = neighbors(u);
  std::vector<VertexId> lower;
  for (VertexId v : nbrs) {
    if (v >= u) break;  // sorted: all later entries are ≥ u
    lower.push_back(v);
  }
  return lower;
}

namespace {

/// Recursive cofacet enumeration (Zomorodian's incremental expansion).
/// \p tau is a clique (descending insertion order is irrelevant; Simplex
/// sorts), \p candidates are common lower-neighbours of all its vertices.
void add_cofaces(const NeighborhoodGraph& graph, int max_dimension,
                 std::vector<VertexId>& tau,
                 const std::vector<VertexId>& candidates,
                 std::vector<Simplex>& out) {
  out.emplace_back(tau);
  if (static_cast<int>(tau.size()) - 1 >= max_dimension) return;
  for (VertexId v : candidates) {
    tau.push_back(v);
    // Next candidate set: candidates ∩ lower_neighbors(v); both sorted.
    const std::vector<VertexId> lower = graph.lower_neighbors(v);
    std::vector<VertexId> next;
    std::set_intersection(candidates.begin(), candidates.end(), lower.begin(),
                          lower.end(), std::back_inserter(next));
    add_cofaces(graph, max_dimension, tau, next, out);
    tau.pop_back();
  }
}

}  // namespace

SimplicialComplex flag_complex(const NeighborhoodGraph& graph,
                               int max_dimension) {
  QTDA_REQUIRE(max_dimension >= 0, "max_dimension must be >= 0");
  std::vector<Simplex> simplices;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    std::vector<VertexId> tau{u};
    add_cofaces(graph, max_dimension, tau, graph.lower_neighbors(u),
                simplices);
  }
  return SimplicialComplex::from_simplices(simplices,
                                           /*close_downward=*/false);
}

SimplicialComplex rips_complex(const PointCloud& cloud, double epsilon,
                               int max_dimension) {
  QTDA_SPAN("rips_build");
  return flag_complex(NeighborhoodGraph::from_point_cloud(cloud, epsilon),
                      max_dimension);
}

SimplicialComplex rips_complex(const RealMatrix& distances, double epsilon,
                               int max_dimension) {
  QTDA_SPAN("rips_build");
  return flag_complex(
      NeighborhoodGraph::from_distance_matrix(distances, epsilon),
      max_dimension);
}

}  // namespace qtda
