#include "topology/persistent_laplacian.hpp"

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix_ops.hpp"
#include "linalg/pseudo_inverse.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/boundary.hpp"
#include "topology/laplacian.hpp"

namespace qtda {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

}  // namespace

SparseMatrix sparse_persistent_laplacian(const SimplicialComplex& sub,
                                         const SimplicialComplex& super,
                                         int k) {
  QTDA_REQUIRE(k >= 0, "homology dimension must be >= 0");
  const std::size_t nk_sub = sub.count(k);
  QTDA_REQUIRE(nk_sub > 0, "persistent Laplacian needs k-simplices in K");

  // Validate the inclusion K ⊆ L and locate K's k-simplices inside L's
  // ordering.
  std::vector<std::size_t> inside;  // positions (in L) of simplices of K
  inside.reserve(nk_sub);
  for (const Simplex& s : sub.simplices(k)) {
    const auto position = super.index_of(s);
    QTDA_REQUIRE(position.has_value(),
                 "K is not a subcomplex of L: missing " << s.to_string());
    inside.push_back(*position);
  }
  for (const Simplex& s : sub.simplices(k + 1)) {
    QTDA_REQUIRE(super.contains(s),
                 "K is not a subcomplex of L: missing " << s.to_string());
  }

  // Down part lives entirely in K — CSR Gram product, never densified.
  const SparseMatrix down = sparse_down_laplacian(sub, k);

  // Up part: Schur complement of Δ_k^{L,up} onto K's simplices, extracted
  // from the CSR of the sparse up-Laplacian.
  const std::size_t nk_super = super.count(k);
  const SparseMatrix up_super = sparse_up_laplacian(super, k);

  std::vector<std::size_t> sub_index(nk_super, kNone);  // L position → K index
  for (std::size_t i = 0; i < nk_sub; ++i) sub_index[inside[i]] = i;
  std::vector<std::size_t> out_index(nk_super, kNone);  // L position → outside index
  std::vector<std::size_t> outside;
  outside.reserve(nk_super - nk_sub);
  for (std::size_t i = 0; i < nk_super; ++i) {
    if (sub_index[i] == kNone) {
      out_index[i] = outside.size();
      outside.push_back(i);
    }
  }

  const auto& offsets = up_super.row_offsets();
  const auto& cols = up_super.col_indices();
  const auto& values = up_super.values();

  if (outside.empty()) {
    // K and L share the k-simplices: the Schur complement is the whole
    // up-Laplacian, permuted into K's order — the assembly stays sparse end
    // to end.
    std::vector<Triplet> up_triplets;
    up_triplets.reserve(up_super.nonzeros());
    for (std::size_t i = 0; i < nk_sub; ++i) {
      const std::size_t row = inside[i];
      for (std::size_t nz = offsets[row]; nz < offsets[row + 1]; ++nz)
        up_triplets.push_back({i, sub_index[cols[nz]], values[nz]});
    }
    return sparse_add(down, SparseMatrix::from_triplets(
                                nk_sub, nk_sub, std::move(up_triplets)));
  }

  // Blocks A (K×K, kept sparse), B (K×out) and C (out×out) — the latter two
  // feed the dense pseudo-inverse, so they are materialized at block size
  // only; up = A − B·C⁺·Bᵀ.
  std::vector<Triplet> a_triplets;
  RealMatrix block_b(nk_sub, outside.size());
  RealMatrix block_c(outside.size(), outside.size());
  for (std::size_t i = 0; i < nk_sub; ++i) {
    const std::size_t row = inside[i];
    for (std::size_t nz = offsets[row]; nz < offsets[row + 1]; ++nz) {
      const std::size_t col = cols[nz];
      if (sub_index[col] != kNone) {
        a_triplets.push_back({i, sub_index[col], values[nz]});
      } else {
        block_b(i, out_index[col]) = values[nz];
      }
    }
  }
  for (std::size_t j = 0; j < outside.size(); ++j) {
    const std::size_t row = outside[j];
    for (std::size_t nz = offsets[row]; nz < offsets[row + 1]; ++nz) {
      const std::size_t col = cols[nz];
      if (out_index[col] != kNone) block_c(j, out_index[col]) = values[nz];
    }
  }

  const RealMatrix c_pinv = pseudo_inverse_symmetric(block_c);
  const RealMatrix correction =
      matmul(block_b, matmul(c_pinv, transpose(block_b)));
  std::vector<Triplet> correction_triplets;
  for (std::size_t i = 0; i < nk_sub; ++i)
    for (std::size_t j = 0; j < nk_sub; ++j)
      if (correction(i, j) != 0.0)
        correction_triplets.push_back({i, j, -correction(i, j)});
  return sparse_add(
      sparse_add(down, SparseMatrix::from_triplets(nk_sub, nk_sub,
                                                   std::move(a_triplets))),
      SparseMatrix::from_triplets(nk_sub, nk_sub,
                                  std::move(correction_triplets)));
}

SparseMatrix sparse_persistent_laplacian(const Filtration& filtration, int k,
                                         double birth_scale,
                                         double death_scale) {
  QTDA_REQUIRE(birth_scale <= death_scale,
               "persistent Laplacian needs birth scale <= death scale");
  return sparse_persistent_laplacian(filtration.complex_at(birth_scale),
                                     filtration.complex_at(death_scale), k);
}

RealMatrix persistent_laplacian(const SimplicialComplex& sub,
                                const SimplicialComplex& super, int k) {
  return sparse_persistent_laplacian(sub, super, k).to_dense();
}

RealMatrix persistent_laplacian(const Filtration& filtration, int k,
                                double birth_scale, double death_scale) {
  QTDA_REQUIRE(birth_scale <= death_scale,
               "persistent Laplacian needs birth scale <= death scale");
  return persistent_laplacian(filtration.complex_at(birth_scale),
                              filtration.complex_at(death_scale), k);
}

std::size_t persistent_betti_via_laplacian(const SimplicialComplex& sub,
                                           const SimplicialComplex& super,
                                           int k, double tolerance) {
  if (sub.count(k) == 0) return 0;
  return count_zero_eigenvalues(persistent_laplacian(sub, super, k),
                                tolerance);
}

}  // namespace qtda
