#include "topology/persistent_laplacian.hpp"

#include <vector>

#include "common/error.hpp"
#include "linalg/matrix_ops.hpp"
#include "linalg/pseudo_inverse.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/boundary.hpp"
#include "topology/laplacian.hpp"

namespace qtda {

RealMatrix persistent_laplacian(const SimplicialComplex& sub,
                                const SimplicialComplex& super, int k) {
  QTDA_REQUIRE(k >= 0, "homology dimension must be >= 0");
  const std::size_t nk_sub = sub.count(k);
  QTDA_REQUIRE(nk_sub > 0, "persistent Laplacian needs k-simplices in K");

  // Validate the inclusion K ⊆ L and locate K's k-simplices inside L's
  // ordering.
  std::vector<std::size_t> inside;  // positions (in L) of simplices of K
  inside.reserve(nk_sub);
  for (const Simplex& s : sub.simplices(k)) {
    const auto position = super.index_of(s);
    QTDA_REQUIRE(position.has_value(),
                 "K is not a subcomplex of L: missing " << s.to_string());
    inside.push_back(*position);
  }
  for (const Simplex& s : sub.simplices(k + 1)) {
    QTDA_REQUIRE(super.contains(s),
                 "K is not a subcomplex of L: missing " << s.to_string());
  }

  // Down part lives entirely in K.
  const RealMatrix down = down_laplacian(sub, k);

  // Up part: Schur complement of Δ_k^{L,up} onto K's simplices.
  const std::size_t nk_super = super.count(k);
  const RealMatrix up_super = up_laplacian(super, k);

  std::vector<bool> in_sub(nk_super, false);
  for (std::size_t position : inside) in_sub[position] = true;
  std::vector<std::size_t> outside;
  outside.reserve(nk_super - nk_sub);
  for (std::size_t i = 0; i < nk_super; ++i)
    if (!in_sub[i]) outside.push_back(i);

  RealMatrix up(nk_sub, nk_sub);
  if (outside.empty()) {
    // K and L share the k-simplices: the Schur complement is the whole
    // up-Laplacian, permuted into K's order.
    for (std::size_t i = 0; i < nk_sub; ++i)
      for (std::size_t j = 0; j < nk_sub; ++j)
        up(i, j) = up_super(inside[i], inside[j]);
  } else {
    // Blocks A (K×K), B (K×out), C (out×out); up = A − B·C⁺·Bᵀ.
    RealMatrix block_a(nk_sub, nk_sub);
    RealMatrix block_b(nk_sub, outside.size());
    RealMatrix block_c(outside.size(), outside.size());
    for (std::size_t i = 0; i < nk_sub; ++i) {
      for (std::size_t j = 0; j < nk_sub; ++j)
        block_a(i, j) = up_super(inside[i], inside[j]);
      for (std::size_t j = 0; j < outside.size(); ++j)
        block_b(i, j) = up_super(inside[i], outside[j]);
    }
    for (std::size_t i = 0; i < outside.size(); ++i)
      for (std::size_t j = 0; j < outside.size(); ++j)
        block_c(i, j) = up_super(outside[i], outside[j]);

    const RealMatrix c_pinv = pseudo_inverse_symmetric(block_c);
    const RealMatrix correction =
        matmul(block_b, matmul(c_pinv, transpose(block_b)));
    up = subtract(block_a, correction);
  }
  return add(down, up);
}

RealMatrix persistent_laplacian(const Filtration& filtration, int k,
                                double birth_scale, double death_scale) {
  QTDA_REQUIRE(birth_scale <= death_scale,
               "persistent Laplacian needs birth scale <= death scale");
  return persistent_laplacian(filtration.complex_at(birth_scale),
                              filtration.complex_at(death_scale), k);
}

std::size_t persistent_betti_via_laplacian(const SimplicialComplex& sub,
                                           const SimplicialComplex& super,
                                           int k, double tolerance) {
  if (sub.count(k) == 0) return 0;
  return count_zero_eigenvalues(persistent_laplacian(sub, super, k),
                                tolerance);
}

}  // namespace qtda
