/// \file filtration.hpp
/// \brief Rips filtrations: simplices ordered by birth scale.
///
/// The paper's future work points at persistent Betti numbers, which are
/// scale-invariant.  A filtration assigns each simplex the smallest grouping
/// scale ε at which it enters the Rips complex (0 for vertices, the edge
/// length for edges, the longest edge for higher simplices) and orders
/// simplices by (birth, dimension, lexicographic) so that every prefix is a
/// valid subcomplex.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "topology/point_cloud.hpp"
#include "topology/simplex.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// One filtered simplex.
struct FilteredSimplex {
  Simplex simplex;
  double birth = 0.0;
};

/// A filtration: simplices in a subcomplex-compatible order.
class Filtration {
 public:
  Filtration() = default;

  /// Sorts and validates the given filtered simplices.  Throws when a face
  /// is missing or appears after a coface.
  explicit Filtration(std::vector<FilteredSimplex> simplices);

  std::size_t size() const { return simplices_.size(); }
  const FilteredSimplex& operator[](std::size_t i) const {
    return simplices_[i];
  }
  const std::vector<FilteredSimplex>& entries() const { return simplices_; }

  /// Position of a simplex in the filtration order.
  std::size_t position_of(const Simplex& s) const;

  /// The subcomplex at scale ε (all simplices with birth ≤ ε).
  SimplicialComplex complex_at(double epsilon) const;

  /// Largest birth value present (0 for an empty filtration).
  double max_birth() const;

 private:
  std::vector<FilteredSimplex> simplices_;
  std::unordered_map<Simplex, std::size_t, SimplexHash> positions_;
};

/// Builds the Rips filtration of a point cloud up to \p max_dimension and
/// scale \p max_epsilon.
Filtration rips_filtration(const PointCloud& cloud, double max_epsilon,
                           int max_dimension);

/// Same from a distance matrix.
Filtration rips_filtration(const RealMatrix& distances, double max_epsilon,
                           int max_dimension);

}  // namespace qtda
