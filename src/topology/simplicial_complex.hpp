/// \file simplicial_complex.hpp
/// \brief Simplicial complexes indexed per dimension.
///
/// Simplices of each dimension k are kept sorted lexicographically — the
/// paper's §2 ordering — so the column order of the boundary operator ∂_k
/// matches Eq. (14)/(15) of the worked example.  The container validates
/// downward closure (every face of a member is a member).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "topology/simplex.hpp"

namespace qtda {

/// A finite abstract simplicial complex.
class SimplicialComplex {
 public:
  SimplicialComplex() = default;

  /// Builds from a list of simplices.  When \p close_downward is true the
  /// missing faces are added automatically; otherwise the input must already
  /// be closed (throws if not).
  static SimplicialComplex from_simplices(const std::vector<Simplex>& simplices,
                                          bool close_downward = false);

  /// Adds a simplex and (recursively) all of its faces.
  void insert_with_faces(const Simplex& s);

  /// Largest dimension present, or −1 for the empty complex.
  int max_dimension() const;

  /// Number of k-simplices, |S_k|.  Zero for out-of-range k.
  std::size_t count(int k) const;

  /// Total number of simplices across dimensions.
  std::size_t total_count() const;

  /// Sorted k-simplices; empty for out-of-range k.
  const std::vector<Simplex>& simplices(int k) const;

  /// Index of \p s within simplices(s.dimension()); nullopt when absent.
  std::optional<std::size_t> index_of(const Simplex& s) const;

  /// Membership test.
  bool contains(const Simplex& s) const;

  /// Euler characteristic χ = Σ_k (−1)^k |S_k|.
  long long euler_characteristic() const;

  /// Verifies downward closure; returns the first missing face if any.
  std::optional<Simplex> find_missing_face() const;

 private:
  void insert_sorted(const Simplex& s);
  void rebuild_index(int k);

  std::vector<std::vector<Simplex>> by_dimension_;
  std::vector<std::unordered_map<Simplex, std::size_t, SimplexHash>> index_;
  static const std::vector<Simplex> kEmpty;
};

}  // namespace qtda
