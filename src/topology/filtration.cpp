#include "topology/filtration.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "topology/rips.hpp"

namespace qtda {

Filtration::Filtration(std::vector<FilteredSimplex> simplices)
    : simplices_(std::move(simplices)) {
  std::sort(simplices_.begin(), simplices_.end(),
            [](const FilteredSimplex& a, const FilteredSimplex& b) {
              if (a.birth != b.birth) return a.birth < b.birth;
              if (a.simplex.dimension() != b.simplex.dimension())
                return a.simplex.dimension() < b.simplex.dimension();
              return a.simplex < b.simplex;
            });
  positions_.reserve(simplices_.size());
  for (std::size_t i = 0; i < simplices_.size(); ++i) {
    const auto inserted = positions_.emplace(simplices_[i].simplex, i);
    QTDA_REQUIRE(inserted.second, "duplicate simplex in filtration: "
                                      << simplices_[i].simplex.to_string());
  }
  // Validate: every facet exists and appears earlier.
  for (std::size_t i = 0; i < simplices_.size(); ++i) {
    const Simplex& s = simplices_[i].simplex;
    if (s.dimension() == 0) continue;
    for (const Simplex& face : s.facets()) {
      const auto it = positions_.find(face);
      QTDA_REQUIRE(it != positions_.end(),
                   "filtration missing face " << face.to_string());
      QTDA_REQUIRE(it->second < i, "face " << face.to_string()
                                           << " appears after coface "
                                           << s.to_string());
    }
  }
}

std::size_t Filtration::position_of(const Simplex& s) const {
  const auto it = positions_.find(s);
  QTDA_REQUIRE(it != positions_.end(),
               "simplex " << s.to_string() << " not in filtration");
  return it->second;
}

SimplicialComplex Filtration::complex_at(double epsilon) const {
  std::vector<Simplex> members;
  for (const FilteredSimplex& fs : simplices_) {
    if (fs.birth <= epsilon) members.push_back(fs.simplex);
  }
  return SimplicialComplex::from_simplices(members, /*close_downward=*/false);
}

double Filtration::max_birth() const {
  double m = 0.0;
  for (const FilteredSimplex& fs : simplices_) m = std::max(m, fs.birth);
  return m;
}

Filtration rips_filtration(const RealMatrix& distances, double max_epsilon,
                           int max_dimension) {
  const SimplicialComplex complex =
      rips_complex(distances, max_epsilon, max_dimension);
  std::vector<FilteredSimplex> filtered;
  filtered.reserve(complex.total_count());
  for (int k = 0; k <= complex.max_dimension(); ++k) {
    for (const Simplex& s : complex.simplices(k)) {
      double birth = 0.0;
      const auto& vs = s.vertices();
      for (std::size_t a = 0; a < vs.size(); ++a)
        for (std::size_t b = a + 1; b < vs.size(); ++b)
          birth = std::max(birth, distances(vs[a], vs[b]));
      filtered.push_back({s, birth});
    }
  }
  return Filtration(std::move(filtered));
}

Filtration rips_filtration(const PointCloud& cloud, double max_epsilon,
                           int max_dimension) {
  return rips_filtration(cloud.distance_matrix(), max_epsilon, max_dimension);
}

}  // namespace qtda
