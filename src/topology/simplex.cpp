#include "topology/simplex.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qtda {

Simplex::Simplex(std::vector<VertexId> vertices)
    : vertices_(std::move(vertices)) {
  std::sort(vertices_.begin(), vertices_.end());
  const auto dup = std::adjacent_find(vertices_.begin(), vertices_.end());
  QTDA_REQUIRE(dup == vertices_.end(), "simplex with duplicate vertex");
}

Simplex::Simplex(std::initializer_list<VertexId> vertices)
    : Simplex(std::vector<VertexId>(vertices)) {}

Simplex Simplex::face_without(std::size_t t) const {
  QTDA_REQUIRE(t < vertices_.size(),
               "face_without(" << t << ") on a " << dimension() << "-simplex");
  std::vector<VertexId> face;
  face.reserve(vertices_.size() - 1);
  for (std::size_t i = 0; i < vertices_.size(); ++i)
    if (i != t) face.push_back(vertices_[i]);
  return Simplex(std::move(face));
}

std::vector<Simplex> Simplex::facets() const {
  std::vector<Simplex> out;
  if (vertices_.empty()) return out;
  out.reserve(vertices_.size());
  for (std::size_t t = 0; t < vertices_.size(); ++t)
    out.push_back(face_without(t));
  return out;
}

bool Simplex::has_face(const Simplex& other) const {
  return std::includes(vertices_.begin(), vertices_.end(),
                       other.vertices_.begin(), other.vertices_.end());
}

bool Simplex::contains(VertexId v) const {
  return std::binary_search(vertices_.begin(), vertices_.end(), v);
}

bool Simplex::operator<(const Simplex& other) const {
  return std::lexicographical_compare(vertices_.begin(), vertices_.end(),
                                      other.vertices_.begin(),
                                      other.vertices_.end());
}

std::string Simplex::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (i) os << ',';
    os << vertices_[i];
  }
  os << '}';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Simplex& s) {
  return os << s.to_string();
}

std::size_t SimplexHash::operator()(const Simplex& s) const {
  std::size_t h = 1469598103934665603ULL;  // FNV offset basis
  for (VertexId v : s.vertices()) {
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace qtda
