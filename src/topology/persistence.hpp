/// \file persistence.hpp
/// \brief Persistent homology over Z2 via the standard column reduction.
///
/// Implements the classical matrix-reduction algorithm (Edelsbrunner–
/// Letscher–Zomorodian): reduce the filtration boundary matrix column by
/// column; each surviving pivot (i, j) is a (birth, death) pair, unpaired
/// positive columns are essential classes.  Persistent Betti numbers
/// β_k^{b,d} count classes born by scale b still alive after scale d —
/// the scale-invariant features named in the paper's future work.
#pragma once

#include <limits>
#include <vector>

#include "topology/filtration.hpp"

namespace qtda {

/// One persistence interval [birth, death); death = +inf for essential
/// classes.
struct PersistencePair {
  int dimension = 0;
  double birth = 0.0;
  double death = std::numeric_limits<double>::infinity();
  std::size_t birth_position = 0;  ///< filtration index of the creator
  std::size_t death_position = 0;  ///< filtration index of the destroyer
  bool essential = false;

  double persistence() const { return death - birth; }
};

/// Full persistence diagram of a filtration.
class PersistenceDiagram {
 public:
  explicit PersistenceDiagram(std::vector<PersistencePair> pairs);

  const std::vector<PersistencePair>& pairs() const { return pairs_; }

  /// Pairs of one homology dimension.
  std::vector<PersistencePair> pairs_in_dimension(int k) const;

  /// Persistent Betti number β_k^{b,d}: classes born at scale ≤ b that are
  /// still alive strictly after scale d (requires b ≤ d).
  std::size_t persistent_betti(int k, double b, double d) const;

  /// Ordinary Betti number of the subcomplex at scale ε:
  /// β_k(ε) = β_k^{ε,ε}.
  std::size_t betti_at(int k, double epsilon) const;

  /// Number of essential (never-dying) classes in dimension k.
  std::size_t essential_count(int k) const;

 private:
  std::vector<PersistencePair> pairs_;
};

/// Runs the reduction.  Zero-persistence pairs (birth == death) are kept —
/// callers can filter — because β_k(ε) needs exact bookkeeping.
PersistenceDiagram compute_persistence(const Filtration& filtration);

}  // namespace qtda
