/// \file simplex.hpp
/// \brief Abstract k-simplices with the paper's vertex-ordering convention.
///
/// A k-simplex is a set of k+1 vertices; following the paper (§2) vertices
/// are kept in ascending order everywhere, which fixes the orientation used
/// by the boundary operator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace qtda {

using VertexId = std::uint32_t;

/// Immutable simplex: an ascending list of distinct vertex ids.
class Simplex {
 public:
  Simplex() = default;

  /// Builds from vertices in any order; they are sorted and checked for
  /// duplicates.
  explicit Simplex(std::vector<VertexId> vertices);
  Simplex(std::initializer_list<VertexId> vertices);

  /// Dimension k (= vertex count − 1).  Empty simplex has dimension −1.
  int dimension() const { return static_cast<int>(vertices_.size()) - 1; }

  std::size_t vertex_count() const { return vertices_.size(); }
  const std::vector<VertexId>& vertices() const { return vertices_; }
  VertexId operator[](std::size_t i) const { return vertices_[i]; }

  /// The face obtained by deleting the t-th vertex (paper's s_{k−1}(t)).
  Simplex face_without(std::size_t t) const;

  /// All k+1 facets in vertex-deletion order (t = 0..k).
  std::vector<Simplex> facets() const;

  /// True when \p other is a face (subset) of this simplex.
  bool has_face(const Simplex& other) const;

  /// True when vertex v belongs to this simplex (binary search).
  bool contains(VertexId v) const;

  /// Lexicographic comparison on the sorted vertex lists; ties broken by
  /// size so faces order before cofaces with a common prefix.
  bool operator<(const Simplex& other) const;
  bool operator==(const Simplex& other) const {
    return vertices_ == other.vertices_;
  }
  bool operator!=(const Simplex& other) const { return !(*this == other); }

  /// Human-readable "{1,2,3}" form (for diagnostics and examples).
  std::string to_string() const;

 private:
  std::vector<VertexId> vertices_;
};

std::ostream& operator<<(std::ostream& os, const Simplex& s);

/// FNV-style hash over the vertex list, usable in unordered containers.
struct SimplexHash {
  std::size_t operator()(const Simplex& s) const;
};

}  // namespace qtda
