/// \file boundary.hpp
/// \brief Restricted boundary operators ∂_k of a simplicial complex.
///
/// ∂_k maps k-chains to (k−1)-chains:
///   ∂_k [v_0..v_k] = Σ_t (−1)^t [v_0.. v̂_t ..v_k]
/// (standard orientation; the paper's Eq. (14) is the global negation of its
/// own Eq. (1) — the Laplacian is invariant either way, and tests pin both).
/// Rows are indexed by the sorted (k−1)-simplices, columns by the sorted
/// k-simplices of the complex, matching the paper's ordering.
#pragma once

#include "linalg/sparse_matrix.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Builds ∂_k as a sparse |S_{k−1}| × |S_k| matrix.  For k = 0 the result
/// is the empty 0 × |S_0| matrix (the boundary of a vertex is zero).
/// For k > max dimension the result is |S_{k−1}| × 0.
SparseMatrix boundary_operator(const SimplicialComplex& complex, int k);

}  // namespace qtda
