/// \file padding.hpp
/// \brief Power-of-two padding of the combinatorial Laplacian (paper Eq. 7).
///
/// QPE acts on 2^q dimensions, so Δ_k (dimension |S_k|) must be embedded in
/// the next power of two.  The paper's key implementation point: padding
/// with zeros adds 2^q − |S_k| *new zero eigenvalues*, corrupting the Betti
/// count; padding with (λ̃max/2)·I places the ghost eigenvalues mid-spectrum
/// where QPE cleanly rejects them.  Both schemes are provided — the zero
/// scheme feeds the ablation bench that demonstrates the paper's point.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace qtda {

/// How the padding block is filled.
enum class PaddingScheme {
  kIdentityHalfLambdaMax,  ///< paper's proposal: (λ̃max/2)·I
  kZero,                   ///< naive zero padding (ablation)
};

/// Result of the padding step.
struct PaddedLaplacian {
  RealMatrix matrix;        ///< 2^q × 2^q padded operator Δ̃
  std::size_t num_qubits = 0;   ///< q = ⌈log2 |S_k|⌉ (min 1)
  std::size_t original_dim = 0; ///< |S_k|
  double lambda_max = 0.0;  ///< Gershgorin bound λ̃max of the original Δ
  PaddingScheme scheme = PaddingScheme::kIdentityHalfLambdaMax;
};

/// Pads a combinatorial Laplacian to the nearest power of two (paper Eq. 7).
/// A 1×1 input still becomes 2×2 (q = 1): QPE needs at least one system
/// qubit.  λ̃max is computed with the Gershgorin circle theorem and floored
/// at a small positive value so that the all-zero Laplacian (fully
/// disconnected complex) still pads to a spectrum-separating value.
PaddedLaplacian pad_laplacian(const RealMatrix& laplacian,
                              PaddingScheme scheme =
                                  PaddingScheme::kIdentityHalfLambdaMax);

/// Sparse counterpart of PaddedLaplacian: Δ̃ stays in CSR, so the padding
/// block contributes only 2^q − |S_k| diagonal entries instead of a dense
/// 2^q×2^q matrix.  Feeds the matrix-free QPE oracle.
struct SparsePaddedLaplacian {
  SparseMatrix matrix = SparseMatrix(0, 0);  ///< 2^q × 2^q padded operator Δ̃
  std::size_t num_qubits = 0;    ///< q = ⌈log2 |S_k|⌉ (min 1)
  std::size_t original_dim = 0;  ///< |S_k|
  double lambda_max = 0.0;  ///< Gershgorin bound λ̃max of the original Δ
  PaddingScheme scheme = PaddingScheme::kIdentityHalfLambdaMax;
};

/// Sparse padding with identical semantics to pad_laplacian (same q,
/// λ̃max, and ghost-eigenvalue placement).
SparsePaddedLaplacian pad_laplacian_sparse(
    const SparseMatrix& laplacian,
    PaddingScheme scheme = PaddingScheme::kIdentityHalfLambdaMax);

}  // namespace qtda
