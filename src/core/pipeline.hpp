/// \file pipeline.hpp
/// \brief End-to-end QTDA feature extraction (paper §5).
///
/// point cloud → ε-graph → flag complex → Δ_k → quantum Betti estimate,
/// for a list of homology dimensions.  This is the feature extractor the
/// classification experiments feed into logistic regression; a classical
/// variant (exact Betti numbers) provides the baseline the paper compares
/// against (Table 1's "actual Betti numbers" row, Fig. 4).
#pragma once

#include <vector>

#include "core/betti_estimator.hpp"
#include "topology/point_cloud.hpp"

namespace qtda {

/// Pipeline configuration.
struct PipelineOptions {
  double epsilon = 1.0;           ///< grouping scale ε
  std::vector<int> dimensions{0, 1};  ///< which β_k to extract
  EstimatorOptions estimator;     ///< QPE settings
};

/// Result per homology dimension.
struct PipelineFeatures {
  std::vector<double> estimated;   ///< β̃_k (rational, Eq. 11)
  std::vector<std::size_t> exact;  ///< classical β_k of the same complex
};

/// Quantum features plus the classical baseline for one point cloud.
PipelineFeatures extract_betti_features(const PointCloud& cloud,
                                        const PipelineOptions& options);

/// Classical-only variant (no quantum stage) — the Fig. 4 baseline.
std::vector<std::size_t> extract_exact_betti(const PointCloud& cloud,
                                             double epsilon,
                                             const std::vector<int>& dims);

}  // namespace qtda
