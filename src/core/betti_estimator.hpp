/// \file betti_estimator.hpp
/// \brief The paper's QTDA algorithm: Betti numbers from QPE statistics.
///
/// Pipeline (paper §3): Δ_k → pad (Eq. 7) → rescale (Eq. 8–9) → QPE on the
/// maximally mixed state → β̃ = 2^q·p(0) (Eq. 10–11).  Four interchangeable
/// backends execute the QPE stage:
///
///  * kAnalytic       — exact p(0) via the Fejér-kernel average plus a
///                      Binomial shot draw.  Mathematically identical to the
///                      exact circuit; used for the large Fig. 3 sweeps.
///  * kCircuitExact   — full state-vector QPE (Fig. 6) with dense controlled
///                      U^{2^j} oracles and genuine multinomial shots.
///  * kCircuitSparse  — same network, but the controlled powers act on the
///                      system register matrix-free: Δ̃_k stays in CSR end to
///                      end and exp(i·p·H) is applied by Chebyshev expansion
///                      (linalg/expm_multiply.hpp).  No 2^q×2^q matrix is
///                      formed, pushing feasible system sizes far past the
///                      dense oracle's ceiling.
///  * kCircuitTrotter — same network with U synthesized gate-by-gate from
///                      the Pauli decomposition (Fig. 7), exposing Trotter
///                      error and circuit depth; supports the noise model.
///
/// Circuit execution is routed through the pluggable SimulatorBackend
/// interface (quantum/backend.hpp), selected by EstimatorOptions::simulator.
///
/// Mixed-state input comes either from the purification circuit (Fig. 2,
/// q extra ancillas) or from per-shot sampling of uniformly random basis
/// states (statistically identical, half the qubits).
#pragma once

#include <cstdint>
#include <optional>

#include "common/random.hpp"
#include "core/analytic_qpe.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/sparse_matrix.hpp"
#include "quantum/backend.hpp"
#include "quantum/circuit.hpp"
#include "quantum/compiler.hpp"
#include "quantum/noise.hpp"
#include "quantum/trotter.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Execution backend of the QPE stage.
enum class EstimatorBackend {
  kAnalytic,
  kCircuitExact,
  kCircuitSparse,
  kCircuitTrotter,
};

/// How the maximally mixed system register is realised.
enum class MixedStateMode {
  kPurification,   ///< Fig. 2 circuit, q ancillas
  kSampledBasis,   ///< uniformly random basis state per shot
};

/// Full configuration of one estimate.
struct EstimatorOptions {
  std::size_t precision_qubits = 4;  ///< t
  std::size_t shots = 1000;          ///< α
  double delta = 0.0;                ///< 0 → default_delta(); Appendix A uses λ̃max
  EstimatorBackend backend = EstimatorBackend::kAnalytic;
  /// Simulation engine.  kDensityMatrix evolves ρ exactly (4^n storage,
  /// register ≤ 13 qubits): noisy runs apply the depolarizing channel
  /// exactly and draw every shot from one ensemble evolution — the
  /// reference run_noisy_trajectory converges to — and compose with the
  /// matrix-free kCircuitSparse oracle (conjugated on the column register).
  SimulatorKind simulator = SimulatorKind::kStatevector;
  /// kShardedStatevector only: amplitude-slab/worker count (0 = one per
  /// hardware thread).  Any count ≥ 1 is valid and every count produces
  /// bit-identical estimates — the knob trades memory locality for
  /// parallelism, never results.
  std::size_t simulator_shards = 0;
  /// Amplitude scalar of the simulation engine.  kFloat64 is the reference;
  /// kFloat32 halves statevector memory and bandwidth at ~1e-7 relative
  /// amplitude error — safe for Betti estimation whenever the QPE phase
  /// gap is far above that (see README "Performance tuning").  Overridable
  /// process-wide with QTDA_PRECISION.
  Precision precision = Precision::kFloat64;
  MixedStateMode mixed_state = MixedStateMode::kPurification;
  PaddingScheme padding = PaddingScheme::kIdentityHalfLambdaMax;
  /// Trotter configuration for kCircuitTrotter; `steps` counts splitting
  /// steps *per unit of simulated time* (the controlled power U^{2^j}
  /// automatically gets 2^j times as many).
  TrotterOptions trotter;
  NoiseModel noise;                  ///< only honoured by circuit backends
  std::uint64_t seed = 42;           ///< shot-sampling RNG seed
  /// kCircuitSparse only: skip the dense eigensolve that fills
  /// exact_zero_probability once 2^q exceeds this (the estimate itself
  /// never needs it; the reference value is a diagnostic).
  std::size_t exact_reference_max_dim = 4096;
};

/// Outcome of one estimate.
struct BettiEstimate {
  double estimated_betti = 0.0;      ///< β̃ = 2^q · p̂(0) (rational, Eq. 11)
  std::size_t rounded_betti = 0;     ///< nearest whole number
  double zero_probability = 0.0;     ///< p̂(0) from shots
  double exact_zero_probability = 0.0;  ///< analytic p(0) of the same H
  std::uint64_t zero_counts = 0;     ///< shots that measured phase 0
  std::size_t shots = 0;             ///< α
  std::size_t system_qubits = 0;     ///< q
  std::size_t precision_qubits = 0;  ///< t
  std::size_t total_qubits = 0;      ///< register width actually simulated
  double lambda_max = 0.0;           ///< Gershgorin bound used
  double delta = 0.0;                ///< δ used
  std::size_t circuit_gates = 0;     ///< 0 for the analytic backend
  std::size_t circuit_depth = 0;     ///< 0 for the analytic backend
};

/// The compile policy of the estimator's execution stage: environment-driven
/// fusion knobs (QTDA_FUSE / QTDA_FUSE_WIDTH), with noise slots preserved
/// whenever the noise model is active so error placement and RNG order match
/// the uncompiled walk.  Exposed so stats/diagnostic surfaces report the
/// plan the estimator actually runs instead of re-deriving the policy.
CompilerOptions estimator_compiler_options(const NoiseModel& noise);

/// Builds the paper's full circuit (Fig. 2 purification prep when the
/// mixed-state mode asks for it, plus the Fig. 6 QPE network) for a given
/// Laplacian — exposed for circuit-level studies: depth accounting, the
/// optimizer, and exact density-matrix noise analysis.  Requires a circuit
/// backend in `options.backend`; with kCircuitSparse the controlled powers
/// are matrix-free operator gates.
Circuit build_qtda_circuit(const RealMatrix& laplacian,
                           const EstimatorOptions& options);

/// Sparse overload (kCircuitSparse only): builds the matrix-free circuit
/// directly from CSR — the literally identical circuit
/// estimate_betti_from_sparse_laplacian executes, with no densification
/// round-trip that could reorder nonzeros.
Circuit build_qtda_circuit(const SparseMatrix& laplacian,
                           const EstimatorOptions& options);

/// Estimates β̃_k from a combinatorial Laplacian.
BettiEstimate estimate_betti_from_laplacian(const RealMatrix& laplacian,
                                            const EstimatorOptions& options);

/// Estimates β̃_k from a sparse combinatorial Laplacian.  With
/// kCircuitSparse the Laplacian is never densified; other backends densify
/// internally (they need the dense matrix anyway).
BettiEstimate estimate_betti_from_sparse_laplacian(
    const SparseMatrix& laplacian, const EstimatorOptions& options);

/// Estimates β̃_k of a simplicial complex (builds Δ_k internally — in CSR
/// throughout for kCircuitSparse).  Returns an exact zero estimate when the
/// complex has no k-simplices.
BettiEstimate estimate_betti(const SimplicialComplex& complex, int k,
                             const EstimatorOptions& options);

}  // namespace qtda
