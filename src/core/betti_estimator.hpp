/// \file betti_estimator.hpp
/// \brief The paper's QTDA algorithm: Betti numbers from QPE statistics.
///
/// Pipeline (paper §3): Δ_k → pad (Eq. 7) → rescale (Eq. 8–9) → QPE on the
/// maximally mixed state → β̃ = 2^q·p(0) (Eq. 10–11).  Four interchangeable
/// backends execute the QPE stage:
///
///  * kAnalytic       — exact p(0) via the Fejér-kernel average plus a
///                      Binomial shot draw.  Mathematically identical to the
///                      exact circuit; used for the large Fig. 3 sweeps.
///  * kCircuitExact   — full state-vector QPE (Fig. 6) with dense controlled
///                      U^{2^j} oracles and genuine multinomial shots.
///  * kCircuitSparse  — same network, but the controlled powers act on the
///                      system register matrix-free: Δ̃_k stays in CSR end to
///                      end and exp(i·p·H) is applied by Chebyshev expansion
///                      (linalg/expm_multiply.hpp).  No 2^q×2^q matrix is
///                      formed, pushing feasible system sizes far past the
///                      dense oracle's ceiling.
///  * kCircuitTrotter — same network with U synthesized gate-by-gate from
///                      the Pauli decomposition (Fig. 7), exposing Trotter
///                      error and circuit depth; supports the noise model.
///
/// Circuit execution is routed through the pluggable SimulatorBackend
/// interface (quantum/backend.hpp), selected by EstimatorOptions::simulator.
///
/// Mixed-state input comes either from the purification circuit (Fig. 2,
/// q extra ancillas) or from per-shot sampling of uniformly random basis
/// states (statistically identical, half the qubits).
#pragma once

#include <cstdint>
#include <optional>

#include <memory>

#include "common/random.hpp"
#include "core/analytic_qpe.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/sparse_matrix.hpp"
#include "quantum/backend.hpp"
#include "quantum/circuit.hpp"
#include "quantum/compiler.hpp"
#include "quantum/noise.hpp"
#include "quantum/qpe.hpp"
#include "quantum/trotter.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// Execution backend of the QPE stage.
enum class EstimatorBackend {
  kAnalytic,
  kCircuitExact,
  kCircuitSparse,
  kCircuitTrotter,
};

/// How the maximally mixed system register is realised.
enum class MixedStateMode {
  kPurification,   ///< Fig. 2 circuit, q ancillas
  kSampledBasis,   ///< uniformly random basis state per shot
};

/// Full configuration of one estimate.
struct EstimatorOptions {
  std::size_t precision_qubits = 4;  ///< t
  std::size_t shots = 1000;          ///< α
  double delta = 0.0;                ///< 0 → default_delta(); Appendix A uses λ̃max
  EstimatorBackend backend = EstimatorBackend::kAnalytic;
  /// Simulation engine.  kDensityMatrix evolves ρ exactly (4^n storage,
  /// register ≤ 13 qubits): noisy runs apply the depolarizing channel
  /// exactly and draw every shot from one ensemble evolution — the
  /// reference run_noisy_trajectory converges to — and compose with the
  /// matrix-free kCircuitSparse oracle (conjugated on the column register).
  SimulatorKind simulator = SimulatorKind::kStatevector;
  /// kShardedStatevector only: amplitude-slab/worker count (0 = one per
  /// hardware thread).  Any count ≥ 1 is valid and every count produces
  /// bit-identical estimates — the knob trades memory locality for
  /// parallelism, never results.
  std::size_t simulator_shards = 0;
  /// Amplitude scalar of the simulation engine.  kFloat64 is the reference;
  /// kFloat32 halves statevector memory and bandwidth at ~1e-7 relative
  /// amplitude error — safe for Betti estimation whenever the QPE phase
  /// gap is far above that (see README "Performance tuning").  Overridable
  /// process-wide with QTDA_PRECISION.
  Precision precision = Precision::kFloat64;
  MixedStateMode mixed_state = MixedStateMode::kPurification;
  PaddingScheme padding = PaddingScheme::kIdentityHalfLambdaMax;
  /// Trotter configuration for kCircuitTrotter; `steps` counts splitting
  /// steps *per unit of simulated time* (the controlled power U^{2^j}
  /// automatically gets 2^j times as many).
  TrotterOptions trotter;
  NoiseModel noise;                  ///< only honoured by circuit backends
  std::uint64_t seed = 42;           ///< shot-sampling RNG seed
  /// kCircuitSparse only: skip the dense eigensolve that fills
  /// exact_zero_probability once 2^q exceeds this (the estimate itself
  /// never needs it; the reference value is a diagnostic).
  std::size_t exact_reference_max_dim = 4096;
};

/// Outcome of one estimate.
struct BettiEstimate {
  double estimated_betti = 0.0;      ///< β̃ = 2^q · p̂(0) (rational, Eq. 11)
  std::size_t rounded_betti = 0;     ///< nearest whole number
  double zero_probability = 0.0;     ///< p̂(0) from shots
  double exact_zero_probability = 0.0;  ///< analytic p(0) of the same H
  std::uint64_t zero_counts = 0;     ///< shots that measured phase 0
  std::size_t shots = 0;             ///< α
  std::size_t system_qubits = 0;     ///< q
  std::size_t precision_qubits = 0;  ///< t
  std::size_t total_qubits = 0;      ///< register width actually simulated
  double lambda_max = 0.0;           ///< Gershgorin bound used
  double delta = 0.0;                ///< δ used
  std::size_t circuit_gates = 0;     ///< 0 for the analytic backend
  std::size_t circuit_depth = 0;     ///< 0 for the analytic backend
};

/// The compile policy of the estimator's execution stage: environment-driven
/// fusion knobs (QTDA_FUSE / QTDA_FUSE_WIDTH), with noise slots preserved
/// whenever the noise model is active so error placement and RNG order match
/// the uncompiled walk.  Exposed so stats/diagnostic surfaces report the
/// plan the estimator actually runs instead of re-deriving the policy.
CompilerOptions estimator_compiler_options(const NoiseModel& noise);

/// Builds the paper's full circuit (Fig. 2 purification prep when the
/// mixed-state mode asks for it, plus the Fig. 6 QPE network) for a given
/// Laplacian — exposed for circuit-level studies: depth accounting, the
/// optimizer, and exact density-matrix noise analysis.  Requires a circuit
/// backend in `options.backend`; with kCircuitSparse the controlled powers
/// are matrix-free operator gates.
Circuit build_qtda_circuit(const RealMatrix& laplacian,
                           const EstimatorOptions& options);

/// Sparse overload (kCircuitSparse only): builds the matrix-free circuit
/// directly from CSR — the literally identical circuit
/// estimate_betti_from_sparse_laplacian executes, with no densification
/// round-trip that could reorder nonzeros.
Circuit build_qtda_circuit(const SparseMatrix& laplacian,
                           const EstimatorOptions& options);

/// The reusable, request-independent half of a sparse estimate: padding and
/// rescaling bookkeeping, the diagnostic reference probability, and the
/// compiled ExecutionPlan of the full QPE circuit.  Produced once by
/// compile_betti_estimate, executed any number of times by
/// estimate_betti_with_plan — the cold estimate_betti_from_sparse_laplacian
/// path *is* compile + execute, so handing a cached CompiledEstimate to the
/// execute half changes where the plan comes from, never what it computes
/// (the serving layer's bit-identity contract).
///
/// A CompiledEstimate may be shared across threads, but executions of one
/// instance must be externally serialized: the plan's scratch arena is
/// shared mutable state (same one-executor-at-a-time contract as
/// ExecutionPlan itself).
struct CompiledEstimate {
  std::shared_ptr<const ExecutionPlan> plan;
  QpeLayout layout;
  bool purify = true;            ///< mixed-state mode baked into the circuit
  EstimatorBackend backend = EstimatorBackend::kCircuitSparse;
  std::size_t system_qubits = 0;  ///< q
  std::size_t total_qubits = 0;   ///< register width of the circuit
  std::size_t circuit_gates = 0;
  std::size_t circuit_depth = 0;
  double lambda_max = 0.0;
  double delta = 0.0;
  double exact_zero_probability = 0.0;  ///< 0 when the eigensolve was skipped

  /// Approximate resident size (plan + bookkeeping) — the byte-accounting
  /// unit of the serving layer's artifact cache.
  std::size_t memory_bytes() const {
    return sizeof(CompiledEstimate) +
           (plan == nullptr ? 0 : plan->memory_bytes());
  }
};

/// Builds and compiles everything about an estimate that does not depend on
/// the per-request shot state (seed, shots, engine choice): pad → rescale →
/// circuit → ExecutionPlan, plus the diagnostic dense eigensolve when the
/// dimension permits.  Requires kCircuitSparse or kCircuitTrotter (the
/// backends whose circuits the plan cache serves).
CompiledEstimate compile_betti_estimate(const SparseMatrix& laplacian,
                                        const EstimatorOptions& options);

/// Executes a previously compiled estimate.  \p options must be
/// plan-compatible with the options the estimate was compiled under (same
/// backend, precision qubits, mixed-state mode, and — when noisy — a plan
/// compiled with noise slots); shots, seed, simulator kind/shards and
/// amplitude precision are free to vary per call.  Bit-identical to running
/// estimate_betti_from_sparse_laplacian with the same options.
BettiEstimate estimate_betti_with_plan(const CompiledEstimate& compiled,
                                       const EstimatorOptions& options);

/// Executes one compiled estimate for many requests off a single state
/// evolution.  Restricted to the batchable regime: noiseless purification
/// circuits, where the final state is a deterministic function of the plan —
/// so one evolution followed by per-request shot sampling (each request's
/// own Rng seeded from its own seed, in request order) is *bit-identical* to
/// running estimate_betti_with_plan once per request.  Every request must be
/// plan-compatible (same checks as estimate_betti_with_plan) and share the
/// simulator kind, shard count, and amplitude precision; shots and seed are
/// free to vary.  Returns the estimates in request order.
std::vector<BettiEstimate> estimate_betti_batch(
    const CompiledEstimate& compiled,
    const std::vector<EstimatorOptions>& requests);

/// Estimates β̃_k from a combinatorial Laplacian.
BettiEstimate estimate_betti_from_laplacian(const RealMatrix& laplacian,
                                            const EstimatorOptions& options);

/// Estimates β̃_k from a sparse combinatorial Laplacian.  With
/// kCircuitSparse the Laplacian is never densified; other backends densify
/// internally (they need the dense matrix anyway).
BettiEstimate estimate_betti_from_sparse_laplacian(
    const SparseMatrix& laplacian, const EstimatorOptions& options);

/// Estimates β̃_k of a simplicial complex (builds Δ_k internally — in CSR
/// throughout for kCircuitSparse).  Returns an exact zero estimate when the
/// complex has no k-simplices.
BettiEstimate estimate_betti(const SimplicialComplex& complex, int k,
                             const EstimatorOptions& options);

}  // namespace qtda
