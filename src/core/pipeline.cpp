#include "core/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "topology/betti.hpp"
#include "topology/rips.hpp"

namespace qtda {

namespace {

int required_expansion_dimension(const std::vector<int>& dims) {
  QTDA_REQUIRE(!dims.empty(), "no homology dimensions requested");
  int max_k = 0;
  for (int k : dims) {
    QTDA_REQUIRE(k >= 0, "negative homology dimension");
    max_k = std::max(max_k, k);
  }
  // Δ_k needs the (k+1)-simplices.
  return max_k + 1;
}

}  // namespace

PipelineFeatures extract_betti_features(const PointCloud& cloud,
                                        const PipelineOptions& options) {
  const SimplicialComplex complex = rips_complex(
      cloud, options.epsilon, required_expansion_dimension(options.dimensions));
  PipelineFeatures features;
  features.estimated.reserve(options.dimensions.size());
  features.exact.reserve(options.dimensions.size());
  for (int k : options.dimensions) {
    const BettiEstimate estimate = estimate_betti(complex, k, options.estimator);
    features.estimated.push_back(estimate.estimated_betti);
    features.exact.push_back(betti_number(complex, k));
  }
  return features;
}

std::vector<std::size_t> extract_exact_betti(const PointCloud& cloud,
                                             double epsilon,
                                             const std::vector<int>& dims) {
  const SimplicialComplex complex =
      rips_complex(cloud, epsilon, required_expansion_dimension(dims));
  std::vector<std::size_t> out;
  out.reserve(dims.size());
  for (int k : dims) out.push_back(betti_number(complex, k));
  return out;
}

}  // namespace qtda
