/// \file analytic_qpe.hpp
/// \brief Closed-form QPE statistics for the Betti estimator's fast path.
///
/// QPE on an eigenstate with phase θ measures 0 with probability
/// A_t(θ) = |2^{−t} Σ_x e^{2πiθx}|² (the Fejér kernel; see qpe.hpp).  Over
/// the maximally mixed input I/2^q the zero-outcome probability is the
/// uniform average  p(0) = 2^{−q} Σ_j A_t(θ_j)  over all 2^q eigenphases of
/// the padded Hamiltonian.  This is *exactly* the distribution the full
/// circuit samples (tests verify the agreement), so large shot counts can
/// be simulated as a single Binomial(α, p(0)) draw — the paper's 10^6-shot
/// sweeps run in microseconds.
#pragma once

#include "common/random.hpp"
#include "core/scaling.hpp"
#include "linalg/dense_matrix.hpp"

namespace qtda {

/// Exact p(0): average Fejér kernel over the eigenphases of H.
/// \p eigenvalues are the eigenvalues of the scaled Hamiltonian H
/// (phases θ_j = λ_j/2π).
double analytic_zero_probability(const RealVector& hamiltonian_eigenvalues,
                                 std::size_t precision_qubits);

/// Full analytic outcome distribution over the 2^t phase-register values for
/// the maximally mixed input (used to cross-check the circuit backends).
std::vector<double> analytic_outcome_distribution(
    const RealVector& hamiltonian_eigenvalues, std::size_t precision_qubits);

/// Simulates α shots of the zero-outcome counter: Binomial(α, p0).
std::uint64_t sample_zero_counts(double p0, std::size_t shots, Rng& rng);

}  // namespace qtda
