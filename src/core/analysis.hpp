/// \file analysis.hpp
/// \brief A-priori error analysis of the QPE Betti estimator.
///
/// The estimator's bias has exactly one source (before shot noise): nonzero
/// eigenphases leaking into the zero bin through the Fejér kernel
/// A_t(θ) ≤ 1/(2^t·sin(πθ))² ≤ 1/(2^{t+1}θ)².  The leakage therefore drops
/// by ~4× per extra precision qubit and is controlled by the *spectral gap*
/// — the smallest nonzero eigenphase of the padded, rescaled Laplacian.
/// These helpers expose that decomposition: how much of p(0) is signal
/// (β/2^q) versus leakage, and how many precision qubits a target bias
/// needs.  This answers the question the paper's §4 explores empirically
/// ("very high precision might not be required").
#pragma once

#include <cstddef>

#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/dense_matrix.hpp"

namespace qtda {

/// Decomposition of the estimator's exact statistics for one Laplacian.
struct EstimatorErrorAnalysis {
  std::size_t kernel_dimension = 0;   ///< exact β (zero-eigenvalue count)
  std::size_t system_qubits = 0;      ///< q after padding
  double ideal_zero_probability = 0;  ///< β / 2^q
  double exact_zero_probability = 0;  ///< Fejér average (what QPE measures)
  double leakage = 0;                 ///< exact − ideal ≥ 0
  double betti_bias = 0;              ///< 2^q · leakage (bias of β̃)
  double spectral_gap_phase = 0;      ///< smallest nonzero eigenphase ∈ (0, 1)
};

/// Analyzes the exact estimator statistics for \p precision_qubits.
/// \p delta == 0 selects default_delta().
EstimatorErrorAnalysis analyze_estimator_error(
    const RealMatrix& laplacian, std::size_t precision_qubits,
    double delta = 0.0,
    PaddingScheme padding = PaddingScheme::kIdentityHalfLambdaMax,
    double kernel_tolerance = 1e-8);

/// Smallest precision-qubit count whose Betti-estimate bias 2^q·leakage is
/// at most \p max_bias (searched up to \p max_precision; throws when even
/// max_precision cannot reach the target).
std::size_t recommended_precision_qubits(const RealMatrix& laplacian,
                                         double max_bias, double delta = 0.0,
                                         std::size_t max_precision = 20);

}  // namespace qtda
