#include "core/betti_estimator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/executor.hpp"
#include "quantum/mixed_state.hpp"
#include "quantum/pauli.hpp"
#include "quantum/qpe.hpp"
#include "topology/laplacian.hpp"

namespace qtda {

namespace {

/// Builds the full QPE circuit (state prep + network) for the given scaled
/// Hamiltonian.  For the purification mode the register is t + q + q wide;
/// for sampled-basis it is t + q and the system register is initialized by
/// the caller per shot.
Circuit build_estimator_circuit(const ScaledHamiltonian& scaled,
                                const EstimatorOptions& options,
                                bool with_purification) {
  QpeLayout layout;
  layout.precision_qubits = options.precision_qubits;
  layout.system_qubits = scaled.num_qubits;
  layout.ancilla_qubits = with_purification ? scaled.num_qubits : 0;
  QTDA_REQUIRE(layout.total() <= 26,
               "register of " << layout.total()
                              << " qubits exceeds the simulator budget");

  Circuit circuit(layout.total());
  if (with_purification) {
    append_mixed_state_preparation(circuit, layout.ancilla_wires(),
                                   layout.system_wires());
  }

  Circuit qpe = [&] {
    if (options.backend == EstimatorBackend::kCircuitTrotter) {
      const PauliSum hamiltonian = pauli_decompose(scaled.matrix);
      const std::size_t offset = layout.precision_qubits;
      return build_qpe_circuit(
          layout,
          [&](Circuit& c, std::uint64_t power, std::size_t control) {
            // options.trotter.steps is per unit of simulated time; U^{2^j}
            // simulates 2^j time units, so the step count scales with the
            // power — otherwise the large controlled powers dominate the
            // splitting error.
            TrotterOptions scaled_trotter = options.trotter;
            scaled_trotter.steps = options.trotter.steps *
                                   static_cast<std::size_t>(power);
            const Circuit fragment =
                trotter_circuit(hamiltonian, static_cast<double>(power),
                                scaled_trotter, layout.total(), offset);
            c.append_circuit(fragment.controlled_on(control));
          });
    }
    // kCircuitExact: dense controlled powers from the eigendecomposition.
    const HamiltonianExponential exponential(scaled.matrix);
    return build_qpe_circuit_dense(layout, [&](std::uint64_t power) {
      return exponential.unitary(static_cast<double>(power));
    });
  }();
  circuit.append_circuit(qpe);
  return circuit;
}

}  // namespace

Circuit build_qtda_circuit(const RealMatrix& laplacian,
                           const EstimatorOptions& options) {
  QTDA_REQUIRE(options.backend != EstimatorBackend::kAnalytic,
               "the analytic backend has no circuit; pick a circuit backend");
  const PaddedLaplacian padded = pad_laplacian(laplacian, options.padding);
  const double delta = options.delta > 0.0 ? options.delta : default_delta();
  const ScaledHamiltonian scaled = rescale_laplacian(padded, delta);
  const bool purify = options.mixed_state == MixedStateMode::kPurification;
  return build_estimator_circuit(scaled, options, purify);
}

BettiEstimate estimate_betti_from_laplacian(const RealMatrix& laplacian,
                                            const EstimatorOptions& options) {
  QTDA_REQUIRE(options.shots > 0, "estimator needs at least one shot");
  QTDA_REQUIRE(options.precision_qubits >= 1,
               "estimator needs at least one precision qubit");

  const PaddedLaplacian padded = pad_laplacian(laplacian, options.padding);
  const double delta = options.delta > 0.0 ? options.delta : default_delta();
  const ScaledHamiltonian scaled = rescale_laplacian(padded, delta);

  BettiEstimate estimate;
  estimate.shots = options.shots;
  estimate.system_qubits = scaled.num_qubits;
  estimate.precision_qubits = options.precision_qubits;
  estimate.lambda_max = scaled.lambda_max;
  estimate.delta = delta;

  // Analytic reference p(0) of the exact H (used by every backend as the
  // ground-truth probability; the Trotter backend will deviate from it by
  // its splitting error).
  const RealVector eigenvalues = symmetric_eigenvalues(scaled.matrix);
  estimate.exact_zero_probability =
      analytic_zero_probability(eigenvalues, options.precision_qubits);

  Rng rng(options.seed);
  const std::uint64_t dim = std::uint64_t{1} << scaled.num_qubits;

  switch (options.backend) {
    case EstimatorBackend::kAnalytic: {
      estimate.zero_counts = sample_zero_counts(
          estimate.exact_zero_probability, options.shots, rng);
      estimate.total_qubits =
          options.precision_qubits + scaled.num_qubits +
          (options.mixed_state == MixedStateMode::kPurification
               ? scaled.num_qubits
               : 0);
      break;
    }
    case EstimatorBackend::kCircuitExact:
    case EstimatorBackend::kCircuitTrotter: {
      const bool purify =
          options.mixed_state == MixedStateMode::kPurification;
      const Circuit circuit =
          build_estimator_circuit(scaled, options, purify);
      estimate.total_qubits = circuit.num_qubits();
      estimate.circuit_gates = circuit.gate_count();
      estimate.circuit_depth = circuit.depth();

      QpeLayout layout;
      layout.precision_qubits = options.precision_qubits;
      layout.system_qubits = scaled.num_qubits;
      layout.ancilla_qubits = purify ? scaled.num_qubits : 0;
      const std::vector<std::size_t> measured = layout.precision_wires();

      if (purify) {
        const auto counts =
            options.noise.is_noiseless()
                ? sample_circuit(circuit, measured, options.shots, rng)
                : sample_circuit_noisy(circuit, measured, options.shots,
                                       options.noise, rng);
        estimate.zero_counts = counts[0];
      } else {
        // Sampled-basis mixture: distribute shots uniformly over the 2^q
        // basis states, then run one evolution per occupied state.
        const std::vector<double> uniform(dim, 1.0);
        const auto shots_per_state =
            multinomial_sample(uniform, options.shots, rng);
        std::uint64_t zeros = 0;
        for (std::uint64_t basis = 0; basis < dim; ++basis) {
          const std::uint64_t s = shots_per_state[basis];
          if (s == 0) continue;
          // System register holds |basis⟩: it occupies wires
          // [t, t+q) which are the top bits below the precision block.
          const std::uint64_t initial =
              basis << (circuit.num_qubits() - options.precision_qubits -
                        scaled.num_qubits);
          if (options.noise.is_noiseless()) {
            Statevector state(circuit.num_qubits());
            state.set_basis_state(initial);
            state.apply_circuit(circuit);
            const auto counts = state.sample_counts(measured, s, rng);
            zeros += counts[0];
          } else {
            for (std::uint64_t shot = 0; shot < s; ++shot) {
              Statevector noisy(circuit.num_qubits());
              noisy.set_basis_state(initial);
              Rng traj_rng = rng.split(shot * dim + basis);
              for (const Gate& gate : circuit.gates()) {
                noisy.apply_gate(gate);
                const bool multi =
                    gate.targets.size() + gate.controls.size() >= 2;
                const double p = multi ? options.noise.two_qubit_error
                                       : options.noise.single_qubit_error;
                if (p <= 0.0) continue;
                for (std::size_t q : gate.targets)
                  maybe_apply_depolarizing(noisy, q, p, traj_rng);
                for (std::size_t q : gate.controls)
                  maybe_apply_depolarizing(noisy, q, p, traj_rng);
              }
              const auto counts = noisy.sample_counts(measured, 1, rng);
              zeros += counts[0];
            }
          }
        }
        estimate.zero_counts = zeros;
      }
      break;
    }
  }

  estimate.zero_probability = static_cast<double>(estimate.zero_counts) /
                              static_cast<double>(options.shots);
  estimate.estimated_betti =
      static_cast<double>(dim) * estimate.zero_probability;
  estimate.rounded_betti = static_cast<std::size_t>(
      std::llround(std::max(estimate.estimated_betti, 0.0)));
  return estimate;
}

BettiEstimate estimate_betti(const SimplicialComplex& complex, int k,
                             const EstimatorOptions& options) {
  if (complex.count(k) == 0) {
    BettiEstimate empty;
    empty.shots = options.shots;
    empty.precision_qubits = options.precision_qubits;
    return empty;
  }
  return estimate_betti_from_laplacian(combinatorial_laplacian(complex, k),
                                       options);
}

}  // namespace qtda
