#include "core/betti_estimator.hpp"

#include <cmath>
#include <memory>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "linalg/expm_multiply.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/compiler.hpp"
#include "quantum/mixed_state.hpp"
#include "quantum/pauli.hpp"
#include "quantum/qpe.hpp"
#include "topology/laplacian.hpp"

namespace qtda {

namespace {

QpeLayout make_layout(const EstimatorOptions& options,
                      std::size_t system_qubits, bool with_purification) {
  QpeLayout layout;
  layout.precision_qubits = options.precision_qubits;
  layout.system_qubits = system_qubits;
  layout.ancilla_qubits = with_purification ? system_qubits : 0;
  return layout;
}

/// QPE network with Trotterized controlled powers, shared by the dense and
/// CSR decomposition routes (they differ only in how the PauliSum was
/// obtained).
Circuit build_trotter_qpe(const PauliSum& hamiltonian,
                          const EstimatorOptions& options,
                          const QpeLayout& layout) {
  const std::size_t offset = layout.precision_qubits;
  return build_qpe_circuit(
      layout, [&](Circuit& c, std::uint64_t power, std::size_t control) {
        // options.trotter.steps is per unit of simulated time; U^{2^j}
        // simulates 2^j time units, so the step count scales with the
        // power — otherwise the large controlled powers dominate the
        // splitting error.
        TrotterOptions scaled_trotter = options.trotter;
        scaled_trotter.steps =
            options.trotter.steps * static_cast<std::size_t>(power);
        const Circuit fragment =
            trotter_circuit(hamiltonian, static_cast<double>(power),
                            scaled_trotter, layout.total(), offset);
        c.append_circuit(fragment.controlled_on(control));
      });
}

/// Builds the full QPE circuit (state prep + network) for the given scaled
/// Hamiltonian with a dense oracle (kCircuitExact) or Trotterized fragments
/// (kCircuitTrotter).  For the purification mode the register is t + q + q
/// wide; for sampled-basis it is t + q and the system register is
/// initialized by the caller per shot.
Circuit build_estimator_circuit(const ScaledHamiltonian& scaled,
                                const EstimatorOptions& options,
                                bool with_purification) {
  const QpeLayout layout =
      make_layout(options, scaled.num_qubits, with_purification);
  QTDA_REQUIRE(layout.total() <= 26,
               "register of " << layout.total()
                              << " qubits exceeds the dense-oracle budget; "
                                 "use EstimatorBackend::kCircuitSparse");

  Circuit circuit(layout.total());
  if (with_purification) {
    append_mixed_state_preparation(circuit, layout.ancilla_wires(),
                                   layout.system_wires());
  }

  Circuit qpe = [&] {
    if (options.backend == EstimatorBackend::kCircuitTrotter) {
      return build_trotter_qpe(pauli_decompose(scaled.matrix), options,
                               layout);
    }
    // kCircuitExact: dense controlled powers from the eigendecomposition.
    const HamiltonianExponential exponential(scaled.matrix);
    return build_qpe_circuit_dense(layout, [&](std::uint64_t power) {
      return exponential.unitary(static_cast<double>(power));
    });
  }();
  circuit.append_circuit(qpe);
  return circuit;
}

/// Trotter-on-CSR: the Pauli decomposition is read straight off the sparse
/// structure (pauli_decompose's CSR overload), so the scaled Laplacian is
/// never densified on the way to the Fig. 7 circuit — the Trotter backend
/// now rides the sparse spine like the operator oracle does.
Circuit build_estimator_circuit_trotter_sparse(
    const SparseScaledHamiltonian& scaled, const EstimatorOptions& options,
    bool with_purification) {
  const QpeLayout layout =
      make_layout(options, scaled.num_qubits, with_purification);
  QTDA_REQUIRE(layout.total() <= 30,
               "register of " << layout.total()
                              << " qubits exceeds the state-vector budget");
  Circuit circuit(layout.total());
  if (with_purification) {
    append_mixed_state_preparation(circuit, layout.ancilla_wires(),
                                   layout.system_wires());
  }
  circuit.append_circuit(
      build_trotter_qpe(pauli_decompose(scaled.matrix), options, layout));
  return circuit;
}

/// Sparse-oracle variant: the controlled powers are matrix-free operator
/// gates applying exp(i·p·H) by Chebyshev expansion — no 2^q×2^q matrix is
/// ever formed, so the budget is the state-vector width itself.
Circuit build_estimator_circuit_sparse(const SparseScaledHamiltonian& scaled,
                                       const EstimatorOptions& options,
                                       bool with_purification) {
  const QpeLayout layout =
      make_layout(options, scaled.num_qubits, with_purification);
  QTDA_REQUIRE(layout.total() <= 30,
               "register of " << layout.total()
                              << " qubits exceeds the state-vector budget");

  Circuit circuit(layout.total());
  if (with_purification) {
    append_mixed_state_preparation(circuit, layout.ancilla_wires(),
                                   layout.system_wires());
  }
  // All t controlled powers share one CSR copy of H; each operator owns
  // only its Chebyshev coefficients.
  const auto shared_h = std::make_shared<const SparseMatrix>(scaled.matrix);
  circuit.append_circuit(build_qpe_circuit_sparse(
      layout, [&](std::uint64_t power) -> std::shared_ptr<const LinearOperator> {
        return std::make_shared<SparseExpOperator>(
            shared_h, static_cast<double>(power), scaled.spectrum_min(),
            scaled.spectrum_max());
      }));
  return circuit;
}

/// Executes a compiled plan through the configured simulator backend and
/// fills the shot-dependent fields of the estimate.  Shared by the cold
/// (compile-then-run) and served (cached-plan) paths — which is what makes
/// the two bit-identical by construction.
void execute_plan_estimate(BettiEstimate& estimate, const ExecutionPlan& plan,
                           const QpeLayout& layout,
                           const EstimatorOptions& options, bool purify,
                           Rng& rng) {
  // The whole shot-execution stage: state preparation, plan evolution(s)
  // and sampling.  Per-op-kind time inside the evolutions lands in the
  // exec.ns.* counters (see for_each_plan_op_accounted).
  QTDA_SPAN("evolve");
  QTDA_COUNTER_ADD("estimator.estimates", 1);
  QTDA_COUNTER_ADD("estimator.shots", options.shots);
  const std::vector<std::size_t> measured = layout.precision_wires();
  const std::unique_ptr<SimulatorBackend> backend =
      make_simulator(options.simulator, plan.num_qubits(),
                     options.simulator_shards, options.precision);

  // Noisy evolution runs through the backend's own channel semantics
  // (run_noisy_trajectory's error placement and RNG consumption order).
  // Exact-channel backends (density matrix) evolve the whole ensemble in
  // one pass, so every shot can be drawn from that single evolution instead
  // of paying one trajectory per shot.
  const bool exact_channels = backend->exact_channels();

  // Trajectory execution pays one plan walk per shot; exact channels and
  // noiseless runs evolve once regardless of the shot count.
  if (!options.noise.is_noiseless() && !exact_channels)
    QTDA_COUNTER_ADD("estimator.trajectories", options.shots);

  if (purify) {
    if (options.noise.is_noiseless()) {
      backend->prepare_basis_state(0);
      backend->apply_plan(plan);
      QTDA_SPAN("sample");
      estimate.zero_counts = backend->sample(measured, options.shots, rng)[0];
    } else if (exact_channels) {
      backend->prepare_basis_state(0);
      backend->apply_plan_with_noise(plan, options.noise, rng);
      estimate.zero_counts = backend->sample(measured, options.shots, rng)[0];
    } else {
      std::uint64_t zeros = 0;
      for (std::size_t shot = 0; shot < options.shots; ++shot) {
        cancel::checkpoint();  // between trajectories: one shot = one plan walk
        backend->prepare_basis_state(0);
        backend->apply_plan_with_noise(plan, options.noise, rng);
        zeros += backend->sample(measured, 1, rng)[0];
      }
      estimate.zero_counts = zeros;
    }
    return;
  }

  // Sampled-basis mixture: distribute shots uniformly over the 2^q basis
  // states, then run one evolution per occupied state.
  const std::uint64_t dim = std::uint64_t{1} << layout.system_qubits;
  const std::vector<double> uniform(dim, 1.0);
  const auto shots_per_state = multinomial_sample(uniform, options.shots, rng);
  const std::size_t shift =
      plan.num_qubits() - layout.precision_qubits - layout.system_qubits;
  std::uint64_t zeros = 0;
  for (std::uint64_t basis = 0; basis < dim; ++basis) {
    const std::uint64_t s = shots_per_state[basis];
    if (s == 0) continue;
    cancel::checkpoint();  // between per-basis evolutions
    // System register holds |basis⟩: it occupies wires [t, t+q) which are
    // the top bits below the precision block.
    const std::uint64_t initial = basis << shift;
    if (options.noise.is_noiseless()) {
      backend->prepare_basis_state(initial);
      backend->apply_plan(plan);
      zeros += backend->sample(measured, s, rng)[0];
    } else if (exact_channels) {
      backend->prepare_basis_state(initial);
      backend->apply_plan_with_noise(plan, options.noise, rng);
      zeros += backend->sample(measured, s, rng)[0];
    } else {
      for (std::uint64_t shot = 0; shot < s; ++shot) {
        Rng traj_rng = rng.split(shot * dim + basis);
        backend->prepare_basis_state(initial);
        backend->apply_plan_with_noise(plan, options.noise, traj_rng);
        zeros += backend->sample(measured, 1, rng)[0];
      }
    }
  }
  estimate.zero_counts = zeros;
}

/// Circuit-level convenience: compile once, then execute.  Every shot
/// batch, sampled-basis state and noise trajectory reuses the one plan
/// (fused sweeps, precomputed masks/offsets, persistent scratch).  Noisy
/// runs compile with noise slots preserved so the error placement and RNG
/// draw order match the uncompiled walk exactly.
void execute_circuit_estimate(BettiEstimate& estimate, const Circuit& circuit,
                              const QpeLayout& layout,
                              const EstimatorOptions& options, bool purify,
                              Rng& rng) {
  estimate.total_qubits = circuit.num_qubits();
  estimate.circuit_gates = circuit.gate_count();
  estimate.circuit_depth = circuit.depth();
  const ExecutionPlan plan =
      compile_circuit(circuit, estimator_compiler_options(options.noise));
  execute_plan_estimate(estimate, plan, layout, options, purify, rng);
}

/// Finalizes p̂(0) → β̃ from the accumulated zero counts.
void finalize_estimate(BettiEstimate& estimate,
                       const EstimatorOptions& options, std::uint64_t dim) {
  estimate.zero_probability = static_cast<double>(estimate.zero_counts) /
                              static_cast<double>(options.shots);
  estimate.estimated_betti =
      static_cast<double>(dim) * estimate.zero_probability;
  estimate.rounded_betti = static_cast<std::size_t>(
      std::llround(std::max(estimate.estimated_betti, 0.0)));
}

void validate_options(const EstimatorOptions& options) {
  QTDA_REQUIRE(options.shots > 0, "estimator needs at least one shot");
  QTDA_REQUIRE(options.precision_qubits >= 1,
               "estimator needs at least one precision qubit");
}

SparseMatrix dense_to_sparse(const RealMatrix& m) {
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m(i, j) != 0.0) triplets.push_back({i, j, m(i, j)});
  return SparseMatrix::from_triplets(m.rows(), m.cols(), std::move(triplets));
}

}  // namespace

CompilerOptions estimator_compiler_options(const NoiseModel& noise) {
  CompilerOptions options = compiler_options_from_env();
  options.preserve_noise_slots = !noise.is_noiseless();
  return options;
}

Circuit build_qtda_circuit(const RealMatrix& laplacian,
                           const EstimatorOptions& options) {
  QTDA_REQUIRE(options.backend != EstimatorBackend::kAnalytic,
               "the analytic backend has no circuit; pick a circuit backend");
  const double delta = options.delta > 0.0 ? options.delta : default_delta();
  const bool purify = options.mixed_state == MixedStateMode::kPurification;
  if (options.backend == EstimatorBackend::kCircuitSparse) {
    const SparsePaddedLaplacian padded =
        pad_laplacian_sparse(dense_to_sparse(laplacian), options.padding);
    return build_estimator_circuit_sparse(
        rescale_laplacian_sparse(padded, delta), options, purify);
  }
  const PaddedLaplacian padded = pad_laplacian(laplacian, options.padding);
  const ScaledHamiltonian scaled = rescale_laplacian(padded, delta);
  return build_estimator_circuit(scaled, options, purify);
}

Circuit build_qtda_circuit(const SparseMatrix& laplacian,
                           const EstimatorOptions& options) {
  QTDA_REQUIRE(options.backend == EstimatorBackend::kCircuitSparse ||
                   options.backend == EstimatorBackend::kCircuitTrotter,
               "the sparse circuit builder supports kCircuitSparse and "
               "kCircuitTrotter; the other backends need the dense matrix — "
               "use the dense overload");
  const double delta = options.delta > 0.0 ? options.delta : default_delta();
  const bool purify = options.mixed_state == MixedStateMode::kPurification;
  const SparsePaddedLaplacian padded =
      pad_laplacian_sparse(laplacian, options.padding);
  const SparseScaledHamiltonian scaled =
      rescale_laplacian_sparse(padded, delta);
  return options.backend == EstimatorBackend::kCircuitSparse
             ? build_estimator_circuit_sparse(scaled, options, purify)
             : build_estimator_circuit_trotter_sparse(scaled, options, purify);
}

BettiEstimate estimate_betti_from_laplacian(const RealMatrix& laplacian,
                                            const EstimatorOptions& options) {
  if (options.backend == EstimatorBackend::kCircuitSparse) {
    // The sparse entry point is the native path; converting a small dense
    // Laplacian costs nothing next to the simulation.
    return estimate_betti_from_sparse_laplacian(dense_to_sparse(laplacian),
                                                options);
  }
  validate_options(options);

  const PaddedLaplacian padded = pad_laplacian(laplacian, options.padding);
  const double delta = options.delta > 0.0 ? options.delta : default_delta();
  const ScaledHamiltonian scaled = rescale_laplacian(padded, delta);

  BettiEstimate estimate;
  estimate.shots = options.shots;
  estimate.system_qubits = scaled.num_qubits;
  estimate.precision_qubits = options.precision_qubits;
  estimate.lambda_max = scaled.lambda_max;
  estimate.delta = delta;

  // Analytic reference p(0) of the exact H (used by every backend as the
  // ground-truth probability; the Trotter backend will deviate from it by
  // its splitting error).
  const RealVector eigenvalues = symmetric_eigenvalues(scaled.matrix);
  estimate.exact_zero_probability =
      analytic_zero_probability(eigenvalues, options.precision_qubits);

  Rng rng(options.seed);
  const std::uint64_t dim = std::uint64_t{1} << scaled.num_qubits;
  const bool purify = options.mixed_state == MixedStateMode::kPurification;

  if (options.backend == EstimatorBackend::kAnalytic) {
    estimate.zero_counts = sample_zero_counts(
        estimate.exact_zero_probability, options.shots, rng);
    estimate.total_qubits = options.precision_qubits + scaled.num_qubits +
                            (purify ? scaled.num_qubits : 0);
  } else {
    const Circuit circuit = build_estimator_circuit(scaled, options, purify);
    const QpeLayout layout = make_layout(options, scaled.num_qubits, purify);
    execute_circuit_estimate(estimate, circuit, layout, options, purify, rng);
  }
  finalize_estimate(estimate, options, dim);
  return estimate;
}

CompiledEstimate compile_betti_estimate(const SparseMatrix& laplacian,
                                        const EstimatorOptions& options) {
  // Covers padding/rescaling, the diagnostic eigensolve, circuit synthesis
  // and plan compilation (compile_circuit nests its own "compile" span).
  QTDA_SPAN("compile_estimate");
  QTDA_REQUIRE(options.backend == EstimatorBackend::kCircuitSparse ||
                   options.backend == EstimatorBackend::kCircuitTrotter,
               "compile_betti_estimate serves the plan-based circuit "
               "backends (kCircuitSparse, kCircuitTrotter)");
  validate_options(options);

  const SparsePaddedLaplacian padded =
      pad_laplacian_sparse(laplacian, options.padding);
  const double delta = options.delta > 0.0 ? options.delta : default_delta();
  const SparseScaledHamiltonian scaled =
      rescale_laplacian_sparse(padded, delta);

  CompiledEstimate compiled;
  compiled.backend = options.backend;
  compiled.system_qubits = scaled.num_qubits;
  compiled.lambda_max = scaled.lambda_max;
  compiled.delta = delta;

  const std::uint64_t dim = std::uint64_t{1} << scaled.num_qubits;
  if (dim <= options.exact_reference_max_dim) {
    // Diagnostic dense eigensolve, feasible only at small q; the estimate
    // itself is matrix-free.
    const RealVector eigenvalues =
        symmetric_eigenvalues(scaled.matrix.to_dense());
    compiled.exact_zero_probability =
        analytic_zero_probability(eigenvalues, options.precision_qubits);
  }

  compiled.purify = options.mixed_state == MixedStateMode::kPurification;
  const Circuit circuit =
      options.backend == EstimatorBackend::kCircuitSparse
          ? build_estimator_circuit_sparse(scaled, options, compiled.purify)
          : build_estimator_circuit_trotter_sparse(scaled, options,
                                                   compiled.purify);
  compiled.layout = make_layout(options, scaled.num_qubits, compiled.purify);
  compiled.total_qubits = circuit.num_qubits();
  compiled.circuit_gates = circuit.gate_count();
  compiled.circuit_depth = circuit.depth();
  compiled.plan = std::make_shared<const ExecutionPlan>(
      compile_circuit(circuit, estimator_compiler_options(options.noise)));
  return compiled;
}

BettiEstimate estimate_betti_with_plan(const CompiledEstimate& compiled,
                                       const EstimatorOptions& options) {
  validate_options(options);
  QTDA_REQUIRE(compiled.plan != nullptr, "CompiledEstimate carries no plan");
  QTDA_REQUIRE(options.backend == compiled.backend,
               "estimate options switched circuit backend after compilation");
  QTDA_REQUIRE(options.precision_qubits == compiled.layout.precision_qubits,
               "estimate options changed the precision register after "
               "compilation");
  QTDA_REQUIRE((options.mixed_state == MixedStateMode::kPurification) ==
                   compiled.purify,
               "estimate options changed the mixed-state mode after "
               "compilation");
  QTDA_REQUIRE(options.noise.is_noiseless() ||
                   compiled.plan->preserves_noise_slots(),
               "noisy execution needs a plan compiled with noise slots "
               "preserved");

  BettiEstimate estimate;
  estimate.shots = options.shots;
  estimate.system_qubits = compiled.system_qubits;
  estimate.precision_qubits = options.precision_qubits;
  estimate.lambda_max = compiled.lambda_max;
  estimate.delta = compiled.delta;
  estimate.exact_zero_probability = compiled.exact_zero_probability;
  estimate.total_qubits = compiled.total_qubits;
  estimate.circuit_gates = compiled.circuit_gates;
  estimate.circuit_depth = compiled.circuit_depth;

  Rng rng(options.seed);
  execute_plan_estimate(estimate, *compiled.plan, compiled.layout, options,
                        compiled.purify, rng);
  finalize_estimate(estimate, options,
                    std::uint64_t{1} << compiled.system_qubits);
  return estimate;
}

std::vector<BettiEstimate> estimate_betti_batch(
    const CompiledEstimate& compiled,
    const std::vector<EstimatorOptions>& requests) {
  QTDA_REQUIRE(!requests.empty(), "estimate_betti_batch needs requests");
  QTDA_REQUIRE(compiled.plan != nullptr, "CompiledEstimate carries no plan");
  QTDA_REQUIRE(compiled.purify,
               "batched execution needs purification circuits (the "
               "sampled-basis mixture draws its basis states per request)");
  const EstimatorOptions& first = requests.front();
  for (const EstimatorOptions& options : requests) {
    validate_options(options);
    QTDA_REQUIRE(options.noise.is_noiseless(),
                 "batched execution shares one evolution; noise makes the "
                 "evolution request-dependent");
    QTDA_REQUIRE(options.backend == compiled.backend &&
                     options.precision_qubits ==
                         compiled.layout.precision_qubits &&
                     options.mixed_state == MixedStateMode::kPurification,
                 "batched request is not plan-compatible");
    QTDA_REQUIRE(options.simulator == first.simulator &&
                     options.simulator_shards == first.simulator_shards &&
                     options.precision == first.precision,
                 "batched requests must share the simulation engine");
  }

  // One deterministic evolution...
  const std::unique_ptr<SimulatorBackend> backend =
      make_simulator(first.simulator, compiled.plan->num_qubits(),
                     first.simulator_shards, first.precision);
  {
    QTDA_SPAN("evolve");
    backend->prepare_basis_state(0);
    backend->apply_plan(*compiled.plan);
  }
  QTDA_COUNTER_ADD("estimator.estimates", requests.size());

  // ...then per-request sampling, each from its own seed exactly as the
  // serial path would (sampling reads the final probabilities and never
  // perturbs the register, so request order cannot leak between requests).
  const std::vector<std::size_t> measured = compiled.layout.precision_wires();
  QTDA_SPAN("sample");
  std::vector<BettiEstimate> estimates;
  estimates.reserve(requests.size());
  for (const EstimatorOptions& options : requests) {
    QTDA_COUNTER_ADD("estimator.shots", options.shots);
    BettiEstimate estimate;
    estimate.shots = options.shots;
    estimate.system_qubits = compiled.system_qubits;
    estimate.precision_qubits = options.precision_qubits;
    estimate.lambda_max = compiled.lambda_max;
    estimate.delta = compiled.delta;
    estimate.exact_zero_probability = compiled.exact_zero_probability;
    estimate.total_qubits = compiled.total_qubits;
    estimate.circuit_gates = compiled.circuit_gates;
    estimate.circuit_depth = compiled.circuit_depth;
    Rng rng(options.seed);
    estimate.zero_counts = backend->sample(measured, options.shots, rng)[0];
    finalize_estimate(estimate, options,
                      std::uint64_t{1} << compiled.system_qubits);
    estimates.push_back(estimate);
  }
  return estimates;
}

BettiEstimate estimate_betti_from_sparse_laplacian(
    const SparseMatrix& laplacian, const EstimatorOptions& options) {
  if (options.backend != EstimatorBackend::kCircuitSparse &&
      options.backend != EstimatorBackend::kCircuitTrotter) {
    // The analytic and dense-oracle backends need the dense matrix anyway
    // (eigensolve), so densify up front.  kCircuitTrotter stays sparse: its
    // Pauli decomposition reads CSR directly.
    return estimate_betti_from_laplacian(laplacian.to_dense(), options);
  }
  // Compile + execute: the same two halves the serving layer's plan cache
  // splits across requests, so served estimates are bit-identical to this
  // cold path by construction.
  return estimate_betti_with_plan(compile_betti_estimate(laplacian, options),
                                  options);
}

BettiEstimate estimate_betti(const SimplicialComplex& complex, int k,
                             const EstimatorOptions& options) {
  if (complex.count(k) == 0) {
    BettiEstimate empty;
    empty.shots = options.shots;
    empty.precision_qubits = options.precision_qubits;
    return empty;
  }
  if (options.backend == EstimatorBackend::kCircuitSparse ||
      options.backend == EstimatorBackend::kCircuitTrotter) {
    // CSR end to end: the dense |S_k|×|S_k| Laplacian is never formed (the
    // Trotter backend decomposes into Pauli strings straight from CSR).
    return estimate_betti_from_sparse_laplacian(
        sparse_combinatorial_laplacian(complex, k), options);
  }
  return estimate_betti_from_laplacian(combinatorial_laplacian(complex, k),
                                       options);
}

}  // namespace qtda
