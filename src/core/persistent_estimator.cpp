#include "core/persistent_estimator.hpp"

#include "common/error.hpp"
#include "topology/persistent_laplacian.hpp"

namespace qtda {

BettiEstimate estimate_persistent_betti(const SimplicialComplex& sub,
                                        const SimplicialComplex& super,
                                        int k,
                                        const EstimatorOptions& options) {
  if (sub.count(k) == 0) {
    BettiEstimate empty;
    empty.shots = options.shots;
    empty.precision_qubits = options.precision_qubits;
    return empty;
  }
  if (options.backend == EstimatorBackend::kCircuitSparse) {
    // CSR end to end: Δ_k^{K,L} is assembled sparse and handed to the
    // matrix-free oracle without a dense |S_k|×|S_k| detour.
    return estimate_betti_from_sparse_laplacian(
        sparse_persistent_laplacian(sub, super, k), options);
  }
  return estimate_betti_from_laplacian(persistent_laplacian(sub, super, k),
                                       options);
}

BettiEstimate estimate_persistent_betti(const Filtration& filtration, int k,
                                        double birth_scale,
                                        double death_scale,
                                        const EstimatorOptions& options) {
  QTDA_REQUIRE(birth_scale <= death_scale,
               "persistent Betti needs birth scale <= death scale");
  return estimate_persistent_betti(filtration.complex_at(birth_scale),
                                   filtration.complex_at(death_scale), k,
                                   options);
}

}  // namespace qtda
