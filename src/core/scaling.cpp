#include "core/scaling.hpp"

#include "common/error.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/types.hpp"

namespace qtda {

double default_delta() { return 0.95 * kTwoPi; }

double ScaledHamiltonian::eigenvalue_to_phase(double lambda) const {
  return lambda * scale / kTwoPi;
}

ScaledHamiltonian rescale_laplacian(const PaddedLaplacian& padded,
                                    double delta) {
  QTDA_REQUIRE(delta > 0.0 && delta <= kTwoPi,
               "delta must lie in (0, 2π], got " << delta);
  ScaledHamiltonian out;
  out.delta = delta;
  out.lambda_max = padded.lambda_max;
  out.scale = delta / padded.lambda_max;
  out.num_qubits = padded.num_qubits;
  out.original_dim = padded.original_dim;
  out.matrix = scale(padded.matrix, out.scale);
  return out;
}

double SparseScaledHamiltonian::eigenvalue_to_phase(double lambda) const {
  return lambda * scale / kTwoPi;
}

SparseScaledHamiltonian rescale_laplacian_sparse(
    const SparsePaddedLaplacian& padded, double delta) {
  QTDA_REQUIRE(delta > 0.0 && delta <= kTwoPi,
               "delta must lie in (0, 2π], got " << delta);
  SparseScaledHamiltonian out;
  out.delta = delta;
  out.lambda_max = padded.lambda_max;
  out.scale = delta / padded.lambda_max;
  out.num_qubits = padded.num_qubits;
  out.original_dim = padded.original_dim;
  out.matrix = padded.matrix.scaled(out.scale);
  return out;
}

}  // namespace qtda
