/// \file scaling.hpp
/// \brief Spectral rescaling of the padded Laplacian (paper Eq. 8–9).
///
/// QPE phases live on the unit circle, so eigenvalues must fit [0, 2π).
/// The padded Laplacian is multiplied by δ/λ̃max with δ slightly below 2π;
/// the paper's worked example uses δ = λ̃max (= 6 < 2π) so that H = Δ̃
/// exactly — both choices are expressible here.
#pragma once

#include "core/padding.hpp"
#include "linalg/dense_matrix.hpp"

namespace qtda {

/// The rescaled Hamiltonian H = (δ/λ̃max)·Δ̃ plus bookkeeping.
struct ScaledHamiltonian {
  RealMatrix matrix;        ///< H, acting on num_qubits qubits
  double delta = 0.0;       ///< δ used
  double scale = 0.0;       ///< δ/λ̃max
  std::size_t num_qubits = 0;
  std::size_t original_dim = 0;
  double lambda_max = 0.0;

  /// Maps an eigenvalue λ of the *original* Laplacian to the QPE phase
  /// θ = λ·scale/2π ∈ [0, 1).
  double eigenvalue_to_phase(double lambda) const;
};

/// Default δ: 95% of 2π keeps the top of the spectrum clear of wraparound
/// even when Gershgorin is tight.
double default_delta();

/// Rescales a padded Laplacian.  \p delta must lie in (0, 2π].
ScaledHamiltonian rescale_laplacian(const PaddedLaplacian& padded,
                                    double delta = default_delta());

/// Sparse counterpart: H stays in CSR for the matrix-free exponential
/// action.  Because the Laplacian is PSD and Gershgorin-bounded by λ̃max,
/// the scaled spectrum is certified inside [0, δ] with no eigensolve —
/// exactly the bounds the Chebyshev expansion needs.
struct SparseScaledHamiltonian {
  SparseMatrix matrix = SparseMatrix(0, 0);  ///< H, acting on num_qubits qubits
  double delta = 0.0;       ///< δ used
  double scale = 0.0;       ///< δ/λ̃max
  std::size_t num_qubits = 0;
  std::size_t original_dim = 0;
  double lambda_max = 0.0;

  /// Certified spectral bounds of H (inputs to the Chebyshev oracle).
  double spectrum_min() const { return 0.0; }
  double spectrum_max() const { return delta; }

  /// Maps an eigenvalue λ of the *original* Laplacian to the QPE phase
  /// θ = λ·scale/2π ∈ [0, 1).
  double eigenvalue_to_phase(double lambda) const;
};

/// Rescales a sparse padded Laplacian.  \p delta must lie in (0, 2π].
SparseScaledHamiltonian rescale_laplacian_sparse(
    const SparsePaddedLaplacian& padded, double delta = default_delta());

}  // namespace qtda
