#include "core/analytic_qpe.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "quantum/qpe.hpp"
#include "quantum/types.hpp"

namespace qtda {

double analytic_zero_probability(const RealVector& hamiltonian_eigenvalues,
                                 std::size_t precision_qubits) {
  QTDA_REQUIRE(!hamiltonian_eigenvalues.empty(), "no eigenvalues given");
  double total = 0.0;
  for (double lambda : hamiltonian_eigenvalues) {
    const double theta = lambda / kTwoPi;
    total += qpe_zero_probability(theta, precision_qubits);
  }
  return total / static_cast<double>(hamiltonian_eigenvalues.size());
}

std::vector<double> analytic_outcome_distribution(
    const RealVector& hamiltonian_eigenvalues, std::size_t precision_qubits) {
  QTDA_REQUIRE(!hamiltonian_eigenvalues.empty(), "no eigenvalues given");
  const std::uint64_t outcomes = std::uint64_t{1} << precision_qubits;
  std::vector<double> distribution(outcomes, 0.0);
  const double weight =
      1.0 / static_cast<double>(hamiltonian_eigenvalues.size());
  for (double lambda : hamiltonian_eigenvalues) {
    const double theta = lambda / kTwoPi;
    for (std::uint64_t m = 0; m < outcomes; ++m) {
      distribution[m] +=
          weight * qpe_outcome_probability(theta, m, precision_qubits);
    }
  }
  return distribution;
}

std::uint64_t sample_zero_counts(double p0, std::size_t shots, Rng& rng) {
  QTDA_REQUIRE(p0 >= -1e-12 && p0 <= 1.0 + 1e-12,
               "probability out of range: " << p0);
  return rng.binomial(shots, std::clamp(p0, 0.0, 1.0));
}

}  // namespace qtda
