#include "core/padding.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {

PaddedLaplacian pad_laplacian(const RealMatrix& laplacian,
                              PaddingScheme scheme) {
  QTDA_REQUIRE(laplacian.is_square() && laplacian.rows() > 0,
               "padding needs a non-empty square matrix");
  QTDA_REQUIRE(is_symmetric(laplacian, 1e-9),
               "combinatorial Laplacian must be symmetric");

  PaddedLaplacian out;
  out.original_dim = laplacian.rows();
  out.scheme = scheme;

  std::size_t q = 0;
  while ((std::size_t{1} << q) < out.original_dim) ++q;
  q = std::max<std::size_t>(q, 1);  // at least one system qubit
  out.num_qubits = q;
  const std::size_t dim = std::size_t{1} << q;

  // λ̃max via Gershgorin; floored so a zero Laplacian still separates the
  // padding block from the kernel.
  out.lambda_max = std::max(gershgorin_max(laplacian), 1.0);

  out.matrix = RealMatrix(dim, dim);
  for (std::size_t i = 0; i < out.original_dim; ++i)
    for (std::size_t j = 0; j < out.original_dim; ++j)
      out.matrix(i, j) = laplacian(i, j);
  if (scheme == PaddingScheme::kIdentityHalfLambdaMax) {
    for (std::size_t i = out.original_dim; i < dim; ++i)
      out.matrix(i, i) = out.lambda_max / 2.0;
  }
  return out;
}

}  // namespace qtda
