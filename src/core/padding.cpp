#include "core/padding.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {

namespace {

/// q = ⌈log2 dim⌉ floored at 1 (QPE needs a system qubit).
std::size_t padded_qubits(std::size_t dim) {
  std::size_t q = 0;
  while ((std::size_t{1} << q) < dim) ++q;
  return std::max<std::size_t>(q, 1);
}

/// CSR symmetry check without densifying.  A and Aᵀ share the canonical
/// sorted from_triplets ordering, so a per-row two-pointer merge compares
/// |a_ij − a_ji| within tolerance; entries stored on only one side count as
/// zero on the other (matching the dense is_symmetric semantics — a tiny
/// one-sided entry must not reject what the dense path accepts).
bool sparse_is_symmetric(const SparseMatrix& a, double tolerance) {
  const SparseMatrix t = a.transposed();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::size_t ka = a.row_offsets()[r], kt = t.row_offsets()[r];
    const std::size_t ea = a.row_offsets()[r + 1];
    const std::size_t et = t.row_offsets()[r + 1];
    while (ka < ea || kt < et) {
      const std::size_t ca =
          ka < ea ? a.col_indices()[ka] : a.cols();
      const std::size_t ct =
          kt < et ? t.col_indices()[kt] : t.cols();
      double va = 0.0, vt = 0.0;
      if (ca <= ct) va = a.values()[ka++];
      if (ct <= ca) vt = t.values()[kt++];
      if (std::abs(va - vt) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace

PaddedLaplacian pad_laplacian(const RealMatrix& laplacian,
                              PaddingScheme scheme) {
  QTDA_REQUIRE(laplacian.is_square() && laplacian.rows() > 0,
               "padding needs a non-empty square matrix");
  QTDA_REQUIRE(is_symmetric(laplacian, 1e-9),
               "combinatorial Laplacian must be symmetric");

  PaddedLaplacian out;
  out.original_dim = laplacian.rows();
  out.scheme = scheme;

  const std::size_t q = padded_qubits(out.original_dim);
  out.num_qubits = q;
  const std::size_t dim = std::size_t{1} << q;

  // λ̃max via Gershgorin; floored so a zero Laplacian still separates the
  // padding block from the kernel.
  out.lambda_max = std::max(gershgorin_max(laplacian), 1.0);

  out.matrix = RealMatrix(dim, dim);
  for (std::size_t i = 0; i < out.original_dim; ++i)
    for (std::size_t j = 0; j < out.original_dim; ++j)
      out.matrix(i, j) = laplacian(i, j);
  if (scheme == PaddingScheme::kIdentityHalfLambdaMax) {
    for (std::size_t i = out.original_dim; i < dim; ++i)
      out.matrix(i, i) = out.lambda_max / 2.0;
  }
  return out;
}

SparsePaddedLaplacian pad_laplacian_sparse(const SparseMatrix& laplacian,
                                           PaddingScheme scheme) {
  QTDA_REQUIRE(laplacian.rows() == laplacian.cols() && laplacian.rows() > 0,
               "padding needs a non-empty square matrix");
  QTDA_REQUIRE(sparse_is_symmetric(laplacian, 1e-9),
               "combinatorial Laplacian must be symmetric");

  SparsePaddedLaplacian out;
  out.original_dim = laplacian.rows();
  out.scheme = scheme;
  out.num_qubits = padded_qubits(out.original_dim);
  const std::size_t dim = std::size_t{1} << out.num_qubits;
  out.lambda_max = std::max(gershgorin_max(laplacian), 1.0);

  std::vector<Triplet> triplets;
  triplets.reserve(laplacian.nonzeros() + (dim - out.original_dim));
  const auto& offsets = laplacian.row_offsets();
  const auto& cols = laplacian.col_indices();
  const auto& vals = laplacian.values();
  for (std::size_t r = 0; r < laplacian.rows(); ++r)
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
      triplets.push_back({r, cols[k], vals[k]});
  if (scheme == PaddingScheme::kIdentityHalfLambdaMax) {
    for (std::size_t i = out.original_dim; i < dim; ++i)
      triplets.push_back({i, i, out.lambda_max / 2.0});
  }
  out.matrix = SparseMatrix::from_triplets(dim, dim, std::move(triplets));
  return out;
}

}  // namespace qtda
