#include "core/analysis.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/analytic_qpe.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "quantum/types.hpp"

namespace qtda {

EstimatorErrorAnalysis analyze_estimator_error(const RealMatrix& laplacian,
                                               std::size_t precision_qubits,
                                               double delta,
                                               PaddingScheme padding,
                                               double kernel_tolerance) {
  QTDA_REQUIRE(precision_qubits >= 1, "need at least one precision qubit");
  const PaddedLaplacian padded = pad_laplacian(laplacian, padding);
  const double used_delta = delta > 0.0 ? delta : default_delta();
  const ScaledHamiltonian scaled = rescale_laplacian(padded, used_delta);
  const RealVector eigenvalues = symmetric_eigenvalues(scaled.matrix);

  EstimatorErrorAnalysis analysis;
  analysis.system_qubits = scaled.num_qubits;
  const double dim = std::pow(2.0, static_cast<double>(scaled.num_qubits));

  // Kernel count and spectral gap on the *scaled* spectrum; the scaled
  // kernel tolerance follows the rescaling factor.
  const double scaled_tolerance = kernel_tolerance * scaled.scale;
  double gap_phase = 1.0;
  for (double lambda : eigenvalues) {
    if (std::abs(lambda) <= scaled_tolerance) {
      ++analysis.kernel_dimension;
    } else {
      gap_phase = std::min(gap_phase, std::abs(lambda) / kTwoPi);
    }
  }
  analysis.spectral_gap_phase =
      analysis.kernel_dimension == eigenvalues.size() ? 0.0 : gap_phase;

  analysis.ideal_zero_probability =
      static_cast<double>(analysis.kernel_dimension) / dim;
  analysis.exact_zero_probability =
      analytic_zero_probability(eigenvalues, precision_qubits);
  analysis.leakage =
      analysis.exact_zero_probability - analysis.ideal_zero_probability;
  analysis.betti_bias = dim * analysis.leakage;
  return analysis;
}

std::size_t recommended_precision_qubits(const RealMatrix& laplacian,
                                         double max_bias, double delta,
                                         std::size_t max_precision) {
  QTDA_REQUIRE(max_bias > 0.0, "bias target must be positive");
  QTDA_REQUIRE(max_precision >= 1, "max_precision must be >= 1");
  for (std::size_t t = 1; t <= max_precision; ++t) {
    const auto analysis = analyze_estimator_error(laplacian, t, delta);
    if (analysis.betti_bias <= max_bias) return t;
  }
  QTDA_REQUIRE(false, "bias target " << max_bias << " unreachable with "
                                     << max_precision << " precision qubits");
  return max_precision;
}

}  // namespace qtda
