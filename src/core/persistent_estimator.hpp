/// \file persistent_estimator.hpp
/// \brief Quantum estimation of *persistent* Betti numbers.
///
/// The paper's conclusion singles out persistent Betti numbers — invariant
/// to the grouping-scale choice — as the natural next step.  The persistent
/// Laplacian Δ_k^{b,d} (topology/persistent_laplacian.hpp) is symmetric
/// positive semidefinite with kernel dimension β_k^{b,d}, so the *entire*
/// QPE pipeline of the paper applies unchanged: pad, rescale, phase-estimate
/// on the maximally mixed state, count zero outcomes.
#pragma once

#include "core/betti_estimator.hpp"
#include "topology/filtration.hpp"

namespace qtda {

/// Estimates β_k^{K,L} for a subcomplex pair K ⊆ L.
BettiEstimate estimate_persistent_betti(const SimplicialComplex& sub,
                                        const SimplicialComplex& super,
                                        int k,
                                        const EstimatorOptions& options);

/// Estimates β_k^{b,d} from a filtration at scales b ≤ d.
BettiEstimate estimate_persistent_betti(const Filtration& filtration, int k,
                                        double birth_scale,
                                        double death_scale,
                                        const EstimatorOptions& options);

}  // namespace qtda
