#include "serve/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "quantum/precision.hpp"

namespace qtda {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= s.size()) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_double(const std::string& token, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  QTDA_REQUIRE(end != nullptr && *end == '\0' && !token.empty(),
               "malformed " << what << " \"" << token << '"');
  return value;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  QTDA_REQUIRE(end != nullptr && *end == '\0' && !token.empty(),
               "malformed " << what << " \"" << token << '"');
  return value;
}

EstimatorBackend backend_from_name(const std::string& name) {
  if (name == "analytic") return EstimatorBackend::kAnalytic;
  if (name == "exact") return EstimatorBackend::kCircuitExact;
  if (name == "sparse") return EstimatorBackend::kCircuitSparse;
  if (name == "trotter") return EstimatorBackend::kCircuitTrotter;
  QTDA_REQUIRE(false, "unknown backend \"" << name
                                           << "\" (valid: analytic, exact, "
                                              "sparse, trotter)");
  return EstimatorBackend::kCircuitSparse;
}

std::string backend_name(EstimatorBackend backend) {
  switch (backend) {
    case EstimatorBackend::kAnalytic: return "analytic";
    case EstimatorBackend::kCircuitExact: return "exact";
    case EstimatorBackend::kCircuitSparse: return "sparse";
    case EstimatorBackend::kCircuitTrotter: return "trotter";
  }
  return "?";
}

std::vector<std::vector<double>> parse_points(const std::string& token) {
  QTDA_REQUIRE(!token.empty(), "estimate request carries no points");
  std::vector<std::vector<double>> points;
  for (const std::string& point : split(token, ';')) {
    std::vector<double> coordinates;
    for (const std::string& coordinate : split(point, ','))
      coordinates.push_back(parse_double(coordinate, "coordinate"));
    QTDA_REQUIRE(!points.empty()
                     ? coordinates.size() == points.front().size()
                     : !coordinates.empty(),
                 "points disagree on dimension");
    points.push_back(std::move(coordinates));
  }
  return points;
}

std::string format_points(const std::vector<std::vector<double>>& points) {
  std::string out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out += ';';
    for (std::size_t d = 0; d < points[i].size(); ++d) {
      if (d > 0) out += ',';
      out += format_double(points[i][d]);
    }
  }
  return out;
}

}  // namespace

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

ServeCommand classify_request_line(const std::string& line) {
  const auto space = line.find(' ');
  const std::string verb = line.substr(0, space);
  if (verb == "estimate") return ServeCommand::kEstimate;
  if (verb == "stats") return ServeCommand::kStats;
  if (verb == "metrics") return ServeCommand::kMetrics;
  if (verb == "ping") return ServeCommand::kPing;
  if (verb == "shutdown") return ServeCommand::kShutdown;
  QTDA_REQUIRE(false, "unknown request verb \"" << verb << '"');
  return ServeCommand::kPing;
}

EstimateRequest parse_request(const std::string& line) {
  QTDA_REQUIRE(classify_request_line(line) == ServeCommand::kEstimate,
               "parse_request expects an estimate line");
  EstimateRequest request;
  request.options.backend = EstimatorBackend::kCircuitSparse;
  bool have_points = false;
  const std::string params = line.size() > 9 ? line.substr(9) : "";
  for (const std::string& token : split(params, ' ')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    QTDA_REQUIRE(eq != std::string::npos, "malformed token \"" << token << '"');
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "id") {
      request.id = value;
    } else if (key == "eps") {
      request.epsilon = parse_double(value, "eps");
    } else if (key == "k") {
      request.k = static_cast<int>(parse_u64(value, "k"));
    } else if (key == "t") {
      request.options.precision_qubits = parse_u64(value, "t");
    } else if (key == "shots") {
      request.options.shots = parse_u64(value, "shots");
    } else if (key == "seed") {
      request.options.seed = parse_u64(value, "seed");
    } else if (key == "delta") {
      request.options.delta = parse_double(value, "delta");
    } else if (key == "backend") {
      request.options.backend = backend_from_name(value);
    } else if (key == "mixed") {
      QTDA_REQUIRE(value == "purify" || value == "sampled",
                   "unknown mixed-state mode \"" << value << '"');
      request.options.mixed_state = value == "purify"
                                        ? MixedStateMode::kPurification
                                        : MixedStateMode::kSampledBasis;
    } else if (key == "simulator") {
      request.options.simulator = simulator_kind_from_name(value);
    } else if (key == "shards") {
      request.options.simulator_shards = parse_u64(value, "shards");
    } else if (key == "precision") {
      request.options.precision = precision_from_name(value);
    } else if (key == "trotter_steps") {
      request.options.trotter.steps = parse_u64(value, "trotter_steps");
    } else if (key == "trotter_order") {
      request.options.trotter.order =
          static_cast<int>(parse_u64(value, "trotter_order"));
    } else if (key == "deadline_ms") {
      request.deadline_ms = parse_u64(value, "deadline_ms");
    } else if (key == "points") {
      request.points = parse_points(value);
      have_points = true;
    } else {
      QTDA_REQUIRE(false, "unknown request key \"" << key << '"');
    }
  }
  QTDA_REQUIRE(have_points, "estimate request carries no points");
  return request;
}

std::string format_request(const EstimateRequest& request) {
  std::ostringstream out;
  out << "estimate id=" << request.id << " eps=" << format_double(request.epsilon)
      << " k=" << request.k << " t=" << request.options.precision_qubits
      << " shots=" << request.options.shots << " seed=" << request.options.seed
      << " backend=" << backend_name(request.options.backend) << " mixed="
      << (request.options.mixed_state == MixedStateMode::kPurification
              ? "purify"
              : "sampled")
      << " simulator=" << simulator_kind_name(request.options.simulator)
      << " shards=" << request.options.simulator_shards
      << " precision=" << precision_name(request.options.precision);
  if (request.options.delta != 0.0)
    out << " delta=" << format_double(request.options.delta);
  if (request.options.backend == EstimatorBackend::kCircuitTrotter)
    out << " trotter_steps=" << request.options.trotter.steps
        << " trotter_order=" << request.options.trotter.order;
  if (request.deadline_ms != 0) out << " deadline_ms=" << request.deadline_ms;
  out << " points=" << format_points(request.points);
  return out.str();
}

std::string format_response(const EstimateResponse& response) {
  std::ostringstream out;
  if (!response.ok) {
    out << "error id=" << response.id;
    if (response.code != ServeErrorCode::kNone) {
      out << " code=" << serve_error_name(response.code)
          << " retryable=" << (response.retryable ? 1 : 0);
      if (response.retry_after_ms != 0)
        out << " retry_after_ms=" << response.retry_after_ms;
    }
    // The message rides as the rest of the line: spaces allowed, newlines
    // are the only forbidden byte in the protocol.
    out << " msg=" << response.error;
    return out.str();
  }
  const BettiEstimate& e = response.estimate;
  out << "ok id=" << response.id << " betti=" << format_double(e.estimated_betti)
      << " rounded=" << e.rounded_betti
      << " p0=" << format_double(e.zero_probability)
      << " exact_p0=" << format_double(e.exact_zero_probability)
      << " zeros=" << e.zero_counts << " shots=" << e.shots
      << " q=" << e.system_qubits << " t=" << e.precision_qubits
      << " width=" << e.total_qubits << " gates=" << e.circuit_gates
      << " depth=" << e.circuit_depth
      << " lambda_max=" << format_double(e.lambda_max)
      << " delta=" << format_double(e.delta)
      << " complex=" << (response.complex_hit ? "hit" : "miss")
      << " laplacian=" << (response.laplacian_hit ? "hit" : "miss")
      << " plan=" << (response.plan_hit ? "hit" : "miss")
      << " batch=" << response.batch_size;
  return out.str();
}

EstimateResponse parse_response(const std::string& line) {
  EstimateResponse response;
  const auto space = line.find(' ');
  const std::string verb = line.substr(0, space);
  if (verb == "error") {
    response.ok = false;
    // Old-style lines carry no code: default to the conservative
    // internal / not-retryable classification.
    response.code = ServeErrorCode::kInternal;
    response.retryable = false;
    const std::string rest = space == std::string::npos ? "" : line.substr(space + 1);
    for (const std::string& token : split(rest, ' ')) {
      if (token.rfind("id=", 0) == 0) {
        response.id = token.substr(3);
      } else if (token.rfind("code=", 0) == 0) {
        response.code = serve_error_from_name(token.substr(5));
      } else if (token.rfind("retryable=", 0) == 0) {
        response.retryable = token.substr(10) == "1";
      } else if (token.rfind("retry_after_ms=", 0) == 0) {
        response.retry_after_ms = parse_u64(token.substr(15), "retry_after_ms");
      } else if (token.rfind("msg=", 0) == 0) {
        // msg= starts the free-text remainder of the line.
        response.error = rest.substr(rest.find("msg=") + 4);
        break;
      }
    }
    return response;
  }
  QTDA_REQUIRE(verb == "ok", "unknown response verb \"" << verb << '"');
  response.ok = true;
  for (const std::string& token :
       split(space == std::string::npos ? "" : line.substr(space + 1), ' ')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    QTDA_REQUIRE(eq != std::string::npos, "malformed token \"" << token << '"');
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    BettiEstimate& e = response.estimate;
    if (key == "id") response.id = value;
    else if (key == "betti") e.estimated_betti = parse_double(value, "betti");
    else if (key == "rounded") e.rounded_betti = parse_u64(value, "rounded");
    else if (key == "p0") e.zero_probability = parse_double(value, "p0");
    else if (key == "exact_p0")
      e.exact_zero_probability = parse_double(value, "exact_p0");
    else if (key == "zeros") e.zero_counts = parse_u64(value, "zeros");
    else if (key == "shots") e.shots = parse_u64(value, "shots");
    else if (key == "q") e.system_qubits = parse_u64(value, "q");
    else if (key == "t") e.precision_qubits = parse_u64(value, "t");
    else if (key == "width") e.total_qubits = parse_u64(value, "width");
    else if (key == "gates") e.circuit_gates = parse_u64(value, "gates");
    else if (key == "depth") e.circuit_depth = parse_u64(value, "depth");
    else if (key == "lambda_max") e.lambda_max = parse_double(value, "lambda_max");
    else if (key == "delta") e.delta = parse_double(value, "delta");
    else if (key == "complex") response.complex_hit = value == "hit";
    else if (key == "laplacian") response.laplacian_hit = value == "hit";
    else if (key == "plan") response.plan_hit = value == "hit";
    else if (key == "batch") response.batch_size = parse_u64(value, "batch");
    else QTDA_REQUIRE(false, "unknown response key \"" << key << '"');
  }
  return response;
}

}  // namespace qtda
