/// \file protocol.hpp
/// \brief The qtda_serve line protocol.
///
/// One request or response per newline-terminated line of space-separated
/// `key=value` tokens — trivially debuggable with `socat` and free of any
/// serialization dependency.  Doubles travel as %.17g, which round-trips
/// every finite IEEE-754 double exactly: the server parses bit-identical
/// parameters to what the client computed, a precondition for the serving
/// layer's bit-identity guarantee.
///
/// Requests:
///   estimate id=7 eps=0.5 k=1 t=4 shots=1000 seed=42 backend=sparse
///            mixed=purify simulator=statevector precision=float64
///            deadline_ms=0 points=0,0;1,0;0.5,0.87
///   stats
///   metrics            (JSON telemetry payload on one line)
///   metrics format=prometheus   (multi-line text ending with "# EOF")
///   ping
///   shutdown
///
/// Responses (matched to requests by id, possibly out of order):
///   ok id=7 betti=1 rounded=1 p0=0.25 exact_p0=0.25 q=2 t=4 shots=1000
///      gates=123 depth=40 complex=hit laplacian=hit plan=miss batch=3
///   error id=7 code=overloaded retryable=1 retry_after_ms=5 msg=...
///
/// Error responses carry a stable code from the serve error taxonomy (see
/// errors.hpp) plus its retryable flag, so clients decide retry-vs-fail
/// without string matching; retry_after_ms appears only when the server
/// suggests a backoff (load shedding).  Parsers tolerate old-style
/// `error id=.. msg=..` lines (code defaults to internal, not retryable).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/betti_estimator.hpp"
#include "serve/errors.hpp"
#include "topology/point_cloud.hpp"

namespace qtda {

/// A parsed `estimate` request.
struct EstimateRequest {
  EstimateRequest() { options.backend = EstimatorBackend::kCircuitSparse; }

  std::string id;             ///< client-chosen correlation token
  double epsilon = 1.0;       ///< Rips grouping scale ε
  int k = 1;                  ///< homology dimension
  EstimatorOptions options;   ///< backend defaults to kCircuitSparse (the
                              ///< serving path; EstimatorOptions' own
                              ///< default is the analytic backend)
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline (queue-time budget)
  std::vector<std::vector<double>> points;
};

/// A response to one request.
struct EstimateResponse {
  std::string id;
  bool ok = false;
  std::string error;          ///< set when !ok (free-text message)
  ServeErrorCode code = ServeErrorCode::kNone;  ///< taxonomy code when !ok
  bool retryable = false;     ///< whether the client may retry (when !ok)
  std::uint64_t retry_after_ms = 0;  ///< backoff hint; 0 = none
  BettiEstimate estimate;     ///< valid when ok
  bool complex_hit = false;
  bool laplacian_hit = false;
  bool plan_hit = false;
  std::size_t batch_size = 1; ///< requests served by the shared execution
};

/// Non-estimate commands a server line can carry.
enum class ServeCommand { kEstimate, kStats, kMetrics, kPing, kShutdown };

/// Classifies a request line; kEstimate lines still need parse_request.
ServeCommand classify_request_line(const std::string& line);

/// Parses an `estimate` line.  Throws Error with a protocol-level message
/// on malformed input (unknown key, bad number, missing points).
EstimateRequest parse_request(const std::string& line);

/// Renders a request (the client half; inverse of parse_request).
std::string format_request(const EstimateRequest& request);

/// Renders / parses a response line.
std::string format_response(const EstimateResponse& response);
EstimateResponse parse_response(const std::string& line);

/// %.17g double rendering shared by protocol and cache keys.
std::string format_double(double value);

}  // namespace qtda
