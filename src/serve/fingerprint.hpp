/// \file fingerprint.hpp
/// \brief Content fingerprints for the serving layer's artifact cache.
///
/// Cache keys must be a pure function of request *content*, not identity:
/// two clients sending the same point cloud have to land on the same Rips
/// complex, Laplacian, and compiled plan.  The fingerprints here are FNV-1a
/// over canonical byte renderings —
///
///  * point clouds hash their IEEE-754 coordinate bytes after the one
///    canonicalization that is arithmetically inert, −0.0 → +0.0 (the two
///    zeros compare equal and behave identically in every distance
///    computation, so collapsing them can never change a result);
///  * simplicial complexes hash their combinatorial structure (per-dimension
///    counts and sorted vertex ids).  Keying the Laplacian and plan caches
///    on the *complex* fingerprint instead of the cloud's is what lets
///    distinct clouds that induce the same ε-complex share everything
///    downstream of the Rips expansion;
///  * sparse matrices hash shape, structure, and value bytes (tests and
///    diagnostics).
///
/// FNV-1a is not cryptographic; keys embed the fingerprint alongside the
/// request parameters, so a collision needs two distinct artifacts with
/// equal 64-bit hashes *and* equal parameter strings — acceptable for a
/// cache whose worst case is a recomputation, and cheap enough to run on
/// every request.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/sparse_matrix.hpp"
#include "topology/point_cloud.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {

/// 64-bit FNV-1a over a byte range.
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Fingerprint of a point cloud's canonicalized coordinates (−0.0 folded
/// into +0.0) plus its shape.
std::uint64_t fingerprint_point_cloud(const PointCloud& cloud);

/// Fingerprint of a complex's combinatorial structure.  Independent of the
/// coordinates that produced it: clouds with identical ε-complexes collide
/// here on purpose.
std::uint64_t fingerprint_complex(const SimplicialComplex& complex);

/// Fingerprint of a CSR matrix (shape, offsets, indices, value bytes).
std::uint64_t fingerprint_sparse_matrix(const SparseMatrix& matrix);

/// 16-hex-digit rendering for embedding fingerprints in cache keys.
std::string fingerprint_hex(std::uint64_t fingerprint);

}  // namespace qtda
