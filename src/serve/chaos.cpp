#include "serve/chaos.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/error.hpp"

namespace qtda {

namespace chaos_detail {

struct Shared {
  mutable Mutex mutex;
  // Transport-global event indices: scripted entries ("drop_read@3") match
  // against these, so a fault scheduled for the Nth read fires exactly once
  // no matter how many connections (or client reconnects) the run sees.
  std::uint64_t reads QTDA_GUARDED_BY(mutex) = 0;
  std::uint64_t writes QTDA_GUARDED_BY(mutex) = 0;
  std::uint64_t accepts QTDA_GUARDED_BY(mutex) = 0;
  ChaosStats stats QTDA_GUARDED_BY(mutex);
};

namespace {

bool is_read_kind(FaultKind kind) {
  return kind == FaultKind::kDropRead || kind == FaultKind::kDelayRead ||
         kind == FaultKind::kCorruptRead;
}

bool is_write_kind(FaultKind kind) {
  return kind == FaultKind::kDropWrite || kind == FaultKind::kTornWrite;
}

/// Scripted entry matching the current event index of the given operation
/// class, if any.  Read/delay/corrupt all consume the read counter; write
/// kinds the write counter; fail_accept the accept counter.
std::optional<FaultKind> scripted_for(const FaultPlan& plan,
                                      std::uint64_t index,
                                      bool (*classify)(FaultKind)) {
  for (const ScriptedFault& entry : plan.script) {
    if (classify(entry.kind) && entry.index == index) return entry.kind;
  }
  return std::nullopt;
}

void count_fault(ChaosStats& stats, FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropRead: ++stats.dropped_reads; break;
    case FaultKind::kDelayRead: ++stats.delayed_reads; break;
    case FaultKind::kCorruptRead: ++stats.corrupted_reads; break;
    case FaultKind::kDropWrite: ++stats.dropped_writes; break;
    case FaultKind::kTornWrite: ++stats.torn_writes; break;
    case FaultKind::kFailAccept: ++stats.failed_accepts; break;
  }
}

}  // namespace

}  // namespace chaos_detail

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropRead: return "drop_read";
    case FaultKind::kDelayRead: return "delay_read";
    case FaultKind::kCorruptRead: return "corrupt_read";
    case FaultKind::kDropWrite: return "drop_write";
    case FaultKind::kTornWrite: return "torn_write";
    case FaultKind::kFailAccept: return "fail_accept";
  }
  return "unknown";
}

namespace {

std::optional<FaultKind> fault_kind_from_name(const std::string& name) {
  for (FaultKind kind :
       {FaultKind::kDropRead, FaultKind::kDelayRead, FaultKind::kCorruptRead,
        FaultKind::kDropWrite, FaultKind::kTornWrite,
        FaultKind::kFailAccept}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

double parse_probability(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  QTDA_REQUIRE(consumed == value.size() && p >= 0.0 && p <= 1.0,
               "chaos spec: " << key << "=" << value
                              << " is not a probability in [0,1]");
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  unsigned long long n = 0;  // NOLINT(runtime/int) — stoull's type
  try {
    n = std::stoull(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  QTDA_REQUIRE(consumed == value.size() && !value.empty(),
               "chaos spec: " << key << "=" << value
                              << " is not a non-negative integer");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  const std::size_t colon = text.find(':');
  QTDA_REQUIRE(colon != std::string::npos,
               "chaos spec must look like <seed>:<key>=<value>,... got: "
                   << text);
  FaultPlan plan;
  plan.seed = parse_u64("seed", text.substr(0, colon));

  std::string rest = text.substr(colon + 1);
  std::stringstream tokens(rest);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    const std::size_t eq = token.find('=');
    if (at != std::string::npos && (eq == std::string::npos || at < eq)) {
      // Scripted entry: <fault>@<index>.
      const std::string name = token.substr(0, at);
      const std::optional<FaultKind> kind = fault_kind_from_name(name);
      QTDA_REQUIRE(kind.has_value(),
                   "chaos spec: unknown fault kind in scripted entry: "
                       << token);
      plan.script.push_back(
          ScriptedFault{*kind, parse_u64(name, token.substr(at + 1))});
      continue;
    }
    QTDA_REQUIRE(eq != std::string::npos,
                 "chaos spec: token is neither key=value nor fault@index: "
                     << token);
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "delay_ms") {
      plan.delay_ms = parse_u64(key, value);
      continue;
    }
    const std::optional<FaultKind> kind = fault_kind_from_name(key);
    QTDA_REQUIRE(kind.has_value(), "chaos spec: unknown key: " << key);
    const double p = parse_probability(key, value);
    switch (*kind) {
      case FaultKind::kDropRead: plan.drop_read = p; break;
      case FaultKind::kDelayRead: plan.delay_read = p; break;
      case FaultKind::kCorruptRead: plan.corrupt_read = p; break;
      case FaultKind::kDropWrite: plan.drop_write = p; break;
      case FaultKind::kTornWrite: plan.torn_write = p; break;
      case FaultKind::kFailAccept: plan.fail_accept = p; break;
    }
  }
  return plan;
}

std::string FaultPlan::spec() const {
  std::ostringstream out;
  out << seed << ':';
  bool first = true;
  const auto emit = [&](const char* key, double p) {
    if (p <= 0.0) return;
    if (!first) out << ',';
    first = false;
    out << key << '=' << p;
  };
  emit("drop_read", drop_read);
  emit("delay_read", delay_read);
  emit("corrupt_read", corrupt_read);
  emit("drop_write", drop_write);
  emit("torn_write", torn_write);
  emit("fail_accept", fail_accept);
  if (delay_ms != 1) {
    if (!first) out << ',';
    first = false;
    out << "delay_ms=" << delay_ms;
  }
  for (const ScriptedFault& entry : script) {
    if (!first) out << ',';
    first = false;
    out << fault_kind_name(entry.kind) << '@' << entry.index;
  }
  return out.str();
}

std::optional<FaultPlan> fault_plan_from_env() {
  const char* raw = std::getenv("QTDA_CHAOS");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return FaultPlan::parse(raw);
}

// ---------------------------------------------------------------------------
// FaultInjectingConnection
// ---------------------------------------------------------------------------

FaultInjectingConnection::FaultInjectingConnection(
    std::shared_ptr<Connection> inner, FaultPlan plan, Rng rng,
    std::shared_ptr<chaos_detail::Shared> shared)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      shared_(std::move(shared)),
      rng_(rng) {}

std::optional<FaultKind> FaultInjectingConnection::decide_read() {
  MutexLock shared_lock(shared_->mutex);
  const std::uint64_t index = shared_->reads++;
  std::optional<FaultKind> fault = chaos_detail::scripted_for(
      plan_, index, &chaos_detail::is_read_kind);
  if (!fault.has_value()) {
    // Draw order is fixed (drop, delay, corrupt) so a given connection's
    // fault sequence depends only on its Rng stream, not on timing.
    if (rng_.bernoulli(plan_.drop_read)) {
      fault = FaultKind::kDropRead;
    } else if (rng_.bernoulli(plan_.delay_read)) {
      fault = FaultKind::kDelayRead;
    } else if (rng_.bernoulli(plan_.corrupt_read)) {
      fault = FaultKind::kCorruptRead;
    }
  }
  if (fault.has_value()) chaos_detail::count_fault(shared_->stats, *fault);
  return fault;
}

std::optional<FaultKind> FaultInjectingConnection::decide_write() {
  MutexLock shared_lock(shared_->mutex);
  const std::uint64_t index = shared_->writes++;
  std::optional<FaultKind> fault = chaos_detail::scripted_for(
      plan_, index, &chaos_detail::is_write_kind);
  if (!fault.has_value()) {
    if (rng_.bernoulli(plan_.drop_write)) {
      fault = FaultKind::kDropWrite;
    } else if (rng_.bernoulli(plan_.torn_write)) {
      fault = FaultKind::kTornWrite;
    }
  }
  if (fault.has_value()) chaos_detail::count_fault(shared_->stats, *fault);
  return fault;
}

std::optional<std::string> FaultInjectingConnection::apply_read_fault(
    std::optional<std::string> line) {
  if (!line.has_value()) return line;  // stream already ended: nothing to do
  std::optional<FaultKind> fault;
  {
    MutexLock lock(mutex_);
    fault = decide_read();
  }
  if (!fault.has_value()) return line;
  switch (*fault) {
    case FaultKind::kDropRead:
      inner_->close();
      return std::nullopt;
    case FaultKind::kDelayRead:
      std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
      return line;
    case FaultKind::kCorruptRead: {
      // Flip the case bit of the leading byte: the verb no longer
      // classifies, so the peer observes a corrupted frame.  Guard against
      // producing framing bytes.
      std::string corrupted = *line;
      if (corrupted.empty()) corrupted = "#";
      char flipped = static_cast<char>(corrupted[0] ^ 0x20);
      if (flipped == '\n' || flipped == '\0') flipped = '#';
      corrupted[0] = flipped;
      return corrupted;
    }
    default:
      return line;
  }
}

std::optional<std::string> FaultInjectingConnection::read_line() {
  return apply_read_fault(inner_->read_line());
}

std::optional<std::string> FaultInjectingConnection::read_line_for(
    std::uint64_t timeout_ms, bool* timed_out) {
  bool local_timed_out = false;
  std::optional<std::string> line =
      inner_->read_line_for(timeout_ms, &local_timed_out);
  if (timed_out != nullptr) *timed_out = local_timed_out;
  if (local_timed_out) return std::nullopt;  // timeouts are not faultable
  return apply_read_fault(std::move(line));
}

bool FaultInjectingConnection::write_line(const std::string& line) {
  std::optional<FaultKind> fault;
  {
    MutexLock lock(mutex_);
    fault = decide_write();
  }
  if (!fault.has_value()) return inner_->write_line(line);
  switch (*fault) {
    case FaultKind::kDropWrite:
      inner_->close();
      return false;
    case FaultKind::kTornWrite: {
      // Deliver a prefix, then drop the connection: the peer sees a partial
      // frame followed by end-of-stream.  The prefix goes out as a (torn)
      // line because the framing below us is line-based.
      const std::string prefix = line.substr(0, line.size() / 2);
      inner_->write_line(prefix);
      inner_->close();
      return false;
    }
    default:
      return inner_->write_line(line);
  }
}

void FaultInjectingConnection::close() { inner_->close(); }

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 FaultPlan plan)
    : inner_(inner),
      plan_(std::move(plan)),
      shared_(std::make_shared<chaos_detail::Shared>()),
      accept_rng_(plan_.seed) {}

FaultInjectingTransport::~FaultInjectingTransport() { shutdown(); }

std::shared_ptr<Connection> FaultInjectingTransport::accept() {
  for (;;) {
    std::shared_ptr<Connection> conn = inner_.accept();
    if (conn == nullptr) return nullptr;  // inner transport shut down

    bool fail = false;
    Rng conn_rng(0);
    {
      MutexLock lock(mutex_);
      const std::uint64_t connection_index = connections_++;
      // Per-connection stream: deterministic per connection index even when
      // several clients connect concurrently.
      conn_rng = accept_rng_.split(connection_index + 1);

      MutexLock shared_lock(shared_->mutex);
      const std::uint64_t accept_index = shared_->accepts++;
      const std::optional<FaultKind> scripted = chaos_detail::scripted_for(
          plan_, accept_index, [](FaultKind kind) {
            return kind == FaultKind::kFailAccept;
          });
      fail = scripted.has_value() || accept_rng_.bernoulli(plan_.fail_accept);
      if (fail) {
        chaos_detail::count_fault(shared_->stats, FaultKind::kFailAccept);
      }
    }
    if (fail) {
      conn->close();
      continue;  // the client sees an immediate end-of-stream
    }
    return std::make_shared<FaultInjectingConnection>(std::move(conn), plan_,
                                                      conn_rng, shared_);
  }
}

void FaultInjectingTransport::shutdown() { inner_.shutdown(); }

ChaosStats FaultInjectingTransport::stats() const {
  MutexLock lock(shared_->mutex);
  return shared_->stats;
}

}  // namespace qtda
