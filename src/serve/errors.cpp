#include "serve/errors.hpp"

#include <array>

#include "common/telemetry.hpp"

namespace qtda {

namespace {

constexpr std::size_t kNumCodes = 9;  // kNone .. kTimeout

constexpr std::array<const char*, kNumCodes> kNames = {
    "none",     "protocol", "limit",       "overloaded", "deadline",
    "shutdown", "internal", "unavailable", "timeout",
};

}  // namespace

const char* serve_error_name(ServeErrorCode code) {
  const auto index = static_cast<std::size_t>(code);
  return index < kNames.size() ? kNames[index] : "internal";
}

ServeErrorCode serve_error_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNames.size(); ++i)
    if (name == kNames[i]) return static_cast<ServeErrorCode>(i);
  return ServeErrorCode::kInternal;
}

bool serve_error_retryable(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kOverloaded:
    case ServeErrorCode::kShutdown:
    case ServeErrorCode::kUnavailable:
    case ServeErrorCode::kTimeout:
      return true;
    case ServeErrorCode::kNone:
    case ServeErrorCode::kProtocol:
    case ServeErrorCode::kLimit:
    case ServeErrorCode::kDeadline:
    case ServeErrorCode::kInternal:
      return false;
  }
  return false;
}

void count_serve_error(ServeErrorCode code) {
  if (!telemetry::enabled()) return;
  // One immortal counter per code, resolved lazily on first use (the macro
  // form needs a compile-time name; the code arrives at runtime here).
  struct Counters {
    std::array<telemetry::Counter*, kNumCodes> by_code;
    Counters() {
      for (std::size_t i = 0; i < kNumCodes; ++i)
        by_code[i] = &telemetry::registry().counter(
            std::string("serve.errors.") + kNames[i]);
    }
  };
  static Counters counters;
  const auto index = static_cast<std::size_t>(code);
  if (index < kNumCodes) counters.by_code[index]->add(1);
}

}  // namespace qtda
