#include "serve/artifact_cache.hpp"

#include <cstdio>

#include "common/telemetry.hpp"
#include "quantum/precision.hpp"
#include "topology/laplacian.hpp"
#include "topology/rips.hpp"

namespace qtda {

namespace {

/// Live hit/miss counters per cache level (the scrape-time numbers come
/// from CacheStats; these let telemetry-only consumers watch the rates).
void count_cache_access(telemetry::Counter& hits, telemetry::Counter& misses,
                        bool hit) {
  (hit ? hits : misses).add(1);
}

/// %.17g rendering — round-trips every finite double exactly, so two
/// requests with bit-equal parameters always form the same key and two with
/// different parameters never collide on formatting.
std::string double_token(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::size_t complex_bytes(const SimplicialComplex& complex) {
  std::size_t bytes = sizeof(SimplicialComplex);
  for (int k = 0; k <= complex.max_dimension(); ++k) {
    // Simplices are stored twice (sorted vector + index map); the factor 2
    // plus the per-entry map overhead keeps the estimate honest without
    // chasing unordered_map internals.
    bytes += complex.count(k) * (2 * sizeof(Simplex) + 48);
    for (const Simplex& s : complex.simplices(k))
      bytes += 2 * s.vertices().size() * sizeof(VertexId);
  }
  return bytes;
}

std::size_t laplacian_bytes(const SparseMatrix& matrix) {
  return sizeof(SparseMatrix) +
         matrix.row_offsets().size() * sizeof(std::size_t) +
         matrix.col_indices().size() * sizeof(std::size_t) +
         matrix.values().size() * sizeof(double);
}

}  // namespace

ArtifactStore::ArtifactStore(const ArtifactStoreOptions& options)
    : complexes_(options.budget_bytes / 8, options.shards),
      laplacians_(options.budget_bytes / 8, options.shards),
      plans_(options.budget_bytes - 2 * (options.budget_bytes / 8),
             options.shards) {}

std::string ArtifactStore::plan_key(std::uint64_t complex_fingerprint, int k,
                                    const EstimatorOptions& options) {
  std::string key = "cx=" + fingerprint_hex(complex_fingerprint);
  key += "|k=" + std::to_string(k);
  key += "|backend=";
  key += options.backend == EstimatorBackend::kCircuitSparse ? "sparse"
                                                             : "trotter";
  key += "|t=" + std::to_string(options.precision_qubits);
  key += "|delta=" + double_token(options.delta);
  key += "|pad=" + std::to_string(static_cast<int>(options.padding));
  key += options.mixed_state == MixedStateMode::kPurification
             ? "|mixed=purify"
             : "|mixed=sampled";
  key += "|prec=" + precision_name(options.precision);
  if (options.backend == EstimatorBackend::kCircuitTrotter) {
    key += "|trotter=" + std::to_string(options.trotter.steps) + "," +
           std::to_string(options.trotter.order) + "," +
           (options.trotter.group_commuting ? "g" : "u");
  }
  key += "|ref=" + std::to_string(options.exact_reference_max_dim);
  // The env-driven fusion policy and the noise-slot layout change the
  // compiled artifact, so they are key axes too: flipping QTDA_FUSE between
  // requests can never alias two different plans.
  key += "|" + compiler_options_cache_key(estimator_compiler_options(options.noise));
  return key;
}

ResolvedArtifacts ArtifactStore::resolve(const PointCloud& cloud,
                                         double epsilon, int k,
                                         const EstimatorOptions& options) {
  QTDA_SPAN("resolve");
  ResolvedArtifacts resolved;

  const std::uint64_t cloud_fp = fingerprint_point_cloud(cloud);
  const std::string complex_key = "cloud=" + fingerprint_hex(cloud_fp) +
                                  "|eps=" + double_token(epsilon) +
                                  "|dim=" + std::to_string(k + 1);
  resolved.complex = complexes_.get_or_create(
      complex_key,
      [&]() -> ShardedLruCache<SimplicialComplex>::Sized {
        auto complex = std::make_shared<const SimplicialComplex>(
            rips_complex(cloud, epsilon, k + 1));
        const std::size_t bytes = complex_bytes(*complex);
        return {std::move(complex), bytes};
      },
      &resolved.complex_hit);
  if (telemetry::enabled()) {
    static telemetry::Counter& hits =
        telemetry::registry().counter("cache.complex.hits");
    static telemetry::Counter& misses =
        telemetry::registry().counter("cache.complex.misses");
    count_cache_access(hits, misses, resolved.complex_hit);
  }
  resolved.complex_fingerprint = fingerprint_complex(*resolved.complex);

  if (resolved.complex->count(k) == 0) return resolved;  // empty estimate

  const std::string laplacian_key =
      "cx=" + fingerprint_hex(resolved.complex_fingerprint) +
      "|k=" + std::to_string(k);
  const auto& complex = *resolved.complex;
  resolved.laplacian = laplacians_.get_or_create(
      laplacian_key,
      [&]() -> ShardedLruCache<SparseMatrix>::Sized {
        auto laplacian = std::make_shared<const SparseMatrix>(
            sparse_combinatorial_laplacian(complex, k));
        const std::size_t bytes = laplacian_bytes(*laplacian);
        return {std::move(laplacian), bytes};
      },
      &resolved.laplacian_hit);
  if (telemetry::enabled()) {
    static telemetry::Counter& hits =
        telemetry::registry().counter("cache.laplacian.hits");
    static telemetry::Counter& misses =
        telemetry::registry().counter("cache.laplacian.misses");
    count_cache_access(hits, misses, resolved.laplacian_hit);
  }

  if (options.backend != EstimatorBackend::kCircuitSparse &&
      options.backend != EstimatorBackend::kCircuitTrotter) {
    return resolved;  // analytic / dense backends run off the Laplacian
  }

  const std::string key = plan_key(resolved.complex_fingerprint, k, options);
  const auto& laplacian = *resolved.laplacian;
  resolved.plan = plans_.get_or_create(
      key,
      [&]() -> ShardedLruCache<PlanArtifact>::Sized {
        auto artifact = std::make_shared<PlanArtifact>();
        artifact->compiled = compile_betti_estimate(laplacian, options);
        const std::size_t bytes = artifact->memory_bytes();
        return {std::move(artifact), bytes};
      },
      &resolved.plan_hit);
  if (telemetry::enabled()) {
    static telemetry::Counter& hits =
        telemetry::registry().counter("cache.plan.hits");
    static telemetry::Counter& misses =
        telemetry::registry().counter("cache.plan.misses");
    count_cache_access(hits, misses, resolved.plan_hit);
  }
  return resolved;
}

void ArtifactStore::clear() {
  complexes_.clear();
  laplacians_.clear();
  plans_.clear();
}

}  // namespace qtda
