/// \file transport.hpp
/// \brief Byte transports for qtda_serve: Unix socket, TCP, and in-process
/// loopback.
///
/// The server speaks to clients through two tiny interfaces — Connection
/// (blocking line read/write) and Transport (blocking accept) — so the same
/// BettiServer runs unchanged over a real AF_UNIX stream socket (the
/// daemon), a TCP listener (remote reachability), or an in-process loopback
/// pair (tests and the --smoke mode, where multithreaded stress must not
/// depend on filesystem socket paths).
///
/// Lifetime rules: close() on either endpoint wakes blocked readers on both
/// sides with end-of-stream; shutdown() on a Transport unblocks accept().
/// Connections are handed out as shared_ptr because the server's completion
/// queue may outlive the reader thread that accepted the connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace qtda {

/// One bidirectional, newline-framed byte stream.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocks for the next newline-terminated line (returned without the
  /// newline).  nullopt = end of stream (peer closed or close() called).
  virtual std::optional<std::string> read_line() = 0;

  /// read_line() with a timeout.  On timeout returns nullopt and sets
  /// *timed_out (end-of-stream leaves it false, disambiguating the two
  /// nullopt cases).  The base implementation ignores the timeout and
  /// blocks — every transport in this file overrides it; a decorator that
  /// cannot honor timeouts still degrades to plain blocking reads.
  virtual std::optional<std::string> read_line_for(std::uint64_t timeout_ms,
                                                   bool* timed_out) {
    (void)timeout_ms;
    if (timed_out != nullptr) *timed_out = false;
    return read_line();
  }

  /// Writes one line (the newline is appended).  Returns false once the
  /// stream is closed.  Thread-safe against concurrent write_line calls.
  virtual bool write_line(const std::string& line) = 0;

  /// Closes both directions; idempotent.
  virtual void close() = 0;
};

/// Listening endpoint producing Connections.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next client; nullptr once shutdown() was called.
  virtual std::shared_ptr<Connection> accept() = 0;

  /// Unblocks accept() permanently.  Idempotent.
  virtual void shutdown() = 0;
};

/// In-process transport: connect() hands the client endpoint of a freshly
/// created pair to the caller and queues the server endpoint for accept().
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport();
  ~LoopbackTransport() override;

  /// Client side of a new connection (callable from any thread).
  std::shared_ptr<Connection> connect();

  std::shared_ptr<Connection> accept() override;
  void shutdown() override;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// AF_UNIX stream-socket transport bound to \p path (an existing socket
/// file at the path is replaced).  accept() polls so shutdown() takes
/// effect within ~100 ms even with no client activity.
class UnixSocketTransport final : public Transport {
 public:
  explicit UnixSocketTransport(std::string path);
  ~UnixSocketTransport() override;

  std::shared_ptr<Connection> accept() override;
  void shutdown() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
};

/// Client-side connect to a Unix-socket server.
std::shared_ptr<Connection> connect_unix(const std::string& path);

/// TCP stream-socket transport bound to \p host:\p port (port 0 binds an
/// ephemeral port — read the actual one back with port()).  Same polling
/// accept loop as the Unix transport; accepted connections get TCP_NODELAY
/// so one-line responses are not Nagle-delayed.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(std::uint16_t port = 0,
                        std::string host = "127.0.0.1");
  ~TcpTransport() override;

  std::shared_ptr<Connection> accept() override;
  void shutdown() override;

  const std::string& host() const { return host_; }
  /// The bound port (resolves port 0 to the kernel-assigned ephemeral one).
  std::uint16_t port() const { return port_; }

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
};

/// Client-side connect to a TCP server.
std::shared_ptr<Connection> connect_tcp(const std::string& host,
                                        std::uint16_t port);

}  // namespace qtda
