#include "serve/metrics.hpp"

#include <cctype>
#include <sstream>

#include "common/error.hpp"
#include "serve/server.hpp"

namespace qtda {

namespace {

/// Folds one cache level into the report under cache.<level>.* names.  The
/// CacheStats are authoritative (they see every access, telemetry on or
/// off); entries/bytes are levels, so they land in gauges.
void add_cache_level(MetricsReport& report, const std::string& level,
                     const CacheStats& stats) {
  const std::string prefix = "cache." + level + ".";
  report.counters[prefix + "hits"] = stats.hits;
  report.counters[prefix + "misses"] = stats.misses;
  report.counters[prefix + "evictions"] = stats.evictions;
  report.gauges[prefix + "entries"] = static_cast<std::int64_t>(stats.entries);
  report.gauges[prefix + "bytes"] = static_cast<std::int64_t>(stats.bytes);
}

void append_json_escaped(std::ostringstream& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

/// Minimal cursor over the exact JSON shape render_metrics_json emits.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_whitespace();
    QTDA_REQUIRE(position_ < text_.size() && text_[position_] == c,
                 "metrics JSON: expected '" << c << "' at offset "
                                            << position_);
    ++position_;
  }

  bool consume(char c) {
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (position_ < text_.size() && text_[position_] != '"') {
      if (text_[position_] == '\\') ++position_;
      QTDA_REQUIRE(position_ < text_.size(), "metrics JSON: truncated string");
      out += text_[position_++];
    }
    expect('"');
    return out;
  }

  std::int64_t parse_integer() {
    skip_whitespace();
    const bool negative = consume('-');
    QTDA_REQUIRE(position_ < text_.size() &&
                     std::isdigit(static_cast<unsigned char>(text_[position_])),
                 "metrics JSON: expected digit at offset " << position_);
    std::uint64_t magnitude = 0;
    while (position_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[position_]))) {
      magnitude = magnitude * 10 + (text_[position_++] - '0');
    }
    return negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
  }

  std::uint64_t parse_unsigned() {
    const std::int64_t value = parse_integer();
    QTDA_REQUIRE(value >= 0, "metrics JSON: expected non-negative integer");
    return static_cast<std::uint64_t>(value);
  }

 private:
  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_])))
      ++position_;
  }

  const std::string& text_;
  std::size_t position_ = 0;
};

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots become underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = "qtda_";
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

}  // namespace

MetricsReport collect_metrics(const ServerStats* server_stats) {
  MetricsReport report;
  const telemetry::MetricsSnapshot snapshot =
      telemetry::registry().snapshot();
  for (const auto& [name, value] : snapshot.counters)
    report.counters[name] = value;
  for (const auto& [name, value] : snapshot.gauges)
    report.gauges[name] = value;
  for (const auto& [name, histogram] : snapshot.histograms)
    report.histograms[name] = histogram;
  if (server_stats != nullptr) {
    const ServerStats& stats = *server_stats;
    report.counters["serve.admitted"] = stats.admitted;
    report.counters["serve.completed"] = stats.completed;
    report.counters["serve.errors"] = stats.errors;
    report.counters["serve.batches"] = stats.batches;
    report.counters["serve.batched_requests"] = stats.batched_requests;
    report.counters["serve.deadline_misses"] = stats.deadline_misses;
    report.counters["serve.shed"] = stats.shed;
    add_cache_level(report, "complex", stats.complexes);
    add_cache_level(report, "laplacian", stats.laplacians);
    add_cache_level(report, "plan", stats.plans);
    report.counters["cache.expm.hits"] = stats.expm.hits;
    report.counters["cache.expm.misses"] = stats.expm.misses;
    report.counters["cache.expm.evictions"] = stats.expm.evictions;
    report.gauges["cache.expm.entries"] =
        static_cast<std::int64_t>(stats.expm.entries);
  }
  return report;
}

std::string render_metrics_json(const MetricsReport& report) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : report.counters) {
    if (!first) out << ',';
    first = false;
    out << '"';
    append_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : report.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"';
    append_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : report.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"';
    append_json_escaped(out, name);
    out << "\":{\"count\":" << histogram.count << ",\"sum\":" << histogram.sum
        << ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) out << ',';
      out << '[' << histogram.buckets[i].first << ','
          << histogram.buckets[i].second << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

MetricsReport parse_metrics_json(const std::string& json) {
  MetricsReport report;
  JsonCursor cursor(json);
  cursor.expect('{');
  bool first_section = true;
  while (!cursor.consume('}')) {
    if (!first_section) cursor.expect(',');
    first_section = false;
    const std::string section = cursor.parse_string();
    cursor.expect(':');
    cursor.expect('{');
    bool first_entry = true;
    while (!cursor.consume('}')) {
      if (!first_entry) cursor.expect(',');
      first_entry = false;
      const std::string name = cursor.parse_string();
      cursor.expect(':');
      if (section == "counters") {
        report.counters[name] = cursor.parse_unsigned();
      } else if (section == "gauges") {
        report.gauges[name] = cursor.parse_integer();
      } else if (section == "histograms") {
        telemetry::HistogramSnapshot histogram;
        cursor.expect('{');
        bool first_field = true;
        while (!cursor.consume('}')) {
          if (!first_field) cursor.expect(',');
          first_field = false;
          const std::string field = cursor.parse_string();
          cursor.expect(':');
          if (field == "count") {
            histogram.count = cursor.parse_unsigned();
          } else if (field == "sum") {
            histogram.sum = cursor.parse_unsigned();
          } else if (field == "buckets") {
            cursor.expect('[');
            while (!cursor.consume(']')) {
              if (!histogram.buckets.empty()) cursor.expect(',');
              cursor.expect('[');
              const std::uint64_t index = cursor.parse_unsigned();
              cursor.expect(',');
              const std::uint64_t count = cursor.parse_unsigned();
              cursor.expect(']');
              histogram.buckets.emplace_back(
                  static_cast<std::size_t>(index), count);
            }
          } else {
            QTDA_REQUIRE(false,
                         "metrics JSON: unknown histogram field \"" << field
                                                                   << '"');
          }
        }
        report.histograms[name] = std::move(histogram);
      } else {
        QTDA_REQUIRE(false,
                     "metrics JSON: unknown section \"" << section << '"');
      }
    }
  }
  return report;
}

std::string render_prometheus(const MetricsReport& report) {
  std::ostringstream out;
  for (const auto& [name, value] : report.counters) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " counter\n"
        << metric << ' ' << value << '\n';
  }
  for (const auto& [name, value] : report.gauges) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << ' ' << value << '\n';
  }
  for (const auto& [name, histogram] : report.histograms) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [index, count] : histogram.buckets) {
      cumulative += count;
      out << metric << "_bucket{le=\""
          << telemetry::Histogram::bucket_upper_bound(index) << "\"} "
          << cumulative << '\n';
    }
    out << metric << "_bucket{le=\"+Inf\"} " << histogram.count << '\n'
        << metric << "_sum " << histogram.sum << '\n'
        << metric << "_count " << histogram.count << '\n';
  }
  out << "# EOF";
  return out.str();
}

}  // namespace qtda
