/// \file artifact_cache.hpp
/// \brief Content-keyed artifact caching for the serving layer.
///
/// A served estimate decomposes into three reusable artifacts — the Rips
/// complex of (cloud, ε), the sparse Laplacian of (complex, k), and the
/// compiled ExecutionPlan of (complex, k, estimator options) — each far more
/// expensive than the shot sampling that actually answers a warm request.
/// ShardedLruCache is the storage primitive: string-keyed (structural
/// equality — the parameter axes are spelled out in the key, only content
/// fingerprints are hashed), sharded by key hash to keep lock hold times
/// short, LRU-evicted per shard under a byte budget.  ArtifactStore stacks
/// the three caches and resolves a request through them; because levels two
/// and three key on the *complex* fingerprint, distinct clouds that induce
/// the same ε-complex share the Laplacian and the plan.
///
/// Compiled plans carry mutable scratch (the one-executor-at-a-time
/// contract of ExecutionPlan), so the plan cache wraps each entry in a
/// PlanArtifact with its own execution mutex: the cache may hand the same
/// plan to any number of threads, and executors serialize on that mutex —
/// never on the cache locks.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/betti_estimator.hpp"
#include "serve/fingerprint.hpp"
#include "topology/point_cloud.hpp"

namespace qtda {

/// Counters of one cache level (or the aggregate; plain totals, no rates).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// String-keyed, byte-budgeted, sharded LRU map of shared immutable values.
///
/// The byte budget is split evenly across shards and enforced per shard
/// (global enforcement would serialize every insertion on one lock); a
/// value larger than its shard's budget is returned but never cached.  The
/// factory for a missing key runs under the shard lock, which both
/// deduplicates concurrent builds of the same key and applies natural
/// admission back-pressure — at most one expensive compilation per shard at
/// a time.
template <typename Value>
class ShardedLruCache {
 public:
  /// What a factory returns: the value plus its accounted size.
  struct Sized {
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  ShardedLruCache(std::size_t budget_bytes, std::size_t num_shards)
      : shard_budget_(budget_bytes / (num_shards == 0 ? 1 : num_shards)),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Returns the cached value for \p key, or builds it with \p factory.
  /// \p hit reports which happened (may be null).
  std::shared_ptr<const Value> get_or_create(
      const std::string& key, const std::function<Sized()>& factory,
      bool* hit = nullptr) {
    Shard& shard = shards_[shard_of(key)];
    MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.stats.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (hit != nullptr) *hit = true;
      return it->second->second.value;
    }
    ++shard.stats.misses;
    if (hit != nullptr) *hit = false;
    Sized built = factory();
    if (built.bytes > shard_budget_) return std::move(built.value);
    shard.lru.emplace_front(key, built);
    shard.index[key] = shard.lru.begin();
    shard.stats.bytes += built.bytes;
    while (shard.stats.bytes > shard_budget_ && shard.lru.size() > 1) {
      shard.stats.bytes -= shard.lru.back().second.bytes;
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
    return built.value;
  }

  /// Aggregated counters across shards.
  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.evictions += shard.stats.evictions;
      total.entries += shard.lru.size();
      total.bytes += shard.stats.bytes;
    }
    return total;
  }

  void clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      shard.lru.clear();
      shard.index.clear();
      shard.stats = CacheStats{};
    }
  }

 private:
  struct Shard {
    mutable Mutex mutex;
    /// front = hottest
    std::list<std::pair<std::string, Sized>> lru QTDA_GUARDED_BY(mutex);
    std::map<std::string, typename std::list<std::pair<std::string, Sized>>::
                              iterator>
        index QTDA_GUARDED_BY(mutex);
    CacheStats stats QTDA_GUARDED_BY(mutex);
  };

  std::size_t shard_of(const std::string& key) const {
    return fnv1a(key.data(), key.size()) % shards_.size();
  }

  std::size_t shard_budget_;
  std::vector<Shard> shards_;
};

/// A cached compiled estimate plus the mutex that serializes executions of
/// its plan (the plan's scratch arena is shared mutable state).
struct PlanArtifact {
  CompiledEstimate compiled;
  mutable Mutex exec_mutex;

  std::size_t memory_bytes() const { return compiled.memory_bytes(); }
};

/// ArtifactStore configuration.
struct ArtifactStoreOptions {
  /// Total byte budget, split 1/8 complexes, 1/8 Laplacians, 3/4 plans
  /// (plans dominate: they carry the oracle matrices).
  std::size_t budget_bytes = std::size_t{256} << 20;
  std::size_t shards = 8;
};

/// Which cache levels answered a resolve, plus the resolved artifacts.
struct ResolvedArtifacts {
  std::shared_ptr<const SimplicialComplex> complex;
  std::uint64_t complex_fingerprint = 0;
  std::shared_ptr<const SparseMatrix> laplacian;  ///< null when |S_k| = 0
  std::shared_ptr<const PlanArtifact> plan;  ///< null for non-plan backends
  bool complex_hit = false;
  bool laplacian_hit = false;
  bool plan_hit = false;
};

/// The three-level content-keyed store behind BettiServer.
class ArtifactStore {
 public:
  explicit ArtifactStore(const ArtifactStoreOptions& options = {});

  /// Resolves cloud → complex → Laplacian (→ plan for the plan-compatible
  /// backends kCircuitSparse/kCircuitTrotter; other backends get artifacts
  /// up to the Laplacian and a null plan).  Bit-identity: every factory is
  /// exactly the function the cold CLI path calls, so a hit only changes
  /// where an artifact comes from.
  ResolvedArtifacts resolve(const PointCloud& cloud, double epsilon, int k,
                            const EstimatorOptions& options);

  /// The plan-cache key of a request — exposed so the server's batcher can
  /// group identical-plan requests without resolving them first.
  static std::string plan_key(std::uint64_t complex_fingerprint, int k,
                              const EstimatorOptions& options);

  CacheStats complex_stats() const { return complexes_.stats(); }
  CacheStats laplacian_stats() const { return laplacians_.stats(); }
  CacheStats plan_stats() const { return plans_.stats(); }

  void clear();

 private:
  ShardedLruCache<SimplicialComplex> complexes_;
  ShardedLruCache<SparseMatrix> laplacians_;
  ShardedLruCache<PlanArtifact> plans_;
};

}  // namespace qtda
