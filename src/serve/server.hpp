/// \file server.hpp
/// \brief BettiServer: the long-running Betti-estimation service.
///
/// Request lifecycle:
///
///   reader threads (one per connection) parse lines and *admit* requests
///   into a FIFO admission queue → worker threads pop the head and, when the
///   head is batchable (plan-backend, purification, no per-request noise),
///   *coalesce* every queued request with the same batch key — identical
///   cloud content, ε, k, estimator options, and engine — into one
///   execution: the compiled plan evolves the register once and each
///   request samples its own shots from its own seed, which is bit-identical
///   to running the requests serially (see estimate_betti_batch) → finished
///   responses go to the *completion queue*, a dedicated writer drains it
///   back to the connections (responses carry request ids; ordering across
///   requests is not guaranteed, by design).
///
/// Fairness and shutdown: per-request shard counts are clamped by
/// fair_thread_share over the number of concurrently executing requests, so
/// one huge register cannot monopolize the shared pool (shard count never
/// changes results).  Deadlines bound queue time *and* execution: a request
/// that expires before execution starts is answered with a `deadline` error
/// instead of occupying a worker, and an executing request whose deadline
/// passes is cancelled at the next cooperative checkpoint (see
/// common/cancel.hpp).  stop() is graceful: admission closes, everything
/// already admitted executes, the completion queue drains, then threads
/// join.
///
/// Self-protection: the admission queue is bounded (max_queue) — requests
/// past the bound are *shed* with a retryable `overloaded` error carrying a
/// retry-after hint, so load spikes degrade into client backoff instead of
/// unbounded memory growth.  RequestLimits caps the resources any single
/// request may claim (line bytes, cloud points, precision qubits, shots);
/// violations draw a non-retryable `limit` error.  A request that throws
/// anything unexpected is answered with `internal` and the worker survives
/// (poison-request isolation).
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "linalg/expm_multiply.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace qtda {

/// Per-request resource caps; violations draw a non-retryable `limit`
/// error at admission, before any expensive work happens.
struct RequestLimits {
  std::size_t max_line_bytes = 1 << 20;   ///< protocol frame size
  std::size_t max_points = 4096;          ///< cloud size
  std::size_t max_precision_qubits = 16;  ///< t (register width is 2^t)
  std::uint64_t max_shots = 100'000'000;  ///< per-request sampling budget
};

/// BettiServer configuration.
struct ServerOptions {
  ArtifactStoreOptions cache;
  std::size_t workers = 1;  ///< executor threads (estimates are internally
                            ///< parallel; more workers mainly help batching
                            ///< overlap compilation with execution)
  bool batching = true;     ///< coalesce identical-plan requests
  bool telemetry = true;    ///< enable the process-wide telemetry registry
                            ///< on start() (a served process wants its
                            ///< metrics verb populated; the overhead is one
                            ///< relaxed atomic per span plus clock reads)
  std::size_t max_queue = 0;  ///< admission-queue bound; 0 = unbounded.
                              ///< Requests past the bound are shed with a
                              ///< retryable `overloaded` error.
  std::uint64_t shed_retry_after_ms = 5;  ///< backoff hint on shed responses
  RequestLimits limits;     ///< per-request resource caps
};

/// A stats snapshot (the `stats` protocol command renders this).
struct ServerStats {
  CacheStats complexes;
  CacheStats laplacians;
  CacheStats plans;
  ExpmCoefficientCacheStats expm;
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t errors = 0;
  std::size_t batches = 0;           ///< executions serving > 1 request
  std::size_t batched_requests = 0;  ///< requests served by those executions
  std::size_t deadline_misses = 0;
  std::size_t shed = 0;              ///< requests refused by the queue bound
};

/// The service.  One instance owns the artifact store and all threads.
class BettiServer {
 public:
  explicit BettiServer(const ServerOptions& options = {});
  ~BettiServer();

  BettiServer(const BettiServer&) = delete;
  BettiServer& operator=(const BettiServer&) = delete;

  /// Starts acceptor/worker/completion threads against \p transport, which
  /// must outlive the server's stop().
  void start(Transport& transport);

  /// Signals shutdown without blocking (safe from reader threads — the
  /// protocol `shutdown` command lands here).
  void request_stop();

  /// Blocks until request_stop() was called (daemon main-loop parking).
  void wait();

  /// Graceful shutdown: stop admission, drain admitted work and the
  /// completion queue, join every thread.  Idempotent.  Must not be called
  /// from one of the server's own threads.
  void stop();

  ServerStats stats() const;

  /// Synchronous single-request execution through the caches — the same
  /// code path the workers run, minus queueing.  Exposed for tests and the
  /// smoke driver.
  EstimateResponse handle(const EstimateRequest& request);

 private:
  struct Pending {
    EstimateRequest request;
    std::shared_ptr<Connection> connection;  ///< null for internal calls
    std::string batch_key;
    bool batchable = false;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point admitted_at{};  ///< queue-wait /
                                                          ///< latency origin
  };

  void acceptor_loop(Transport* transport);
  void reader_loop(std::shared_ptr<Connection> connection);
  void worker_loop();
  void completion_loop();

  /// Queues \p pending unless the admission bound is hit; false = shed
  /// (the caller answers with `overloaded`).
  bool admit(Pending pending);
  void complete(const std::shared_ptr<Connection>& connection,
                std::string line);
  static std::string batch_key_of(const EstimateRequest& request);
  EstimateResponse execute_single(const EstimateRequest& request);
  void execute_batch(std::vector<Pending> batch);
  std::size_t clamped_shards(const EstimatorOptions& options) const;
  std::string stats_line() const;
  std::string metrics_json_line() const;
  std::string metrics_prometheus_text() const;

  ServerOptions options_;
  ArtifactStore store_;

  mutable Mutex queue_mutex_;
  CondVar queue_ready_;
  std::deque<Pending> queue_ QTDA_GUARDED_BY(queue_mutex_);

  Mutex completion_mutex_;
  CondVar completion_ready_;
  std::deque<std::pair<std::shared_ptr<Connection>, std::string>> completions_
      QTDA_GUARDED_BY(completion_mutex_);

  Mutex connections_mutex_;
  std::vector<std::weak_ptr<Connection>> connections_
      QTDA_GUARDED_BY(connections_mutex_);

  Mutex threads_mutex_;
  std::vector<std::thread> reader_threads_ QTDA_GUARDED_BY(threads_mutex_);
  std::thread acceptor_thread_;
  std::vector<std::thread> worker_threads_;
  std::thread completion_thread_;
  Transport* transport_ = nullptr;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> workers_done_{false};
  Mutex stop_mutex_;
  CondVar stop_requested_;

  std::atomic<std::size_t> active_executions_{0};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> errors_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> batched_requests_{0};
  std::atomic<std::size_t> deadline_misses_{0};
  std::atomic<std::size_t> shed_{0};
};

}  // namespace qtda
