#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "quantum/precision.hpp"
#include "serve/errors.hpp"
#include "serve/metrics.hpp"

namespace qtda {

namespace {

/// Builds a typed error response (taxonomy code, retryable flag, optional
/// backoff hint) and records the per-code telemetry counter.
EstimateResponse make_error(std::string id, ServeErrorCode code,
                            std::string message,
                            std::uint64_t retry_after_ms = 0) {
  EstimateResponse response;
  response.id = std::move(id);
  response.ok = false;
  response.code = code;
  response.retryable = serve_error_retryable(code);
  response.retry_after_ms = retry_after_ms;
  response.error = std::move(message);
  count_serve_error(code);
  return response;
}

/// Best-effort id extraction from a raw request line (for errors on lines
/// that never reach parse_request, like oversized frames).
std::string request_id_of(const std::string& line) {
  const auto pos = line.find(" id=");
  if (pos == std::string::npos) return "";
  const auto start = pos + 4;
  const auto end = line.find(' ', start);
  return line.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

/// First limit the request violates, or "" when it fits them all.
std::string check_limits(const EstimateRequest& request,
                         const RequestLimits& limits) {
  std::ostringstream out;
  if (request.points.size() > limits.max_points) {
    out << "points=" << request.points.size() << " exceeds max_points="
        << limits.max_points;
  } else if (request.options.precision_qubits > limits.max_precision_qubits) {
    out << "t=" << request.options.precision_qubits
        << " exceeds max_precision_qubits=" << limits.max_precision_qubits;
  } else if (request.options.shots > limits.max_shots) {
    out << "shots=" << request.options.shots << " exceeds max_shots="
        << limits.max_shots;
  }
  return out.str();
}

/// Serve-side histograms, resolved once (registry entries are immortal).
struct ServeHistograms {
  telemetry::Histogram& queue_wait =
      telemetry::registry().histogram("serve.queue_wait_ns");
  telemetry::Histogram& batch_size =
      telemetry::registry().histogram("serve.batch_size");
  telemetry::Histogram& request_latency =
      telemetry::registry().histogram("serve.request_ns");
};

ServeHistograms& serve_histograms() {
  static ServeHistograms histograms;
  return histograms;
}

telemetry::Gauge& queue_depth_gauge() {
  static telemetry::Gauge& gauge =
      telemetry::registry().gauge("serve.queue_depth");
  return gauge;
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

BettiServer::BettiServer(const ServerOptions& options)
    : options_(options), store_(options.cache) {
  if (options_.workers == 0) options_.workers = 1;
}

BettiServer::~BettiServer() { stop(); }

void BettiServer::start(Transport& transport) {
  QTDA_REQUIRE(transport_ == nullptr, "server already started");
  if (options_.telemetry) telemetry::set_enabled(true);
  transport_ = &transport;
  completion_thread_ = std::thread([this] { completion_loop(); });
  for (std::size_t i = 0; i < options_.workers; ++i)
    worker_threads_.emplace_back([this] { worker_loop(); });
  acceptor_thread_ = std::thread([this] { acceptor_loop(transport_); });
}

void BettiServer::request_stop() {
  {
    MutexLock lock(stop_mutex_);
    stopping_.store(true);
  }
  stop_requested_.notify_all();
  // Unblock the acceptor and every parked worker so the drain can begin.
  if (transport_ != nullptr) transport_->shutdown();
  queue_ready_.notify_all();
}

void BettiServer::wait() {
  MutexLock lock(stop_mutex_);
  while (!stopping_.load()) stop_requested_.wait(stop_mutex_);
}

void BettiServer::stop() {
  if (stopped_.exchange(true)) return;
  request_stop();
  // Close connections: readers blocked on idle streams wake with EOF.  The
  // admission queue still holds whatever those readers admitted — workers
  // drain it below before exiting (graceful: admitted work completes).
  {
    MutexLock lock(connections_mutex_);
    for (const auto& weak : connections_)
      if (auto connection = weak.lock()) connection->close();
  }
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  {
    MutexLock lock(threads_mutex_);
    for (std::thread& reader : reader_threads_)
      if (reader.joinable()) reader.join();
  }
  for (std::thread& worker : worker_threads_)
    if (worker.joinable()) worker.join();
  // Workers are gone: no further completions can be produced, so the
  // writer may exit as soon as it drains what is queued.
  workers_done_.store(true);
  completion_ready_.notify_all();
  if (completion_thread_.joinable()) completion_thread_.join();
}

void BettiServer::acceptor_loop(Transport* transport) {
  while (!stopping_.load()) {
    std::shared_ptr<Connection> connection = transport->accept();
    if (connection == nullptr) break;
    {
      MutexLock lock(connections_mutex_);
      connections_.push_back(connection);
    }
    MutexLock lock(threads_mutex_);
    reader_threads_.emplace_back(
        [this, connection] { reader_loop(connection); });
  }
}

void BettiServer::reader_loop(std::shared_ptr<Connection> connection) {
  for (;;) {
    const std::optional<std::string> line = connection->read_line();
    if (!line.has_value()) return;  // peer gone or server closing
    if (line->empty()) continue;
    if (line->size() > options_.limits.max_line_bytes) {
      // Refuse before parsing: the size check is the only work an
      // arbitrarily large frame gets to cause.
      connection->write_line(format_response(make_error(
          request_id_of(*line), ServeErrorCode::kLimit,
          "request line of " + std::to_string(line->size()) +
              " bytes exceeds max_line_bytes=" +
              std::to_string(options_.limits.max_line_bytes))));
      errors_.fetch_add(1);
      continue;
    }
    try {
      switch (classify_request_line(*line)) {
        case ServeCommand::kPing:
          connection->write_line("pong");
          break;
        case ServeCommand::kStats:
          connection->write_line(stats_line());
          break;
        case ServeCommand::kMetrics:
          if (line->find("format=prometheus") != std::string::npos) {
            // Multi-line exposition: each line is one protocol frame; the
            // "# EOF" terminator tells the scraper when to stop reading.
            std::istringstream text(metrics_prometheus_text());
            std::string metric_line;
            while (std::getline(text, metric_line))
              connection->write_line(metric_line);
          } else {
            connection->write_line("metrics " + metrics_json_line());
          }
          break;
        case ServeCommand::kShutdown:
          connection->write_line("ok id=shutdown");
          request_stop();
          return;
        case ServeCommand::kEstimate: {
          EstimateRequest request = parse_request(*line);
          if (stopping_.load()) {
            connection->write_line(format_response(
                make_error(request.id, ServeErrorCode::kShutdown,
                           "server shutting down")));
            break;
          }
          const std::string violation =
              check_limits(request, options_.limits);
          if (!violation.empty()) {
            connection->write_line(format_response(make_error(
                request.id, ServeErrorCode::kLimit, violation)));
            errors_.fetch_add(1);
            break;
          }
          Pending pending;
          pending.batch_key = batch_key_of(request);
          pending.batchable =
              options_.batching &&
              (request.options.backend == EstimatorBackend::kCircuitSparse ||
               request.options.backend == EstimatorBackend::kCircuitTrotter) &&
              request.options.mixed_state == MixedStateMode::kPurification;
          if (request.deadline_ms > 0) {
            pending.has_deadline = true;
            pending.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(request.deadline_ms);
          }
          pending.request = std::move(request);
          pending.connection = connection;
          const std::string id = pending.request.id;
          if (!admit(std::move(pending))) {
            connection->write_line(format_response(make_error(
                id, ServeErrorCode::kOverloaded,
                "admission queue full — retry after backoff",
                options_.shed_retry_after_ms)));
          }
          break;
        }
      }
    } catch (const std::exception& error) {
      QTDA_ERROR << "protocol error: " << error.what();
      // Deliberately id-less even when the line carried an id= token: a
      // line that failed to classify or parse may be a corrupted frame, and
      // attributing a non-retryable error to an id extracted from corrupt
      // bytes would mis-answer some other request.  Clients recover via
      // their per-attempt timeout.
      connection->write_line(format_response(
          make_error("", ServeErrorCode::kProtocol, error.what())));
    }
  }
}

bool BettiServer::admit(Pending pending) {
  pending.admitted_at = std::chrono::steady_clock::now();
  {
    MutexLock lock(queue_mutex_);
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      shed_.fetch_add(1);
      return false;
    }
    // Increment before the push (still under the lock) so the worker's
    // decrement after popping can never observe the gauge below zero.
    if (telemetry::enabled()) queue_depth_gauge().add(1);
    queue_.push_back(std::move(pending));
  }
  admitted_.fetch_add(1);
  queue_ready_.notify_one();
  return true;
}

void BettiServer::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(queue_mutex_);
      while (!stopping_.load() && queue_.empty()) queue_ready_.wait(queue_mutex_);
      if (queue_.empty()) return;  // stopping and drained: graceful exit
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (batch.front().batchable) {
        // Coalesce: sweep the queue for identical-plan requests.  FIFO
        // order is preserved inside the batch; requests with other keys
        // keep their queue positions.
        for (auto it = queue_.begin(); it != queue_.end();) {
          if (it->batchable && it->batch_key == batch.front().batch_key) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    if (telemetry::enabled()) {
      queue_depth_gauge().add(-static_cast<std::int64_t>(batch.size()));
      for (const Pending& pending : batch)
        serve_histograms().queue_wait.record(ns_since(pending.admitted_at));
    }
    active_executions_.fetch_add(1);
    try {
      execute_batch(std::move(batch));
    } catch (...) {
      // Poison-request isolation: execute_batch answers its members from
      // its own handlers, so anything landing here is unexpected — log and
      // keep the worker alive rather than losing an executor thread.
      QTDA_ERROR << "worker: unexpected exception escaped execution";
      errors_.fetch_add(1);
    }
    active_executions_.fetch_sub(1);
  }
}

void BettiServer::completion_loop() {
  for (;;) {
    std::pair<std::shared_ptr<Connection>, std::string> item;
    {
      MutexLock lock(completion_mutex_);
      while (completions_.empty() && !workers_done_.load())
        completion_ready_.wait(completion_mutex_);
      if (completions_.empty()) return;  // workers joined and queue drained
      item = std::move(completions_.front());
      completions_.pop_front();
    }
    // Count before relaying: a client that has received its response (and
    // immediately scrapes `metrics` or `stats`) must observe the completion
    // — the write below happens-after this increment on this thread, and
    // the client's scrape happens-after the write.
    completed_.fetch_add(1);
    if (item.first != nullptr) item.first->write_line(item.second);
  }
}

void BettiServer::complete(const std::shared_ptr<Connection>& connection,
                           std::string line) {
  {
    MutexLock lock(completion_mutex_);
    completions_.emplace_back(connection, std::move(line));
  }
  completion_ready_.notify_one();
}

std::string BettiServer::batch_key_of(const EstimateRequest& request) {
  // Cloud *content* (canonicalized fingerprint), the complex parameters,
  // the full plan-key axes, and the engine: requests equal on all of these
  // run the identical evolution and may share it.  Clouds that differ but
  // induce the same complex still share the cached plan — they just do not
  // coalesce into one execution (the batch key must be computable at
  // admission, before the Rips expansion runs).
  std::string key = "cloud=" +
                    fingerprint_hex(fingerprint_point_cloud(
                        PointCloud(request.points))) +
                    "|eps=" + format_double(request.epsilon);
  key += "|" + ArtifactStore::plan_key(0, request.k, request.options);
  key += "|sim=" + simulator_kind_name(request.options.simulator);
  key += "|shards=" + std::to_string(request.options.simulator_shards);
  // shots and seed are intentionally NOT key axes: they vary per request
  // inside one batched execution.
  return key;
}

std::size_t BettiServer::clamped_shards(const EstimatorOptions& options) const {
  if (options.simulator != SimulatorKind::kShardedStatevector)
    return options.simulator_shards;
  const std::size_t share =
      fair_thread_share(std::max<std::size_t>(1, active_executions_.load()));
  const std::size_t requested = options.simulator_shards == 0
                                    ? ThreadPool::shared().size()
                                    : options.simulator_shards;
  return std::max<std::size_t>(1, std::min(requested, share));
}

EstimateResponse BettiServer::execute_single(const EstimateRequest& request) {
  EstimateResponse response;
  response.id = request.id;
  try {
    const PointCloud cloud(request.points);
    EstimatorOptions options = request.options;
    options.simulator_shards = clamped_shards(options);
    const ResolvedArtifacts artifacts =
        store_.resolve(cloud, request.epsilon, request.k, options);
    response.complex_hit = artifacts.complex_hit;
    response.laplacian_hit = artifacts.laplacian_hit;
    response.plan_hit = artifacts.plan_hit;
    if (artifacts.laplacian == nullptr) {
      // No k-simplices: exact zero estimate, mirroring estimate_betti.
      response.estimate.shots = options.shots;
      response.estimate.precision_qubits = options.precision_qubits;
      response.ok = true;
      return response;
    }
    if (artifacts.plan != nullptr) {
      MutexLock lock(artifacts.plan->exec_mutex);
      response.estimate =
          estimate_betti_with_plan(artifacts.plan->compiled, options);
    } else {
      // Analytic / dense-oracle backends: cold functions over the cached
      // Laplacian (they densify internally and carry no reusable plan).
      response.estimate =
          estimate_betti_from_sparse_laplacian(*artifacts.laplacian, options);
    }
    response.ok = true;
  } catch (const CancelledError&) {
    response = make_error(request.id, ServeErrorCode::kDeadline,
                          "deadline exceeded during execution");
    deadline_misses_.fetch_add(1);
    errors_.fetch_add(1);
  } catch (const std::exception& error) {
    response = make_error(request.id, ServeErrorCode::kInternal,
                          error.what());
    errors_.fetch_add(1);
  } catch (...) {
    // Poison request: even a non-standard exception must not take the
    // worker down — answer and move on.
    response = make_error(request.id, ServeErrorCode::kInternal,
                          "unexpected non-standard exception");
    errors_.fetch_add(1);
  }
  return response;
}

EstimateResponse BettiServer::handle(const EstimateRequest& request) {
  return execute_single(request);
}

void BettiServer::execute_batch(std::vector<Pending> batch) {
  // Expired-deadline requests answer immediately without occupying the
  // execution below.
  const auto now = std::chrono::steady_clock::now();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& pending : batch) {
    if (pending.has_deadline && now > pending.deadline) {
      deadline_misses_.fetch_add(1);
      errors_.fetch_add(1);
      complete(pending.connection,
               format_response(make_error(pending.request.id,
                                          ServeErrorCode::kDeadline,
                                          "deadline exceeded while queued")));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  // Execution deadline: armed only when *every* live member carries one —
  // a deadline-free request must not be cancelled by a neighbor's budget —
  // and set to the latest member deadline (checkpoints fire inside the
  // shared evolution, which serves the whole batch).
  std::optional<cancel::ScopedDeadline> execution_deadline;
  {
    bool all_have_deadlines = true;
    std::chrono::steady_clock::time_point latest{};
    for (const Pending& pending : live) {
      if (!pending.has_deadline) {
        all_have_deadlines = false;
        break;
      }
      latest = std::max(latest, pending.deadline);
    }
    if (all_have_deadlines) execution_deadline.emplace(latest);
  }

  QTDA_SPAN("request");
  // End-to-end latency is measured at response formatting (the completion
  // writer only relays), so a scrape never sees a served request missing
  // from the histogram that a client already heard back about.
  const auto finish = [this](const Pending& pending, std::string line) {
    if (telemetry::enabled())
      serve_histograms().request_latency.record(ns_since(pending.admitted_at));
    complete(pending.connection, std::move(line));
  };
  if (telemetry::enabled())
    serve_histograms().batch_size.record(live.size());

  if (live.size() == 1) {
    EstimateResponse response = execute_single(live.front().request);
    finish(live.front(), format_response(response));
    return;
  }

  // Identical-plan batch: resolve once, evolve once, sample per request.
  try {
    const EstimateRequest& head = live.front().request;
    const PointCloud cloud(head.points);
    EstimatorOptions base = head.options;
    base.simulator_shards = clamped_shards(base);
    const ResolvedArtifacts artifacts =
        store_.resolve(cloud, head.epsilon, head.k, base);
    if (artifacts.laplacian == nullptr || artifacts.plan == nullptr) {
      // Degenerate (empty complex) or non-plan fallback: serve serially.
      for (const Pending& pending : live) {
        EstimateResponse response = execute_single(pending.request);
        response.batch_size = 1;
        finish(pending, format_response(response));
      }
      return;
    }
    std::vector<EstimatorOptions> request_options;
    request_options.reserve(live.size());
    for (const Pending& pending : live) {
      EstimatorOptions options = pending.request.options;
      options.simulator_shards = base.simulator_shards;
      request_options.push_back(options);
    }
    std::vector<BettiEstimate> estimates;
    {
      MutexLock lock(artifacts.plan->exec_mutex);
      estimates = estimate_betti_batch(artifacts.plan->compiled,
                                       request_options);
    }
    batches_.fetch_add(1);
    batched_requests_.fetch_add(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      EstimateResponse response;
      response.id = live[i].request.id;
      response.ok = true;
      response.estimate = estimates[i];
      response.complex_hit = artifacts.complex_hit;
      response.laplacian_hit = artifacts.laplacian_hit;
      response.plan_hit = artifacts.plan_hit;
      response.batch_size = live.size();
      finish(live[i], format_response(response));
    }
  } catch (const CancelledError&) {
    // The shared evolution ran out of deadline: every member of the batch
    // shares the outcome (re-running survivors would duplicate work the
    // clients will retry anyway — and with per-member deadlines all in the
    // past, they would cancel again immediately).
    for (const Pending& pending : live) {
      deadline_misses_.fetch_add(1);
      errors_.fetch_add(1);
      finish(pending,
             format_response(make_error(pending.request.id,
                                        ServeErrorCode::kDeadline,
                                        "deadline exceeded during execution")));
    }
  } catch (const std::exception& error) {
    for (const Pending& pending : live) {
      errors_.fetch_add(1);
      finish(pending, format_response(make_error(pending.request.id,
                                                 ServeErrorCode::kInternal,
                                                 error.what())));
    }
  }
}

ServerStats BettiServer::stats() const {
  ServerStats stats;
  stats.complexes = store_.complex_stats();
  stats.laplacians = store_.laplacian_stats();
  stats.plans = store_.plan_stats();
  stats.expm = expm_coefficient_cache_stats();
  stats.admitted = admitted_.load();
  stats.completed = completed_.load();
  stats.errors = errors_.load();
  stats.batches = batches_.load();
  stats.batched_requests = batched_requests_.load();
  stats.deadline_misses = deadline_misses_.load();
  stats.shed = shed_.load();
  return stats;
}

std::string BettiServer::stats_line() const {
  const ServerStats stats = this->stats();
  std::ostringstream out;
  const auto cache = [&out](const char* name, const CacheStats& level) {
    out << ' ' << name << "_hits=" << level.hits << ' ' << name
        << "_misses=" << level.misses << ' ' << name
        << "_evictions=" << level.evictions << ' ' << name
        << "_entries=" << level.entries << ' ' << name
        << "_bytes=" << level.bytes;
  };
  out << "stats admitted=" << stats.admitted
      << " completed=" << stats.completed << " errors=" << stats.errors
      << " batches=" << stats.batches
      << " batched_requests=" << stats.batched_requests
      << " deadline_misses=" << stats.deadline_misses
      << " shed=" << stats.shed;
  cache("complex", stats.complexes);
  cache("laplacian", stats.laplacians);
  cache("plan", stats.plans);
  out << " expm_hits=" << stats.expm.hits
      << " expm_misses=" << stats.expm.misses
      << " expm_evictions=" << stats.expm.evictions
      << " expm_entries=" << stats.expm.entries;
  return out.str();
}

std::string BettiServer::metrics_json_line() const {
  const ServerStats stats = this->stats();
  return render_metrics_json(collect_metrics(&stats));
}

std::string BettiServer::metrics_prometheus_text() const {
  const ServerStats stats = this->stats();
  return render_prometheus(collect_metrics(&stats));
}

}  // namespace qtda
