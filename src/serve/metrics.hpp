/// \file metrics.hpp
/// \brief Metrics exposition for the serving layer.
///
/// The `metrics` protocol verb renders the process-wide telemetry registry
/// plus the server's own counters (admission, caches, expm memo) in two
/// forms:
///
///  * **JSON** — one line, `metrics {...}`, integers only (histograms ship
///    their raw bucket counts, quantiles are computed client-side from the
///    fixed bucket layout).  ServeClient::metrics() parses this into a
///    MetricsReport.
///  * **Prometheus text** — `metrics format=prometheus` answers a
///    multi-line exposition (`qtda_`-prefixed, `.` → `_`) terminated by a
///    literal `# EOF` line so it can be scraped through the line protocol
///    with plain `socat`.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/telemetry.hpp"

namespace qtda {

struct ServerStats;  // serve/server.hpp

/// A parsed/collected metrics payload.  Maps keep rendering and comparison
/// deterministic.
struct MetricsReport {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, telemetry::HistogramSnapshot> histograms;
};

/// Snapshot of the telemetry registry merged with the server's stats (cache
/// hits/misses/evictions/entries/bytes per level, admission counters).
/// \p server_stats may be null (library-only consumers).
MetricsReport collect_metrics(const ServerStats* server_stats);

/// One-line JSON object (no newlines), the payload of `metrics `.
std::string render_metrics_json(const MetricsReport& report);

/// Inverse of render_metrics_json.  Throws qtda::Error on malformed input.
MetricsReport parse_metrics_json(const std::string& json);

/// Prometheus text exposition: # TYPE comments, qtda_ prefix, cumulative
/// histogram _bucket{le=...}/_sum/_count series, final "# EOF" line.
std::string render_prometheus(const MetricsReport& report);

}  // namespace qtda
