#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace qtda {

namespace {

/// Extracts the id token from a raw response line ("" when absent —
/// protocol-level errors for unparseable requests carry no id).
std::string id_of(const std::string& line) {
  const auto pos = line.find(" id=");
  if (pos == std::string::npos) return "";
  const auto start = pos + 4;
  const auto end = line.find(' ', start);
  return line.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t retry_backoff_ms(const RetryPolicy& policy, int attempt,
                               double jitter01) {
  double base = static_cast<double>(policy.initial_backoff_ms);
  const double cap = static_cast<double>(policy.max_backoff_ms);
  for (int i = 0; i < attempt && base < cap; ++i) base *= policy.multiplier;
  base = std::min(base, cap);
  // Equal jitter: keep at least half the nominal backoff so retry storms
  // still decorrelate without collapsing the schedule to zero.
  return static_cast<std::uint64_t>(base * (0.5 + 0.5 * jitter01));
}

ServeClient::ServeClient(std::shared_ptr<Connection> connection)
    : connection_(std::move(connection)) {
  MutexLock lock(mutex_);
  QTDA_REQUIRE(connection_ != nullptr, "ServeClient needs a connection");
}

ServeClient::ServeClient(Dialer dialer, RetryPolicy policy)
    : dialer_(std::move(dialer)), policy_(policy) {
  QTDA_REQUIRE(dialer_ != nullptr, "ServeClient needs a dialer");
  MutexLock lock(mutex_);
  jitter_rng_ = Rng(policy_.jitter_seed);
  connection_ = dialer_();
  QTDA_REQUIRE(connection_ != nullptr, "dialer produced no connection");
}

Connection& ServeClient::connection() {
  MutexLock lock(mutex_);
  QTDA_REQUIRE(connection_ != nullptr, "client is disconnected");
  return *connection_;
}

std::shared_ptr<Connection> ServeClient::ensure_connected() {
  MutexLock lock(mutex_);
  if (connection_ == nullptr) {
    QTDA_REQUIRE(dialer_ != nullptr,
                 "connection lost and the client has no dialer to reconnect");
    connection_ = dialer_();
    QTDA_REQUIRE(connection_ != nullptr, "dialer produced no connection");
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  return connection_;
}

void ServeClient::drop_connection() {
  MutexLock lock(mutex_);
  if (connection_ != nullptr) {
    connection_->close();
    connection_ = nullptr;
  }
}

double ServeClient::next_jitter() {
  MutexLock lock(mutex_);
  return jitter_rng_.uniform();
}

std::string ServeClient::send(EstimateRequest request) {
  std::shared_ptr<Connection> conn;
  {
    MutexLock lock(mutex_);
    if (request.id.empty()) request.id = "r" + std::to_string(next_id_++);
    conn = connection_;
  }
  QTDA_REQUIRE(conn != nullptr, "client is disconnected");
  QTDA_REQUIRE(conn->write_line(format_request(request)),
               "connection closed while sending request " << request.id);
  return request.id;
}

std::optional<std::string> ServeClient::read_matching_for(
    const std::string& id, std::uint64_t timeout_ms, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  const std::int64_t deadline_ns =
      timeout_ms == 0 ? 0
                      : now_ns() + static_cast<std::int64_t>(timeout_ms) *
                                       1'000'000;
  MutexLock lock(mutex_);
  const auto parked = parked_.find(id);
  if (parked != parked_.end()) {
    std::string line = std::move(parked->second);
    parked_.erase(parked);
    return line;
  }
  QTDA_REQUIRE(connection_ != nullptr, "client is disconnected");
  for (;;) {
    std::optional<std::string> line;
    if (deadline_ns == 0) {
      line = connection_->read_line();
    } else {
      const std::int64_t remaining_ms = (deadline_ns - now_ns()) / 1'000'000;
      if (remaining_ms <= 0) {
        if (timed_out != nullptr) *timed_out = true;
        return std::nullopt;
      }
      bool this_read_timed_out = false;
      line = connection_->read_line_for(
          static_cast<std::uint64_t>(remaining_ms), &this_read_timed_out);
      if (this_read_timed_out) continue;  // loop re-checks the deadline
    }
    if (!line.has_value()) return std::nullopt;  // end of stream
    const std::string line_id = id_of(*line);
    if (line_id == id || (id.empty() && line_id.empty())) return *line;
    parked_[line_id] = *line;
  }
}

std::string ServeClient::read_matching(const std::string& id) {
  const std::optional<std::string> line =
      read_matching_for(id, /*timeout_ms=*/0, nullptr);
  QTDA_REQUIRE(line.has_value(),
               "connection closed while waiting for response " << id);
  return *line;
}

EstimateResponse ServeClient::receive(const std::string& id) {
  return parse_response(read_matching(id));
}

EstimateResponse ServeClient::estimate(EstimateRequest request) {
  const int attempts = std::max(1, policy_.max_attempts);
  const std::string requested_id = request.id;
  std::string last_message = "no attempts made";
  ServeErrorCode last_code = ServeErrorCode::kUnavailable;
  std::uint64_t server_hint_ms = 0;

  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      // Honor the server's retry-after hint when it exceeds our own
      // schedule (load shedding tells us how long the queue needs).
      const std::uint64_t backoff = std::max(
          retry_backoff_ms(policy_, attempt - 1, next_jitter()),
          server_hint_ms);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      server_hint_ms = 0;
    }

    bool transport_failure = false;
    bool timed_out = false;
    EstimateResponse response;
    try {
      ensure_connected();
      // Fresh correlation id per retry: a late response to an earlier
      // attempt then parks harmlessly instead of being mistaken for this
      // attempt's answer.  The request *parameters* are identical, which
      // is what makes the retried result bit-identical.
      request.id = attempt == 0 ? requested_id : "";
      const std::string id = send(request);
      const std::optional<std::string> raw =
          read_matching_for(id, policy_.request_timeout_ms, &timed_out);
      if (!raw.has_value()) {
        transport_failure = true;
        last_code = timed_out ? ServeErrorCode::kTimeout
                              : ServeErrorCode::kUnavailable;
        last_message = timed_out
                           ? "timed out waiting for response " + id
                           : "connection closed while waiting for " + id;
      } else {
        response = parse_response(*raw);  // throws on a corrupted frame
      }
    } catch (const std::exception& e) {
      transport_failure = true;
      last_code = ServeErrorCode::kUnavailable;
      last_message = e.what();
    }

    if (!transport_failure) {
      if (response.ok) {
        if (!requested_id.empty()) response.id = requested_id;
        return response;
      }
      // A typed server error: the retryable flag decides, not us.
      const ServeErrorCode code = response.code == ServeErrorCode::kNone
                                      ? ServeErrorCode::kInternal
                                      : response.code;
      if (!response.retryable) {
        throw ServeError(code, response.error, response.retry_after_ms);
      }
      last_code = code;
      last_message = response.error;
      server_hint_ms = response.retry_after_ms;
      continue;  // connection is fine — retry without re-dialing
    }

    // Transport failure: the stream is suspect, drop it so the next
    // attempt re-dials.  Without a dialer there is nothing left to try.
    drop_connection();
    if (dialer_ == nullptr) break;
  }
  throw ServeError(last_code,
                   "retries exhausted after " + std::to_string(attempts) +
                       " attempt(s); last: " + last_message);
}

std::string ServeClient::stats() {
  std::shared_ptr<Connection> conn = ensure_connected();
  QTDA_REQUIRE(conn->write_line("stats"), "connection closed");
  MutexLock lock(mutex_);
  for (;;) {
    const std::optional<std::string> line = conn->read_line();
    QTDA_REQUIRE(line.has_value(), "connection closed awaiting stats");
    if (line->rfind("stats", 0) == 0) return *line;
    parked_[id_of(*line)] = *line;
  }
}

MetricsReport ServeClient::metrics() {
  std::shared_ptr<Connection> conn = ensure_connected();
  QTDA_REQUIRE(conn->write_line("metrics"), "connection closed");
  MutexLock lock(mutex_);
  for (;;) {
    const std::optional<std::string> line = conn->read_line();
    QTDA_REQUIRE(line.has_value(), "connection closed awaiting metrics");
    if (line->rfind("metrics ", 0) == 0)
      return parse_metrics_json(line->substr(8));
    parked_[id_of(*line)] = *line;
  }
}

std::string ServeClient::metrics_prometheus() {
  std::shared_ptr<Connection> conn = ensure_connected();
  QTDA_REQUIRE(conn->write_line("metrics format=prometheus"),
               "connection closed");
  MutexLock lock(mutex_);
  std::string text;
  for (;;) {
    const std::optional<std::string> line = conn->read_line();
    QTDA_REQUIRE(line.has_value(), "connection closed awaiting metrics");
    // Response lines to in-flight estimates may interleave with the scrape;
    // they are whole lines, so park them and keep collecting metric lines.
    if (line->rfind("ok ", 0) == 0 || line->rfind("error ", 0) == 0 ||
        line->rfind("pong", 0) == 0 || line->rfind("stats ", 0) == 0) {
      parked_[id_of(*line)] = *line;
      continue;
    }
    text += *line;
    text += '\n';
    if (*line == "# EOF") return text;
  }
}

void ServeClient::shutdown() {
  std::shared_ptr<Connection> conn = ensure_connected();
  QTDA_REQUIRE(conn->write_line("shutdown"), "connection closed");
  MutexLock lock(mutex_);
  for (;;) {
    const std::optional<std::string> line = conn->read_line();
    if (!line.has_value()) return;  // server closed first — fine
    if (line->rfind("ok id=shutdown", 0) == 0) return;
    parked_[id_of(*line)] = *line;
  }
}

}  // namespace qtda
