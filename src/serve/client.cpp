#include "serve/client.hpp"

#include "common/error.hpp"

namespace qtda {

namespace {

/// Extracts the id token from a raw response line ("" when absent —
/// protocol-level errors for unparseable requests carry no id).
std::string id_of(const std::string& line) {
  const auto pos = line.find(" id=");
  if (pos == std::string::npos) return "";
  const auto start = pos + 4;
  const auto end = line.find(' ', start);
  return line.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

}  // namespace

ServeClient::ServeClient(std::shared_ptr<Connection> connection)
    : connection_(std::move(connection)) {
  QTDA_REQUIRE(connection_ != nullptr, "ServeClient needs a connection");
}

std::string ServeClient::send(EstimateRequest request) {
  {
    MutexLock lock(mutex_);
    if (request.id.empty()) request.id = "r" + std::to_string(next_id_++);
  }
  QTDA_REQUIRE(connection_->write_line(format_request(request)),
               "connection closed while sending request " << request.id);
  return request.id;
}

std::string ServeClient::read_matching(const std::string& id) {
  MutexLock lock(mutex_);
  const auto parked = parked_.find(id);
  if (parked != parked_.end()) {
    std::string line = std::move(parked->second);
    parked_.erase(parked);
    return line;
  }
  for (;;) {
    const std::optional<std::string> line = connection_->read_line();
    QTDA_REQUIRE(line.has_value(),
                 "connection closed while waiting for response " << id);
    const std::string line_id = id_of(*line);
    if (line_id == id || (id.empty() && line_id.empty())) return *line;
    parked_[line_id] = *line;
  }
}

EstimateResponse ServeClient::receive(const std::string& id) {
  return parse_response(read_matching(id));
}

EstimateResponse ServeClient::estimate(EstimateRequest request) {
  return receive(send(std::move(request)));
}

std::string ServeClient::stats() {
  QTDA_REQUIRE(connection_->write_line("stats"), "connection closed");
  MutexLock lock(mutex_);
  for (;;) {
    const std::optional<std::string> line = connection_->read_line();
    QTDA_REQUIRE(line.has_value(), "connection closed awaiting stats");
    if (line->rfind("stats", 0) == 0) return *line;
    parked_[id_of(*line)] = *line;
  }
}

MetricsReport ServeClient::metrics() {
  QTDA_REQUIRE(connection_->write_line("metrics"), "connection closed");
  MutexLock lock(mutex_);
  for (;;) {
    const std::optional<std::string> line = connection_->read_line();
    QTDA_REQUIRE(line.has_value(), "connection closed awaiting metrics");
    if (line->rfind("metrics ", 0) == 0)
      return parse_metrics_json(line->substr(8));
    parked_[id_of(*line)] = *line;
  }
}

std::string ServeClient::metrics_prometheus() {
  QTDA_REQUIRE(connection_->write_line("metrics format=prometheus"),
               "connection closed");
  MutexLock lock(mutex_);
  std::string text;
  for (;;) {
    const std::optional<std::string> line = connection_->read_line();
    QTDA_REQUIRE(line.has_value(), "connection closed awaiting metrics");
    // Response lines to in-flight estimates may interleave with the scrape;
    // they are whole lines, so park them and keep collecting metric lines.
    if (line->rfind("ok ", 0) == 0 || line->rfind("error ", 0) == 0 ||
        line->rfind("pong", 0) == 0 || line->rfind("stats ", 0) == 0) {
      parked_[id_of(*line)] = *line;
      continue;
    }
    text += *line;
    text += '\n';
    if (*line == "# EOF") return text;
  }
}

void ServeClient::shutdown() {
  QTDA_REQUIRE(connection_->write_line("shutdown"), "connection closed");
  MutexLock lock(mutex_);
  for (;;) {
    const std::optional<std::string> line = connection_->read_line();
    if (!line.has_value()) return;  // server closed first — fine
    if (line->rfind("ok id=shutdown", 0) == 0) return;
    parked_[id_of(*line)] = *line;
  }
}

}  // namespace qtda
