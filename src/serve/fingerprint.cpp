#include "serve/fingerprint.hpp"

#include <cstring>

namespace qtda {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t mix_u64(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  // −0.0 → +0.0: the only coordinate rewrite that provably cannot change
  // any downstream arithmetic (the two zeros are == and behave identically
  // in every distance), so folding it widens cache sharing for free.
  if (value == 0.0) value = 0.0;
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof(bits));
  return mix_u64(hash, bits);
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fingerprint_point_cloud(const PointCloud& cloud) {
  std::uint64_t hash = fnv1a(nullptr, 0);
  hash = mix_u64(hash, cloud.size());
  hash = mix_u64(hash, cloud.dimension());
  for (const auto& point : cloud.points())
    for (double coordinate : point) hash = mix_double(hash, coordinate);
  return hash;
}

std::uint64_t fingerprint_complex(const SimplicialComplex& complex) {
  std::uint64_t hash = fnv1a(nullptr, 0);
  const int max_dim = complex.max_dimension();
  hash = mix_u64(hash, static_cast<std::uint64_t>(max_dim + 1));
  for (int k = 0; k <= max_dim; ++k) {
    hash = mix_u64(hash, complex.count(k));
    for (const Simplex& s : complex.simplices(k))
      for (VertexId v : s.vertices()) hash = mix_u64(hash, v);
  }
  return hash;
}

std::uint64_t fingerprint_sparse_matrix(const SparseMatrix& matrix) {
  std::uint64_t hash = fnv1a(nullptr, 0);
  hash = mix_u64(hash, matrix.rows());
  hash = mix_u64(hash, matrix.cols());
  for (std::size_t offset : matrix.row_offsets()) hash = mix_u64(hash, offset);
  for (std::size_t index : matrix.col_indices()) hash = mix_u64(hash, index);
  for (double value : matrix.values()) hash = mix_double(hash, value);
  return hash;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fingerprint & 0xf];
    fingerprint >>= 4;
  }
  return out;
}

}  // namespace qtda
