/// \file chaos.hpp
/// \brief Deterministic fault injection for the serving transports.
///
/// FaultInjectingTransport wraps any Transport (loopback, Unix socket, TCP)
/// and hands out FaultInjectingConnection decorators around every accepted
/// connection.  Faults fire from a seeded qtda::Rng schedule, so a chaos
/// run is reproducible the same way every simulator result is: the same
/// FaultPlan seed yields the same drops, delays, and corruptions on every
/// host.  Fault classes:
///
///   drop_read     reader-side connection drop: the pending read closes the
///                 connection and reports end-of-stream
///   delay_read    the read delivers normally after plan.delay_ms
///   corrupt_read  the delivered line has its leading byte flipped — the
///                 verb no longer classifies, so the peer sees a corrupted
///                 frame (requests draw an id-less protocol error, responses
///                 fail to parse; either way the retry path must recover)
///   drop_write    the write is swallowed and the connection closed — a
///                 connection drop mid-response
///   torn_write    a prefix of the line is delivered, then the connection
///                 closes — a short/torn write
///   fail_accept   the freshly accepted connection is closed before the
///                 server ever sees it — an accept failure
///
/// Per-event probabilities come from the plan; scripted entries fire a
/// fault deterministically on the Nth read/write/accept *across the whole
/// transport* ("fail the 3rd read"), which composes with client retries:
/// the retried operation has a new global index and proceeds.
///
/// `QTDA_CHAOS=<seed>:<spec>` arms the daemon's and --smoke's transports
/// from the environment, e.g.
///
///   QTDA_CHAOS='7:drop_read=0.05,torn_write=0.05,delay_read=0.1,delay_ms=2'
///   QTDA_CHAOS='7:drop_read@0,corrupt_read=0.02'   (scripted: first read)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/thread_annotations.hpp"
#include "serve/transport.hpp"

namespace qtda {

/// One injectable fault class (see the file comment for semantics).
enum class FaultKind {
  kDropRead,
  kDelayRead,
  kCorruptRead,
  kDropWrite,
  kTornWrite,
  kFailAccept,
};

/// Wire/spec name of a kind ("drop_read", ...).
const char* fault_kind_name(FaultKind kind);

/// A deterministic "fail the Nth operation" entry.  \p index counts events
/// of the kind's operation class (reads, writes, or accepts) across the
/// whole transport, starting at 0.
struct ScriptedFault {
  FaultKind kind = FaultKind::kDropRead;
  std::uint64_t index = 0;
};

/// The complete fault schedule: per-event probabilities, the read-delay
/// duration, and scripted entries.  Parsed from and rendered back to the
/// QTDA_CHAOS spec grammar `<seed>:<key>=<value>,...` where keys are the
/// fault names (probability in [0,1]), `delay_ms`, or scripted tokens
/// `<fault>@<index>`.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_read = 0.0;
  double delay_read = 0.0;
  double corrupt_read = 0.0;
  double drop_write = 0.0;
  double torn_write = 0.0;
  double fail_accept = 0.0;
  std::uint64_t delay_ms = 1;
  std::vector<ScriptedFault> script;

  /// Parses `<seed>:<spec>`.  Throws qtda::Error on malformed input.
  static FaultPlan parse(const std::string& text);

  /// Renders back to the spec grammar (parse round-trips).
  std::string spec() const;
};

/// Reads QTDA_CHAOS; nullopt when unset or empty, throws on a bad spec.
std::optional<FaultPlan> fault_plan_from_env();

/// Injection counters, for asserting that a chaos run actually exercised
/// its fault class (a chaos test whose faults never fire is vacuous).
struct ChaosStats {
  std::uint64_t dropped_reads = 0;
  std::uint64_t delayed_reads = 0;
  std::uint64_t corrupted_reads = 0;
  std::uint64_t dropped_writes = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t failed_accepts = 0;

  std::uint64_t total() const {
    return dropped_reads + delayed_reads + corrupted_reads + dropped_writes +
           torn_writes + failed_accepts;
  }
};

namespace chaos_detail {
/// State shared by a transport and all its connections: scripted-fault
/// event counters are transport-global (so "fail the Nth read" means the
/// Nth read anywhere, and a retry after the fault proceeds), injection
/// stats likewise.
struct Shared;
}  // namespace chaos_detail

/// Decorates one connection with the plan's read/write faults.  Each
/// connection draws from its own Rng (split off the transport seed by
/// connection index), so concurrent connections stay deterministic
/// per-connection regardless of scheduling.
class FaultInjectingConnection final : public Connection {
 public:
  FaultInjectingConnection(std::shared_ptr<Connection> inner, FaultPlan plan,
                           Rng rng,
                           std::shared_ptr<chaos_detail::Shared> shared);

  std::optional<std::string> read_line() override;
  std::optional<std::string> read_line_for(std::uint64_t timeout_ms,
                                           bool* timed_out) override;
  bool write_line(const std::string& line) override;
  void close() override;

 private:
  std::optional<FaultKind> decide_read() QTDA_REQUIRES(mutex_);
  std::optional<FaultKind> decide_write() QTDA_REQUIRES(mutex_);
  std::optional<std::string> apply_read_fault(std::optional<std::string> line);

  std::shared_ptr<Connection> inner_;
  FaultPlan plan_;
  std::shared_ptr<chaos_detail::Shared> shared_;
  Mutex mutex_;
  Rng rng_ QTDA_GUARDED_BY(mutex_);
};

/// Decorates a Transport: accepted connections are chaos-wrapped (and
/// possibly dropped outright via fail_accept).  The inner transport must
/// outlive the decorator.  Clients connect through the *inner* transport —
/// faults injected on the server side of the stream exercise both
/// directions (requests corrupt on read, responses drop/tear on write).
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport& inner, FaultPlan plan);
  ~FaultInjectingTransport() override;

  std::shared_ptr<Connection> accept() override;
  void shutdown() override;

  /// Snapshot of the injection counters (safe during operation).
  ChaosStats stats() const;

 private:
  Transport& inner_;
  FaultPlan plan_;
  std::shared_ptr<chaos_detail::Shared> shared_;
  Mutex mutex_;
  Rng accept_rng_ QTDA_GUARDED_BY(mutex_);
  std::uint64_t connections_ QTDA_GUARDED_BY(mutex_) = 0;
};

}  // namespace qtda
