/// \file errors.hpp
/// \brief The serving layer's structured error taxonomy.
///
/// Every failed request is answered with a stable error *code* plus a
/// `retryable` flag, so clients can distinguish "try again" (overloaded,
/// shutdown, transport loss) from "fix the request" (protocol, limit) and
/// "give up" (deadline, internal) without parsing free-text messages.  The
/// codes travel on the wire (`error id=.. code=.. retryable=..`, see
/// protocol.hpp), surface as typed ServeError exceptions in ServeClient,
/// and are counted per code in telemetry as `serve.errors.<code>`.
///
/// | code        | retryable | meaning                                       |
/// |-------------|-----------|-----------------------------------------------|
/// | protocol    | no        | malformed line / unknown verb or key          |
/// | limit       | no        | request exceeds a validation cap              |
/// | overloaded  | yes       | admission queue full (carries retry_after_ms) |
/// | deadline    | no        | deadline expired while queued or executing    |
/// | shutdown    | yes       | server is stopping (retry another replica)    |
/// | internal    | no        | exception escaped the estimator               |
/// | unavailable | yes       | client-side: transport broke mid-request      |
/// | timeout     | yes       | client-side: per-request timeout elapsed      |
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace qtda {

/// Stable request-failure codes.  kNone marks a successful response (never
/// on the wire); kUnavailable/kTimeout are synthesized client-side and do
/// not originate from the server.
enum class ServeErrorCode {
  kNone = 0,
  kProtocol,
  kLimit,
  kOverloaded,
  kDeadline,
  kShutdown,
  kInternal,
  kUnavailable,
  kTimeout,
};

/// Wire name of a code ("protocol", "limit", ...; kNone renders "none").
const char* serve_error_name(ServeErrorCode code);

/// Inverse of serve_error_name.  Unknown names map to kInternal so a newer
/// server's codes degrade to non-retryable on an older client.
ServeErrorCode serve_error_from_name(const std::string& name);

/// Whether an identical retry can reasonably succeed (see the table above).
bool serve_error_retryable(ServeErrorCode code);

/// Bumps the `serve.errors.<code>` telemetry counter (no-op while telemetry
/// is disabled).  Counter references are cached per code — the registry's
/// entries are immortal, so this is safe from any thread.
void count_serve_error(ServeErrorCode code);

/// Typed failure thrown by ServeClient when a request cannot be served
/// (retries exhausted, non-retryable error, timeout).
class ServeError : public Error {
 public:
  ServeError(ServeErrorCode code, const std::string& message,
             std::uint64_t retry_after_ms = 0)
      : Error(std::string(serve_error_name(code)) + ": " + message),
        code_(code),
        retry_after_ms_(retry_after_ms) {}

  ServeErrorCode code() const { return code_; }
  bool retryable() const { return serve_error_retryable(code_); }
  std::uint64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  ServeErrorCode code_;
  std::uint64_t retry_after_ms_;
};

}  // namespace qtda
