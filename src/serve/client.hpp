/// \file client.hpp
/// \brief Blocking client for the qtda_serve protocol, with retries.
///
/// ServeClient wraps a Connection (loopback, Unix socket, or TCP) and
/// matches responses to requests by id, so several threads can share one
/// client — or one thread can pipeline many requests and collect the
/// answers in any order.  This is the reference consumer of the protocol:
/// the example binaries, the bench driver, and the tests all talk through
/// it.
///
/// Constructed with a Dialer and a RetryPolicy, estimate() becomes
/// fault-tolerant: transport failures (connection drop, torn frame,
/// per-attempt timeout) and retryable server errors (overloaded, shutdown)
/// are retried with capped exponential backoff and deterministic jitter,
/// reconnecting through the dialer as needed.  Every retry re-sends the
/// identical parameters under a fresh correlation id, so a retried result
/// is bit-identical to a single-shot one — the serving layer's determinism
/// guarantee survives faults.  Non-retryable errors (protocol, limit,
/// deadline, internal) surface immediately as typed ServeError exceptions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/random.hpp"
#include "common/thread_annotations.hpp"
#include "serve/errors.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace qtda {

/// Retry behavior for ServeClient::estimate.  The defaults describe a
/// single-shot client (max_attempts = 1: no retries, matching the old
/// behavior); chaos tests and resilient callers raise max_attempts and set
/// a per-attempt timeout.
struct RetryPolicy {
  int max_attempts = 1;  ///< total attempts (first try included)
  std::uint64_t initial_backoff_ms = 2;   ///< backoff before the 1st retry
  std::uint64_t max_backoff_ms = 128;     ///< exponential growth cap
  double multiplier = 2.0;                ///< backoff growth factor
  /// Budget for each attempt (send + wait for the response).  A timed-out
  /// attempt is treated as a retryable transport failure — this is what
  /// recovers from black-holed requests (e.g. a corrupted frame the server
  /// could not attribute to an id).  0 = block indefinitely.
  std::uint64_t request_timeout_ms = 0;
  std::uint64_t jitter_seed = 1;  ///< deterministic backoff jitter stream
};

/// Backoff before retry number \p attempt (0-based), in milliseconds:
/// capped exponential scaled into [50%, 100%] by \p jitter01 ∈ [0,1).
/// Pure — exposed for direct testing of the schedule.
std::uint64_t retry_backoff_ms(const RetryPolicy& policy, int attempt,
                               double jitter01);

/// A synchronous protocol client over one (re-dialable) connection.
class ServeClient {
 public:
  /// Creates a new connection, e.g. to reconnect after a drop.
  using Dialer = std::function<std::shared_ptr<Connection>()>;

  /// Single-connection client (no reconnects, no retries).
  explicit ServeClient(std::shared_ptr<Connection> connection);

  /// Resilient client: dials immediately, re-dials after transport
  /// failures, retries per \p policy.
  ServeClient(Dialer dialer, RetryPolicy policy);

  /// Sends a request; returns the id actually used (auto-assigned when the
  /// request carries none).
  std::string send(EstimateRequest request);

  /// Blocks until the response with \p id arrives (responses for other ids
  /// received meanwhile are parked for their own receive calls).  Throws on
  /// a closed connection.
  EstimateResponse receive(const std::string& id);

  /// send + receive (+ retries when the policy allows them) in one call.
  /// Throws ServeError carrying the taxonomy code on a non-retryable
  /// server error or once retries are exhausted.
  EstimateResponse estimate(EstimateRequest request);

  /// Round-trips a `stats` command and returns the raw stats line.
  std::string stats();

  /// Round-trips a `metrics` command and parses the JSON payload.
  MetricsReport metrics();

  /// Round-trips `metrics format=prometheus` and returns the raw text
  /// exposition (including the terminating "# EOF" line).
  std::string metrics_prometheus();

  /// Sends `shutdown` and waits for the acknowledgement.
  void shutdown();

  /// Retries performed by estimate() over this client's lifetime.
  std::uint64_t retries() const { return retries_.load(); }
  /// Re-dials after the initial connection (transport-failure recoveries).
  std::uint64_t reconnects() const { return reconnects_.load(); }

  Connection& connection();

 private:
  std::string read_matching(const std::string& id);
  /// read_matching with a per-call timeout (0 = block).  nullopt with
  /// *timed_out set means the budget elapsed; nullopt without it means the
  /// stream ended.
  std::optional<std::string> read_matching_for(const std::string& id,
                                               std::uint64_t timeout_ms,
                                               bool* timed_out);
  /// Current connection, dialing if needed; throws when disconnected and
  /// no dialer is available.
  std::shared_ptr<Connection> ensure_connected();
  void drop_connection();
  double next_jitter();

  Dialer dialer_;
  RetryPolicy policy_;
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  Mutex mutex_;  ///< guards connection swap, id counter, parked, reads
  std::shared_ptr<Connection> connection_ QTDA_GUARDED_BY(mutex_);
  Rng jitter_rng_ QTDA_GUARDED_BY(mutex_){1};
  std::uint64_t next_id_ QTDA_GUARDED_BY(mutex_) = 1;
  /// id → raw response line
  std::map<std::string, std::string> parked_ QTDA_GUARDED_BY(mutex_);
};

}  // namespace qtda
