/// \file client.hpp
/// \brief Blocking client for the qtda_serve protocol.
///
/// ServeClient wraps a Connection (loopback or Unix socket) and matches
/// responses to requests by id, so several threads can share one client —
/// or one thread can pipeline many requests and collect the answers in any
/// order.  This is the reference consumer of the protocol: the example
/// binaries, the bench driver, and the tests all talk through it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace qtda {

/// A synchronous protocol client over one connection.
class ServeClient {
 public:
  explicit ServeClient(std::shared_ptr<Connection> connection);

  /// Sends a request; returns the id actually used (auto-assigned when the
  /// request carries none).
  std::string send(EstimateRequest request);

  /// Blocks until the response with \p id arrives (responses for other ids
  /// received meanwhile are parked for their own receive calls).  Throws on
  /// a closed connection.
  EstimateResponse receive(const std::string& id);

  /// send + receive in one call.
  EstimateResponse estimate(EstimateRequest request);

  /// Round-trips a `stats` command and returns the raw stats line.
  std::string stats();

  /// Round-trips a `metrics` command and parses the JSON payload.
  MetricsReport metrics();

  /// Round-trips `metrics format=prometheus` and returns the raw text
  /// exposition (including the terminating "# EOF" line).
  std::string metrics_prometheus();

  /// Sends `shutdown` and waits for the acknowledgement.
  void shutdown();

  Connection& connection() { return *connection_; }

 private:
  std::string read_matching(const std::string& id);

  std::shared_ptr<Connection> connection_;
  Mutex mutex_;  ///< guards id counter, parked responses, reads
  std::uint64_t next_id_ QTDA_GUARDED_BY(mutex_) = 1;
  /// id → raw response line
  std::map<std::string, std::string> parked_ QTDA_GUARDED_BY(mutex_);
};

}  // namespace qtda
