#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_annotations.hpp"

namespace qtda {

namespace {

/// One direction of a loopback pair: a line queue with blocking pop.
struct LineQueue {
  Mutex mutex;
  CondVar ready;
  std::deque<std::string> lines QTDA_GUARDED_BY(mutex);
  bool closed QTDA_GUARDED_BY(mutex) = false;

  void push(std::string line) {
    {
      MutexLock lock(mutex);
      if (closed) return;
      lines.push_back(std::move(line));
    }
    ready.notify_one();
  }

  std::optional<std::string> pop() {
    MutexLock lock(mutex);
    while (!closed && lines.empty()) ready.wait(mutex);
    if (lines.empty()) return std::nullopt;  // closed and drained
    std::string line = std::move(lines.front());
    lines.pop_front();
    return line;
  }

  std::optional<std::string> pop_for(std::uint64_t timeout_ms,
                                     bool* timed_out) {
    if (timed_out != nullptr) *timed_out = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    MutexLock lock(mutex);
    while (!closed && lines.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        if (timed_out != nullptr) *timed_out = true;
        return std::nullopt;
      }
      ready.wait_for(mutex, deadline - now);
    }
    if (lines.empty()) return std::nullopt;  // closed and drained
    std::string line = std::move(lines.front());
    lines.pop_front();
    return line;
  }

  void close() {
    {
      MutexLock lock(mutex);
      closed = true;
    }
    ready.notify_all();
  }
};

/// Shared channel of one loopback connection (two directed queues).
struct LoopbackChannel {
  LineQueue to_server;
  LineQueue to_client;

  void close_both() {
    to_server.close();
    to_client.close();
  }
};

/// One endpoint of a loopback channel.
class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackChannel> channel, bool is_server)
      : channel_(std::move(channel)), is_server_(is_server) {}
  ~LoopbackConnection() override { close(); }

  std::optional<std::string> read_line() override {
    return (is_server_ ? channel_->to_server : channel_->to_client).pop();
  }

  std::optional<std::string> read_line_for(std::uint64_t timeout_ms,
                                           bool* timed_out) override {
    return (is_server_ ? channel_->to_server : channel_->to_client)
        .pop_for(timeout_ms, timed_out);
  }

  bool write_line(const std::string& line) override {
    LineQueue& queue = is_server_ ? channel_->to_client : channel_->to_server;
    {
      MutexLock lock(queue.mutex);
      if (queue.closed) return false;
      queue.lines.push_back(line);
    }
    queue.ready.notify_one();
    return true;
  }

  void close() override { channel_->close_both(); }

 private:
  std::shared_ptr<LoopbackChannel> channel_;
  bool is_server_;
};

}  // namespace

struct LoopbackTransport::State {
  Mutex mutex;
  CondVar ready;
  std::deque<std::shared_ptr<Connection>> pending QTDA_GUARDED_BY(mutex);
  bool stopping QTDA_GUARDED_BY(mutex) = false;
};

LoopbackTransport::LoopbackTransport() : state_(std::make_shared<State>()) {}

LoopbackTransport::~LoopbackTransport() { shutdown(); }

std::shared_ptr<Connection> LoopbackTransport::connect() {
  auto channel = std::make_shared<LoopbackChannel>();
  auto client = std::make_shared<LoopbackConnection>(channel, /*is_server=*/false);
  auto server = std::make_shared<LoopbackConnection>(channel, /*is_server=*/true);
  {
    MutexLock lock(state_->mutex);
    QTDA_REQUIRE(!state_->stopping, "connect() on a shut-down transport");
    state_->pending.push_back(std::move(server));
  }
  state_->ready.notify_one();
  return client;
}

std::shared_ptr<Connection> LoopbackTransport::accept() {
  MutexLock lock(state_->mutex);
  while (!state_->stopping && state_->pending.empty())
    state_->ready.wait(state_->mutex);
  if (state_->pending.empty()) return nullptr;
  auto connection = std::move(state_->pending.front());
  state_->pending.pop_front();
  return connection;
}

void LoopbackTransport::shutdown() {
  {
    MutexLock lock(state_->mutex);
    state_->stopping = true;
  }
  state_->ready.notify_all();
}

namespace {

/// Connection over a stream-socket file descriptor.
class FdConnection final : public Connection {
 public:
  explicit FdConnection(int fd) : fd_(fd) {}
  ~FdConnection() override {
    close();
    // The fd is released only here, once no thread can still hold this
    // connection — closing it inside close() would race with a reader
    // blocked in recv and risk the kernel reusing the fd number under it.
    ::close(fd_);
  }

  std::optional<std::string> read_line() override {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;  // signal: retry the read
      if (n <= 0) return std::nullopt;        // EOF, error, or shutdown
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<std::string> read_line_for(std::uint64_t timeout_ms,
                                           bool* timed_out) override {
    if (timed_out != nullptr) *timed_out = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        if (timed_out != nullptr) *timed_out = true;
        return std::nullopt;
      }
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count();
      pollfd poller{fd_, POLLIN, 0};
      const int ready = ::poll(
          &poller, 1, static_cast<int>(std::max<long long>(1, remaining_ms)));
      if (ready < 0 && errno != EINTR) return std::nullopt;
      if (ready <= 0) continue;  // timeout slice or EINTR: re-check deadline
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;  // EOF, error, or shutdown
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool write_line(const std::string& line) override {
    MutexLock lock(write_mutex_);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of killing the
      // process with SIGPIPE; EINTR restarts the send so a signal cannot
      // tear a frame mid-line.
      const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  void close() override {
    if (!closed_.exchange(true)) {
      // shutdown() wakes a reader blocked in recv on another thread and
      // fails every later send/recv, while keeping the fd number reserved
      // until the destructor's ::close.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  int fd_;
  std::string buffer_;  ///< only the (single) reader thread touches this
  Mutex write_mutex_;   ///< guards the fd's write side (whole-line framing)
  std::atomic<bool> closed_{false};
};

sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  QTDA_REQUIRE(path.size() < sizeof(address.sun_path),
               "socket path too long: " << path);
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

UnixSocketTransport::UnixSocketTransport(std::string path)
    : path_(std::move(path)) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  QTDA_REQUIRE(listen_fd_ >= 0, "socket() failed for " << path_);
  ::unlink(path_.c_str());  // replace a stale socket file
  sockaddr_un address = make_unix_address(path_);
  QTDA_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)) == 0,
               "bind() failed for " << path_);
  QTDA_REQUIRE(::listen(listen_fd_, 64) == 0, "listen() failed for " << path_);
}

UnixSocketTransport::~UnixSocketTransport() {
  shutdown();
  // Deferred from shutdown(): the acceptor thread may still be inside
  // poll/accept on this fd there; by destruction time it has joined.
  ::close(listen_fd_);
  ::unlink(path_.c_str());
}

std::shared_ptr<Connection> UnixSocketTransport::accept() {
  while (!stopping_.load()) {
    pollfd poller{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poller, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!stopping_.load())
        QTDA_ERROR << "accept() failed on " << path_ << ": "
                   << std::strerror(errno);
      continue;
    }
    return std::make_shared<FdConnection>(fd);
  }
  return nullptr;
}

void UnixSocketTransport::shutdown() {
  // shutdown() alone: it wakes the acceptor's poll and fails its accept,
  // while the fd number stays reserved until ~UnixSocketTransport closes
  // it (closing here would race with the still-polling acceptor thread).
  if (!stopping_.exchange(true)) ::shutdown(listen_fd_, SHUT_RDWR);
}

std::shared_ptr<Connection> connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  QTDA_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_un address = make_unix_address(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    QTDA_REQUIRE(false, "connect() failed for " << path);
  }
  return std::make_shared<FdConnection>(fd);
}

namespace {

sockaddr_in make_tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  QTDA_REQUIRE(::inet_pton(AF_INET, host.c_str(), &address.sin_addr) == 1,
               "invalid IPv4 address \"" << host << '"');
  return address;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(std::uint16_t port, std::string host)
    : host_(std::move(host)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  QTDA_REQUIRE(listen_fd_ >= 0, "socket() failed for " << host_);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address = make_tcp_address(host_, port);
  QTDA_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)) == 0,
               "bind() failed for " << host_ << ':' << port);
  QTDA_REQUIRE(::listen(listen_fd_, 64) == 0,
               "listen() failed for " << host_ << ':' << port);
  // Port 0 asks the kernel for an ephemeral port; read back the real one.
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  QTDA_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                             &bound_size) == 0,
               "getsockname() failed for " << host_);
  port_ = ntohs(bound.sin_port);
}

TcpTransport::~TcpTransport() {
  shutdown();
  // Deferred from shutdown(), same reasoning as ~UnixSocketTransport.
  ::close(listen_fd_);
}

std::shared_ptr<Connection> TcpTransport::accept() {
  while (!stopping_.load()) {
    pollfd poller{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poller, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!stopping_.load())
        QTDA_ERROR << "accept() failed on " << host_ << ':' << port_ << ": "
                   << std::strerror(errno);
      continue;
    }
    set_nodelay(fd);
    return std::make_shared<FdConnection>(fd);
  }
  return nullptr;
}

void TcpTransport::shutdown() {
  // See UnixSocketTransport::shutdown for why the fd closes in the dtor.
  if (!stopping_.exchange(true)) ::shutdown(listen_fd_, SHUT_RDWR);
}

std::shared_ptr<Connection> connect_tcp(const std::string& host,
                                        std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  QTDA_REQUIRE(fd >= 0, "socket() failed");
  sockaddr_in address = make_tcp_address(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    QTDA_REQUIRE(false, "connect() failed for " << host << ':' << port);
  }
  set_nodelay(fd);
  return std::make_shared<FdConnection>(fd);
}

}  // namespace qtda
