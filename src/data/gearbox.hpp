/// \file gearbox.hpp
/// \brief Synthetic gearbox vibration signals (healthy vs surface fault).
///
/// Substitution for the Southeast University mechanical dataset used in the
/// paper's §5 (see DESIGN.md §4).  The generator follows the standard
/// vibration phenomenology of a single-stage gearbox:
///
///   healthy:  x(t) = Σ_h a_h sin(2π h f_mesh t + φ_h) · (1 + m·sin(2π f_rot t))
///             + white noise
///   faulty:   healthy + impulse train at the rotation frequency, each
///             impulse a decaying resonance burst (surface defects strike
///             once per revolution), plus stronger mesh-sideband modulation.
///
/// The fault term injects loops into the Takens embedding of the signal,
/// which is exactly the structural difference the Betti-number features
/// detect — preserving the paper's code path end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace qtda {

/// Gearbox condition.
enum class GearboxCondition { kHealthy, kSurfaceFault };

/// Signal model parameters (defaults give a well-separated two-class task).
struct GearboxSignalOptions {
  double sampling_rate_hz = 5120.0;
  double rotation_hz = 30.0;        ///< shaft frequency (fault repetition)
  double mesh_hz = 600.0;           ///< gear-mesh fundamental
  std::size_t mesh_harmonics = 3;   ///< harmonics of the mesh tone
  double modulation_depth = 0.1;    ///< healthy amplitude modulation
  double fault_impulse_amplitude = 2.0;
  double fault_resonance_hz = 1800.0;
  double fault_damping = 400.0;     ///< impulse decay rate (1/s)
  double noise_stddev = 0.2;
};

/// Generates \p length samples of one condition.
std::vector<double> generate_gearbox_signal(GearboxCondition condition,
                                            std::size_t length,
                                            const GearboxSignalOptions& options,
                                            Rng& rng);

/// One labelled processed sample: six condition-monitoring features.
struct GearboxFeatureSample {
  std::vector<double> features;  ///< size 6
  int label = 0;                 ///< 1 = faulty
};

/// Reproduces the shape of the paper's processed dataset: \p total samples
/// of which \p healthy are healthy windows (paper: 255 total, 51 healthy).
/// Each sample is a fresh signal window of \p window samples reduced to six
/// features (see features.hpp).  Faulty samples draw a random fault
/// severity in [0.6, 1.4]× the nominal impulse amplitude so the class is
/// not a single point.
std::vector<GearboxFeatureSample> generate_gearbox_feature_dataset(
    std::size_t total, std::size_t healthy, std::size_t window,
    const GearboxSignalOptions& options, Rng& rng);

}  // namespace qtda
