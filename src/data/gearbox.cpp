#include "data/gearbox.hpp"

#include <cmath>

#include "common/error.hpp"
#include "data/features.hpp"
#include "quantum/types.hpp"

namespace qtda {

std::vector<double> generate_gearbox_signal(GearboxCondition condition,
                                            std::size_t length,
                                            const GearboxSignalOptions& options,
                                            Rng& rng) {
  QTDA_REQUIRE(length > 0, "signal length must be positive");
  QTDA_REQUIRE(options.sampling_rate_hz > 0.0, "sampling rate must be positive");
  const double dt = 1.0 / options.sampling_rate_hz;
  std::vector<double> x(length, 0.0);

  // Random but fixed-per-signal harmonic phases.
  std::vector<double> phases(options.mesh_harmonics);
  for (double& phi : phases) phi = rng.uniform(0.0, kTwoPi);
  const double phase_rot = rng.uniform(0.0, kTwoPi);

  for (std::size_t i = 0; i < length; ++i) {
    const double t = static_cast<double>(i) * dt;
    const double modulation =
        1.0 + options.modulation_depth *
                  std::sin(kTwoPi * options.rotation_hz * t + phase_rot);
    double mesh = 0.0;
    for (std::size_t h = 0; h < options.mesh_harmonics; ++h) {
      const double harmonic = static_cast<double>(h + 1);
      const double amplitude = 1.0 / harmonic;  // decaying harmonic series
      mesh += amplitude *
              std::sin(kTwoPi * options.mesh_hz * harmonic * t + phases[h]);
    }
    x[i] = modulation * mesh + rng.normal(0.0, options.noise_stddev);
  }

  if (condition == GearboxCondition::kSurfaceFault) {
    // One resonance burst per shaft revolution.
    const double period = 1.0 / options.rotation_hz;
    const double jitter = rng.uniform(0.0, period);
    for (std::size_t i = 0; i < length; ++i) {
      const double t = static_cast<double>(i) * dt;
      const double since_impulse = std::fmod(t + jitter, period);
      x[i] += options.fault_impulse_amplitude *
              std::exp(-options.fault_damping * since_impulse) *
              std::sin(kTwoPi * options.fault_resonance_hz * since_impulse);
    }
  }
  return x;
}

std::vector<GearboxFeatureSample> generate_gearbox_feature_dataset(
    std::size_t total, std::size_t healthy, std::size_t window,
    const GearboxSignalOptions& options, Rng& rng) {
  QTDA_REQUIRE(healthy <= total, "more healthy samples than total");
  QTDA_REQUIRE(window >= 16, "window too short for stable features");
  std::vector<GearboxFeatureSample> samples;
  samples.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const bool is_healthy = i < healthy;
    GearboxSignalOptions sample_options = options;
    if (!is_healthy) {
      // Spread fault severities so the faulty class has internal variance.
      sample_options.fault_impulse_amplitude *= rng.uniform(0.6, 1.4);
    }
    const auto signal = generate_gearbox_signal(
        is_healthy ? GearboxCondition::kHealthy
                   : GearboxCondition::kSurfaceFault,
        window, sample_options, rng);
    samples.push_back({condition_monitoring_features(signal),
                       is_healthy ? 0 : 1});
  }
  return samples;
}

}  // namespace qtda
