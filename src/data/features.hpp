/// \file features.hpp
/// \brief Six condition-monitoring features + the feature point cloud.
///
/// The paper's second §5 experiment (AutoFuse preprocessing) reduces each
/// window to six statistical features and then forms "four points in a 3D
/// space … by taking three features at a time".  We use the standard
/// vibration set {mean |x|, RMS, standard deviation, skewness, kurtosis,
/// crest factor} and the four consecutive feature triples
/// (f0f1f2, f1f2f3, f2f3f4, f3f4f5) as the 3-D points.
#pragma once

#include <vector>

#include "topology/point_cloud.hpp"

namespace qtda {

/// The six features, in the order documented above.
std::vector<double> condition_monitoring_features(
    const std::vector<double>& signal);

/// Four 3-D points from a six-feature vector (consecutive triples).
PointCloud feature_point_cloud(const std::vector<double>& six_features);

}  // namespace qtda
