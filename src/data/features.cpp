#include "data/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace qtda {

std::vector<double> condition_monitoring_features(
    const std::vector<double>& signal) {
  QTDA_REQUIRE(signal.size() >= 4, "signal too short for features");
  double mean_abs = 0.0;
  double peak = 0.0;
  for (double v : signal) {
    mean_abs += std::abs(v);
    peak = std::max(peak, std::abs(v));
  }
  mean_abs /= static_cast<double>(signal.size());
  const double root_mean_square = rms(signal);
  const double crest =
      root_mean_square > 1e-15 ? peak / root_mean_square : 0.0;
  return {mean_abs,          root_mean_square, stddev(signal),
          skewness(signal),  kurtosis(signal), crest};
}

PointCloud feature_point_cloud(const std::vector<double>& six_features) {
  QTDA_REQUIRE(six_features.size() == 6,
               "feature point cloud needs exactly six features, got "
                   << six_features.size());
  std::vector<std::vector<double>> points;
  points.reserve(4);
  for (std::size_t start = 0; start + 3 <= 6; ++start) {
    points.push_back({six_features[start], six_features[start + 1],
                      six_features[start + 2]});
  }
  return PointCloud(std::move(points));
}

}  // namespace qtda
