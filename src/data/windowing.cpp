#include "data/windowing.hpp"

#include "common/error.hpp"

namespace qtda {

std::vector<std::vector<double>> split_windows(
    const std::vector<double>& series, std::size_t window) {
  QTDA_REQUIRE(window > 0, "window length must be positive");
  std::vector<std::vector<double>> out;
  out.reserve(series.size() / window);
  for (std::size_t start = 0; start + window <= series.size();
       start += window) {
    out.emplace_back(series.begin() + static_cast<std::ptrdiff_t>(start),
                     series.begin() + static_cast<std::ptrdiff_t>(start +
                                                                  window));
  }
  return out;
}

std::vector<std::vector<double>> sample_windows(
    const std::vector<double>& series, std::size_t window, std::size_t count,
    Rng& rng) {
  const auto all = split_windows(series, window);
  QTDA_REQUIRE(!all.empty(), "series shorter than one window");
  std::vector<std::vector<double>> out;
  out.reserve(count);
  if (count <= all.size()) {
    std::vector<std::size_t> order = rng.permutation(all.size());
    for (std::size_t i = 0; i < count; ++i) out.push_back(all[order[i]]);
  } else {
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(all[rng.uniform_index(all.size())]);
  }
  return out;
}

}  // namespace qtda
