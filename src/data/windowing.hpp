/// \file windowing.hpp
/// \brief Splitting long time series into fixed-length windows.
///
/// The paper's first §5 experiment creates samples "by taking 500 time
/// stamps at a time" and drawing an equal number of random windows from
/// each class.
#pragma once

#include <vector>

#include "common/random.hpp"

namespace qtda {

/// All non-overlapping windows of \p window samples, in order.  A trailing
/// remainder shorter than the window is discarded.
std::vector<std::vector<double>> split_windows(
    const std::vector<double>& series, std::size_t window);

/// Draws \p count windows uniformly at random (with replacement when count
/// exceeds the available windows, without otherwise).
std::vector<std::vector<double>> sample_windows(
    const std::vector<double>& series, std::size_t window, std::size_t count,
    Rng& rng);

}  // namespace qtda
