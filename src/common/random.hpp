/// \file random.hpp
/// \brief Deterministic, splittable random number generation.
///
/// Every stochastic component in the library (shot sampling, random
/// complexes, synthetic data, noise channels) draws from qtda::Rng so that
/// experiments are reproducible from a single seed.  Rng wraps a
/// xoshiro256** engine seeded through SplitMix64, following the reference
/// implementation by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace qtda {

/// SplitMix64: used to expand a 64-bit seed into engine state and to derive
/// independent child seeds ("splitting") for parallel workers.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// std::*_distribution when a textbook distribution is needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine deterministically from \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 random bits.
  result_type operator()() { return next(); }
  result_type next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Requires n > 0.  Unbiased (Lemire).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached spare value).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Binomial(n, p) draw.  Exact inversion for small n, normal-approximation
  /// with continuity correction plus clamping for large n·p·(1−p).
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Derives an independent child generator; children with distinct indices
  /// are statistically independent streams of this parent.
  Rng split(std::uint64_t child_index) const;

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace qtda
