/// \file cancel.hpp
/// \brief Cooperative per-thread deadlines for long-running executions.
///
/// The serving layer's deadlines originally bounded only *queue* time — a
/// request already executing ran to completion no matter how late it was.
/// This header closes that gap without preemption: a worker thread arms a
/// ScopedDeadline before executing, and the execution spine calls
/// checkpoint() at natural chunk boundaries (between plan ops, between
/// noise trajectories, between sampled-basis evolutions).  A checkpoint
/// past the deadline throws CancelledError, which the server maps to the
/// `deadline` error code.
///
/// Design constraints:
///  - **Zero-cost when unarmed.**  checkpoint() with no active deadline is
///    one thread-local load and a compare — safe to sprinkle through hot
///    loops whose bodies are O(2^n) passes.
///  - **Never changes arithmetic.**  A checkpoint either returns or throws;
///    it reads the clock only while a deadline is armed, so bit-identity
///    fingerprints cannot move.
///  - **Thread-local by construction.**  The deadline binds to the thread
///    that armed it; internally parallel backends keep their pool threads
///    unarmed (the plan walk runs on the arming thread).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/error.hpp"

namespace qtda {

/// Thrown by cancel::checkpoint() once the armed deadline has passed.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

namespace cancel {

namespace detail {
/// Armed deadline as steady_clock nanoseconds-since-epoch; 0 = unarmed.
inline thread_local std::int64_t g_deadline_ns = 0;

inline std::int64_t to_ns(std::chrono::steady_clock::time_point when) {
  const std::int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              when.time_since_epoch())
                              .count();
  return ns == 0 ? 1 : ns;  // keep 0 reserved for "unarmed"
}
}  // namespace detail

/// True while the calling thread has a deadline armed.
inline bool deadline_armed() { return detail::g_deadline_ns != 0; }

/// Arms a deadline for the calling thread's lifetime of this scope; nests
/// (an inner scope restores the outer deadline on destruction).
class ScopedDeadline {
 public:
  explicit ScopedDeadline(std::chrono::steady_clock::time_point deadline)
      : previous_(detail::g_deadline_ns) {
    detail::g_deadline_ns = detail::to_ns(deadline);
  }
  ~ScopedDeadline() { detail::g_deadline_ns = previous_; }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  std::int64_t previous_;
};

/// Throws CancelledError when the armed deadline has passed; no-op (one
/// thread-local load) when unarmed.
inline void checkpoint() {
  if (detail::g_deadline_ns == 0) return;
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  if (now >= detail::g_deadline_ns)
    throw CancelledError("deadline exceeded during execution");
}

}  // namespace cancel
}  // namespace qtda
