#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace qtda {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
/// Serializes the fprintf below so concurrent log lines never interleave
/// mid-line; stderr itself is the only state it guards.
Mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel log_level_from_name(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  QTDA_REQUIRE(false, "unknown log level \"" << name
                                             << "\" (valid: debug, info, "
                                                "warn, error)");
  return LogLevel::kInfo;
}

void apply_log_level_from_env() {
  const char* env = std::getenv("QTDA_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  set_log_level(log_level_from_name(env));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[qtda %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace qtda
