#include "common/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace qtda {
namespace telemetry {

namespace detail {

std::atomic<int> g_enabled_state{-1};

namespace {

Mutex g_init_mutex;
/// Set once by env init, read by the atexit hook.
std::string g_trace_path QTDA_GUARDED_BY(g_init_mutex);

Mutex g_trace_registry_mutex;
std::vector<std::shared_ptr<ThreadTrace>> g_thread_traces
    QTDA_GUARDED_BY(g_trace_registry_mutex);
std::atomic<std::uint32_t> g_next_thread_id{0};
std::atomic<bool> g_trace_active{false};

void write_trace_at_exit() {
  std::string path;
  {
    MutexLock lock(g_init_mutex);
    path = g_trace_path;
  }
  if (!path.empty()) write_chrome_trace(path);
}

}  // namespace

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

bool enabled_slow() {
  MutexLock lock(g_init_mutex);
  const int state = g_enabled_state.load(std::memory_order_relaxed);
  if (state >= 0) return state > 0;  // raced with another initializer
  int value = 0;
  if (const char* env = std::getenv("QTDA_TELEMETRY")) {
    const std::string text(env);
    QTDA_REQUIRE(text == "0" || text == "1",
                 "QTDA_TELEMETRY must be 0 or 1, got \"" << text << '"');
    value = text == "1" ? 1 : 0;
  }
  if (const char* trace = std::getenv("QTDA_TRACE")) {
    if (*trace != '\0') {
      value = 1;  // a requested trace implies telemetry
      g_trace_path = trace;
      start_trace();
      std::atexit(write_trace_at_exit);
    }
  }
  g_enabled_state.store(value, std::memory_order_relaxed);
  return value > 0;
}

ThreadTrace& thread_trace() {
  thread_local std::shared_ptr<ThreadTrace> trace = [] {
    auto owned = std::make_shared<ThreadTrace>();
    MutexLock lock(g_trace_registry_mutex);
    owned->id = g_next_thread_id.fetch_add(1);
    g_thread_traces.push_back(owned);
    return owned;
  }();
  return *trace;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t Counter::slot_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1);
  return slot % kSlots;
}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < (std::uint64_t{1} << kSubBits)) {
    return static_cast<std::size_t>(value);
  }
  // Position of the most significant bit: the octave.  The kSubBits bits
  // just below it pick the sub-bucket.
  unsigned msb = 63;
  while ((value >> msb) == 0) --msb;
  const unsigned octave = msb - kSubBits + 1;
  const std::size_t sub = static_cast<std::size_t>(
      (value >> (msb - kSubBits)) & ((std::uint64_t{1} << kSubBits) - 1));
  return (static_cast<std::size_t>(octave) << kSubBits) | sub;
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) {
  const std::size_t octave = index >> kSubBits;
  const std::uint64_t sub = index & ((std::size_t{1} << kSubBits) - 1);
  if (octave == 0) return sub;
  return ((std::uint64_t{1} << kSubBits) | sub) << (octave - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) {
  const std::size_t octave = index >> kSubBits;
  const std::uint64_t sub = index & ((std::size_t{1} << kSubBits) - 1);
  if (octave == 0) return sub;
  // Next sub-bucket's lower bound minus one; the top bucket saturates.
  return ((((std::uint64_t{1} << kSubBits) | sub) + 1) << (octave - 1)) - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t count = buckets_[i].load(std::memory_order_relaxed);
    if (count == 0) continue;
    out.count += count;
    out.buckets.emplace_back(i, count);
  }
  return out;
}

void Histogram::reset() {
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  std::vector<std::pair<std::size_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets) {
    const std::uint64_t next = cumulative + bucket_count;
    if (static_cast<double>(next) >= target) {
      const double lo =
          static_cast<double>(Histogram::bucket_lower_bound(index));
      const double hi =
          static_cast<double>(Histogram::bucket_upper_bound(index));
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(bucket_count);
      return lo + (hi - lo) * std::min(std::max(within, 0.0), 1.0);
    }
    cumulative = next;
  }
  return static_cast<double>(
      Histogram::bucket_upper_bound(buckets.back().first));
}

struct Registry::Impl {
  mutable Mutex mutex;
  // Entries are heap-allocated and never freed: the macros cache references
  // for the process lifetime, and metrics must survive static destruction
  // order (the atexit trace writer may still run spans).  The mutex guards
  // the maps; the pointed-to metrics are internally synchronized atomics.
  std::map<std::string, Counter*> counters QTDA_GUARDED_BY(mutex);
  std::map<std::string, Gauge*> gauges QTDA_GUARDED_BY(mutex);
  std::map<std::string, Histogram*> histograms QTDA_GUARDED_BY(mutex);
};

Registry::Impl& Registry::impl() const {
  static Impl* instance = new Impl();  // intentionally leaked, see above
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  Counter*& entry = state.counters[name];
  if (entry == nullptr) entry = new Counter();
  return *entry;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  Gauge*& entry = state.gauges[name];
  if (entry == nullptr) entry = new Gauge();
  return *entry;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  Histogram*& entry = state.histograms[name];
  if (entry == nullptr) entry = new Histogram();
  return *entry;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  MetricsSnapshot out;
  for (const auto& [name, counter] : state.counters)
    out.counters.emplace_back(name, counter->value());
  for (const auto& [name, gauge] : state.gauges)
    out.gauges.emplace_back(name, gauge->value());
  for (const auto& [name, histogram] : state.histograms)
    out.histograms.emplace_back(name, histogram->snapshot());
  return out;
}

void Registry::reset_values() {
  Impl& state = impl();
  MutexLock lock(state.mutex);
  for (const auto& [name, counter] : state.counters) counter->reset();
  for (const auto& [name, gauge] : state.gauges) gauge->reset();
  for (const auto& [name, histogram] : state.histograms) histogram->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

void start_trace() { detail::g_trace_active.store(true); }

bool trace_active() {
  return detail::g_trace_active.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> stop_trace() {
  detail::g_trace_active.store(false);
  std::vector<TraceEvent> events;
  {
    MutexLock lock(detail::g_trace_registry_mutex);
    for (const auto& trace : detail::g_thread_traces) {
      // Spans on live threads may still be appending (they loaded
      // g_trace_active before the store above); the per-trace lock makes
      // the drain atomic against each push.
      MutexLock trace_lock(trace->mutex);
      events.insert(events.end(), trace->events.begin(), trace->events.end());
      trace->events.clear();
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return events;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << event.name << "\",\"cat\":\"qtda\","
        << "\"ph\":\"X\",\"pid\":1,\"tid\":" << event.thread
        << ",\"ts\":" << static_cast<double>(event.start_ns) / 1000.0
        << ",\"dur\":" << static_cast<double>(event.duration_ns) / 1000.0
        << ",\"args\":{\"depth\":" << event.depth << "}}";
  }
  out << "]}";
  return out.str();
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<TraceEvent> events = stop_trace();
  std::ofstream file(path);
  if (!file) return false;
  file << chrome_trace_json(events) << '\n';
  return static_cast<bool>(file);
}

std::string render_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.counters.empty()) {
    out << "telemetry counters:\n";
    for (const auto& [name, value] : snapshot.counters)
      out << "  " << name << " = " << value << '\n';
  }
  if (!snapshot.gauges.empty()) {
    out << "telemetry gauges:\n";
    for (const auto& [name, value] : snapshot.gauges)
      out << "  " << name << " = " << value << '\n';
  }
  if (!snapshot.histograms.empty()) {
    out << "telemetry histograms:\n";
    for (const auto& [name, histogram] : snapshot.histograms) {
      out << "  " << name << ": count=" << histogram.count
          << " mean=" << histogram.mean()
          << " p50=" << histogram.quantile(0.50)
          << " p95=" << histogram.quantile(0.95)
          << " p99=" << histogram.quantile(0.99) << '\n';
    }
  }
  return out.str();
}

}  // namespace telemetry
}  // namespace qtda
