#include "common/cpu_features.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace qtda {

std::string simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "?";
}

SimdLevel detected_simd_level() {
#if defined(__x86_64__) || defined(__i386__)
  static const SimdLevel probed = [] {
    __builtin_cpu_init();
    // The AVX-512 kernels use F (foundation), DQ (vandpd/vxorpd on zmm) and
    // VL (mixed-width shuffles); all three ship together on every AVX-512
    // server core since Skylake-SP.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return SimdLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    return SimdLevel::kScalar;
  }();
  return probed;
#else
  return SimdLevel::kScalar;
#endif
}

std::optional<SimdLevel> simd_level_from_env() {
  const char* value = std::getenv("QTDA_SIMD");
  if (value == nullptr || *value == '\0') return std::nullopt;
  const std::string name(value);
  if (name == "auto") return std::nullopt;
  if (name == "0") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  QTDA_REQUIRE(false, "QTDA_SIMD=\"" << name
                                     << "\" is not a valid SIMD level (valid: "
                                        "0, avx2, avx512, auto)");
  return std::nullopt;
}

SimdLevel active_simd_level() {
  // Resolved once: mid-run environment edits must not flip kernels between
  // levels (the two state-vector engines promise bit-identical results,
  // which requires every kernel of a run to dispatch the same way).
  static const SimdLevel active = [] {
    const SimdLevel detected = detected_simd_level();
    if (const std::optional<SimdLevel> forced = simd_level_from_env())
      return std::min(*forced, detected);
    return detected;
  }();
  return active;
}

}  // namespace qtda
