#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - m) * (x - m);
  return total / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
  QTDA_REQUIRE(!xs.empty(), "quantile of an empty sample");
  QTDA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1], got " << q);
  std::sort(xs.begin(), xs.end());
  const double h = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

FiveNumberSummary five_number_summary(std::vector<double> xs) {
  QTDA_REQUIRE(!xs.empty(), "five_number_summary of an empty sample");
  std::sort(xs.begin(), xs.end());
  FiveNumberSummary s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.back();
  s.q1 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q3 = quantile(xs, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_low = s.max;
  s.whisker_high = s.min;
  for (double x : xs) {
    if (x >= lo_fence) {
      s.whisker_low = std::min(s.whisker_low, x);
      break;  // xs sorted: first in-fence point is the low whisker
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      s.whisker_high = *it;
      break;
    }
  }
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) ++s.outliers;
  }
  return s;
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  QTDA_REQUIRE(xs.size() == ys.size(), "correlation needs equal sizes");
  QTDA_REQUIRE(xs.size() >= 2, "correlation needs n >= 2");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double skewness(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  const double g1 = m3 / std::pow(m2, 1.5);
  const auto dn = static_cast<double>(n);
  return g1 * std::sqrt(dn * (dn - 1.0)) / (dn - 2.0);
}

double kurtosis(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2);
}

double rms(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x * x;
  return std::sqrt(total / static_cast<double>(xs.size()));
}

}  // namespace qtda
