/// \file logging.hpp
/// \brief Minimal leveled logging for the harnesses and examples.
///
/// The library itself never logs from hot paths; logging exists for the
/// experiment drivers, where progress visibility matters for multi-minute
/// sweeps.  Thread-safe: each message is formatted locally and written under
/// a single mutex.
#pragma once

#include <sstream>
#include <string>

namespace qtda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.  Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name ("debug", "info", "warn", "error").  Throws
/// qtda::Error naming the valid spellings on anything else.
LogLevel log_level_from_name(const std::string& name);

/// Applies QTDA_LOG_LEVEL from the environment when set, failing fast on a
/// bad value (same contract as the QTDA_SIMULATOR-style overrides: a typo'd
/// deployment dies loudly instead of running at the wrong verbosity).
void apply_log_level_from_env();

/// Writes one formatted line to stderr (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace qtda

#define QTDA_LOG(level) ::qtda::detail::LogLine(level)
#define QTDA_INFO QTDA_LOG(::qtda::LogLevel::kInfo)
#define QTDA_WARN QTDA_LOG(::qtda::LogLevel::kWarn)
#define QTDA_ERROR QTDA_LOG(::qtda::LogLevel::kError)
#define QTDA_DEBUG QTDA_LOG(::qtda::LogLevel::kDebug)
