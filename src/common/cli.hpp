/// \file cli.hpp
/// \brief Tiny command-line flag parser for examples and benches.
///
/// Supports `--name value`, `--name=value` and boolean `--flag` forms, with
/// typed getters and defaults.  Unknown flags are collected so harnesses can
/// pass leftovers to google-benchmark.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qtda {

/// Parsed command line.
class CliArgs {
 public:
  /// Parses argv; flags must start with "--".  A flag followed by another
  /// flag (or end of argv) is treated as boolean true.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Comma-separated list of integers, e.g. "--shots=100,1000,10000".
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Name of the program (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace qtda
