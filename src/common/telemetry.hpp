/// \file telemetry.hpp
/// \brief Process-wide telemetry: counters, gauges, latency histograms, and
/// RAII trace spans.
///
/// Design constraints, in order:
///
///  1. **Zero-cost when disabled.**  Every instrumented site checks one
///     relaxed atomic (`telemetry::enabled()`) and does nothing else.  The
///     default is disabled, so the golden bit-identity fingerprints and the
///     micro-bench baselines see the pre-telemetry code paths unchanged —
///     instrumentation never touches arithmetic, only wraps it in timing.
///  2. **No allocation on hot paths.**  Registry entries are created once
///     (the QTDA_SPAN / QTDA_COUNTER_ADD macros cache a `static` reference)
///     and never destroyed, so a cached reference stays valid for the
///     process lifetime.  Counter increments are sharded relaxed atomics;
///     histogram records are one atomic add into a fixed bucket array.
///  3. **Deterministic aggregation.**  Histograms use a fixed log-bucket
///     layout (8 sub-buckets per power of two, values < 8 exact), so
///     merging two snapshots is plain per-bucket count addition and the
///     same samples always land in the same buckets on every host.
///
/// Tracing: when a trace is active (QTDA_TRACE=out.json or start_trace()),
/// each span additionally appends one event to a thread-local buffer with
/// its nesting depth; stop_trace() collects every thread's events and
/// chrome_trace_json() renders them as Chrome-trace "X" (complete) events —
/// load the file in any about://tracing-compatible viewer.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace qtda {
namespace telemetry {

namespace detail {
/// -1 = not yet initialized from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_enabled_state;
/// Slow path: parses QTDA_TELEMETRY / QTDA_TRACE (fail-fast on bad values)
/// and stores the result.  Called at most a handful of times.
bool enabled_slow();
/// Monotonic nanoseconds since process start (small, positive values keep
/// the Chrome-trace timestamps readable).
std::uint64_t now_ns();
}  // namespace detail

/// True when telemetry is collecting.  One relaxed load on the fast path;
/// first call lazily initializes from QTDA_TELEMETRY / QTDA_TRACE so any
/// binary — benches included — honors the env without code changes.
inline bool enabled() {
  const int state = detail::g_enabled_state.load(std::memory_order_relaxed);
  if (state >= 0) return state > 0;
  return detail::enabled_slow();
}

/// Programmatic override (the daemon and --stats drivers enable; tests
/// flip both ways).  Wins over the environment.
void set_enabled(bool on);

/// Monotonically increasing event count.  Increments land in one of a few
/// cache-line-sized slots chosen by thread, so concurrent hammering does
/// not bounce a single line; value() sums the slots.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    slots_[slot_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Slot& slot : slots_)
      total += slot.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  static constexpr std::size_t kSlots = 8;
  static std::size_t slot_index();
  std::array<Slot, kSlots> slots_;
};

/// A signed level (queue depth, bytes held, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A deterministic snapshot of one histogram: total count, total sum, and
/// the non-empty (bucket index, count) pairs in ascending index order.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;

  /// Adds another snapshot bucket-for-bucket (the fixed layout makes this
  /// exact: merged quantiles equal quantiles of the concatenated samples
  /// up to bucket resolution).
  void merge(const HistogramSnapshot& other);

  /// Approximate q-quantile (q in [0, 1]) by linear interpolation inside
  /// the covering bucket.  Returns 0 for an empty snapshot.
  double quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-bucketed histogram of non-negative integer samples (latencies in
/// nanoseconds, batch sizes, ...).  Fixed layout: values below 8 get exact
/// unit buckets; above, each power-of-two octave splits into 8 sub-buckets
/// (≤12.5% relative width).  Recording is lock-free and allocation-free.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr std::size_t kNumBuckets = (64 - kSubBits + 1)
                                             << kSubBits;  // 496

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Maps a sample to its bucket.  Pure function of the value — the
  /// deterministic-merge contract.
  static std::size_t bucket_index(std::uint64_t value);
  /// Largest value landing in \p index (inclusive).
  static std::uint64_t bucket_upper_bound(std::size_t index);
  /// Smallest value landing in \p index.
  static std::uint64_t bucket_lower_bound(std::size_t index);

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Everything the registry holds, copied out for rendering.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// The process-wide name → metric table.  Lookups take a mutex; entries are
/// never destroyed, so references returned here stay valid forever — cache
/// them in a `static` at the call site (the macros below do).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copies every metric, names sorted ascending.
  MetricsSnapshot snapshot() const;

  /// Zeroes every value (registrations survive).  For tests and drivers
  /// wanting a per-run snapshot; not atomic across metrics.
  void reset_values();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The single process-wide registry.
Registry& registry();

/// One collected trace event (a completed span).
struct TraceEvent {
  const char* name;          ///< span name (string literal at the site)
  std::uint64_t start_ns;    ///< from the process-start monotonic origin
  std::uint64_t duration_ns;
  std::uint32_t thread;      ///< small dense per-thread id
  std::uint32_t depth;       ///< nesting depth on that thread at entry
};

/// Starts collecting span events (idempotent).  Spans only record events
/// while both enabled() and trace_active() hold.
void start_trace();
bool trace_active();
/// Stops collection and returns every event recorded since start_trace(),
/// sorted by (thread, start).  Call after the traced work has quiesced.
std::vector<TraceEvent> stop_trace();

/// Renders events as Chrome-trace JSON ({"traceEvents": [...]}).
std::string chrome_trace_json(const std::vector<TraceEvent>& events);
/// stop_trace() + render + write to \p path.  Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

namespace detail {
struct ThreadTrace {
  /// Guards events only: the owning thread appends (span end) while
  /// stop_trace() drains every registered trace from whichever thread asks.
  /// Uncontended in steady state — stop_trace is a once-per-trace-session
  /// operation — so span end pays one uncontended lock while tracing.
  Mutex mutex;
  std::vector<TraceEvent> events QTDA_GUARDED_BY(mutex);
  std::uint32_t depth = 0;  ///< owning thread only; never read across threads
  std::uint32_t id = 0;     ///< written once at registration by the owner
};
ThreadTrace& thread_trace();
}  // namespace detail

/// RAII span: on destruction records its duration (ns) into the bound
/// histogram and, when a trace is active, appends one TraceEvent carrying
/// the nesting depth.  Constructing with telemetry disabled is one relaxed
/// load and nothing else.
class Span {
 public:
  Span(Histogram& histogram, const char* name)
      : histogram_(&histogram), name_(name) {
    if (!enabled()) return;
    active_ = true;
    start_ = detail::now_ns();
    if (trace_active()) {
      tracing_ = true;
      depth_ = detail::thread_trace().depth++;
    }
  }
  ~Span() {
    if (!active_) return;
    const std::uint64_t duration = detail::now_ns() - start_;
    histogram_->record(duration);
    if (tracing_) {
      detail::ThreadTrace& trace = detail::thread_trace();
      --trace.depth;
      MutexLock lock(trace.mutex);
      trace.events.push_back({name_, start_, duration, trace.id, depth_});
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Histogram* histogram_;
  const char* name_;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
  bool tracing_ = false;
};

/// Plain-text rendering of a snapshot for --stats style reports.
std::string render_text(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace qtda

#define QTDA_TELEMETRY_CONCAT2(a, b) a##b
#define QTDA_TELEMETRY_CONCAT(a, b) QTDA_TELEMETRY_CONCAT2(a, b)

/// Times the enclosing scope into the histogram `span.<name>` and, when a
/// trace is active, records a nested trace event.  \p name must be a string
/// literal.  The histogram reference is resolved once per site.
#define QTDA_SPAN(name)                                                     \
  static ::qtda::telemetry::Histogram& QTDA_TELEMETRY_CONCAT(               \
      qtda_span_histogram_, __LINE__) =                                     \
      ::qtda::telemetry::registry().histogram(std::string("span.") + name); \
  ::qtda::telemetry::Span QTDA_TELEMETRY_CONCAT(qtda_span_, __LINE__)(      \
      QTDA_TELEMETRY_CONCAT(qtda_span_histogram_, __LINE__), name)

/// Adds \p delta to the counter \p name when telemetry is enabled.  \p name
/// must be a compile-time-constant expression (resolved once per site).
#define QTDA_COUNTER_ADD(name, delta)                                 \
  do {                                                                \
    if (::qtda::telemetry::enabled()) {                               \
      static ::qtda::telemetry::Counter& qtda_counter_site_ =         \
          ::qtda::telemetry::registry().counter(name);                \
      qtda_counter_site_.add(delta);                                  \
    }                                                                 \
  } while (false)
