/// \file cpu_features.hpp
/// \brief Runtime CPU-feature probe and SIMD dispatch level.
///
/// The hand-vectorized hot loops (quantum/simd_kernels.hpp) are compiled for
/// several instruction sets and selected at runtime: one binary runs the
/// widest path the executing CPU supports.  The probe runs once per process;
/// the `QTDA_SIMD` environment variable overrides it for reproducibility
/// studies and the CI scalar leg:
///
///   QTDA_SIMD=0        force the scalar fallbacks (bit-identical to the
///                      pre-vectorization arithmetic)
///   QTDA_SIMD=avx2     cap dispatch at the AVX2 kernels
///   QTDA_SIMD=avx512   cap dispatch at the AVX-512 kernels
///   QTDA_SIMD=auto     probe the CPU (the default)
///
/// A cap above what the CPU supports clamps down to the probed level — the
/// override selects among *safe* levels, it cannot force illegal
/// instructions.  Malformed values fail fast naming the variable, matching
/// the QTDA_SIMULATOR convention.
#pragma once

#include <optional>
#include <string>

namespace qtda {

/// Widest vector path the dispatcher may take, in increasing order (the
/// ordering is meaningful: levels clamp with std::min).
enum class SimdLevel {
  kScalar = 0,  ///< portable std::complex loops (the historical arithmetic)
  kAvx2 = 1,    ///< 256-bit lanes (AVX2)
  kAvx512 = 2,  ///< 512-bit lanes (AVX-512 F/DQ/VL)
};

/// Printable name ("scalar", "avx2", "avx512").
std::string simd_level_name(SimdLevel level);

/// What the executing CPU supports (probed once, then cached).
SimdLevel detected_simd_level();

/// Parses the QTDA_SIMD override: empty/unset or "auto" → nullopt (use the
/// probe), "0" → scalar, "avx2"/"avx512" → that cap.  Throws an Error naming
/// the variable on any other value.
std::optional<SimdLevel> simd_level_from_env();

/// The level the dispatch wrappers use: min(override, probe), cached on
/// first call for the lifetime of the process (so every kernel of a run —
/// and both state-vector engines, whose results must stay bit-identical to
/// each other — dispatches identically).
SimdLevel active_simd_level();

}  // namespace qtda
