/// \file error.hpp
/// \brief Error handling primitives shared by every qtda module.
///
/// Contract violations (bad arguments, broken invariants) throw
/// qtda::Error via the QTDA_REQUIRE macro.  Internal consistency checks
/// that should be impossible to trigger use QTDA_ASSERT, which is compiled
/// out in release builds unless QTDA_ENABLE_ASSERTS is defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qtda {

/// Exception thrown on contract violations across the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* condition, const char* file,
                                     int line, const std::string& message) {
  std::ostringstream os;
  os << "qtda error at " << file << ':' << line << " — requirement ("
     << condition << ") failed";
  if (!message.empty()) os << ": " << message;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace qtda

/// Throws qtda::Error when \p cond is false.  \p msg is streamed, so
/// `QTDA_REQUIRE(k < n, "k=" << k << " out of range")` works.
#define QTDA_REQUIRE(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream qtda_require_os_;                                 \
      qtda_require_os_ << msg;                                             \
      ::qtda::detail::throw_error(#cond, __FILE__, __LINE__,               \
                                  qtda_require_os_.str());                 \
    }                                                                      \
  } while (false)

/// Internal invariant check; active in all builds (cheap checks only).
#define QTDA_ASSERT(cond, msg) QTDA_REQUIRE(cond, msg)
