/// \file parallel.hpp
/// \brief Shared-memory parallel primitives used by the hot kernels.
///
/// The state-vector simulator and the experiment sweeps are embarrassingly
/// parallel; this header provides a cached thread pool with a blocking
/// parallel_for and a parallel reduction.  When OpenMP is available the
/// simulator kernels additionally use `#pragma omp` directly; the pool is the
/// portable fallback and the mechanism for task-level parallelism (e.g. one
/// random complex per worker in the Fig. 3 sweep).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace qtda {

/// Number of hardware threads, with a safe floor of 1.
std::size_t hardware_concurrency();

/// A fixed-size pool of worker threads executing submitted closures.
/// Workers are joined on destruction (RAII; no detached threads).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submits a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  /// Slab barrier: runs body(i) for every i in [0, count) across this pool
  /// and blocks until all invocations have returned.  This is the step
  /// primitive of the sharded state-vector engine — each gate dispatches one
  /// task per amplitude slab and must not start the next gate before every
  /// slab has finished.  The first exception thrown by any task is rethrown
  /// here after the barrier.  Called from inside any pool worker it degrades
  /// to a serial loop (same nesting guard as parallel_for).
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed, never torn down before
  /// main exits).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ QTDA_GUARDED_BY(mutex_);
  std::size_t in_flight_ QTDA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ QTDA_GUARDED_BY(mutex_) = false;
};

/// Fair-share split of the shared pool among \p active_requests concurrent
/// consumers: how many workers one request should claim so no single huge
/// register starves the rest.  Never below 1, never above the pool size.
/// The serving layer clamps each request's simulator shard count with this —
/// safe to apply at any moment because shard count trades locality for
/// parallelism, never results (the sharded engine is bit-identical for
/// every count).
std::size_t fair_thread_share(std::size_t active_requests);

/// Runs body(i) for i in [begin, end) across the shared pool, blocking until
/// completion.  Work is split into contiguous chunks, one per worker, which
/// is the right grain for the memory-bound kernels in this library.  Runs
/// serially when the range is small or the pool has one thread.  Safe to
/// call from inside a pool task: nested invocations run serially instead of
/// deadlocking the pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_parallel_size = 1024);

/// Chunked variant: body(chunk_begin, chunk_end) per worker.  Lower
/// per-element overhead for tight loops.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_parallel_size = 1024);

/// Parallel sum-reduction of body(i) over [begin, end).  The chunk partials
/// are merged in completion order, so the floating-point result can jitter
/// between runs; use parallel_reduce_ordered where reproducibility matters.
double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body,
                           std::size_t min_parallel_size = 1024);

/// Contiguous-chunk split of an ordered reduction: how many chunks and how
/// wide.  A fixed function of the range length, the serial threshold and
/// the shared-pool size — every ordered reduction that must merge partial
/// sums identically (parallel_reduce_ordered here, the slab-run reduction
/// of the sharded state vector) derives its split from this one helper, so
/// the chunking can never drift between them.
struct OrderedReductionPlan {
  std::size_t chunks = 1;
  std::size_t span = 0;  ///< chunk c covers [c·span, min(n, (c+1)·span))
};

inline OrderedReductionPlan ordered_reduction_plan(
    std::size_t n, std::size_t min_parallel_size) {
  OrderedReductionPlan plan;
  plan.chunks = n < min_parallel_size
                    ? 1
                    : std::min(ThreadPool::shared().size(), n);
  plan.span = plan.chunks == 0 ? 0 : (n + plan.chunks - 1) / plan.chunks;
  return plan;
}

/// Deterministic parallel reduction into \p result: [begin, end) is split
/// into a fixed number of contiguous chunks (at most the pool size),
/// `body(i, partial)` accumulates each chunk into its own partial
/// (initialized to \p identity), and the partials are merged into \p result
/// with `merge(result, partial)` in chunk order.  Because both the split
/// and the merge order are fixed functions of the pool size, the result is
/// reproducible run-to-run on a given machine — the property the sampling
/// cumulative sums need — unlike parallel_reduce_sum's arrival-order merge.
template <typename Partial, typename Body, typename Merge>
void parallel_reduce_ordered(std::size_t begin, std::size_t end,
                             Partial& result, const Partial& identity,
                             Body&& body, Merge&& merge,
                             std::size_t min_parallel_size = 1024) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const OrderedReductionPlan plan =
      ordered_reduction_plan(n, min_parallel_size);
  if (plan.chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i, result);
    return;
  }
  std::vector<Partial> partials(plan.chunks, identity);
  parallel_for(
      0, plan.chunks,
      [&](std::size_t c) {
        const std::size_t lo = begin + c * plan.span;
        const std::size_t hi = std::min(end, lo + plan.span);
        for (std::size_t i = lo; i < hi; ++i) body(i, partials[c]);
      },
      /*min_parallel_size=*/1);
  for (const Partial& partial : partials) merge(result, partial);
}

}  // namespace qtda
