/// \file parallel.hpp
/// \brief Shared-memory parallel primitives used by the hot kernels.
///
/// The state-vector simulator and the experiment sweeps are embarrassingly
/// parallel; this header provides a cached thread pool with a blocking
/// parallel_for and a parallel reduction.  When OpenMP is available the
/// simulator kernels additionally use `#pragma omp` directly; the pool is the
/// portable fallback and the mechanism for task-level parallelism (e.g. one
/// random complex per worker in the Fig. 3 sweep).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qtda {

/// Number of hardware threads, with a safe floor of 1.
std::size_t hardware_concurrency();

/// A fixed-size pool of worker threads executing submitted closures.
/// Workers are joined on destruction (RAII; no detached threads).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submits a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed, never torn down before
  /// main exits).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [begin, end) across the shared pool, blocking until
/// completion.  Work is split into contiguous chunks, one per worker, which
/// is the right grain for the memory-bound kernels in this library.  Runs
/// serially when the range is small or the pool has one thread.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_parallel_size = 1024);

/// Chunked variant: body(chunk_begin, chunk_end) per worker.  Lower
/// per-element overhead for tight loops.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_parallel_size = 1024);

/// Parallel sum-reduction of body(i) over [begin, end).
double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body,
                           std::size_t min_parallel_size = 1024);

}  // namespace qtda
