/// \file stats.hpp
/// \brief Descriptive statistics used by the experiment harnesses.
///
/// Fig. 3 of the paper reports boxplots; FiveNumberSummary reproduces the
/// standard Tukey boxplot statistics (median, quartiles, whiskers at
/// 1.5·IQR, outlier count).  The classification experiments use the metric
/// helpers in ml/metrics.hpp; here we keep the generic numeric summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace qtda {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n−1 denominator); 0 when n < 2.
double variance(const std::vector<double>& xs);

/// Sample standard deviation.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile (type-7, the numpy default), q in [0, 1].
/// Requires a non-empty sample.
double quantile(std::vector<double> xs, double q);

/// Median (quantile 0.5).
double median(std::vector<double> xs);

/// Tukey boxplot statistics for one group of observations.
struct FiveNumberSummary {
  double min = 0.0;            ///< sample minimum
  double q1 = 0.0;             ///< first quartile
  double median = 0.0;         ///< second quartile
  double q3 = 0.0;             ///< third quartile
  double max = 0.0;            ///< sample maximum
  double whisker_low = 0.0;    ///< smallest point ≥ q1 − 1.5·IQR
  double whisker_high = 0.0;   ///< largest point ≤ q3 + 1.5·IQR
  std::size_t outliers = 0;    ///< points outside the whiskers
  std::size_t count = 0;       ///< sample size
};

/// Computes boxplot statistics; requires a non-empty sample.
FiveNumberSummary five_number_summary(std::vector<double> xs);

/// Pearson correlation coefficient; requires equal sizes and n ≥ 2.
double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Skewness (bias-corrected, as used in vibration features).  0 when the
/// sample is degenerate.
double skewness(const std::vector<double>& xs);

/// Excess-free kurtosis (the raw fourth standardized moment, i.e. a normal
/// distribution scores ≈ 3).  0 when the sample is degenerate.
double kurtosis(const std::vector<double>& xs);

/// Root mean square.
double rms(const std::vector<double>& xs);

}  // namespace qtda
