#include "common/random.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qtda {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // xoshiro state must not be all-zero; SplitMix64 cannot produce four
  // consecutive zeros, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QTDA_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  QTDA_REQUIRE(n > 0, "uniform_index(0) is undefined");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QTDA_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  QTDA_REQUIRE(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  // Exact simulation by counting Bernoulli successes is O(n); acceptable up
  // to a modest bound.  Beyond it the normal approximation with continuity
  // correction is accurate (var is large there by construction).
  if (n <= 4096) {
    std::uint64_t successes = 0;
    for (std::uint64_t i = 0; i < n; ++i) successes += bernoulli(p) ? 1u : 0u;
    return successes;
  }
  if (var < 64.0) {
    // Large n, tiny variance: sample the minority side exactly via a
    // Poisson-style inversion on the smaller tail probability.
    const bool flip = p > 0.5;
    const double q = flip ? 1.0 - p : p;
    // Inversion by sequential search on Binomial(n, q); the mean n·q is
    // small because var = n·q·(1−q) < 64 and q ≤ 1/2 → n·q < 128.
    const double log1mq = std::log1p(-q);
    double pmf = std::exp(static_cast<double>(n) * log1mq);
    double cdf = pmf;
    const double u = uniform();
    std::uint64_t k = 0;
    while (u > cdf && k < n) {
      ++k;
      pmf *= (static_cast<double>(n - k + 1) / static_cast<double>(k)) *
             (q / (1.0 - q));
      cdf += pmf;
      if (pmf < 1e-300) break;  // numerical tail exhaustion
    }
    return flip ? n - k : k;
  }
  const double draw = normal(mean, std::sqrt(var));
  const double rounded = std::floor(draw + 0.5);
  if (rounded < 0.0) return 0;
  if (rounded > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(rounded);
}

Rng Rng::split(std::uint64_t child_index) const {
  SplitMix64 sm(seed_ ^ (0x5851f42d4c957f2dULL * (child_index + 1)));
  return Rng(sm.next());
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace qtda
