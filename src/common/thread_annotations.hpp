/// \file thread_annotations.hpp
/// \brief Clang thread-safety annotations and the capability-annotated
/// mutex primitives built on them.
///
/// Every mutex-protected structure in the library declares its lock
/// discipline with these macros (`QTDA_GUARDED_BY(mutex_)` on the data,
/// `QTDA_REQUIRES(mutex_)` on the helpers), and the clang CI leg compiles
/// with `-Wthread-safety -Werror`, so touching guarded state without the
/// right lock is a *build* failure — the static complement to the TSan CI
/// leg's dynamic race detection.  GCC compiles the attributes away to
/// nothing; the annotations are documentation there.
///
/// `std::mutex` itself carries no capability attributes under libstdc++, so
/// the library uses the `qtda::Mutex` wrapper below (same storage, inlined
/// forwarding) together with the scoped `qtda::MutexLock` and the
/// `qtda::CondVar` condition variable.  Condition waits are written as
/// explicit `while (!condition) cv.wait(mutex);` loops rather than
/// predicate lambdas: the analysis cannot see that a lambda body runs with
/// the lock held, but a plain loop in an annotated function it checks
/// exactly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QTDA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef QTDA_THREAD_ANNOTATION
#define QTDA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define QTDA_CAPABILITY(x) QTDA_THREAD_ANNOTATION(capability(x))
#define QTDA_SCOPED_CAPABILITY QTDA_THREAD_ANNOTATION(scoped_lockable)
#define QTDA_GUARDED_BY(x) QTDA_THREAD_ANNOTATION(guarded_by(x))
#define QTDA_PT_GUARDED_BY(x) QTDA_THREAD_ANNOTATION(pt_guarded_by(x))
#define QTDA_REQUIRES(...) \
  QTDA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QTDA_ACQUIRE(...) \
  QTDA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QTDA_RELEASE(...) \
  QTDA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QTDA_TRY_ACQUIRE(...) \
  QTDA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define QTDA_EXCLUDES(...) QTDA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define QTDA_ASSERT_CAPABILITY(x) \
  QTDA_THREAD_ANNOTATION(assert_capability(x))
#define QTDA_RETURN_CAPABILITY(x) QTDA_THREAD_ANNOTATION(lock_returned(x))
#define QTDA_NO_THREAD_SAFETY_ANALYSIS \
  QTDA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qtda {

/// A std::mutex the thread-safety analysis can reason about.
class QTDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QTDA_ACQUIRE() { mutex_.lock(); }
  void unlock() QTDA_RELEASE() { mutex_.unlock(); }
  bool try_lock() QTDA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Scoped lock of a qtda::Mutex (the std::lock_guard shape, but visible to
/// the analysis as acquiring/releasing its capability).
class QTDA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QTDA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() QTDA_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to qtda::Mutex.  wait() requires the mutex held
/// (annotated, so a wait outside the lock is a compile error on the clang
/// leg) and is used in explicit condition loops — see the file comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases \p mutex and blocks until notified; reacquires
  /// before returning.  Spurious wakeups happen — always wait in a loop.
  void wait(Mutex& mutex) QTDA_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// wait() with a timeout.  Returns false on timeout, true when notified
  /// (spurious wakeups report true — re-check the condition AND the
  /// caller's own deadline in the wait loop).
  bool wait_for(Mutex& mutex, std::chrono::nanoseconds timeout)
      QTDA_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // ownership stays with the caller's scope
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qtda
