#include "common/parallel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qtda {

namespace {
/// True on threads owned by a ThreadPool.  parallel_for{,_chunked} from
/// inside a pool task would block a worker waiting on sub-tasks that only
/// other (possibly all-blocked) workers can run — a deadlock.  Nested calls
/// therefore degrade to serial execution.
thread_local bool t_inside_pool_worker = false;
}  // namespace

std::size_t hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  QTDA_REQUIRE(num_threads > 0, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QTDA_REQUIRE(!shutting_down_, "submit() on a shutting-down pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || size() <= 1 || t_inside_pool_worker) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // The completion counter must be incremented under done_mutex: the caller
  // may only observe done == count via the same lock the last worker holds
  // while notifying, otherwise it could return and destroy these stack
  // locals while that worker still touches them.
  std::size_t done = 0;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t i = 0; i < count; ++i) {
    submit([&, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++done == count) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == count; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_parallel_size) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t workers = pool.size();
  if (n < min_parallel_size || workers <= 1 || t_inside_pool_worker) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  const std::size_t launched = (n + chunk - 1) / chunk;
  // Counter under done_mutex, as in ThreadPool::run_batch: the caller must
  // not be able to observe completion and destroy these stack locals while
  // the last worker is still between its increment and its notify.
  std::size_t done = 0;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t c = 0; c < launched; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&, lo, hi] {
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++done == launched) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == launched; });
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_parallel_size) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      min_parallel_size);
}

std::size_t fair_thread_share(std::size_t active_requests) {
  const std::size_t pool = ThreadPool::shared().size();
  if (active_requests <= 1) return pool;
  return std::max<std::size_t>(1, pool / active_requests);
}

double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body,
                           std::size_t min_parallel_size) {
  if (begin >= end) return 0.0;
  std::mutex sum_mutex;
  double total = 0.0;
  parallel_for_chunked(
      begin, end,
      [&](std::size_t lo, std::size_t hi) {
        double local = 0.0;
        for (std::size_t i = lo; i < hi; ++i) local += body(i);
        std::lock_guard<std::mutex> lock(sum_mutex);
        total += local;
      },
      min_parallel_size);
  return total;
}

}  // namespace qtda
