#include "common/parallel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qtda {

namespace {
/// True on threads owned by a ThreadPool.  parallel_for{,_chunked} from
/// inside a pool task would block a worker waiting on sub-tasks that only
/// other (possibly all-blocked) workers can run — a deadlock.  Nested calls
/// therefore degrade to serial execution.
thread_local bool t_inside_pool_worker = false;

/// Stack-allocated completion latch shared between a barrier caller and its
/// submitted tasks.  One mutex guards both the counter and the first error:
/// every task takes it exactly once on exit, and folding the error under the
/// same lock removes a second mutex without adding contention.
struct CompletionBarrier {
  Mutex mutex;
  CondVar done_cv;
  std::size_t done QTDA_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error QTDA_GUARDED_BY(mutex);
};
}  // namespace

std::size_t hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  QTDA_REQUIRE(num_threads > 0, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    QTDA_REQUIRE(!shutting_down_, "submit() on a shutting-down pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.wait(mutex_);
      if (tasks_.empty()) return;  // shutting down and fully drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || size() <= 1 || t_inside_pool_worker) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // The completion counter must be incremented under barrier.mutex: the
  // caller may only observe done == count via the same lock the last worker
  // holds while notifying, otherwise it could return and destroy the
  // barrier stack local while that worker still touches it.
  CompletionBarrier barrier;
  for (std::size_t i = 0; i < count; ++i) {
    submit([&, i] {
      std::exception_ptr error;
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(barrier.mutex);
      if (error != nullptr && barrier.first_error == nullptr)
        barrier.first_error = error;
      if (++barrier.done == count) barrier.done_cv.notify_all();
    });
  }
  std::exception_ptr first_error;
  {
    MutexLock lock(barrier.mutex);
    while (barrier.done != count) barrier.done_cv.wait(barrier.mutex);
    first_error = barrier.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_parallel_size) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t workers = pool.size();
  if (n < min_parallel_size || workers <= 1 || t_inside_pool_worker) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  const std::size_t launched = (n + chunk - 1) / chunk;
  // Counter under barrier.mutex, as in ThreadPool::run_batch: the caller
  // must not be able to observe completion and destroy the barrier stack
  // local while the last worker is still between its increment and notify.
  CompletionBarrier barrier;
  for (std::size_t c = 0; c < launched; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&, lo, hi] {
      std::exception_ptr error;
      try {
        body(lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(barrier.mutex);
      if (error != nullptr && barrier.first_error == nullptr)
        barrier.first_error = error;
      if (++barrier.done == launched) barrier.done_cv.notify_all();
    });
  }
  std::exception_ptr first_error;
  {
    MutexLock lock(barrier.mutex);
    while (barrier.done != launched) barrier.done_cv.wait(barrier.mutex);
    first_error = barrier.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_parallel_size) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      min_parallel_size);
}

std::size_t fair_thread_share(std::size_t active_requests) {
  const std::size_t pool = ThreadPool::shared().size();
  if (active_requests <= 1) return pool;
  return std::max<std::size_t>(1, pool / active_requests);
}

double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body,
                           std::size_t min_parallel_size) {
  if (begin >= end) return 0.0;
  Mutex sum_mutex;
  double total = 0.0;
  parallel_for_chunked(
      begin, end,
      [&](std::size_t lo, std::size_t hi) {
        double local = 0.0;
        for (std::size_t i = lo; i < hi; ++i) local += body(i);
        MutexLock lock(sum_mutex);
        total += local;
      },
      min_parallel_size);
  return total;
}

}  // namespace qtda
