/// \file timer.hpp
/// \brief Monotonic wall-clock timer for harness instrumentation.
#pragma once

#include <chrono>

namespace qtda {

/// Simple stopwatch over the steady clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qtda
