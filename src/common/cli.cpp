#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace qtda {

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag.
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name,
    const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::string token;
  for (char c : it->second + ",") {
    if (c == ',') {
      if (!token.empty()) {
        out.push_back(std::strtoll(token.c_str(), nullptr, 10));
        token.clear();
      }
    } else {
      token += c;
    }
  }
  return out;
}

}  // namespace qtda
