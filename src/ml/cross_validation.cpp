#include "ml/cross_validation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace qtda {

CrossValidationResult stratified_k_fold(const Dataset& data,
                                        std::size_t folds,
                                        const FoldEvaluator& evaluate,
                                        Rng& rng) {
  data.validate();
  QTDA_REQUIRE(folds >= 2, "cross-validation needs at least 2 folds");
  QTDA_REQUIRE(data.size() >= folds, "fewer samples than folds");

  // Assign fold ids round-robin within each class after shuffling — the
  // standard stratification.
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < data.size(); ++i)
    (data.labels[i] == 1 ? pos : neg).push_back(i);
  QTDA_REQUIRE(pos.size() >= folds && neg.size() >= folds,
               "each class needs at least one sample per fold");
  rng.shuffle(pos);
  rng.shuffle(neg);
  std::vector<std::size_t> fold_of(data.size());
  for (std::size_t i = 0; i < pos.size(); ++i) fold_of[pos[i]] = i % folds;
  for (std::size_t i = 0; i < neg.size(); ++i) fold_of[neg[i]] = i % folds;

  CrossValidationResult result;
  result.fold_scores.reserve(folds);
  for (std::size_t fold = 0; fold < folds; ++fold) {
    Dataset train, validation;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (fold_of[i] == fold) {
        validation.add(data.features[i], data.labels[i]);
      } else {
        train.add(data.features[i], data.labels[i]);
      }
    }
    result.fold_scores.push_back(evaluate(train, validation));
  }
  result.mean_score = mean(result.fold_scores);
  result.stddev_score = stddev(result.fold_scores);
  return result;
}

}  // namespace qtda
