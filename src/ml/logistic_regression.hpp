/// \file logistic_regression.hpp
/// \brief Binary logistic regression (the paper's classifier).
///
/// Full-batch gradient descent on the L2-regularized cross-entropy; enough
/// for the paper's two-feature Betti datasets, deterministic, and free of
/// external dependencies.  The learning rate anneals when the loss stalls.
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace qtda {

/// Training hyper-parameters.
struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  double l2_penalty = 1e-4;       ///< applied to weights, not the bias
  std::size_t max_iterations = 2000;
  double tolerance = 1e-8;        ///< stop when the loss improvement drops below
};

/// The fitted model.
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  /// Fits on a dataset (binary labels).  Features should be standardized.
  void fit(const Dataset& data);

  /// P(y = 1 | x).
  double predict_probability(const std::vector<double>& x) const;
  /// Hard prediction at the 0.5 threshold.
  int predict(const std::vector<double>& x) const;
  /// Predictions for many rows.
  std::vector<int> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  /// Mean cross-entropy on a dataset (diagnostics).
  double loss(const Dataset& data) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  std::size_t iterations_used() const { return iterations_used_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::size_t iterations_used_ = 0;
};

}  // namespace qtda
