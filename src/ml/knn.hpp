/// \file knn.hpp
/// \brief k-nearest-neighbours classifier.
///
/// The paper performs "classification using scikit-learn" and only names
/// logistic regression for the second experiment; kNN is the other obvious
/// default on two-feature Betti data and provides a non-linear baseline for
/// the harnesses.  Brute-force neighbour search — the feature spaces here
/// are 2–3 dimensional with a few hundred points.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.hpp"

namespace qtda {

/// Majority-vote k-nearest-neighbours over Euclidean distance.
class KnnClassifier {
 public:
  /// \p k must be ≥ 1; ties broken toward the closer neighbour's label.
  explicit KnnClassifier(std::size_t k = 5);

  /// Stores the training data (lazy learner).
  void fit(const Dataset& data);

  /// Predicted label for one feature row.
  int predict(const std::vector<double>& x) const;
  /// Predictions for many rows.
  std::vector<int> predict_all(
      const std::vector<std::vector<double>>& rows) const;
  /// Fraction of positive votes among the k neighbours.
  double predict_probability(const std::vector<double>& x) const;

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Dataset train_;
};

}  // namespace qtda
