/// \file takens.hpp
/// \brief Takens delay embedding of scalar time series.
///
/// The paper's §5 pipeline uses giotto-tda's TakensEmbedding to turn a
/// 500-sample vibration window into a point cloud: point i is
/// (x_i, x_{i+τ}, …, x_{i+(d−1)τ}).  A subsampling stride keeps the Rips
/// stage tractable.
#pragma once

#include <vector>

#include "topology/point_cloud.hpp"

namespace qtda {

/// Delay-embedding parameters.
struct TakensOptions {
  std::size_t dimension = 3;  ///< embedding dimension d
  std::size_t delay = 1;      ///< time delay τ
  std::size_t stride = 1;     ///< keep every stride-th embedded point
};

/// Number of embedded points a series of length n yields (before stride).
std::size_t takens_output_size(std::size_t series_length,
                               const TakensOptions& options);

/// Embeds the series; throws when it is too short for one point.
PointCloud takens_embedding(const std::vector<double>& series,
                            const TakensOptions& options);

}  // namespace qtda
