/// \file metrics.hpp
/// \brief Classification and regression metrics used by the experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace qtda {

/// Fraction of matching predictions.
double accuracy(const std::vector<int>& truth,
                const std::vector<int>& predictions);

/// Mean absolute error between two real vectors (Table 1's Betti MAE).
double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& predictions);

/// 2×2 confusion counts for binary labels.
struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  double accuracy() const;
  double precision() const;
  double recall() const;
  double f1() const;
};

ConfusionMatrix confusion_matrix(const std::vector<int>& truth,
                                 const std::vector<int>& predictions);

}  // namespace qtda
