/// \file scaler.hpp
/// \brief Standardization (zero mean, unit variance) fitted on train data.
#pragma once

#include <vector>

namespace qtda {

/// Per-feature standardizer.  Fit on the training fold only, then applied
/// to both folds — the usual leakage-free protocol.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation.  Constant columns get
  /// a unit scale (they transform to zero).
  void fit(const std::vector<std::vector<double>>& rows);

  /// Applies the learned transform.  Requires fit() first.
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& rows) const;

  std::vector<double> transform_row(const std::vector<double>& row) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace qtda
