#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

void Dataset::add(std::vector<double> x, int y) {
  QTDA_REQUIRE(features.empty() || x.size() == features.front().size(),
               "feature width mismatch");
  QTDA_REQUIRE(y == 0 || y == 1, "labels must be 0 or 1");
  features.push_back(std::move(x));
  labels.push_back(y);
}

void Dataset::validate() const {
  QTDA_REQUIRE(features.size() == labels.size(),
               "feature/label count mismatch");
  for (const auto& row : features)
    QTDA_REQUIRE(row.size() == features.front().size(), "ragged features");
  for (int y : labels) QTDA_REQUIRE(y == 0 || y == 1, "non-binary label");
}

std::size_t Dataset::positive_count() const {
  std::size_t c = 0;
  for (int y : labels) c += (y == 1) ? 1 : 0;
  return c;
}

namespace {

TrainValSplit split_by_indices(const Dataset& data,
                               const std::vector<std::size_t>& train_idx,
                               const std::vector<std::size_t>& val_idx) {
  TrainValSplit split;
  for (std::size_t i : train_idx)
    split.train.add(data.features[i], data.labels[i]);
  for (std::size_t i : val_idx)
    split.validation.add(data.features[i], data.labels[i]);
  return split;
}

}  // namespace

TrainValSplit train_val_split(const Dataset& data, double train_fraction,
                              Rng& rng) {
  data.validate();
  QTDA_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
               "train fraction must lie in (0,1)");
  QTDA_REQUIRE(data.size() >= 2, "need at least two samples to split");
  std::vector<std::size_t> order = rng.permutation(data.size());
  auto train_count = static_cast<std::size_t>(
      std::max(1.0, std::round(train_fraction * static_cast<double>(
                                                    data.size()))));
  train_count = std::min(train_count, data.size() - 1);
  const std::vector<std::size_t> train_idx(order.begin(),
                                           order.begin() + train_count);
  const std::vector<std::size_t> val_idx(order.begin() + train_count,
                                         order.end());
  return split_by_indices(data, train_idx, val_idx);
}

TrainValSplit stratified_split(const Dataset& data, double train_fraction,
                               Rng& rng) {
  data.validate();
  QTDA_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
               "train fraction must lie in (0,1)");
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < data.size(); ++i)
    (data.labels[i] == 1 ? pos : neg).push_back(i);
  rng.shuffle(pos);
  rng.shuffle(neg);
  std::vector<std::size_t> train_idx, val_idx;
  const auto take = [&](std::vector<std::size_t>& group) {
    auto count = static_cast<std::size_t>(std::round(
        train_fraction * static_cast<double>(group.size())));
    count = std::min(std::max<std::size_t>(count, group.empty() ? 0 : 1),
                     group.empty() ? 0 : group.size() - 1);
    for (std::size_t i = 0; i < group.size(); ++i)
      (i < count ? train_idx : val_idx).push_back(group[i]);
  };
  take(pos);
  take(neg);
  rng.shuffle(train_idx);
  rng.shuffle(val_idx);
  return split_by_indices(data, train_idx, val_idx);
}

}  // namespace qtda
