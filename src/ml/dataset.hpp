/// \file dataset.hpp
/// \brief Labelled feature datasets with deterministic splitting.
#pragma once

#include <cstddef>
#include <vector>

#include "common/random.hpp"

namespace qtda {

/// Features (row per sample) with binary labels {0, 1}.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;

  std::size_t size() const { return features.size(); }
  std::size_t feature_count() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Appends one sample.
  void add(std::vector<double> x, int y);

  /// Throws when rows are ragged or labels are not 0/1.
  void validate() const;

  /// Number of samples with label 1.
  std::size_t positive_count() const;
};

/// A train/validation split.
struct TrainValSplit {
  Dataset train;
  Dataset validation;
};

/// Shuffles and splits; \p train_fraction in (0, 1).  The paper's Table 1
/// uses a 20%/80% train/validation split.
TrainValSplit train_val_split(const Dataset& data, double train_fraction,
                              Rng& rng);

/// Stratified variant: preserves the class ratio in both parts.
TrainValSplit stratified_split(const Dataset& data, double train_fraction,
                               Rng& rng);

}  // namespace qtda
