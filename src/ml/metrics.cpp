#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qtda {

double accuracy(const std::vector<int>& truth,
                const std::vector<int>& predictions) {
  QTDA_REQUIRE(truth.size() == predictions.size(), "metric size mismatch");
  QTDA_REQUIRE(!truth.empty(), "accuracy of an empty set");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    hits += truth[i] == predictions[i] ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& predictions) {
  QTDA_REQUIRE(truth.size() == predictions.size(), "metric size mismatch");
  QTDA_REQUIRE(!truth.empty(), "MAE of an empty set");
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    total += std::abs(truth[i] - predictions[i]);
  return total / static_cast<double>(truth.size());
}

ConfusionMatrix confusion_matrix(const std::vector<int>& truth,
                                 const std::vector<int>& predictions) {
  QTDA_REQUIRE(truth.size() == predictions.size(), "metric size mismatch");
  ConfusionMatrix m;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool actual = truth[i] == 1;
    const bool predicted = predictions[i] == 1;
    if (actual && predicted) ++m.true_positive;
    else if (!actual && !predicted) ++m.true_negative;
    else if (!actual && predicted) ++m.false_positive;
    else ++m.false_negative;
  }
  return m;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const std::size_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::size_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace qtda
