#include "ml/takens.hpp"

#include "common/error.hpp"

namespace qtda {

std::size_t takens_output_size(std::size_t series_length,
                               const TakensOptions& options) {
  const std::size_t span = (options.dimension - 1) * options.delay;
  if (series_length <= span) return 0;
  return series_length - span;
}

PointCloud takens_embedding(const std::vector<double>& series,
                            const TakensOptions& options) {
  QTDA_REQUIRE(options.dimension >= 1, "embedding dimension must be >= 1");
  QTDA_REQUIRE(options.delay >= 1, "delay must be >= 1");
  QTDA_REQUIRE(options.stride >= 1, "stride must be >= 1");
  const std::size_t count = takens_output_size(series.size(), options);
  QTDA_REQUIRE(count > 0, "series of length "
                              << series.size()
                              << " too short for the requested embedding");
  std::vector<std::vector<double>> points;
  points.reserve((count + options.stride - 1) / options.stride);
  for (std::size_t i = 0; i < count; i += options.stride) {
    std::vector<double> p(options.dimension);
    for (std::size_t j = 0; j < options.dimension; ++j)
      p[j] = series[i + j * options.delay];
    points.push_back(std::move(p));
  }
  return PointCloud(std::move(points));
}

}  // namespace qtda
