#include "ml/scaler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qtda {

void StandardScaler::fit(const std::vector<std::vector<double>>& rows) {
  QTDA_REQUIRE(!rows.empty(), "cannot fit a scaler on no rows");
  const std::size_t width = rows.front().size();
  QTDA_REQUIRE(width > 0, "cannot fit a scaler on zero-width rows");
  means_.assign(width, 0.0);
  scales_.assign(width, 1.0);
  for (const auto& row : rows) {
    QTDA_REQUIRE(row.size() == width, "ragged rows in scaler fit");
    for (std::size_t j = 0; j < width; ++j) means_[j] += row[j];
  }
  for (double& m : means_) m /= static_cast<double>(rows.size());
  std::vector<double> var(width, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < width; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < width; ++j) {
    const double v = var[j] / static_cast<double>(rows.size());
    scales_[j] = v > 1e-24 ? std::sqrt(v) : 1.0;
  }
}

std::vector<double> StandardScaler::transform_row(
    const std::vector<double>& row) const {
  QTDA_REQUIRE(fitted(), "scaler not fitted");
  QTDA_REQUIRE(row.size() == means_.size(), "row width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - means_[j]) / scales_[j];
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform_row(row));
  return out;
}

}  // namespace qtda
