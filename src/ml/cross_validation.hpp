/// \file cross_validation.hpp
/// \brief Stratified k-fold cross-validation.
///
/// Fig. 4's protocol repeats a train/evaluate cycle many times; k-fold CV
/// is the systematic version and gives the harnesses variance estimates
/// that do not depend on one lucky split.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/random.hpp"
#include "ml/dataset.hpp"

namespace qtda {

/// A model factory + evaluation callback: receives (train, validation) and
/// returns the validation score (e.g. accuracy).
using FoldEvaluator =
    std::function<double(const Dataset& train, const Dataset& validation)>;

/// Per-fold scores from one CV run.
struct CrossValidationResult {
  std::vector<double> fold_scores;
  double mean_score = 0.0;
  double stddev_score = 0.0;
};

/// Splits \p data into \p folds stratified folds (class ratios preserved),
/// evaluates the callback on each leave-one-fold-out split.
/// Requires folds ≥ 2 and at least one sample of each class per fold.
CrossValidationResult stratified_k_fold(const Dataset& data,
                                        std::size_t folds,
                                        const FoldEvaluator& evaluate,
                                        Rng& rng);

}  // namespace qtda
