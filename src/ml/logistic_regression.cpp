#include "ml/logistic_regression.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qtda {

namespace {

double sigmoid(double z) {
  // Branch on sign to avoid overflow in exp().
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {
  QTDA_REQUIRE(options_.learning_rate > 0.0, "learning rate must be positive");
  QTDA_REQUIRE(options_.l2_penalty >= 0.0, "l2 penalty must be non-negative");
  QTDA_REQUIRE(options_.max_iterations > 0, "need at least one iteration");
}

void LogisticRegression::fit(const Dataset& data) {
  data.validate();
  QTDA_REQUIRE(data.size() > 0, "cannot fit on an empty dataset");
  const std::size_t n = data.size();
  const std::size_t d = data.feature_count();
  QTDA_REQUIRE(d > 0, "cannot fit on zero features");

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  double lr = options_.learning_rate;
  double previous_loss = loss(data);

  std::vector<double> grad_w(d);
  for (iterations_used_ = 0; iterations_used_ < options_.max_iterations;
       ++iterations_used_) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = predict_probability(data.features[i]);
      const double err = p - static_cast<double>(data.labels[i]);
      for (std::size_t j = 0; j < d; ++j)
        grad_w[j] += err * data.features[i][j];
      grad_b += err;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) {
      grad_w[j] = grad_w[j] * inv_n + options_.l2_penalty * weights_[j];
      weights_[j] -= lr * grad_w[j];
    }
    bias_ -= lr * grad_b * inv_n;

    const double current_loss = loss(data);
    if (current_loss > previous_loss) {
      lr *= 0.5;  // overshoot: anneal
      if (lr < 1e-8) break;
    } else if (previous_loss - current_loss < options_.tolerance) {
      break;
    }
    previous_loss = std::min(previous_loss, current_loss);
  }
}

double LogisticRegression::predict_probability(
    const std::vector<double>& x) const {
  QTDA_REQUIRE(x.size() == weights_.size(),
               "feature width " << x.size() << " does not match model width "
                                << weights_.size());
  double z = bias_;
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return sigmoid(z);
}

int LogisticRegression::predict(const std::vector<double>& x) const {
  return predict_probability(x) >= 0.5 ? 1 : 0;
}

std::vector<int> LogisticRegression::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict(row));
  return out;
}

double LogisticRegression::loss(const Dataset& data) const {
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = predict_probability(data.features[i]);
    const double y = data.labels[i];
    const double eps = 1e-12;
    total -= y * std::log(p + eps) + (1.0 - y) * std::log(1.0 - p + eps);
  }
  double reg = 0.0;
  for (double w : weights_) reg += w * w;
  return total / static_cast<double>(data.size()) +
         0.5 * options_.l2_penalty * reg;
}

}  // namespace qtda
