#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  QTDA_REQUIRE(k >= 1, "kNN needs k >= 1");
}

void KnnClassifier::fit(const Dataset& data) {
  data.validate();
  QTDA_REQUIRE(data.size() > 0, "cannot fit kNN on an empty dataset");
  train_ = data;
}

double KnnClassifier::predict_probability(const std::vector<double>& x) const {
  QTDA_REQUIRE(train_.size() > 0, "kNN not fitted");
  QTDA_REQUIRE(x.size() == train_.feature_count(), "feature width mismatch");
  // Distances to all training points; partial sort for the k smallest.
  std::vector<std::pair<double, int>> neighbours;  // (distance², label)
  neighbours.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double diff = x[j] - train_.features[i][j];
      d2 += diff * diff;
    }
    neighbours.emplace_back(d2, train_.labels[i]);
  }
  const std::size_t use = std::min(k_, neighbours.size());
  std::partial_sort(neighbours.begin(),
                    neighbours.begin() + static_cast<std::ptrdiff_t>(use),
                    neighbours.end());
  std::size_t positive = 0;
  for (std::size_t i = 0; i < use; ++i)
    positive += neighbours[i].second == 1 ? 1 : 0;
  return static_cast<double>(positive) / static_cast<double>(use);
}

int KnnClassifier::predict(const std::vector<double>& x) const {
  const double p = predict_probability(x);
  if (p == 0.5) {
    // Exact tie: fall back to the single nearest neighbour's label.
    KnnClassifier nearest(1);
    nearest.train_ = train_;
    return nearest.predict_probability(x) >= 0.5 ? 1 : 0;
  }
  return p > 0.5 ? 1 : 0;
}

std::vector<int> KnnClassifier::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict(row));
  return out;
}

}  // namespace qtda
