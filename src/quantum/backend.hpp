/// \file backend.hpp
/// \brief Pluggable simulator backends.
///
/// The estimator and pipeline drive simulations through this interface
/// instead of a concrete Statevector, so alternative engines — an exact
/// density-matrix backend for noise studies, a sharded/distributed
/// statevector for q beyond single-node memory — can drop in without
/// touching the algorithm layer.  The contract is deliberately small:
/// prepare a basis state, apply gates/circuits, apply a matrix-free
/// operator to a sub-register, inject depolarizing noise, and sample.
///
/// Every engine exists at two precisions (quantum/precision.hpp): the
/// backend classes are templated over the amplitude scalar and the factory
/// picks the width from EstimatorOptions::precision or the QTDA_PRECISION
/// environment override.  A backend's name() reports its *kind* only —
/// "statevector" at float is still interchangeable with "statevector" at
/// double through this interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "linalg/linear_operator.hpp"
#include "quantum/circuit.hpp"
#include "quantum/compiler.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/noise.hpp"
#include "quantum/precision.hpp"
#include "quantum/sharded_statevector.hpp"
#include "quantum/statevector.hpp"

namespace qtda {

/// Which simulation engine executes the circuits.
enum class SimulatorKind {
  kStatevector,         ///< dense state vector (the reference engine)
  kShardedStatevector,  ///< slab-parallel state vector (bit-identical)
  kDensityMatrix,       ///< exact-channel ρ evolution (4^n storage, q ≤ 13)
};

/// Printable name ("statevector", …).
std::string simulator_kind_name(SimulatorKind kind);

/// Comma-separated list of every valid simulator name (for CLI help and
/// error messages).
std::string simulator_kind_names();

/// Inverse of simulator_kind_name: parses a simulator name from the CLI or
/// the QTDA_SIMULATOR environment override.  Throws an Error listing the
/// valid names when \p name matches none of them.
SimulatorKind simulator_kind_from_name(const std::string& name);

/// One simulation engine instance holding the quantum state.
class SimulatorBackend {
 public:
  virtual ~SimulatorBackend() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_qubits() const = 0;

  /// The amplitude scalar width this engine runs at.
  virtual Precision precision() const = 0;

  /// Resets the state to the computational basis state |index⟩.
  virtual void prepare_basis_state(std::uint64_t index) = 0;

  /// Applies one gate from the circuit IR (named, dense or operator kind).
  virtual void apply_gate(const Gate& gate) = 0;

  /// Applies a full circuit including its global phase.
  virtual void apply_circuit(const Circuit& circuit) = 0;

  /// Multiplies the state by e^{iφ} (a no-op for density-matrix engines,
  /// where the phase cancels on ρ).
  virtual void apply_global_phase(double phi) = 0;

  /// Executes a compiled plan (quantum/compiler.hpp), including its global
  /// phase.  The default walks the plan's ops through apply_gate — every
  /// backend gets gate fusion and the precompiled matrices for free; dense
  /// engines override with a masks-and-arena fast path.  One plan may be
  /// reused across many executions (that is the point), but only one
  /// executor may run it at a time: the scratch arena is shared.
  virtual void apply_plan(const ExecutionPlan& plan);

  /// Noisy counterpart of apply_plan: the plan must have been compiled with
  /// preserve_noise_slots, so each op carries the touched-qubit slot of its
  /// source gate and the walk keeps apply_circuit_with_noise's exact error
  /// placement and RNG consumption order while skipping all per-gate setup.
  /// The global phase is dropped, as in apply_circuit_with_noise.
  virtual void apply_plan_with_noise(const ExecutionPlan& plan,
                                     const NoiseModel& noise, Rng& rng);

  /// Applies a matrix-free operator to the ordered target sub-register
  /// (MSB-first convention of apply_unitary), conditioned on controls.
  virtual void apply_operator(const LinearOperator& op,
                              const std::vector<std::size_t>& targets,
                              const std::vector<std::size_t>& controls) = 0;

  /// One stochastic depolarizing event on \p qubit with probability \p p
  /// (trajectory noise; exact-channel backends may implement it exactly).
  virtual void apply_depolarizing(std::size_t qubit, double probability,
                                  Rng& rng) = 0;

  /// True when apply_depolarizing applies the exact channel (deterministic
  /// — the Rng is not consumed), so a single noisy evolution already yields
  /// the full ensemble state and callers can draw every shot from it instead
  /// of re-running one trajectory per shot.
  virtual bool exact_channels() const { return false; }

  /// Applies the circuit with the depolarizing model injected after each
  /// gate on every touched qubit (run_noisy_trajectory's error placement and
  /// RNG consumption order) to the *current* state — callers prepare the
  /// initial state first.  The circuit's global phase is dropped: it is
  /// unobservable through this interface's measurements and cancels on ρ.
  /// Trajectory backends sample one stochastic trajectory; exact-channel
  /// backends evolve the ensemble itself.
  virtual void apply_circuit_with_noise(const Circuit& circuit,
                                        const NoiseModel& noise, Rng& rng);

  /// Marginal distribution over an ordered qubit subset (MSB-first).
  virtual std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const = 0;

  /// Draws \p shots outcomes over the given qubits; counts by outcome.
  virtual std::vector<std::uint64_t> sample(
      const std::vector<std::size_t>& qubits, std::size_t shots,
      Rng& rng) const = 0;
};

/// Dense state-vector implementation — the first (reference) backend.
template <typename Real>
class BasicStatevectorBackend final : public SimulatorBackend {
 public:
  explicit BasicStatevectorBackend(std::size_t num_qubits);

  std::string name() const override { return "statevector"; }
  std::size_t num_qubits() const override { return state_.num_qubits(); }
  Precision precision() const override { return precision_of<Real>(); }
  void prepare_basis_state(std::uint64_t index) override;
  void apply_gate(const Gate& gate) override;
  void apply_circuit(const Circuit& circuit) override;
  void apply_global_phase(double phi) override;
  /// Fast path: precomputed masks/offsets + the plan's scratch arena — no
  /// per-gate validation, matrix building, or allocation.
  void apply_plan(const ExecutionPlan& plan) override;
  void apply_plan_with_noise(const ExecutionPlan& plan,
                             const NoiseModel& noise, Rng& rng) override;
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls) override;
  void apply_depolarizing(std::size_t qubit, double probability,
                          Rng& rng) override;
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const override;
  std::vector<std::uint64_t> sample(const std::vector<std::size_t>& qubits,
                                    std::size_t shots, Rng& rng) const override;

  /// The underlying state, for backend-aware diagnostics and tests.
  const BasicStatevector<Real>& state() const { return state_; }
  BasicStatevector<Real>& state() { return state_; }

 private:
  BasicStatevector<Real> state_;
};

using StatevectorBackend = BasicStatevectorBackend<double>;
using StatevectorBackendF32 = BasicStatevectorBackend<float>;

/// Slab-parallel state-vector implementation (quantum/sharded_statevector.hpp):
/// the amplitudes are split into num_shards contiguous slabs updated by a
/// private worker pool, one barrier step per gate.  Every result — state,
/// marginals, samples — is bit-identical to the dense backend *of the same
/// precision* for every shard count, so the two engines are interchangeable
/// mid-experiment.
template <typename Real>
class BasicShardedStatevectorBackend final : public SimulatorBackend {
 public:
  /// \p num_shards ≥ 1 (clamped to the dimension); it need not divide the
  /// dimension or be a power of two.
  BasicShardedStatevectorBackend(std::size_t num_qubits,
                                 std::size_t num_shards);

  std::string name() const override { return "sharded-statevector"; }
  std::size_t num_qubits() const override { return state_.num_qubits(); }
  Precision precision() const override { return precision_of<Real>(); }
  void prepare_basis_state(std::uint64_t index) override;
  void apply_gate(const Gate& gate) override;
  void apply_circuit(const Circuit& circuit) override;
  void apply_global_phase(double phi) override;
  /// Plan execution with native slab-local diagonals (other op kinds run
  /// through the ordinary gate kernels, which fused blocks already reach).
  void apply_plan(const ExecutionPlan& plan) override;
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls) override;
  void apply_depolarizing(std::size_t qubit, double probability,
                          Rng& rng) override;
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const override;
  std::vector<std::uint64_t> sample(const std::vector<std::size_t>& qubits,
                                    std::size_t shots, Rng& rng) const override;

  /// The underlying slab state, for backend-aware diagnostics and tests.
  const BasicShardedStatevector<Real>& state() const { return state_; }
  BasicShardedStatevector<Real>& state() { return state_; }

 private:
  BasicShardedStatevector<Real> state_;
};

using ShardedStatevectorBackend = BasicShardedStatevectorBackend<double>;
using ShardedStatevectorBackendF32 = BasicShardedStatevectorBackend<float>;

/// Exact-channel implementation: evolves ρ itself (4^n vectorized storage,
/// at most 13 qubits), so depolarizing noise is applied *exactly* instead of
/// sampled — the reference that trajectory ensembles converge to.  Gates run
/// as U ⊗ conj(U) on the 2n-qubit vectorization; matrix-free operator gates
/// stay matrix-free via the ConjugatedOperator adapter on the column
/// register, so the sparse QPE oracle composes with exact noise.
/// apply_depolarizing keeps the Rng signature of the contract but never
/// consumes it (exact_channels() returns true): one noisy evolution is the
/// whole ensemble, and every shot samples from it.
template <typename Real>
class BasicDensityMatrixBackend final : public SimulatorBackend {
 public:
  explicit BasicDensityMatrixBackend(std::size_t num_qubits);

  std::string name() const override { return "density-matrix"; }
  std::size_t num_qubits() const override { return state_.num_qubits(); }
  Precision precision() const override { return precision_of<Real>(); }
  void prepare_basis_state(std::uint64_t index) override;
  void apply_gate(const Gate& gate) override;
  void apply_circuit(const Circuit& circuit) override;
  void apply_global_phase(double phi) override;
  /// Plan execution with native one-pass DρD† diagonals.
  void apply_plan(const ExecutionPlan& plan) override;
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls) override;
  void apply_depolarizing(std::size_t qubit, double probability,
                          Rng& rng) override;
  bool exact_channels() const override { return true; }
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const override;
  std::vector<std::uint64_t> sample(const std::vector<std::size_t>& qubits,
                                    std::size_t shots, Rng& rng) const override;

  /// The underlying density matrix, for backend-aware diagnostics and tests.
  const BasicDensityMatrix<Real>& state() const { return state_; }
  BasicDensityMatrix<Real>& state() { return state_; }

 private:
  BasicDensityMatrix<Real> state_;
};

using DensityMatrixBackend = BasicDensityMatrixBackend<double>;
using DensityMatrixBackendF32 = BasicDensityMatrixBackend<float>;

extern template class BasicStatevectorBackend<double>;
extern template class BasicStatevectorBackend<float>;
extern template class BasicShardedStatevectorBackend<double>;
extern template class BasicShardedStatevectorBackend<float>;
extern template class BasicDensityMatrixBackend<double>;
extern template class BasicDensityMatrixBackend<float>;

/// Factory used by the estimator options plumbing.  \p shards only matters
/// for kShardedStatevector (0 = one slab per hardware thread); \p precision
/// selects the amplitude scalar (complex128 by default).
///
/// Environment overrides (read per call): QTDA_SIMULATOR forces the engine
/// by name, QTDA_SHARDS forces the slab count, and QTDA_PRECISION forces
/// the scalar width — the hooks the CI legs use to route the whole
/// unmodified test suite through the sharded engine or the complex64
/// engines.  QTDA_SIMD is validated eagerly here too, so a malformed SIMD
/// override fails at backend construction with the variable named instead
/// of deep inside the first hot kernel.  Malformed values fail fast with
/// the variable named in the error, and forcing density-matrix onto a
/// register wider than its 13-qubit 4^n storage cap is rejected here
/// (clearly attributed to the override) instead of surfacing a construction
/// failure from deep inside a run.
std::unique_ptr<SimulatorBackend> make_simulator(
    SimulatorKind kind, std::size_t num_qubits, std::size_t shards = 0,
    Precision precision = Precision::kFloat64);

}  // namespace qtda
