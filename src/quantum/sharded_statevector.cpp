#include "quantum/sharded_statevector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "quantum/register_layout.hpp"
#include "quantum/simd_kernels.hpp"
#include "quantum/statevector.hpp"

namespace qtda {

namespace {

/// Cap on per-step packed-buffer amplitudes for apply_operator, matching
/// Statevector::apply_operator so the extra memory stays ~2×64 MB overall
/// regardless of shard count (each worker strip gets an equal share).
constexpr std::uint64_t kBatchAmplitudeCap = std::uint64_t{1} << 22;

/// More slabs than this still work (they share workers round-robin through
/// the pool queue), but the pool itself stops growing — thousands of slabs
/// must not mean thousands of OS threads.
constexpr std::size_t kMaxPoolThreads = 64;

/// Below this state size a gate's work is smaller than the cross-thread
/// barrier handoff, so barrier steps run serially on the calling thread
/// (results are unchanged: slab tasks touch disjoint data in either mode).
/// Deliberately far below the dense engine's 2^17 serial threshold — the
/// sharded engine exists precisely to parallelize mid-sized states.
constexpr std::uint64_t kSerialBarrierThreshold = std::uint64_t{1} << 9;

/// Casts a double gate matrix to the amplitude scalar: zero-copy for double,
/// a one-time narrowing into \p scratch for float (mirroring the dense
/// engine's boundary rule: matrices arrive as ComplexMatrix, the state
/// scalar is chosen at kernel entry).
template <typename Real>
const std::complex<Real>* cast_matrix(const ComplexMatrix& u,
                                      std::vector<std::complex<Real>>& scratch);

// ComplexMatrix storage is double by contract — this specialization is the
// zero-copy side of the boundary.  qtda-lint: allow(complex-scalar)
template <>
const std::complex<double>* cast_matrix<double>(
    const ComplexMatrix& u, std::vector<std::complex<double>>& /*scratch*/) {
  return u.data();
}

template <>
const std::complex<float>* cast_matrix<float>(
    const ComplexMatrix& u, std::vector<std::complex<float>>& scratch) {
  const std::size_t count = u.rows() * u.cols();
  scratch.resize(count);
  // Narrowing read from the double-typed matrix rail.  qtda-lint: allow(complex-scalar)
  const std::complex<double>* src = u.data();
  for (std::size_t i = 0; i < count; ++i)
    scratch[i] = std::complex<float>(static_cast<float>(src[i].real()),
                                     static_cast<float>(src[i].imag()));
  return scratch.data();
}

/// Routes a packed batch to the operator's rail for the amplitude scalar.
/// Overload pair selecting the rail by scalar.  qtda-lint: allow(complex-scalar)
inline void operator_apply_batch(const LinearOperator& op,
                                 const std::complex<double>* in,
                                 std::complex<double>* out,
                                 std::size_t count) {
  op.apply_batch(in, out, count);
}

inline void operator_apply_batch(const LinearOperator& op,
                                 const std::complex<float>* in,
                                 std::complex<float>* out, std::size_t count) {
  op.apply_batch_f32(in, out, count);
}

}  // namespace

template <typename Real>
BasicShardedStatevector<Real>::BasicShardedStatevector(std::size_t num_qubits,
                                                       std::size_t num_shards)
    : num_qubits_(num_qubits) {
  QTDA_REQUIRE(num_qubits > 0 && num_qubits <= 30,
               "statevector width " << num_qubits << " unsupported");
  QTDA_REQUIRE(num_shards >= 1, "sharded statevector needs >= 1 shard");
  const std::uint64_t dim = dimension();
  const std::uint64_t shards =
      std::min<std::uint64_t>(num_shards, dim);  // no empty slabs
  begins_.resize(static_cast<std::size_t>(shards) + 1);
  slabs_.resize(static_cast<std::size_t>(shards));
  for (std::uint64_t s = 0; s <= shards; ++s)
    begins_[static_cast<std::size_t>(s)] = dim * s / shards;
  for (std::size_t s = 0; s < slabs_.size(); ++s)
    slabs_[s].assign(begins_[s + 1] - begins_[s], C{});
  slabs_[0][0] = C{Real{1}, Real{0}};
  if (slabs_.size() > 1) {
    pool_ = std::make_unique<ThreadPool>(
        std::min(slabs_.size(), kMaxPoolThreads));
  }
}

template <typename Real>
std::size_t BasicShardedStatevector<Real>::shard_of(std::uint64_t index) const {
  // Slabs are the balanced partition begins_[s] = ⌊dim·s/S⌋, whose inverse
  // is ⌊index·S/dim⌋ up to a ±1 boundary adjustment.
  std::size_t s = static_cast<std::size_t>((index * num_shards()) >>
                                           num_qubits_);
  while (begins_[s + 1] <= index) ++s;
  while (begins_[s] > index) --s;
  return s;
}

template <typename Real>
typename BasicShardedStatevector<Real>::C& BasicShardedStatevector<Real>::at(
    std::uint64_t index) {
  const std::size_t s = shard_of(index);
  return slabs_[s][index - begins_[s]];
}

template <typename Real>
const typename BasicShardedStatevector<Real>::C&
BasicShardedStatevector<Real>::at(std::uint64_t index) const {
  const std::size_t s = shard_of(index);
  return slabs_[s][index - begins_[s]];
}

template <typename Real>
typename BasicShardedStatevector<Real>::Span
BasicShardedStatevector<Real>::span_at(std::uint64_t index) {
  const std::size_t s = shard_of(index);
  return Span{slabs_[s].data() + (index - begins_[s]),
              begins_[s + 1] - index};
}

template <typename Real>
void BasicShardedStatevector<Real>::barrier_step(
    const std::function<void(std::size_t)>& slab_task) {
  if (pool_ && dimension() >= kSerialBarrierThreshold) {
    pool_->run_batch(slabs_.size(), slab_task);
  } else {
    for (std::size_t s = 0; s < slabs_.size(); ++s) slab_task(s);
  }
}

template <typename Real>
typename BasicShardedStatevector<Real>::C
BasicShardedStatevector<Real>::amplitude(std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return at(index);
}

template <typename Real>
std::vector<typename BasicShardedStatevector<Real>::C>
BasicShardedStatevector<Real>::amplitudes() const {
  std::vector<C> all;
  all.reserve(static_cast<std::size_t>(dimension()));
  for (const auto& slab : slabs_)
    all.insert(all.end(), slab.begin(), slab.end());
  return all;
}

template <typename Real>
void BasicShardedStatevector<Real>::set_basis_state(std::uint64_t index) {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  barrier_step([&](std::size_t s) {
    std::fill(slabs_[s].begin(), slabs_[s].end(), C{});
  });
  at(index) = C{Real{1}, Real{0}};
}

template <typename Real>
void BasicShardedStatevector<Real>::set_amplitudes(
    const std::vector<C>& amplitudes) {
  QTDA_REQUIRE(amplitudes.size() == dimension(),
               "amplitude vector length mismatch");
  barrier_step([&](std::size_t s) {
    std::copy(amplitudes.begin() + static_cast<std::ptrdiff_t>(begins_[s]),
              amplitudes.begin() + static_cast<std::ptrdiff_t>(begins_[s + 1]),
              slabs_[s].begin());
  });
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_gate(const Gate& gate) {
  if (gate.kind == GateKind::kUnitary) {
    apply_unitary(gate.matrix, gate.targets, gate.controls);
  } else if (gate.kind == GateKind::kOperator) {
    apply_operator(*gate.op, gate.targets, gate.controls);
  } else {
    apply_single_qubit(gate.single_qubit_matrix(), gate.targets.at(0),
                       gate.controls);
  }
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_circuit(const Circuit& circuit) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits_,
               "circuit width " << circuit.num_qubits()
                                << " does not match state width "
                                << num_qubits_);
  for (const Gate& gate : circuit.gates()) apply_gate(gate);
  if (circuit.global_phase() != 0.0) apply_global_phase(circuit.global_phase());
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_single_qubit(
    const ComplexMatrix& u, std::size_t target,
    const std::vector<std::size_t>& controls) {
  QTDA_REQUIRE(u.rows() == 2 && u.cols() == 2, "expected a 2x2 matrix");
  QTDA_REQUIRE(target < num_qubits_, "target out of range");
  const std::uint64_t mask = qubit_mask(target, num_qubits_);
  std::uint64_t cmask = 0;
  for (std::size_t c : controls) {
    QTDA_REQUIRE(c < num_qubits_ && c != target, "bad control qubit");
    cmask |= qubit_mask(c, num_qubits_);
  }
  const C u2x2[4] = {static_cast<C>(u(0, 0)), static_cast<C>(u(0, 1)),
                     static_cast<C>(u(1, 0)), static_cast<C>(u(1, 1))};
  const C u00 = u2x2[0], u01 = u2x2[1], u10 = u2x2[2], u11 = u2x2[3];
  const SimdLevel level = active_simd_level();

  // One task per slab: anchors (pair indices with the target bit clear) in
  // [lo, hi) come in runs [B, B+mask) every 2·mask; the partner run
  // [B+mask, B+2·mask) is resolved slab-by-slab — local for low qubits, the
  // slab-exchange analogue for high ones.
  barrier_step([&](std::size_t s) {
    const std::uint64_t lo = begins_[s];
    const std::uint64_t hi = begins_[s + 1];
    C* own = slabs_[s].data();
    for (std::uint64_t block = lo & ~(2 * mask - 1); block < hi;
         block += 2 * mask) {
      const std::uint64_t run_lo = std::max(block, lo);
      const std::uint64_t run_hi = std::min(block + mask, hi);
      if (run_lo >= run_hi) continue;
      C* p0 = own + (run_lo - lo);
      const std::uint64_t n = run_hi - run_lo;
      if (run_hi + mask <= hi) {
        // Slab-local qubit: the partner run lives in the own slab too (the
        // overwhelmingly common case for low qubits) — plain strided kernel,
        // no per-run slab resolution; branch-free when uncontrolled.  The
        // uncontrolled sweep is the shared SIMD pair kernel, bit-identical
        // to its scalar form at every level.
        C* p1 = p0 + mask;
        if (cmask == 0) {
          simd::pair_sweep(level, p0, p1, n, u2x2);
        } else {
          for (std::uint64_t k = 0; k < n; ++k) {
            if (((run_lo + k) & cmask) != cmask) continue;
            const C a0 = p0[k];
            const C a1 = p1[k];
            p0[k] = u00 * a0 + u01 * a1;
            p1[k] = u10 * a0 + u11 * a1;
          }
        }
        continue;
      }
      // Nonlocal/high qubit: the partner run crosses into other slabs — the
      // shared-memory slab exchange, resolved segment by segment.
      std::uint64_t done = 0;
      while (done < n) {
        const Span partner = span_at(run_lo + done + mask);
        const std::uint64_t len = std::min(n - done, partner.length);
        if (cmask == 0) {
          simd::pair_sweep(level, p0 + done, partner.data, len, u2x2);
        } else {
          for (std::uint64_t k = 0; k < len; ++k) {
            const std::uint64_t i0 = run_lo + done + k;
            if ((i0 & cmask) != cmask) continue;
            const C a0 = p0[done + k];
            const C a1 = partner.data[k];
            p0[done + k] = u00 * a0 + u01 * a1;
            partner.data[k] = u10 * a0 + u11 * a1;
          }
        }
        done += len;
      }
    }
  });
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_unitary(
    const ComplexMatrix& u, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  if (targets.size() == 1) {
    apply_single_qubit(u, targets[0], controls);
    return;
  }
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m <= 20, "dense unitary over too many targets");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(u.rows() == block && u.cols() == block,
               "unitary shape does not match target count");
  const TargetLayout layout =
      build_target_layout(targets, controls, num_qubits_);
  const std::uint64_t tmask = layout.tmask;
  const std::uint64_t cmask = layout.cmask;
  const std::vector<std::uint64_t> offset =
      block_offsets(layout.local_bit_mask);
  std::vector<C> matrix_scratch;
  const C* uc = cast_matrix<Real>(u, matrix_scratch);
  const SimdLevel level = active_simd_level();

  // Anchors are the block base indices; each worker owns the bases in its
  // slab and gathers/scatters block elements wherever they live.  The
  // gathered block runs through the shared dense-block matvec (one
  // accumulator per row, ascending column order — the scalar row-dot's
  // arithmetic at every SIMD level).
  barrier_step([&](std::size_t s) {
    std::vector<C> buf(block);
    std::vector<C> out(block);
    for (std::uint64_t i = begins_[s]; i < begins_[s + 1]; ++i) {
      if ((i & tmask) != 0 || (i & cmask) != cmask) continue;
      for (std::uint64_t l = 0; l < block; ++l) buf[l] = at(i | offset[l]);
      simd::block_matvec(level, uc, buf.data(), out.data(),
                         static_cast<std::size_t>(block));
      for (std::uint64_t r = 0; r < block; ++r) at(i | offset[r]) = out[r];
    }
  });
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m >= 1 && m <= num_qubits_, "bad operator target count");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(op.dimension() == block,
               "operator dimension " << op.dimension() << " does not match "
                                     << m << " targets");
  const TargetLayout layout =
      build_target_layout(targets, controls, num_qubits_);

  // Same block decomposition as BasicStatevector::apply_operator: contiguous
  // blocks exactly when the targets are the trailing wires in order, and
  // block-column bases enumerated in the same order as the dense engine.
  const bool contiguous = targets_are_trailing(targets, num_qubits_);
  std::vector<std::uint64_t> offset;
  if (!contiguous) offset = block_offsets(layout.local_bit_mask);
  const std::vector<std::uint64_t> bases =
      enumerate_block_bases(dimension(), layout.tmask, layout.cmask);

  // One block-column strip per worker; each strip batches its blocks
  // through packed buffers under an equal share of the amplitude cap.  When
  // single blocks are so large that every worker holding even one would
  // blow the cap, fewer (fatter) strips run so the total packed memory
  // stays at ~the dense engine's bound.  The operator runs inside a pool
  // task, so its own parallelism degrades to serial — the strips are the
  // parallelism here.
  const std::size_t strips = static_cast<std::size_t>(std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(slabs_.size(), kBatchAmplitudeCap / block)));
  const std::size_t per_strip_cap = static_cast<std::size_t>(std::max<std::uint64_t>(
      1, kBatchAmplitudeCap / strips / block));
  barrier_step([&](std::size_t s) {
    if (s >= strips) return;
    const std::size_t strip_lo = bases.size() * s / strips;
    const std::size_t strip_hi = bases.size() * (s + 1) / strips;
    if (strip_lo >= strip_hi) return;
    std::vector<C> packed_in;
    std::vector<C> packed_out;
    for (std::size_t first = strip_lo; first < strip_hi;
         first += per_strip_cap) {
      const std::size_t count = std::min(per_strip_cap, strip_hi - first);
      packed_in.resize(count * block);
      packed_out.resize(count * block);
      for (std::size_t b = 0; b < count; ++b) {
        const std::uint64_t base = bases[first + b];
        if (contiguous) {
          // Segmented gather: the block is one global run crossing zero or
          // more slab boundaries.
          std::uint64_t done = 0;
          while (done < block) {
            const Span src = span_at(base + done);
            const std::uint64_t len = std::min(block - done, src.length);
            std::memcpy(packed_in.data() + b * block + done, src.data,
                        len * sizeof(C));
            done += len;
          }
        } else {
          for (std::uint64_t l = 0; l < block; ++l)
            packed_in[b * block + l] = at(base | offset[l]);
        }
      }
      operator_apply_batch(op, packed_in.data(), packed_out.data(), count);
      for (std::size_t b = 0; b < count; ++b) {
        const std::uint64_t base = bases[first + b];
        if (contiguous) {
          std::uint64_t done = 0;
          while (done < block) {
            const Span dst = span_at(base + done);
            const std::uint64_t len = std::min(block - done, dst.length);
            std::memcpy(dst.data, packed_out.data() + b * block + done,
                        len * sizeof(C));
            done += len;
          }
        } else {
          for (std::uint64_t l = 0; l < block; ++l)
            at(base | offset[l]) = packed_out[b * block + l];
        }
      }
    }
  });
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_global_phase(double phi) {
  // cos/sin evaluated in double at every precision, then narrowed — the
  // float engine's phase factor is the rounded double one, matching the
  // dense engine.
  const C factor{static_cast<Real>(std::cos(phi)),
                 static_cast<Real>(std::sin(phi))};
  barrier_step([&](std::size_t s) {
    for (C& a : slabs_[s]) a *= factor;
  });
}

template <typename Real>
void BasicShardedStatevector<Real>::apply_diagonal(
    const C* table, const DiagonalExtract& extract) {
  const SimdLevel level = active_simd_level();
  barrier_step([&](std::size_t s) {
    simd::diagonal_pass(level, slabs_[s].data(), begins_[s],
                        begins_[s + 1] - begins_[s], extract, table);
  });
}

template <typename Real>
std::vector<double> BasicShardedStatevector<Real>::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  const std::vector<std::uint64_t> bit_mask =
      marginal_bit_masks(qubits, num_qubits_);
  const std::size_t m = qubits.size();
  const std::uint64_t out_dim = std::uint64_t{1} << m;
  // The exact reduction of BasicStatevector::marginal_probabilities — same
  // shared-pool chunking, same index-ascending accumulation, same merge
  // order — which is what makes the sharded marginals (and therefore
  // samples) bit-identical to the dense engine for every shard count.  Each
  // chunk walks its slab runs with a raw pointer instead of resolving every
  // index through the slab map.
  std::vector<double> marginal(out_dim, 0.0);
  reduce_ordered_over_slabs(
      std::vector<double>(out_dim, 0.0),
      [&](const C* amp, std::uint64_t index, std::uint64_t length,
          std::vector<double>& into) {
        for (std::uint64_t k = 0; k < length; ++k) {
          const double p = norm_sq_as_double(amp[k]);
          if (p == 0.0) continue;
          const std::uint64_t i = index + k;
          std::uint64_t outcome = 0;
          for (std::size_t j = 0; j < m; ++j)
            if (i & bit_mask[j]) outcome |= std::uint64_t{1} << j;
          into[outcome] += p;
        }
      },
      [out_dim](std::vector<double>& total, const std::vector<double>& part) {
        for (std::uint64_t o = 0; o < out_dim; ++o) total[o] += part[o];
      },
      marginal);
  return marginal;
}

template <typename Real>
std::vector<std::uint64_t> BasicShardedStatevector<Real>::sample_counts(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return multinomial_sample(marginal_probabilities(qubits), shots, rng);
}

template <typename Real>
double BasicShardedStatevector<Real>::norm_squared() const {
  double s = 0.0;
  reduce_ordered_over_slabs(
      0.0,
      [](const C* amp, std::uint64_t /*index*/, std::uint64_t length,
         double& acc) {
        for (std::uint64_t k = 0; k < length; ++k)
          acc += norm_sq_as_double(amp[k]);
      },
      [](double& total, double part) { total += part; }, s);
  return s;
}

template class BasicShardedStatevector<double>;
template class BasicShardedStatevector<float>;

}  // namespace qtda
