#include "quantum/gates.hpp"

#include <cmath>
#include <complex>

namespace qtda::gates {

namespace {
const std::complex<double> kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

ComplexMatrix I() { return {{1.0, 0.0}, {0.0, 1.0}}; }

ComplexMatrix X() { return {{0.0, 1.0}, {1.0, 0.0}}; }

ComplexMatrix Y() {
  ComplexMatrix m(2, 2);
  m(0, 1) = -kI;
  m(1, 0) = kI;
  return m;
}

ComplexMatrix Z() { return {{1.0, 0.0}, {0.0, -1.0}}; }

ComplexMatrix H() {
  ComplexMatrix m(2, 2);
  m(0, 0) = kInvSqrt2;
  m(0, 1) = kInvSqrt2;
  m(1, 0) = kInvSqrt2;
  m(1, 1) = -kInvSqrt2;
  return m;
}

ComplexMatrix S() {
  ComplexMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = kI;
  return m;
}

ComplexMatrix Sdg() {
  ComplexMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = -kI;
  return m;
}

ComplexMatrix T() {
  ComplexMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = std::exp(kI * (M_PI / 4.0));
  return m;
}

ComplexMatrix Tdg() {
  ComplexMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = std::exp(-kI * (M_PI / 4.0));
  return m;
}

ComplexMatrix RX(double theta) {
  ComplexMatrix m(2, 2);
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  m(0, 0) = c;
  m(0, 1) = -kI * s;
  m(1, 0) = -kI * s;
  m(1, 1) = c;
  return m;
}

ComplexMatrix RY(double theta) {
  ComplexMatrix m(2, 2);
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  m(0, 0) = c;
  m(0, 1) = -s;
  m(1, 0) = s;
  m(1, 1) = c;
  return m;
}

ComplexMatrix RZ(double theta) {
  ComplexMatrix m(2, 2);
  m(0, 0) = std::exp(-kI * (theta / 2.0));
  m(1, 1) = std::exp(kI * (theta / 2.0));
  return m;
}

ComplexMatrix Phase(double phi) {
  ComplexMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = std::exp(kI * phi);
  return m;
}

}  // namespace qtda::gates
