/// \file noise.hpp
/// \brief Stochastic Pauli (depolarizing) noise — the paper's NISQ
/// future-work axis.
///
/// A depolarizing channel of strength p on a qubit applies a uniformly
/// random non-identity Pauli with probability p.  The noisy executor
/// inserts such errors after every gate, on every qubit the gate touches,
/// with separate strengths for single- and multi-qubit gates (hardware
/// two-qubit error rates are typically an order of magnitude worse).
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "common/random.hpp"
#include "quantum/circuit.hpp"
#include "quantum/compiler.hpp"
#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"

namespace qtda {

/// Depolarizing noise strengths.
struct NoiseModel {
  double single_qubit_error = 0.0;  ///< per touched qubit, 1q gates
  double two_qubit_error = 0.0;     ///< per touched qubit, ≥2q gates

  bool is_noiseless() const {
    return single_qubit_error <= 0.0 && two_qubit_error <= 0.0;
  }
};

/// Applies one stochastic depolarizing event to \p qubit with probability
/// \p probability (X, Y or Z uniformly when it fires).  Templated over the
/// engine (any state exposing apply_single_qubit — Statevector and
/// ShardedStatevector) so every backend consumes the RNG identically: one
/// Bernoulli draw, then one uniform index when the error fires.
template <typename State>
void maybe_apply_depolarizing(State& state, std::size_t qubit,
                              double probability, Rng& rng) {
  if (probability <= 0.0) return;
  QTDA_REQUIRE(probability <= 1.0, "error probability above 1");
  if (!rng.bernoulli(probability)) return;
  switch (rng.uniform_index(3)) {
    case 0:
      state.apply_single_qubit(gates::X(), qubit);
      break;
    case 1:
      state.apply_single_qubit(gates::Y(), qubit);
      break;
    default:
      state.apply_single_qubit(gates::Z(), qubit);
      break;
  }
}

/// The error-placement policy shared by every noisy executor (trajectory
/// sampler, exact density-matrix channel, backend default): after each gate,
/// one depolarizing event per touched qubit — targets before controls — at
/// the multi-qubit strength when the gate touches ≥ 2 wires.  Existing in
/// one place only, the three executors cannot drift apart.
/// \p apply_gate is invoked as apply_gate(const Gate&), \p apply_error as
/// apply_error(qubit, probability).
template <typename ApplyGate, typename ApplyError>
void for_each_gate_with_noise(const Circuit& circuit, const NoiseModel& noise,
                              ApplyGate&& apply_gate,
                              ApplyError&& apply_error) {
  for (const Gate& gate : circuit.gates()) {
    apply_gate(gate);
    const bool multi = gate.targets.size() + gate.controls.size() >= 2;
    const double p = multi ? noise.two_qubit_error : noise.single_qubit_error;
    if (p <= 0.0) continue;
    for (std::size_t q : gate.targets) apply_error(q, p);
    for (std::size_t q : gate.controls) apply_error(q, p);
  }
}

/// Runs one noisy trajectory of the circuit from |0…0⟩.
Statevector run_noisy_trajectory(const Circuit& circuit,
                                 const NoiseModel& noise, Rng& rng);

/// Compile-once variant for trajectory ensembles: the plan must have been
/// compiled with preserve_noise_slots, so every trajectory reuses the
/// precompiled ops and the plan's scratch arena instead of re-walking the
/// raw gate IR (matrix construction, mask building, buffer allocation per
/// gate per trajectory).  Error placement and RNG consumption are identical
/// to the Circuit overload.
Statevector run_noisy_trajectory(const ExecutionPlan& plan,
                                 const NoiseModel& noise, Rng& rng);

}  // namespace qtda
