/// \file types.hpp
/// \brief Shared conventions of the quantum simulator.
///
/// **Qubit ordering.**  Qubit 0 is the *most significant* bit of a basis
/// index (the PennyLane wire convention, which the paper's circuits use):
/// for an n-qubit register, basis state |b_0 b_1 … b_{n−1}⟩ has index
/// Σ_k b_k · 2^{n−1−k}.  Pauli strings are written left to right in qubit
/// order ("ZIX" = Z on qubit 0, I on qubit 1, X on qubit 2) and their
/// matrices are the Kronecker products in that order — matching Eq. (19).
#pragma once

#include <complex>
#include <cstdint>

namespace qtda {

using Amplitude = std::complex<double>;

/// Bit of \p index corresponding to \p qubit under the MSB-first convention.
inline int qubit_bit(std::uint64_t index, std::size_t qubit,
                     std::size_t num_qubits) {
  return static_cast<int>((index >> (num_qubits - 1 - qubit)) & 1ULL);
}

/// Bitmask selecting \p qubit in an n-qubit index.
inline std::uint64_t qubit_mask(std::size_t qubit, std::size_t num_qubits) {
  return 1ULL << (num_qubits - 1 - qubit);
}

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace qtda
