/// \file circuit.hpp
/// \brief Gate-level circuit intermediate representation.
///
/// Circuits are flat gate lists over a fixed-width register.  Named
/// single-qubit gates keep their identity (so the peephole optimizer can
/// merge/cancel them); arbitrary unitaries are carried as dense matrices
/// over an ordered target list.  Any gate may carry controls, and a whole
/// circuit can be promoted to its controlled version — this is how the
/// QPE builder controls the Trotterized e^{iH} fragments.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/linear_operator.hpp"

namespace qtda {

/// Identity of a gate in the IR.
enum class GateKind {
  kH,
  kX,
  kY,
  kZ,
  kS,
  kSdg,
  kT,
  kTdg,
  kRX,
  kRY,
  kRZ,
  kPhase,    ///< diag(1, e^{iφ})
  kUnitary,  ///< dense matrix over `targets`
  kOperator, ///< matrix-free LinearOperator over `targets`
};

/// Printable gate name ("H", "RZ", …).
std::string gate_kind_name(GateKind kind);

/// True for parameterized rotations (RX/RY/RZ/Phase).
bool is_rotation(GateKind kind);

/// True for self-inverse named gates (H/X/Y/Z).
bool is_self_inverse(GateKind kind);

/// One gate instance.
struct Gate {
  GateKind kind = GateKind::kH;
  std::vector<std::size_t> targets;   ///< ordered; MSB-first for kUnitary
  std::vector<std::size_t> controls;  ///< all-ones condition
  double parameter = 0.0;             ///< rotation angle / phase
  ComplexMatrix matrix;               ///< only for kUnitary
  /// Only for kOperator: the matrix-free action over `targets` (shared so
  /// circuit copies stay cheap; the operator itself is immutable).
  std::shared_ptr<const LinearOperator> op;

  /// The 2×2 matrix of a named single-qubit gate (throws for kUnitary and
  /// kOperator).
  ComplexMatrix single_qubit_matrix() const;
};

/// A circuit over `num_qubits` qubits.
class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t gate_count() const { return gates_.size(); }

  /// Global phase e^{iφ} accumulated by phase-only terms (e.g. the identity
  /// component of a Pauli sum).  Physically unobservable but tracked so the
  /// simulated state matches the matrix exponential exactly.
  double global_phase() const { return global_phase_; }
  void add_global_phase(double phi) { global_phase_ += phi; }

  // -- appenders (all validate qubit indices) -------------------------------
  void h(std::size_t q);
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void s(std::size_t q);
  void sdg(std::size_t q);
  void t(std::size_t q);
  void tdg(std::size_t q);
  void rx(std::size_t q, double theta);
  void ry(std::size_t q, double theta);
  void rz(std::size_t q, double theta);
  void phase(std::size_t q, double phi);
  void cnot(std::size_t control, std::size_t target);
  void cz(std::size_t control, std::size_t target);
  void swap(std::size_t a, std::size_t b);  ///< emitted as three CNOTs
  void controlled_phase(std::size_t control, std::size_t target, double phi);
  /// Dense unitary over an ordered target list (first target = most
  /// significant local bit), optionally controlled.
  void unitary(const ComplexMatrix& u, std::vector<std::size_t> targets,
               std::vector<std::size_t> controls = {});
  /// Matrix-free operator over an ordered target list (same wire
  /// convention as unitary()), optionally controlled.  The operator must be
  /// unitary for the circuit to stay physical; its dimension must be
  /// 2^targets.  This is how the sparse QPE oracle enters the IR without a
  /// 2^q×2^q matrix.
  void operator_gate(std::shared_ptr<const LinearOperator> op,
                     std::vector<std::size_t> targets,
                     std::vector<std::size_t> controls = {});
  /// Appends an arbitrary gate.
  void append(Gate gate);
  /// Appends every gate of \p other (same register width required).
  void append_circuit(const Circuit& other);

  /// Returns this circuit with \p control added to every gate; the global
  /// phase becomes a Phase gate on the control qubit.
  Circuit controlled_on(std::size_t control) const;

  // -- metrics ---------------------------------------------------------------
  /// Circuit depth: longest chain of gates sharing qubits (controls count).
  std::size_t depth() const;
  /// Number of gates touching ≥ 2 qubits (controls included).
  std::size_t two_qubit_gate_count() const;
  /// Gate census by kind name, e.g. {"H": 3, "RZ": 10}.
  std::vector<std::pair<std::string, std::size_t>> gate_census() const;

  /// Multi-line text diagram (one line per gate; diagnostic aid).
  std::string to_string() const;

 private:
  void check_qubit(std::size_t q) const;
  void check_gate(const Gate& gate) const;

  std::size_t num_qubits_;
  std::vector<Gate> gates_;
  double global_phase_ = 0.0;
};

}  // namespace qtda
