#include "quantum/mixed_state.hpp"

#include "common/error.hpp"

namespace qtda {

void append_mixed_state_preparation(Circuit& circuit,
                                    const std::vector<std::size_t>& ancillas,
                                    const std::vector<std::size_t>& systems) {
  QTDA_REQUIRE(ancillas.size() == systems.size(),
               "purification needs one ancilla per system qubit");
  for (std::size_t i = 0; i < ancillas.size(); ++i) {
    circuit.h(ancillas[i]);
    circuit.cnot(ancillas[i], systems[i]);
  }
}

}  // namespace qtda
