#include "quantum/trotter.hpp"

#include "common/error.hpp"
#include "quantum/types.hpp"

namespace qtda {

void append_pauli_exponential(Circuit& circuit, const PauliString& p,
                              double theta, std::size_t offset) {
  const std::size_t n = p.num_qubits();
  QTDA_REQUIRE(offset + n <= circuit.num_qubits(),
               "Pauli exponential exceeds register");
  if (theta == 0.0) return;

  std::vector<std::size_t> active;
  for (std::size_t q = 0; q < n; ++q)
    if (p.kind(q) != PauliKind::I) active.push_back(offset + q);

  if (active.empty()) {
    // e^{iθ·I} is a pure global phase.
    circuit.add_global_phase(theta);
    return;
  }

  // Basis changes into the Z eigenbasis: X = H·Z·H, Y = RX(π/2)†·Z·RX(π/2).
  for (std::size_t q = 0; q < n; ++q) {
    const std::size_t wire = offset + q;
    switch (p.kind(q)) {
      case PauliKind::X:
        circuit.h(wire);
        break;
      case PauliKind::Y:
        circuit.rx(wire, kPi / 2.0);
        break;
      default:
        break;
    }
  }
  // Parity ladder onto the last active wire.
  for (std::size_t i = 0; i + 1 < active.size(); ++i)
    circuit.cnot(active[i], active[i + 1]);
  // e^{iθZ} = RZ(−2θ) on the parity wire.
  circuit.rz(active.back(), -2.0 * theta);
  // Un-compute.
  for (std::size_t i = active.size() - 1; i-- > 0;)
    circuit.cnot(active[i], active[i + 1]);
  for (std::size_t q = 0; q < n; ++q) {
    const std::size_t wire = offset + q;
    switch (p.kind(q)) {
      case PauliKind::X:
        circuit.h(wire);
        break;
      case PauliKind::Y:
        circuit.rx(wire, -kPi / 2.0);
        break;
      default:
        break;
    }
  }
}

Circuit trotter_circuit(const PauliSum& hamiltonian, double time,
                        const TrotterOptions& options,
                        std::size_t total_qubits, std::size_t offset) {
  QTDA_REQUIRE(options.steps >= 1, "Trotter needs at least one step");
  QTDA_REQUIRE(options.order == 1 || options.order == 2,
               "Trotter order must be 1 or 2");
  QTDA_REQUIRE(hamiltonian.size() > 0, "empty Hamiltonian");
  Circuit circuit(total_qubits);
  const double dt = time / static_cast<double>(options.steps);
  const auto& terms = hamiltonian.terms();

  for (std::size_t step = 0; step < options.steps; ++step) {
    if (options.order == 1) {
      for (const PauliTerm& t : terms)
        append_pauli_exponential(circuit, t.string, t.coefficient * dt,
                                 offset);
    } else {
      // Strang: half-steps forward, then in reverse order.
      for (const PauliTerm& t : terms)
        append_pauli_exponential(circuit, t.string,
                                 t.coefficient * dt / 2.0, offset);
      for (std::size_t i = terms.size(); i-- > 0;)
        append_pauli_exponential(circuit, terms[i].string,
                                 terms[i].coefficient * dt / 2.0, offset);
    }
  }
  return circuit;
}

}  // namespace qtda
