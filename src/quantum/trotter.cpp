#include "quantum/trotter.hpp"

#include "common/error.hpp"
#include "quantum/types.hpp"

namespace qtda {

namespace {

/// The conjugation into the Z eigenbasis for a family's shared X/Y letters:
/// X = H·Z·H, Y = RX(π/2)†·Z·RX(π/2).  \p invert emits the closing wall.
void append_basis_wall(Circuit& circuit, const PauliString& p,
                       std::size_t offset, bool invert) {
  for (std::size_t q = 0; q < p.num_qubits(); ++q) {
    const std::size_t wire = offset + q;
    switch (p.kind(q)) {
      case PauliKind::X:
        circuit.h(wire);
        break;
      case PauliKind::Y:
        circuit.rx(wire, invert ? -kPi / 2.0 : kPi / 2.0);
        break;
      default:
        break;
    }
  }
}

/// e^{iθ·Z…Z} over the non-identity wires of \p p, assuming the basis wall
/// is already in place: CNOT parity ladder, RZ(−2θ), un-compute.
void append_diagonalized_exponential(Circuit& circuit, const PauliString& p,
                                     double theta, std::size_t offset) {
  std::vector<std::size_t> active;
  for (std::size_t q = 0; q < p.num_qubits(); ++q)
    if (p.kind(q) != PauliKind::I) active.push_back(offset + q);
  if (active.empty()) {
    circuit.add_global_phase(theta);
    return;
  }
  for (std::size_t i = 0; i + 1 < active.size(); ++i)
    circuit.cnot(active[i], active[i + 1]);
  circuit.rz(active.back(), -2.0 * theta);
  for (std::size_t i = active.size() - 1; i-- > 0;)
    circuit.cnot(active[i], active[i + 1]);
}

/// Π_t e^{i·c_t·scale·P_t} for one commuting family under a single pair of
/// basis-change walls.  Exactly (B†D₁B)(B†D₂B)… = B†(ΠD)B — the inner walls
/// of the per-term synthesis cancel pairwise, so eliding them changes the
/// gate count, never the unitary.
void append_family_exponential(Circuit& circuit,
                               const std::vector<PauliTerm>& family,
                               double scale, std::size_t offset) {
  bool needs_wall = false;
  for (const PauliTerm& t : family)
    if (t.coefficient * scale != 0.0 && !t.string.is_identity())
      needs_wall = true;
  if (!needs_wall) {
    // Pure identity (global phase) family, or every angle vanished.
    for (const PauliTerm& t : family) {
      const double theta = t.coefficient * scale;
      if (theta != 0.0) circuit.add_global_phase(theta);
    }
    return;
  }
  append_basis_wall(circuit, family.front().string, offset, /*invert=*/false);
  for (const PauliTerm& t : family) {
    const double theta = t.coefficient * scale;
    if (theta == 0.0) continue;
    append_diagonalized_exponential(circuit, t.string, theta, offset);
  }
  append_basis_wall(circuit, family.front().string, offset, /*invert=*/true);
}

}  // namespace

void append_pauli_exponential(Circuit& circuit, const PauliString& p,
                              double theta, std::size_t offset) {
  const std::size_t n = p.num_qubits();
  QTDA_REQUIRE(offset + n <= circuit.num_qubits(),
               "Pauli exponential exceeds register");
  if (theta == 0.0) return;
  append_basis_wall(circuit, p, offset, /*invert=*/false);
  append_diagonalized_exponential(circuit, p, theta, offset);
  append_basis_wall(circuit, p, offset, /*invert=*/true);
}

Circuit trotter_circuit(const PauliSum& hamiltonian, double time,
                        const TrotterOptions& options,
                        std::size_t total_qubits, std::size_t offset) {
  QTDA_REQUIRE(options.steps >= 1, "Trotter needs at least one step");
  QTDA_REQUIRE(options.order == 1 || options.order == 2,
               "Trotter order must be 1 or 2");
  QTDA_REQUIRE(hamiltonian.size() > 0, "empty Hamiltonian");
  QTDA_REQUIRE(offset + hamiltonian.num_qubits() <= total_qubits,
               "Trotter circuit exceeds register");
  Circuit circuit(total_qubits);
  const double dt = time / static_cast<double>(options.steps);

  if (options.group_commuting) {
    // Split over commuting families instead of raw terms: each family costs
    // one basis wall per appearance, and within a family the exponentials
    // multiply exactly, so only the between-family splitting error remains.
    const auto families = group_commuting_terms(hamiltonian);
    for (std::size_t step = 0; step < options.steps; ++step) {
      if (options.order == 1) {
        for (const auto& family : families)
          append_family_exponential(circuit, family, dt, offset);
      } else {
        // Strang: half-steps forward, then in reverse family order (the
        // order inside a family is immaterial — the terms commute).
        for (const auto& family : families)
          append_family_exponential(circuit, family, dt / 2.0, offset);
        for (std::size_t i = families.size(); i-- > 0;)
          append_family_exponential(circuit, families[i], dt / 2.0, offset);
      }
    }
    return circuit;
  }

  const auto& terms = hamiltonian.terms();
  for (std::size_t step = 0; step < options.steps; ++step) {
    if (options.order == 1) {
      for (const PauliTerm& t : terms)
        append_pauli_exponential(circuit, t.string, t.coefficient * dt,
                                 offset);
    } else {
      // Strang: half-steps forward, then in reverse order.
      for (const PauliTerm& t : terms)
        append_pauli_exponential(circuit, t.string,
                                 t.coefficient * dt / 2.0, offset);
      for (std::size_t i = terms.size(); i-- > 0;)
        append_pauli_exponential(circuit, terms[i].string,
                                 terms[i].coefficient * dt / 2.0, offset);
    }
  }
  return circuit;
}

}  // namespace qtda
