#include "quantum/noise.hpp"

namespace qtda {

Statevector run_noisy_trajectory(const Circuit& circuit,
                                 const NoiseModel& noise, Rng& rng) {
  Statevector state(circuit.num_qubits());
  for_each_gate_with_noise(
      circuit, noise, [&](const Gate& gate) { state.apply_gate(gate); },
      [&](std::size_t q, double p) {
        maybe_apply_depolarizing(state, q, p, rng);
      });
  if (circuit.global_phase() != 0.0)
    state.apply_global_phase(circuit.global_phase());
  return state;
}

Statevector run_noisy_trajectory(const ExecutionPlan& plan,
                                 const NoiseModel& noise, Rng& rng) {
  QTDA_REQUIRE(plan.preserves_noise_slots(),
               "trajectory execution needs a plan compiled with "
               "preserve_noise_slots");
  Statevector state(plan.num_qubits());
  ExecutionScratch& scratch = plan.scratch();
  for_each_plan_op_with_noise(
      plan, noise,
      [&](const CompiledOp& op) { state.apply_plan_op(op, scratch); },
      [&](std::size_t q, double p) {
        maybe_apply_depolarizing(state, q, p, rng);
      });
  if (plan.global_phase() != 0.0)
    state.apply_global_phase(plan.global_phase());
  return state;
}

}  // namespace qtda
