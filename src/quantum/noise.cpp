#include "quantum/noise.hpp"

namespace qtda {

Statevector run_noisy_trajectory(const Circuit& circuit,
                                 const NoiseModel& noise, Rng& rng) {
  Statevector state(circuit.num_qubits());
  for (const Gate& gate : circuit.gates()) {
    state.apply_gate(gate);
    const bool multi = gate.targets.size() + gate.controls.size() >= 2;
    const double p =
        multi ? noise.two_qubit_error : noise.single_qubit_error;
    if (p <= 0.0) continue;
    for (std::size_t q : gate.targets)
      maybe_apply_depolarizing(state, q, p, rng);
    for (std::size_t q : gate.controls)
      maybe_apply_depolarizing(state, q, p, rng);
  }
  if (circuit.global_phase() != 0.0)
    state.apply_global_phase(circuit.global_phase());
  return state;
}

}  // namespace qtda
