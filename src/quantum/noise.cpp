#include "quantum/noise.hpp"

namespace qtda {

Statevector run_noisy_trajectory(const Circuit& circuit,
                                 const NoiseModel& noise, Rng& rng) {
  Statevector state(circuit.num_qubits());
  for_each_gate_with_noise(
      circuit, noise, [&](const Gate& gate) { state.apply_gate(gate); },
      [&](std::size_t q, double p) {
        maybe_apply_depolarizing(state, q, p, rng);
      });
  if (circuit.global_phase() != 0.0)
    state.apply_global_phase(circuit.global_phase());
  return state;
}

}  // namespace qtda
