#include "quantum/noise.hpp"

#include "common/error.hpp"
#include "quantum/gates.hpp"

namespace qtda {

void maybe_apply_depolarizing(Statevector& state, std::size_t qubit,
                              double probability, Rng& rng) {
  if (probability <= 0.0) return;
  QTDA_REQUIRE(probability <= 1.0, "error probability above 1");
  if (!rng.bernoulli(probability)) return;
  switch (rng.uniform_index(3)) {
    case 0:
      state.apply_single_qubit(gates::X(), qubit);
      break;
    case 1:
      state.apply_single_qubit(gates::Y(), qubit);
      break;
    default:
      state.apply_single_qubit(gates::Z(), qubit);
      break;
  }
}

Statevector run_noisy_trajectory(const Circuit& circuit,
                                 const NoiseModel& noise, Rng& rng) {
  Statevector state(circuit.num_qubits());
  for (const Gate& gate : circuit.gates()) {
    state.apply_gate(gate);
    const bool multi = gate.targets.size() + gate.controls.size() >= 2;
    const double p =
        multi ? noise.two_qubit_error : noise.single_qubit_error;
    if (p <= 0.0) continue;
    for (std::size_t q : gate.targets)
      maybe_apply_depolarizing(state, q, p, rng);
    for (std::size_t q : gate.controls)
      maybe_apply_depolarizing(state, q, p, rng);
  }
  if (circuit.global_phase() != 0.0)
    state.apply_global_phase(circuit.global_phase());
  return state;
}

}  // namespace qtda
