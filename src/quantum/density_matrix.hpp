/// \file density_matrix.hpp
/// \brief Exact mixed-state simulation via vectorized density matrices.
///
/// The trajectory sampler in noise.hpp is unbiased but stochastic; this
/// simulator evolves ρ itself, so noise channels are applied *exactly* —
/// the reference the trajectory tests converge to, and an exact backend for
/// the NISQ ablation.  Implementation: vec(ρ) is held as a 2n-qubit
/// state-vector and every gate U becomes U ⊗ conj(U) (row register qubits
/// [0, n), column register [n, 2n)), reusing the optimized state-vector
/// kernels.  Matrix-free kOperator gates stay matrix-free: the operator is
/// applied verbatim on the row register and through the ConjugatedOperator
/// adapter on the column register, so the sparse QPE oracle composes with
/// exact channels without any 2^q×2^q densification.  A depolarizing
/// channel is the convex combination (1−p)·ρ + (p/3)·(XρX + YρY + ZρZ).
///
/// Like the pure-state engines the class is templated over the amplitude
/// scalar (`BasicDensityMatrix<Real>`, Real ∈ {double, float}): vec(ρ) is a
/// `BasicStatevector<Real>`, so every kernel — including the SIMD routing —
/// is inherited, and traces/purities/probabilities accumulate in double at
/// every precision.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "linalg/linear_operator.hpp"
#include "quantum/circuit.hpp"
#include "quantum/noise.hpp"
#include "quantum/statevector.hpp"

namespace qtda {

/// Hard width cap of the 4^n vectorized storage — one definition for the
/// constructor check here and the fail-fast guard in make_simulator, so the
/// two cannot drift.  13 qubits ⇒ 4^13 amplitudes ≈ 1 GiB.
inline constexpr std::size_t kDensityMatrixMaxQubits = 13;

/// An n-qubit density matrix (2n-qubit vectorized storage: 4^n amplitudes).
template <typename Real>
class BasicDensityMatrix {
 public:
  using C = std::complex<Real>;

  /// |0…0⟩⟨0…0|.
  explicit BasicDensityMatrix(std::size_t num_qubits);

  /// ρ = |ψ⟩⟨ψ| from a pure state.
  static BasicDensityMatrix from_statevector(const BasicStatevector<Real>& psi);

  /// ρ = I/2^n.
  static BasicDensityMatrix maximally_mixed(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }

  /// Matrix element ρ(r, c), widened to the double boundary type.
  Amplitude element(std::uint64_t row, std::uint64_t col) const;

  /// Resets to the pure basis state |index⟩⟨index|.
  void set_basis_state(std::uint64_t index);

  /// Applies U·ρ·U† for a circuit-IR gate (named, dense or matrix-free
  /// operator kind, with controls).
  void apply_gate(const Gate& gate);
  /// Applies all gates of a circuit (the global phase cancels on ρ).
  void apply_circuit(const Circuit& circuit);
  /// U·ρ·U† for a matrix-free operator over the ordered target sub-register
  /// (MSB-first convention of Statevector::apply_operator), conditioned on
  /// controls: the operator runs verbatim on the row register and as
  /// conj(op) (ConjugatedOperator) on the column register — two sub-register
  /// applications, nothing densified.  \p op is borrowed for the call.
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls = {});
  /// Fused diagonal D (quantum/compiler.hpp convention: 2^m table over the
  /// ordered target list, extraction recipe for the n-qubit register):
  /// applies DρD† in one pass over vec(ρ) — each entry picks up
  /// table[row index]·conj(table[column index]).  \p table is pre-cast to
  /// the amplitude scalar (CompiledOp caches both widths).
  void apply_diagonal(const C* table, const DiagonalExtract& extract);
  /// Exact depolarizing channel of strength p on one qubit.
  void apply_depolarizing(std::size_t qubit, double probability);
  /// Applies a circuit with the noise model applied exactly after each gate
  /// (same error placement as run_noisy_trajectory).
  void apply_circuit_with_noise(const Circuit& circuit,
                                const NoiseModel& noise);

  /// Tr ρ (1 for a valid state).
  double trace() const;
  /// Tr ρ² ∈ (0, 1]; 1 iff pure.
  double purity() const;

  /// Diagonal of ρ: exact outcome probabilities in the computational basis.
  std::vector<double> probabilities() const;
  /// Marginal outcome distribution over a qubit subset (MSB-first order).
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const;
  /// Multinomial shot sampling from the marginal.
  std::vector<std::uint64_t> sample_counts(
      const std::vector<std::size_t>& qubits, std::size_t shots,
      Rng& rng) const;

 private:
  explicit BasicDensityMatrix(std::size_t num_qubits,
                              BasicStatevector<Real> vectorized);

  std::size_t num_qubits_;
  // 2n qubits: row block [0, n), column block [n, 2n).
  BasicStatevector<Real> vectorized_;
};

/// The historical (and default) double-precision engine.
using DensityMatrix = BasicDensityMatrix<double>;
/// The complex64 engine.
using DensityMatrixF32 = BasicDensityMatrix<float>;

extern template class BasicDensityMatrix<double>;
extern template class BasicDensityMatrix<float>;

/// Runs a circuit on |0…0⟩⟨0…0| with exact noise; convenience wrapper.
DensityMatrix run_circuit_density(const Circuit& circuit,
                                  const NoiseModel& noise = {});

}  // namespace qtda
