/// \file qft.hpp
/// \brief Quantum Fourier transform circuit fragments.
#pragma once

#include <vector>

#include "quantum/circuit.hpp"

namespace qtda {

/// Appends the QFT over \p qubits (MSB-first list):
///   |x⟩ → 2^{−t/2} Σ_y e^{2πi·x·y/2^t} |y⟩,
/// with x and y read MSB-first off the listed qubits.  Includes the closing
/// swap network.
void append_qft(Circuit& circuit, const std::vector<std::size_t>& qubits);

/// Appends the inverse QFT (exact adjoint of append_qft).
void append_inverse_qft(Circuit& circuit,
                        const std::vector<std::size_t>& qubits);

}  // namespace qtda
