/// \file optimizer.hpp
/// \brief Peephole circuit optimizer (paper future work: depth reduction).
///
/// Three local rewrites applied to a fixpoint:
///  * cancel adjacent self-inverse pairs (H·H, X·X, CNOT·CNOT, …),
///  * merge adjacent same-axis rotations (RZ(a)·RZ(b) → RZ(a+b)),
///  * drop rotations with angle ≡ 0 (mod 4π; mod 2π for Phase).
/// "Adjacent" means no intervening gate touches any shared qubit, tracked
/// with per-qubit last-writer bookkeeping, so rewrites across independent
/// wires still fire.
#pragma once

#include "quantum/circuit.hpp"

namespace qtda {

/// What the optimizer did.
struct OptimizerReport {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t depth_before = 0;
  std::size_t depth_after = 0;
  std::size_t cancelled_pairs = 0;
  std::size_t merged_rotations = 0;
  std::size_t dropped_rotations = 0;
};

/// Returns the optimized circuit; \p report (optional) receives statistics.
Circuit optimize_circuit(const Circuit& circuit,
                         OptimizerReport* report = nullptr);

}  // namespace qtda
