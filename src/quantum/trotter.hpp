/// \file trotter.hpp
/// \brief Circuit synthesis for e^{iHt} from a Pauli decomposition.
///
/// Each term e^{iθP} compiles to the textbook pattern of the paper's Fig. 7:
/// per-qubit basis changes (H for X, RX(π/2) for Y), a CNOT parity ladder
/// onto the last active qubit, RZ(−2θ) there, and the un-computation.  Sums
/// of non-commuting terms use Lie–Trotter (order 1) or Strang splitting
/// (order 2) with a configurable step count.  The identity component becomes
/// a tracked global phase, so the synthesized circuit equals e^{iHt} exactly
/// in the limit of many steps (tests bound the Trotter error).
#pragma once

#include "quantum/circuit.hpp"
#include "quantum/pauli.hpp"

namespace qtda {

/// Appends e^{iθ·P} to \p circuit over qubits [offset, offset + n).
/// \p offset maps string qubit 0 to circuit qubit offset.
void append_pauli_exponential(Circuit& circuit, const PauliString& p,
                              double theta, std::size_t offset = 0);

/// Trotterization parameters.
struct TrotterOptions {
  std::size_t steps = 1;  ///< number of repetitions
  int order = 1;          ///< 1 = Lie–Trotter, 2 = Strang splitting
  /// Group terms with identical X/Y letter patterns (which mutually commute,
  /// see group_commuting_terms) and synthesize each family under one shared
  /// pair of basis-change walls instead of conjugating every term
  /// separately: (B†D₁B)(B†D₂B)…  = B†(D₁D₂…)B exactly, so the grouped
  /// circuit implements the same product of exponentials with fewer gates.
  /// Note the splitting *order* becomes the grouped order (families at
  /// first occurrence) — a different, equally valid Trotter formula whose
  /// error still vanishes with the step count.
  bool group_commuting = true;
};

/// Builds a circuit approximating e^{i·H·time} for H = Σ c_i P_i, on
/// `hamiltonian.num_qubits()` qubits starting at \p offset inside a register
/// of \p total_qubits.
Circuit trotter_circuit(const PauliSum& hamiltonian, double time,
                        const TrotterOptions& options,
                        std::size_t total_qubits, std::size_t offset = 0);

}  // namespace qtda
