#include "quantum/pauli.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/gates.hpp"
#include "quantum/types.hpp"

namespace qtda {

char pauli_kind_char(PauliKind kind) {
  switch (kind) {
    case PauliKind::I: return 'I';
    case PauliKind::X: return 'X';
    case PauliKind::Y: return 'Y';
    case PauliKind::Z: return 'Z';
  }
  return '?';
}

PauliKind pauli_kind_from_char(char c) {
  switch (c) {
    case 'I': return PauliKind::I;
    case 'X': return PauliKind::X;
    case 'Y': return PauliKind::Y;
    case 'Z': return PauliKind::Z;
    default:
      QTDA_REQUIRE(false, "invalid Pauli letter '" << c << '\'');
  }
  return PauliKind::I;
}

PauliString::PauliString(std::size_t num_qubits)
    : kinds_(num_qubits, PauliKind::I) {
  QTDA_REQUIRE(num_qubits > 0, "PauliString needs at least one qubit");
}

PauliString::PauliString(const std::string& letters) {
  QTDA_REQUIRE(!letters.empty(), "empty Pauli string");
  kinds_.reserve(letters.size());
  for (char c : letters) kinds_.push_back(pauli_kind_from_char(c));
}

PauliString::PauliString(std::vector<PauliKind> kinds)
    : kinds_(std::move(kinds)) {
  QTDA_REQUIRE(!kinds_.empty(), "empty Pauli string");
}

std::size_t PauliString::weight() const {
  std::size_t w = 0;
  for (PauliKind k : kinds_)
    if (k != PauliKind::I) ++w;
  return w;
}

std::string PauliString::to_string() const {
  std::string s;
  s.reserve(kinds_.size());
  for (PauliKind k : kinds_) s.push_back(pauli_kind_char(k));
  return s;
}

ComplexMatrix PauliString::matrix() const {
  ComplexMatrix m = ComplexMatrix::identity(1);
  for (PauliKind k : kinds_) {
    const ComplexMatrix factor = [k] {
      switch (k) {
        case PauliKind::I: return gates::I();
        case PauliKind::X: return gates::X();
        case PauliKind::Y: return gates::Y();
        case PauliKind::Z: return gates::Z();
      }
      return gates::I();
    }();
    m = kronecker(m, factor);
  }
  return m;
}

std::uint64_t PauliString::flip_mask() const {
  std::uint64_t mask = 0;
  const std::size_t n = kinds_.size();
  for (std::size_t q = 0; q < n; ++q) {
    if (kinds_[q] == PauliKind::X || kinds_[q] == PauliKind::Y)
      mask |= qubit_mask(q, n);
  }
  return mask;
}

std::complex<double> PauliString::phase_for(std::uint64_t ket) const {
  // P|ket⟩ = phase · |ket ^ flip_mask⟩ with per-qubit factors:
  //   X: 1      Y: i·(−1)^b      Z: (−1)^b        (b = ket's bit)
  std::complex<double> phase{1.0, 0.0};
  const std::size_t n = kinds_.size();
  for (std::size_t q = 0; q < n; ++q) {
    const int b = qubit_bit(ket, q, n);
    switch (kinds_[q]) {
      case PauliKind::I:
      case PauliKind::X:
        break;
      case PauliKind::Y:
        phase *= std::complex<double>(0.0, b ? -1.0 : 1.0);
        break;
      case PauliKind::Z:
        if (b) phase = -phase;
        break;
    }
  }
  return phase;
}

PauliSum::PauliSum(std::vector<PauliTerm> terms) : terms_(std::move(terms)) {
  for (const PauliTerm& t : terms_) {
    QTDA_REQUIRE(t.string.num_qubits() == terms_.front().string.num_qubits(),
                 "mixed qubit counts in PauliSum");
  }
}

std::size_t PauliSum::num_qubits() const {
  return terms_.empty() ? 0 : terms_.front().string.num_qubits();
}

ComplexMatrix PauliSum::matrix() const {
  QTDA_REQUIRE(!terms_.empty(), "matrix of an empty PauliSum");
  const std::uint64_t dim = std::uint64_t{1} << num_qubits();
  ComplexMatrix m(dim, dim);
  for (const PauliTerm& t : terms_) {
    const std::uint64_t flip = t.string.flip_mask();
    for (std::uint64_t ket = 0; ket < dim; ++ket) {
      m(ket ^ flip, ket) += t.coefficient * t.string.phase_for(ket);
    }
  }
  return m;
}

double PauliSum::coefficient_of(const std::string& letters) const {
  const PauliString target(letters);
  double c = 0.0;
  for (const PauliTerm& t : terms_)
    if (t.string == target) c += t.coefficient;
  return c;
}

PauliSum PauliSum::sorted() const {
  std::vector<PauliTerm> out = terms_;
  std::sort(out.begin(), out.end(), [](const PauliTerm& a, const PauliTerm& b) {
    return a.string < b.string;
  });
  return PauliSum(std::move(out));
}

std::vector<std::vector<PauliTerm>> group_commuting_terms(const PauliSum& sum) {
  // Signature = letters with Z erased to I: equal signatures ⇒ the terms
  // agree at every non-diagonal position and are I/Z elsewhere, so every
  // qubit-wise factor pair commutes.
  std::vector<std::vector<PauliTerm>> groups;
  std::map<std::vector<PauliKind>, std::size_t> group_of;
  for (const PauliTerm& term : sum.terms()) {
    std::vector<PauliKind> signature = term.string.kinds();
    for (PauliKind& k : signature)
      if (k == PauliKind::Z) k = PauliKind::I;
    const auto it = group_of.find(signature);
    if (it == group_of.end()) {
      group_of.emplace(std::move(signature), groups.size());
      groups.push_back({term});
    } else {
      groups[it->second].push_back(term);
    }
  }
  return groups;
}

namespace {

PauliSum decompose_impl(const ComplexMatrix& h, double tolerance) {
  QTDA_REQUIRE(h.is_square(), "decomposition needs a square matrix");
  const std::uint64_t dim = h.rows();
  QTDA_REQUIRE(dim > 1 && (dim & (dim - 1)) == 0,
               "matrix dimension must be a power of two, got " << dim);
  QTDA_REQUIRE(is_hermitian(h, 1e-9), "decomposition needs a Hermitian matrix");
  std::size_t n = 0;
  while ((std::uint64_t{1} << n) < dim) ++n;
  QTDA_REQUIRE(n <= 8, "Pauli decomposition over " << n
                           << " qubits would enumerate 4^" << n
                           << " strings; cap is 8");

  std::vector<PauliTerm> terms;
  // Enumerate all 4^n strings by base-4 digits (digit q = letter of qubit q).
  const std::uint64_t num_strings = std::uint64_t{1} << (2 * n);
  for (std::uint64_t code = 0; code < num_strings; ++code) {
    std::vector<PauliKind> kinds(n);
    std::uint64_t rest = code;
    for (std::size_t q = n; q-- > 0;) {
      kinds[q] = static_cast<PauliKind>(rest & 3ULL);
      rest >>= 2;
    }
    PauliString p(std::move(kinds));
    // coeff = Tr(P·H)/2^n.  Tr(PH) = Σ_{j,l} P(j,l)·H(l,j) and P(j,l) is
    // nonzero only at j = l ^ flip with value phase_for(l), so the trace is
    // a single sweep over columns l:  Σ_l phase_for(l) · H(l, l ^ flip).
    const std::uint64_t flip = p.flip_mask();
    std::complex<double> tr{};
    for (std::uint64_t l = 0; l < dim; ++l) {
      tr += p.phase_for(l) * h(l, l ^ flip);
    }
    const std::complex<double> coeff = tr / static_cast<double>(dim);
    QTDA_ASSERT(std::abs(coeff.imag()) < 1e-9,
                "non-real Pauli coefficient for Hermitian input");
    if (std::abs(coeff.real()) > tolerance) {
      terms.push_back({coeff.real(), std::move(p)});
    }
  }
  return PauliSum(std::move(terms));
}

}  // namespace

PauliSum pauli_decompose(const RealMatrix& hamiltonian, double tolerance) {
  return decompose_impl(to_complex(hamiltonian), tolerance);
}

PauliSum pauli_decompose(const ComplexMatrix& hamiltonian, double tolerance) {
  return decompose_impl(hamiltonian, tolerance);
}

namespace {

/// Letters of the string encoded by (f, s) at qubit q: integer bit
/// b = n−1−q (the MSB-first index convention of phase_for / flip_mask).
///   f-bit  s-bit  letter
///     0      0      I
///     0      1      Z
///     1      0      X
///     1      1      Y
PauliString string_from_masks(std::uint64_t f, std::uint64_t s,
                              std::size_t n) {
  std::vector<PauliKind> kinds(n);
  for (std::size_t q = 0; q < n; ++q) {
    const std::uint64_t bit = std::uint64_t{1} << (n - 1 - q);
    const bool fb = (f & bit) != 0;
    const bool sb = (s & bit) != 0;
    kinds[q] = fb ? (sb ? PauliKind::Y : PauliKind::X)
                  : (sb ? PauliKind::Z : PauliKind::I);
  }
  return PauliString(std::move(kinds));
}

}  // namespace

PauliSum pauli_decompose(const SparseMatrix& h, double tolerance) {
  QTDA_REQUIRE(h.rows() == h.cols(), "decomposition needs a square matrix");
  const std::uint64_t dim = h.rows();
  QTDA_REQUIRE(dim > 1 && (dim & (dim - 1)) == 0,
               "matrix dimension must be a power of two, got " << dim);
  std::size_t n = 0;
  while ((std::uint64_t{1} << n) < dim) ++n;
  QTDA_REQUIRE(n <= 16, "sparse Pauli decomposition over " << n
                            << " qubits needs a 2^" << n
                            << " work vector per flip pattern; cap is 16");

  // Real symmetric input is what makes the coefficients real (the dense
  // path's Hermitian requirement, specialized).
  const SparseMatrix ht = h.transposed();
  QTDA_REQUIRE(h.row_offsets() == ht.row_offsets() &&
                   h.col_indices() == ht.col_indices(),
               "decomposition needs a structurally symmetric matrix");
  for (std::size_t i = 0; i < h.values().size(); ++i)
    QTDA_REQUIRE(std::abs(h.values()[i] - ht.values()[i]) < 1e-9,
                 "decomposition needs a symmetric matrix");

  // Bucket the nonzeros by flip pattern f = row ⊕ col.  Within one bucket
  // the entries form the vector d_f(l) = H(l, l⊕f).
  std::map<std::uint64_t, std::vector<std::pair<std::uint64_t, double>>>
      by_flip;
  const auto& offsets = h.row_offsets();
  const auto& cols = h.col_indices();
  const auto& values = h.values();
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::size_t idx = offsets[r]; idx < offsets[r + 1]; ++idx) {
      if (values[idx] == 0.0) continue;
      by_flip[r ^ cols[idx]].push_back({r, values[idx]});
    }
  }

  std::vector<PauliTerm> terms;
  std::vector<double> d(dim);
  const double inv_dim = 1.0 / static_cast<double>(dim);
  for (const auto& [f, entries] : by_flip) {
    std::fill(d.begin(), d.end(), 0.0);
    for (const auto& [l, v] : entries) d[l] = v;
    // In-place fast Walsh–Hadamard: t(s) = Σ_l (−1)^{popcount(l∧s)} d(l).
    for (std::uint64_t len = 1; len < dim; len <<= 1) {
      for (std::uint64_t i = 0; i < dim; i += len << 1) {
        for (std::uint64_t j = i; j < i + len; ++j) {
          const double a = d[j];
          const double b = d[j + len];
          d[j] = a + b;
          d[j + len] = a - b;
        }
      }
    }
    for (std::uint64_t s = 0; s < dim; ++s) {
      // Tr(P·H) picks up i^{|Y|}; symmetry cancels the odd-|Y| strings
      // exactly (their transform is zero up to rounding), and the even ones
      // contribute the real sign (−1)^{|Y|/2}.
      const int y_count = __builtin_popcountll(s & f);
      if (y_count % 2 != 0) continue;
      const double sign = (y_count / 2) % 2 == 0 ? 1.0 : -1.0;
      const double coeff = sign * d[s] * inv_dim;
      if (std::abs(coeff) > tolerance)
        terms.push_back({coeff, string_from_masks(f, s, n)});
    }
  }
  // The dense path emits strings in base-4 code order (I<X<Y<Z per qubit,
  // MSB first) — lexicographic on the kind vectors.  Match it so the two
  // overloads are drop-in interchangeable (Trotter applies terms in order).
  std::sort(terms.begin(), terms.end(),
            [](const PauliTerm& a, const PauliTerm& b) {
              return a.string < b.string;
            });
  return PauliSum(std::move(terms));
}

}  // namespace qtda
