#include "quantum/density_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

namespace {

ComplexMatrix conjugate(const ComplexMatrix& m) {
  ComplexMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i)
    out.data()[i] = std::conj(m.data()[i]);
  return out;
}

// Validated before the 4^n vectorized storage is allocated.
std::size_t checked_density_width(std::size_t num_qubits) {
  QTDA_REQUIRE(num_qubits >= 1 && num_qubits <= kDensityMatrixMaxQubits,
               "density matrix width " << num_qubits
                                       << " unsupported (4^n storage)");
  return num_qubits;
}

}  // namespace

template <typename Real>
BasicDensityMatrix<Real>::BasicDensityMatrix(std::size_t num_qubits)
    : num_qubits_(checked_density_width(num_qubits)),
      vectorized_(2 * num_qubits) {}

template <typename Real>
BasicDensityMatrix<Real>::BasicDensityMatrix(
    std::size_t num_qubits, BasicStatevector<Real> vectorized)
    : num_qubits_(num_qubits), vectorized_(std::move(vectorized)) {}

template <typename Real>
BasicDensityMatrix<Real> BasicDensityMatrix<Real>::from_statevector(
    const BasicStatevector<Real>& psi) {
  BasicDensityMatrix rho(psi.num_qubits());
  const std::uint64_t dim = psi.dimension();
  std::vector<C> vec(dim * dim);
  for (std::uint64_t r = 0; r < dim; ++r)
    for (std::uint64_t c = 0; c < dim; ++c)
      vec[r * dim + c] = psi.amplitude(r) * std::conj(psi.amplitude(c));
  rho.vectorized_.set_amplitudes(std::move(vec));
  return rho;
}

template <typename Real>
BasicDensityMatrix<Real> BasicDensityMatrix<Real>::maximally_mixed(
    std::size_t num_qubits) {
  BasicDensityMatrix rho(num_qubits);
  const std::uint64_t dim = rho.dimension();
  std::vector<C> vec(dim * dim);
  const Real weight = static_cast<Real>(1.0 / static_cast<double>(dim));
  for (std::uint64_t r = 0; r < dim; ++r) vec[r * dim + r] = weight;
  rho.vectorized_.set_amplitudes(std::move(vec));
  return rho;
}

template <typename Real>
Amplitude BasicDensityMatrix<Real>::element(std::uint64_t row,
                                            std::uint64_t col) const {
  QTDA_REQUIRE(row < dimension() && col < dimension(),
               "density matrix index out of range");
  return widen(vectorized_.amplitude(row * dimension() + col));
}

template <typename Real>
void BasicDensityMatrix<Real>::set_basis_state(std::uint64_t index) {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  vectorized_.set_basis_state(index * dimension() + index);
}

template <typename Real>
void BasicDensityMatrix<Real>::apply_gate(const Gate& gate) {
  if (gate.kind == GateKind::kOperator) {
    QTDA_REQUIRE(gate.op != nullptr, "operator gate without an operator");
    apply_operator(*gate.op, gate.targets, gate.controls);
    return;
  }
  // Row side: the gate verbatim (row register occupies qubits [0, n)).
  vectorized_.apply_gate(gate);
  // Column side: conj(U) on the column register [n, 2n).
  Gate column = gate;
  column.kind = GateKind::kUnitary;
  column.matrix = conjugate(gate.kind == GateKind::kUnitary
                                ? gate.matrix
                                : gate.single_qubit_matrix());
  for (std::size_t& q : column.targets) q += num_qubits_;
  for (std::size_t& q : column.controls) q += num_qubits_;
  vectorized_.apply_gate(column);
}

template <typename Real>
void BasicDensityMatrix<Real>::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  for (std::size_t q : targets)
    QTDA_REQUIRE(q < num_qubits_, "operator target out of range");
  for (std::size_t q : controls)
    QTDA_REQUIRE(q < num_qubits_, "operator control out of range");
  // vec(UρU†) = (U ⊗ conj(U))·vec(ρ): the operator verbatim on the row
  // register [0, n), its conjugate on the column register [n, 2n).  Both
  // halves run through the matrix-free gather/scatter path of the 2n-qubit
  // statevector, so the oracle is never densified.
  vectorized_.apply_operator(op, targets, controls);
  std::vector<std::size_t> column_targets(targets);
  std::vector<std::size_t> column_controls(controls);
  for (std::size_t& q : column_targets) q += num_qubits_;
  for (std::size_t& q : column_controls) q += num_qubits_;
  const ConjugatedOperator conjugated(op);
  vectorized_.apply_operator(conjugated, column_targets, column_controls);
}

template <typename Real>
void BasicDensityMatrix<Real>::apply_circuit(const Circuit& circuit) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits_,
               "circuit width mismatch");
  for (const Gate& gate : circuit.gates()) apply_gate(gate);
  // e^{iφ}ρe^{−iφ} = ρ: the global phase cancels.
}

template <typename Real>
void BasicDensityMatrix<Real>::apply_diagonal(const C* table,
                                              const DiagonalExtract& extract) {
  // vec(DρD†) entry (r, c) scales by table[l(r)]·conj(table[l(c)]).  The
  // row register holds the high n bits of the vectorized index, the column
  // register the low n bits; both reuse the n-register extraction recipe on
  // their own half.
  const std::size_t runs = extract.shifts.size();
  C* v = vectorized_.mutable_amplitudes();
  const std::uint64_t dim = vectorized_.dimension();
  const std::uint64_t col_mask = (std::uint64_t{1} << num_qubits_) - 1;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const std::uint64_t row = i >> num_qubits_;
    const std::uint64_t col = i & col_mask;
    std::uint64_t row_local = 0;
    std::uint64_t col_local = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      row_local |= (row >> extract.shifts[r]) & extract.masks[r];
      col_local |= (col >> extract.shifts[r]) & extract.masks[r];
    }
    v[i] *= table[row_local] * std::conj(table[col_local]);
  }
}

template <typename Real>
void BasicDensityMatrix<Real>::apply_depolarizing(std::size_t qubit,
                                                  double probability) {
  QTDA_REQUIRE(qubit < num_qubits_, "qubit out of range");
  QTDA_REQUIRE(probability >= 0.0 && probability <= 1.0,
               "error probability out of [0,1]");
  if (probability == 0.0) return;
  // Closed form of (1−p)ρ + (p/3)(XρX + YρY + ZρZ) on one qubit:
  //   off-diagonal (in that qubit):  scaled by (1 − 4p/3)
  //   diagonal pair (a, d):          a' = (1−2p/3)a + (2p/3)d  (and sym.)
  // One pass over vec(ρ), no temporaries.  The weights are evaluated in
  // double and narrowed once, so the double path's expressions are
  // unchanged.
  const Real shrink = static_cast<Real>(1.0 - 4.0 * probability / 3.0);
  const Real mix = static_cast<Real>(2.0 * probability / 3.0);
  const std::size_t total = 2 * num_qubits_;
  const std::uint64_t row_mask = qubit_mask(qubit, total);
  const std::uint64_t col_mask = qubit_mask(qubit + num_qubits_, total);
  C* v = vectorized_.mutable_amplitudes();
  const std::uint64_t dim = std::uint64_t{1} << total;
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & row_mask) != 0 || (i & col_mask) != 0) continue;
    const std::uint64_t i00 = i;
    const std::uint64_t i01 = i | col_mask;
    const std::uint64_t i10 = i | row_mask;
    const std::uint64_t i11 = i | row_mask | col_mask;
    const C a = v[i00];
    const C d = v[i11];
    v[i00] = shrink * a + mix * (a + d);
    v[i11] = shrink * d + mix * (a + d);
    v[i01] *= shrink;
    v[i10] *= shrink;
  }
}

template <typename Real>
void BasicDensityMatrix<Real>::apply_circuit_with_noise(
    const Circuit& circuit, const NoiseModel& noise) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits_,
               "circuit width mismatch");
  for_each_gate_with_noise(
      circuit, noise, [&](const Gate& gate) { apply_gate(gate); },
      [&](std::size_t q, double p) { apply_depolarizing(q, p); });
}

template <typename Real>
double BasicDensityMatrix<Real>::trace() const {
  double t = 0.0;
  for (std::uint64_t r = 0; r < dimension(); ++r)
    t += element(r, r).real();
  return t;
}

template <typename Real>
double BasicDensityMatrix<Real>::purity() const {
  // Tr ρ² = Σ_{r,c} |ρ(r,c)|² for Hermitian ρ — the vectorized 2-norm.
  return vectorized_.norm_squared();
}

template <typename Real>
std::vector<double> BasicDensityMatrix<Real>::probabilities() const {
  std::vector<double> p(dimension());
  for (std::uint64_t r = 0; r < dimension(); ++r)
    p[r] = std::max(element(r, r).real(), 0.0);
  return p;
}

template <typename Real>
std::vector<double> BasicDensityMatrix<Real>::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  QTDA_REQUIRE(!qubits.empty(), "marginal over an empty qubit set");
  const std::size_t m = qubits.size();
  std::vector<std::uint64_t> bit_mask(m);
  for (std::size_t j = 0; j < m; ++j) {
    QTDA_REQUIRE(qubits[j] < num_qubits_, "qubit out of range");
    bit_mask[j] = qubit_mask(qubits[m - 1 - j], num_qubits_);
  }
  std::vector<double> marginal(std::uint64_t{1} << m, 0.0);
  const auto diag = probabilities();
  for (std::uint64_t r = 0; r < dimension(); ++r) {
    std::uint64_t outcome = 0;
    for (std::size_t j = 0; j < m; ++j)
      if (r & bit_mask[j]) outcome |= std::uint64_t{1} << j;
    marginal[outcome] += diag[r];
  }
  return marginal;
}

template <typename Real>
std::vector<std::uint64_t> BasicDensityMatrix<Real>::sample_counts(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return multinomial_sample(marginal_probabilities(qubits), shots, rng);
}

template class BasicDensityMatrix<double>;
template class BasicDensityMatrix<float>;

DensityMatrix run_circuit_density(const Circuit& circuit,
                                  const NoiseModel& noise) {
  DensityMatrix rho(circuit.num_qubits());
  if (noise.is_noiseless()) {
    rho.apply_circuit(circuit);
  } else {
    rho.apply_circuit_with_noise(circuit, noise);
  }
  return rho;
}

}  // namespace qtda
