#include "quantum/circuit.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "quantum/gates.hpp"

namespace qtda {

std::string gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "H";
    case GateKind::kX: return "X";
    case GateKind::kY: return "Y";
    case GateKind::kZ: return "Z";
    case GateKind::kS: return "S";
    case GateKind::kSdg: return "Sdg";
    case GateKind::kT: return "T";
    case GateKind::kTdg: return "Tdg";
    case GateKind::kRX: return "RX";
    case GateKind::kRY: return "RY";
    case GateKind::kRZ: return "RZ";
    case GateKind::kPhase: return "P";
    case GateKind::kUnitary: return "U";
    case GateKind::kOperator: return "Op";
  }
  return "?";
}

bool is_rotation(GateKind kind) {
  return kind == GateKind::kRX || kind == GateKind::kRY ||
         kind == GateKind::kRZ || kind == GateKind::kPhase;
}

bool is_self_inverse(GateKind kind) {
  return kind == GateKind::kH || kind == GateKind::kX ||
         kind == GateKind::kY || kind == GateKind::kZ;
}

ComplexMatrix Gate::single_qubit_matrix() const {
  switch (kind) {
    case GateKind::kH: return gates::H();
    case GateKind::kX: return gates::X();
    case GateKind::kY: return gates::Y();
    case GateKind::kZ: return gates::Z();
    case GateKind::kS: return gates::S();
    case GateKind::kSdg: return gates::Sdg();
    case GateKind::kT: return gates::T();
    case GateKind::kTdg: return gates::Tdg();
    case GateKind::kRX: return gates::RX(parameter);
    case GateKind::kRY: return gates::RY(parameter);
    case GateKind::kRZ: return gates::RZ(parameter);
    case GateKind::kPhase: return gates::Phase(parameter);
    case GateKind::kUnitary:
    case GateKind::kOperator:
      QTDA_REQUIRE(false, gate_kind_name(kind)
                              << " gate has no named 2x2 matrix");
  }
  return {};
}

Circuit::Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {
  QTDA_REQUIRE(num_qubits > 0, "circuit needs at least one qubit");
  QTDA_REQUIRE(num_qubits <= 30, "register too wide for dense simulation");
}

void Circuit::check_qubit(std::size_t q) const {
  QTDA_REQUIRE(q < num_qubits_,
               "qubit " << q << " out of register width " << num_qubits_);
}

void Circuit::check_gate(const Gate& gate) const {
  QTDA_REQUIRE(!gate.targets.empty(), "gate without targets");
  for (std::size_t q : gate.targets) check_qubit(q);
  for (std::size_t q : gate.controls) check_qubit(q);
  // No qubit may appear twice across targets+controls.
  std::vector<std::size_t> all = gate.targets;
  all.insert(all.end(), gate.controls.begin(), gate.controls.end());
  std::sort(all.begin(), all.end());
  QTDA_REQUIRE(std::adjacent_find(all.begin(), all.end()) == all.end(),
               "gate uses a qubit twice");
  if (gate.kind == GateKind::kUnitary) {
    const std::size_t dim = std::size_t{1} << gate.targets.size();
    QTDA_REQUIRE(gate.matrix.rows() == dim && gate.matrix.cols() == dim,
                 "unitary matrix shape " << gate.matrix.rows() << 'x'
                                         << gate.matrix.cols()
                                         << " does not match "
                                         << gate.targets.size() << " targets");
  } else if (gate.kind == GateKind::kOperator) {
    QTDA_REQUIRE(gate.op != nullptr, "operator gate without an operator");
    const std::size_t dim = std::size_t{1} << gate.targets.size();
    QTDA_REQUIRE(gate.op->dimension() == dim,
                 "operator dimension " << gate.op->dimension()
                                       << " does not match "
                                       << gate.targets.size() << " targets");
  } else {
    QTDA_REQUIRE(gate.targets.size() == 1,
                 "named gates are single-target");
  }
}

void Circuit::append(Gate gate) {
  check_gate(gate);
  gates_.push_back(std::move(gate));
}

namespace {
Gate named(GateKind kind, std::size_t q, double parameter = 0.0) {
  Gate g;
  g.kind = kind;
  g.targets = {q};
  g.parameter = parameter;
  return g;
}
}  // namespace

void Circuit::h(std::size_t q) { append(named(GateKind::kH, q)); }
void Circuit::x(std::size_t q) { append(named(GateKind::kX, q)); }
void Circuit::y(std::size_t q) { append(named(GateKind::kY, q)); }
void Circuit::z(std::size_t q) { append(named(GateKind::kZ, q)); }
void Circuit::s(std::size_t q) { append(named(GateKind::kS, q)); }
void Circuit::sdg(std::size_t q) { append(named(GateKind::kSdg, q)); }
void Circuit::t(std::size_t q) { append(named(GateKind::kT, q)); }
void Circuit::tdg(std::size_t q) { append(named(GateKind::kTdg, q)); }
void Circuit::rx(std::size_t q, double theta) {
  append(named(GateKind::kRX, q, theta));
}
void Circuit::ry(std::size_t q, double theta) {
  append(named(GateKind::kRY, q, theta));
}
void Circuit::rz(std::size_t q, double theta) {
  append(named(GateKind::kRZ, q, theta));
}
void Circuit::phase(std::size_t q, double phi) {
  append(named(GateKind::kPhase, q, phi));
}

void Circuit::cnot(std::size_t control, std::size_t target) {
  Gate g = named(GateKind::kX, target);
  g.controls = {control};
  append(std::move(g));
}

void Circuit::cz(std::size_t control, std::size_t target) {
  Gate g = named(GateKind::kZ, target);
  g.controls = {control};
  append(std::move(g));
}

void Circuit::swap(std::size_t a, std::size_t b) {
  cnot(a, b);
  cnot(b, a);
  cnot(a, b);
}

void Circuit::controlled_phase(std::size_t control, std::size_t target,
                               double phi) {
  Gate g = named(GateKind::kPhase, target, phi);
  g.controls = {control};
  append(std::move(g));
}

void Circuit::unitary(const ComplexMatrix& u, std::vector<std::size_t> targets,
                      std::vector<std::size_t> controls) {
  Gate g;
  g.kind = GateKind::kUnitary;
  g.targets = std::move(targets);
  g.controls = std::move(controls);
  g.matrix = u;
  append(std::move(g));
}

void Circuit::operator_gate(std::shared_ptr<const LinearOperator> op,
                            std::vector<std::size_t> targets,
                            std::vector<std::size_t> controls) {
  Gate g;
  g.kind = GateKind::kOperator;
  g.targets = std::move(targets);
  g.controls = std::move(controls);
  g.op = std::move(op);
  append(std::move(g));
}

void Circuit::append_circuit(const Circuit& other) {
  QTDA_REQUIRE(other.num_qubits() == num_qubits_,
               "append_circuit register width mismatch");
  for (const Gate& g : other.gates()) append(g);
  global_phase_ += other.global_phase();
}

Circuit Circuit::controlled_on(std::size_t control) const {
  check_qubit(control);
  Circuit out(num_qubits_);
  for (Gate g : gates_) {
    QTDA_REQUIRE(std::find(g.targets.begin(), g.targets.end(), control) ==
                         g.targets.end() &&
                     std::find(g.controls.begin(), g.controls.end(),
                               control) == g.controls.end(),
                 "control qubit already used by the circuit");
    g.controls.push_back(control);
    out.append(std::move(g));
  }
  // e^{iφ} global phase, conditioned on the control, is a P(φ) gate.
  if (global_phase_ != 0.0) out.phase(control, global_phase_);
  return out;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> frontier(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    std::size_t level = 0;
    for (std::size_t q : g.targets) level = std::max(level, frontier[q]);
    for (std::size_t q : g.controls) level = std::max(level, frontier[q]);
    ++level;
    for (std::size_t q : g.targets) frontier[q] = level;
    for (std::size_t q : g.controls) frontier[q] = level;
    depth = std::max(depth, level);
  }
  return depth;
}

std::size_t Circuit::two_qubit_gate_count() const {
  std::size_t count = 0;
  for (const Gate& g : gates_)
    if (g.targets.size() + g.controls.size() >= 2) ++count;
  return count;
}

std::vector<std::pair<std::string, std::size_t>> Circuit::gate_census()
    const {
  std::map<std::string, std::size_t> census;
  for (const Gate& g : gates_) {
    std::string name = gate_kind_name(g.kind);
    if (!g.controls.empty())
      name = "C(" + std::to_string(g.controls.size()) + ")" + name;
    ++census[name];
  }
  return {census.begin(), census.end()};
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "Circuit(" << num_qubits_ << " qubits, " << gates_.size()
     << " gates, depth " << depth() << ")\n";
  for (const Gate& g : gates_) {
    os << "  " << gate_kind_name(g.kind);
    if (is_rotation(g.kind)) os << '(' << g.parameter << ')';
    os << " targets=[";
    for (std::size_t i = 0; i < g.targets.size(); ++i)
      os << (i ? "," : "") << g.targets[i];
    os << ']';
    if (!g.controls.empty()) {
      os << " controls=[";
      for (std::size_t i = 0; i < g.controls.size(); ++i)
        os << (i ? "," : "") << g.controls[i];
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qtda
