/// \file sharded_statevector.hpp
/// \brief Slab-parallel state-vector engine, templated over the scalar.
///
/// The 2^n amplitudes are split into num_shards() contiguous *slabs*, each a
/// separately allocated buffer conceptually owned by one worker of a private
/// thread pool — the shared-memory model of a distributed state vector,
/// where every slab would live on its own node.  Every gate is one barrier
/// step (ThreadPool::run_batch): each worker updates, in place, the
/// amplitude pairs (or operator blocks) *anchored* in its slab — the anchor
/// of a pair is its lower index, the anchor of a block its base index.  When
/// a partner amplitude falls in another slab (a gate on a qubit whose stride
/// reaches past the slab, i.e. a nonlocal/high qubit), the worker reads and
/// writes the partner slab directly: the shared-memory analogue of the
/// pairwise slab exchange a distributed engine performs by message.  Anchors
/// are never shared between slabs and partners belong to exactly one anchor,
/// so a step is race-free without locks.  For the very highest qubits only
/// the anchor-owning (lower-index) half of the workers carries the step —
/// the usual load shape of a slab-exchange engine.
///
/// Every kernel performs bit-identical arithmetic to BasicStatevector<Real>
/// at the same precision: the same expression per amplitude pair (both
/// engines route their hot sweeps through quantum/simd_kernels.hpp, so the
/// guarantee holds at every SIMD level), the same gather → apply_batch →
/// scatter block decomposition for matrix-free operators (split one
/// block-column strip per worker), and the very same ordered-chunk reduction
/// for marginals and norms.  Results are therefore reproducible and *equal*
/// to the dense engine, bit for bit, for every shard count — the property
/// the backend tests and the CI sharded leg assert.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/linear_operator.hpp"
#include "quantum/circuit.hpp"
#include "quantum/statevector.hpp"  // kStatevectorParallelThreshold, widen
#include "quantum/types.hpp"

namespace qtda {

/// A pure n-qubit state stored as contiguous amplitude slabs.
template <typename Real>
class BasicShardedStatevector {
 public:
  using C = std::complex<Real>;

  /// |0…0⟩ on \p num_qubits qubits over \p num_shards slabs (clamped to the
  /// dimension so every slab is non-empty; any count ≥ 1 is valid, powers of
  /// two not required).
  BasicShardedStatevector(std::size_t num_qubits, std::size_t num_shards);

  std::size_t num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }
  /// Actual slab/worker count (the requested count clamped to dimension()).
  std::size_t num_shards() const { return slabs_.size(); }
  /// Slab s owns global indices [slab_begin(s), slab_begin(s+1)).
  std::uint64_t slab_begin(std::size_t shard) const { return begins_[shard]; }

  C amplitude(std::uint64_t index) const;
  /// Dense copy of the full amplitude vector in global index order
  /// (diagnostics and tests; allocates 2^n scalars).
  std::vector<C> amplitudes() const;

  /// Resets to the computational basis state |index⟩.
  void set_basis_state(std::uint64_t index);
  /// Sets arbitrary amplitudes (must have length 2^n).
  void set_amplitudes(const std::vector<C>& amplitudes);

  // -- gate application (same contracts as BasicStatevector) -----------------
  void apply_gate(const Gate& gate);
  void apply_circuit(const Circuit& circuit);
  void apply_single_qubit(const ComplexMatrix& u, std::size_t target,
                          const std::vector<std::size_t>& controls = {});
  void apply_unitary(const ComplexMatrix& u,
                     const std::vector<std::size_t>& targets,
                     const std::vector<std::size_t>& controls = {});
  /// Matrix-free operator over ordered targets (MSB-first, as
  /// BasicStatevector::apply_operator): the block gather/scatter
  /// decomposition is identical, with the block-column list split into one
  /// strip per worker.
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls = {});
  /// Fused diagonal (quantum/compiler.hpp): a diagonal never pairs
  /// amplitudes, so every slab multiplies its own run independently — one
  /// barrier step, no partner-slab traffic, and per-amplitude arithmetic
  /// bit-identical to the dense engine's diagonal kernel.  \p table is the
  /// 2^m-entry diagonal pre-cast to the amplitude scalar (the plan caches
  /// both widths — see CompiledOp::diagonal_f32).
  void apply_diagonal(const C* table, const DiagonalExtract& extract);
  void apply_global_phase(double phi);

  // -- measurement -----------------------------------------------------------
  /// Marginal distribution over an ordered qubit subset (MSB-first).
  /// Deterministic ordered-chunk reduction, bit-identical to the dense
  /// engine; accumulation is in double at every precision.
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const;
  /// Exact multinomial sampling from the marginal; identical RNG consumption
  /// to BasicStatevector::sample_counts.
  std::vector<std::uint64_t> sample_counts(
      const std::vector<std::size_t>& qubits, std::size_t shots,
      Rng& rng) const;
  /// Σ|amp|² (double accumulation), via the same ordered reduction as
  /// BasicStatevector::norm_squared.
  double norm_squared() const;

 private:
  /// A contiguous run of amplitudes inside one slab.
  struct Span {
    C* data;
    std::uint64_t length;  ///< run length from `data` to the slab's end
  };

  std::size_t shard_of(std::uint64_t index) const;
  C& at(std::uint64_t index);
  const C& at(std::uint64_t index) const;

  /// The ordered-chunk reduction of parallel_reduce_ordered, specialized to
  /// the slab layout: the same chunk split (a function of the shared-pool
  /// size and kStatevectorParallelThreshold, so dense and sharded chunk
  /// identically) and the same in-order merge, but each chunk is walked
  /// slab run by slab run with a raw amplitude pointer instead of resolving
  /// every index through the slab map.  `run_body(amp, index, length,
  /// partial)` must accumulate in ascending index order for the result to
  /// stay bit-identical to the dense engine.
  template <typename Partial, typename RunBody, typename Merge>
  void reduce_ordered_over_slabs(const Partial& identity, RunBody&& run_body,
                                 Merge&& merge, Partial& result) const {
    const std::uint64_t n = dimension();
    const auto walk = [&](std::uint64_t lo, std::uint64_t hi,
                          Partial& partial) {
      if (lo >= hi) return;
      std::size_t s = shard_of(lo);
      std::uint64_t i = lo;
      while (i < hi) {
        const std::uint64_t run_end = std::min(hi, begins_[s + 1]);
        run_body(slabs_[s].data() + (i - begins_[s]), i, run_end - i,
                 partial);
        i = run_end;
        ++s;
      }
    };
    const OrderedReductionPlan plan = ordered_reduction_plan(
        static_cast<std::size_t>(n), kStatevectorParallelThreshold);
    if (plan.chunks <= 1) {
      walk(0, n, result);
      return;
    }
    std::vector<Partial> partials(plan.chunks, identity);
    parallel_for(
        0, plan.chunks,
        [&](std::size_t c) {
          const std::uint64_t lo = c * plan.span;
          walk(lo, std::min<std::uint64_t>(n, lo + plan.span), partials[c]);
        },
        /*min_parallel_size=*/1);
    for (const Partial& partial : partials) merge(result, partial);
  }
  /// Longest contiguous run starting at global \p index within its slab.
  Span span_at(std::uint64_t index);
  /// Runs slab_task(s) for every slab with a barrier (serial when the state
  /// is small or there is a single slab).
  void barrier_step(const std::function<void(std::size_t)>& slab_task);

  std::size_t num_qubits_;
  std::vector<std::uint64_t> begins_;  ///< size num_shards()+1
  std::vector<std::vector<C>> slabs_;  ///< one buffer per worker
  std::unique_ptr<ThreadPool> pool_;   ///< null when num_shards()==1
};

/// The historical (and default) double-precision slab engine.
using ShardedStatevector = BasicShardedStatevector<double>;
/// The complex64 slab engine.
using ShardedStatevectorF32 = BasicShardedStatevector<float>;

extern template class BasicShardedStatevector<double>;
extern template class BasicShardedStatevector<float>;

}  // namespace qtda
