/// \file mixed_state.hpp
/// \brief Maximally mixed state preparation (paper Fig. 2).
///
/// The q-qubit maximally mixed state I/2^q is prepared by purification:
/// each of q ancillas gets a Hadamard and a CNOT onto its system partner;
/// tracing out the ancillas leaves I/2^q on the system.  The estimator also
/// supports a cheaper classically-sampled mixture (a uniformly random basis
/// state per shot), which is statistically identical — property tests check
/// the equivalence.
#pragma once

#include <vector>

#include "quantum/circuit.hpp"

namespace qtda {

/// Appends H(ancilla_i); CNOT(ancilla_i → system_i) for each pair.  The two
/// wire lists must have equal length.
void append_mixed_state_preparation(Circuit& circuit,
                                    const std::vector<std::size_t>& ancillas,
                                    const std::vector<std::size_t>& systems);

}  // namespace qtda
