/// \file simd_kernels.hpp
/// \brief Runtime-dispatched SIMD kernels for the four hot simulation loops.
///
/// The contiguous pair sweep (single-qubit gates), the diagonal table-lookup
/// pass (fused diagonals), the fused dense-block apply (block/two-qubit
/// matvec) and the CSR matvec (the Chebyshev oracle) dominate every profile.
/// Each gets an explicit AVX2 and (where it pays) AVX-512 path in
/// simd_kernels.cpp, selected at runtime through common/cpu_features.hpp —
/// one binary, widest safe path.
///
/// **Bit-identity contract.**  The scalar branches below are the historical
/// loops, source-identical to the pre-vectorization engines, compiled in the
/// caller's TU with the default (baseline x86-64, no FMA) flags — so
/// `QTDA_SIMD=0` reproduces the old arithmetic bit for bit.  The vector
/// paths of the pair sweep, diagonal pass and block matvec are *also*
/// bitwise identical to the scalar ones: they keep one accumulator per
/// output element, evaluate the same products in the same sequence (complex
/// multiplies use separate mul/add — never FMA — matching the libstdc++
/// textbook formula up to commuting one addition), and simd_kernels.cpp is
/// compiled with -ffp-contract=off.  Only the CSR matvec reassociates under
/// vectorization (lane-split dot products); both state-vector engines share
/// that one kernel, so their mutual bit-equality survives at every level.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

#include "common/cpu_features.hpp"
#include "quantum/register_layout.hpp"

namespace qtda {
namespace simd {

namespace detail {
// Vector implementations (simd_kernels.cpp, function-level target
// attributes).  Only reached when level != kScalar.
void pair_sweep_vec(SimdLevel level, std::complex<double>* p0,
                    std::complex<double>* p1, std::uint64_t n,
                    const std::complex<double>* u);
void pair_sweep_vec(SimdLevel level, std::complex<float>* p0,
                    std::complex<float>* p1, std::uint64_t n,
                    const std::complex<float>* u);
void four_point_sweep_vec(SimdLevel level, std::complex<double>* p0,
                          std::complex<double>* p1, std::complex<double>* p2,
                          std::complex<double>* p3, std::uint64_t n,
                          const std::complex<double>* u);
void four_point_sweep_vec(SimdLevel level, std::complex<float>* p0,
                          std::complex<float>* p1, std::complex<float>* p2,
                          std::complex<float>* p3, std::uint64_t n,
                          const std::complex<float>* u);
void diagonal_pass_vec(SimdLevel level, std::complex<double>* amp,
                       std::uint64_t first_index, std::uint64_t count,
                       const std::uint64_t* shifts, const std::uint64_t* masks,
                       std::size_t runs, const std::complex<double>* table);
void diagonal_pass_vec(SimdLevel level, std::complex<float>* amp,
                       std::uint64_t first_index, std::uint64_t count,
                       const std::uint64_t* shifts, const std::uint64_t* masks,
                       std::size_t runs, const std::complex<float>* table);
void block_matvec_vec(SimdLevel level, const std::complex<double>* u,
                      const std::complex<double>* in, std::complex<double>* out,
                      std::size_t block);
void block_matvec_vec(SimdLevel level, const std::complex<float>* u,
                      const std::complex<float>* in, std::complex<float>* out,
                      std::size_t block);
void csr_matvec_vec(SimdLevel level, const std::size_t* offsets,
                    const std::size_t* cols, const double* vals,
                    const std::complex<double>* x, std::complex<double>* y,
                    std::size_t row_lo, std::size_t row_hi);
void csr_matvec_vec(SimdLevel level, const std::size_t* offsets,
                    const std::size_t* cols, const float* vals,
                    const std::complex<float>* x, std::complex<float>* y,
                    std::size_t row_lo, std::size_t row_hi);
}  // namespace detail

/// In-place uncontrolled single-qubit update of the contiguous pair runs
/// p0[0..n) / p1[0..n): p0' = u00·p0 + u01·p1, p1' = u10·p0 + u11·p1.
/// \p u points at {u00, u01, u10, u11}.
template <typename R>
inline void pair_sweep(SimdLevel level, std::complex<R>* p0,
                       std::complex<R>* p1, std::uint64_t n,
                       const std::complex<R>* u) {
  if (level == SimdLevel::kScalar) {
    const std::complex<R> u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::complex<R> a0 = p0[k];
      const std::complex<R> a1 = p1[k];
      p0[k] = u00 * a0 + u01 * a1;
      p1[k] = u10 * a0 + u11 * a1;
    }
    return;
  }
  detail::pair_sweep_vec(level, p0, p1, n, u);
}

/// In-place uncontrolled two-qubit update of the four contiguous runs
/// p0..p3 (local indices 00, 01, 10, 11) under the row-major 4×4 matrix
/// \p u.  Accumulation order matches the engines' block row-dot.
template <typename R>
inline void four_point_sweep(SimdLevel level, std::complex<R>* p0,
                             std::complex<R>* p1, std::complex<R>* p2,
                             std::complex<R>* p3, std::uint64_t n,
                             const std::complex<R>* u) {
  if (level == SimdLevel::kScalar) {
    const std::complex<R>* u0 = u;
    const std::complex<R>* u1 = u + 4;
    const std::complex<R>* u2 = u + 8;
    const std::complex<R>* u3 = u + 12;
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::complex<R> a0 = p0[k];
      const std::complex<R> a1 = p1[k];
      const std::complex<R> a2 = p2[k];
      const std::complex<R> a3 = p3[k];
      std::complex<R> acc0{};
      acc0 += u0[0] * a0; acc0 += u0[1] * a1; acc0 += u0[2] * a2; acc0 += u0[3] * a3;
      std::complex<R> acc1{};
      acc1 += u1[0] * a0; acc1 += u1[1] * a1; acc1 += u1[2] * a2; acc1 += u1[3] * a3;
      std::complex<R> acc2{};
      acc2 += u2[0] * a0; acc2 += u2[1] * a1; acc2 += u2[2] * a2; acc2 += u2[3] * a3;
      std::complex<R> acc3{};
      acc3 += u3[0] * a0; acc3 += u3[1] * a1; acc3 += u3[2] * a2; acc3 += u3[3] * a3;
      p0[k] = acc0;
      p1[k] = acc1;
      p2[k] = acc2;
      p3[k] = acc3;
    }
    return;
  }
  detail::four_point_sweep_vec(level, p0, p1, p2, p3, n, u);
}

/// Fused-diagonal pass over the run amp[0..count) holding global indices
/// [first_index, first_index + count): amp[k] *= table[extract(i)].
template <typename R>
inline void diagonal_pass(SimdLevel level, std::complex<R>* amp,
                          std::uint64_t first_index, std::uint64_t count,
                          const DiagonalExtract& extract,
                          const std::complex<R>* table) {
  if (level == SimdLevel::kScalar) {
    apply_diagonal_run(amp, first_index, count, extract, table);
    return;
  }
  detail::diagonal_pass_vec(level, amp, first_index, count,
                            extract.shifts.data(), extract.masks.data(),
                            extract.shifts.size(), table);
}

/// Dense block×block row-major matvec: out = u·in (out must not alias in).
/// Per-row accumulation is sequential in c at every level, so results are
/// bitwise identical to the scalar row-dot.
template <typename R>
inline void block_matvec(SimdLevel level, const std::complex<R>* u,
                         const std::complex<R>* in, std::complex<R>* out,
                         std::size_t block) {
  if (level == SimdLevel::kScalar || block < 2) {
    for (std::size_t r = 0; r < block; ++r) {
      std::complex<R> acc{};
      const std::complex<R>* urow = u + r * block;
      for (std::size_t c = 0; c < block; ++c) acc += urow[c] * in[c];
      out[r] = acc;
    }
    return;
  }
  detail::block_matvec_vec(level, u, in, out, block);
}

/// CSR matvec over the row range [row_lo, row_hi) with real values:
/// y[r] = Σ_k vals[k]·x[cols[k]].  The double vector path splits each row
/// dot across lanes (reassociating the sum) — the one kernel whose
/// vectorized results differ in the last ulp from the scalar path; both
/// state-vector engines route through this same function, so they still
/// agree with each other exactly.  The float path stays scalar at every
/// level: the gathered 8-lane variant measured slower than the plain dot
/// (see simd_kernels.cpp).
template <typename R>
inline void csr_matvec_rows(SimdLevel level, const std::size_t* offsets,
                            const std::size_t* cols, const R* vals,
                            const std::complex<R>* x, std::complex<R>* y,
                            std::size_t row_lo, std::size_t row_hi) {
  if (level == SimdLevel::kScalar) {
    for (std::size_t r = row_lo; r < row_hi; ++r) {
      std::complex<R> acc{};
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
        acc += vals[k] * x[cols[k]];
      y[r] = acc;
    }
    return;
  }
  detail::csr_matvec_vec(level, offsets, cols, vals, x, y, row_lo, row_hi);
}

}  // namespace simd
}  // namespace qtda
