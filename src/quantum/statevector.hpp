/// \file statevector.hpp
/// \brief Dense state-vector simulator, templated over the amplitude scalar.
///
/// Amplitudes are stored for all 2^n basis states under the MSB-first qubit
/// convention of types.hpp.  Gate kernels are cache-friendly strided loops,
/// parallelized with OpenMP above a size threshold (the state for the
/// paper's circuits ranges from 2^3 to 2^20 amplitudes).
///
/// The engine is `BasicStatevector<Real>` with `Real` ∈ {double, float}
/// (explicitly instantiated in statevector.cpp): complex128 is the default
/// and the reference arithmetic, complex64 halves the memory traffic of
/// every sweep.  The *boundary* of the engine stays double regardless of
/// Real — gate matrices arrive as ComplexMatrix and are cast at kernel
/// entry, probabilities/marginals accumulate in double — so only the state
/// itself and the per-amplitude arithmetic change width.  Hot loops route
/// through quantum/simd_kernels.hpp (runtime AVX2/AVX-512 dispatch); at
/// QTDA_SIMD=0 they run the historical scalar expressions unchanged.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/linear_operator.hpp"
#include "quantum/circuit.hpp"
#include "quantum/compiler.hpp"
#include "quantum/types.hpp"

namespace qtda {

/// State sizes below this run measurement reductions serially (above it,
/// chunked over the shared pool).  One definition for both the dense and the
/// sharded engine: the ordered-reduction chunking is a function of this
/// threshold and the shared-pool size, and the two backends must pick the
/// same chunking for their marginals to merge partial sums in the same
/// order — the discipline behind their bit-identical results.
inline constexpr std::uint64_t kStatevectorParallelThreshold = 1ULL << 17;

/// Widens an amplitude to the double boundary type (identity for double —
/// the double engine's reductions are source-identical to the historical
/// ones; the float engine widens per element and accumulates in double).
/// These overloads ARE the precision boundary.  qtda-lint: allow(complex-scalar)
inline Amplitude widen(const std::complex<double>& a) { return a; }
inline Amplitude widen(const std::complex<float>& a) {
  return Amplitude{static_cast<double>(a.real()),
                   static_cast<double>(a.imag())};
}

/// |a|² accumulated at the double boundary: std::norm for double (the
/// historical expression), widen-then-square for float so probabilities
/// lose no precision beyond what the float amplitudes already lost.
/// Boundary overload, not a pinned scalar.  qtda-lint: allow(complex-scalar)
inline double norm_sq_as_double(const std::complex<double>& a) {
  return std::norm(a);
}
inline double norm_sq_as_double(const std::complex<float>& a) {
  const double re = a.real();
  const double im = a.imag();
  return re * re + im * im;
}

/// A pure n-qubit state over std::complex<Real> amplitudes.
template <typename Real>
class BasicStatevector {
 public:
  using C = std::complex<Real>;

  /// |0…0⟩ on \p num_qubits qubits.
  explicit BasicStatevector(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }
  const std::vector<C>& amplitudes() const { return amplitudes_; }
  /// Mutable view of the 2^n amplitudes (length dimension()) for in-place
  /// channel kernels — the exact depolarizing channel rewrites vec(ρ)
  /// directly instead of copying the full vector out and back in.  Callers
  /// own normalization, exactly as with set_amplitudes().
  C* mutable_amplitudes() { return amplitudes_.data(); }
  C amplitude(std::uint64_t index) const;

  /// Resets to the computational basis state |index⟩.
  void set_basis_state(std::uint64_t index);

  /// Sets arbitrary amplitudes (must have length 2^n; normalized by caller
  /// or via normalize()).
  void set_amplitudes(std::vector<C> amplitudes);

  // -- gate application -------------------------------------------------------
  /// Applies a named or dense gate (with controls) from the circuit IR.
  void apply_gate(const Gate& gate);
  /// Applies every gate of a circuit, then its global phase.
  void apply_circuit(const Circuit& circuit);
  /// 2×2 matrix on \p target, conditioned on all \p controls being 1.
  void apply_single_qubit(const ComplexMatrix& u, std::size_t target,
                          const std::vector<std::size_t>& controls = {});
  /// Dense 2^m×2^m matrix over ordered targets (first = most significant
  /// local bit), conditioned on controls.
  void apply_unitary(const ComplexMatrix& u,
                     const std::vector<std::size_t>& targets,
                     const std::vector<std::size_t>& controls = {});
  /// Matrix-free operator over ordered targets (same wire convention as
  /// apply_unitary), conditioned on controls.  Sub-register blocks are
  /// gathered into packed buffers and handed to the operator in batches, so
  /// nothing quadratic in the block dimension is allocated — this is the
  /// execution path of the sparse QPE oracle.  The operator must be unitary
  /// for the state to stay normalized.
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls = {});
  /// Executes a compiled plan (quantum/compiler.hpp), including its global
  /// phase: the fast path of the estimator — precomputed masks/offsets, no
  /// per-gate setup, scratch from the plan's arena.  With fusion disabled
  /// the result is bit-identical to apply_circuit on the source circuit;
  /// with fusion it agrees to ~1e-12 (dense blocks reassociate the
  /// floating-point order).
  void apply_plan(const ExecutionPlan& plan);
  /// Executes one compiled op — the building block apply_plan and the noisy
  /// per-op walks share.
  void apply_plan_op(const CompiledOp& op, ExecutionScratch& scratch);
  /// Multiplies the whole state by e^{iφ}.
  void apply_global_phase(double phi);

  // -- measurement ------------------------------------------------------------
  /// |amplitude|² of one basis state.
  double probability(std::uint64_t index) const;
  /// Full probability vector (length 2^n).
  std::vector<double> probabilities() const;
  /// Marginal distribution over an ordered qubit subset (MSB-first: the
  /// first listed qubit is the most significant bit of the outcome).
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const;
  /// Draws \p shots outcomes over the given qubits; returns counts indexed
  /// by outcome.  Sampling is exact multinomial from the marginal.
  std::vector<std::uint64_t> sample_counts(
      const std::vector<std::size_t>& qubits, std::size_t shots,
      Rng& rng) const;

  /// Σ|amp|² (double accumulation at every precision); 1 for a normalized
  /// state.
  double norm_squared() const;
  /// Rescales to unit norm (throws on the zero vector).
  void normalize();
  /// ⟨this|other⟩, accumulated in double.
  Amplitude inner_product(const BasicStatevector& other) const;

 private:
  /// Shared kernels: the legacy per-gate entry points and the compiled-plan
  /// path both land here, so their arithmetic cannot drift (the root of the
  /// QTDA_FUSE=0 bit-identity guarantee).  Matrices arrive pre-cast to the
  /// amplitude scalar (row-major pointers) so one kernel body serves both
  /// precisions.
  void single_qubit_kernel(C u00, C u01, C u10, C u11, std::uint64_t mask,
                           std::uint64_t cmask);
  /// Uncontrolled 4×4 block over two wires — the fused-pair workhorse: same
  /// arithmetic as block_kernel but with mask-expansion enumeration instead
  /// of the offset-table gather.  \p u is the row-major 4×4 matrix.
  void two_qubit_kernel(const C* u, std::uint64_t mask_high,
                        std::uint64_t mask_low);
  void block_kernel(const C* u, std::uint64_t tmask, std::uint64_t cmask,
                    const std::vector<std::uint64_t>& offsets,
                    std::vector<C>& scratch, std::vector<C>& scratch_out);
  void diagonal_kernel(const C* table, const DiagonalExtract& extract);
  void operator_kernel(const LinearOperator& op, bool contiguous,
                       const std::vector<std::uint64_t>& offsets,
                       const std::vector<std::uint64_t>& bases,
                       std::vector<C>& packed_in, std::vector<C>& packed_out);

  std::size_t num_qubits_;
  std::vector<C> amplitudes_;
};

/// The historical (and default) double-precision engine.
using Statevector = BasicStatevector<double>;
/// The complex64 engine: same kernels, half the bandwidth.
using StatevectorF32 = BasicStatevector<float>;

extern template class BasicStatevector<double>;
extern template class BasicStatevector<float>;

/// Multinomial sampling helper shared with the analytic backend: draws
/// \p shots outcomes from \p distribution (need not be perfectly normalized;
/// it is renormalized internally) and returns per-outcome counts.
std::vector<std::uint64_t> multinomial_sample(
    const std::vector<double>& distribution, std::size_t shots, Rng& rng);

}  // namespace qtda
