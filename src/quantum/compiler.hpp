/// \file compiler.hpp
/// \brief Circuit compilation: lowering a Circuit into an ExecutionPlan.
///
/// The gate IR is built for clarity — one named gate per list entry — but
/// executing it verbatim costs one full pass over the 2^n amplitudes *per
/// gate*: an H-wall on t precision qubits is t sweeps, a QFT another
/// t(t+1)/2.  The compiler removes that tax once, ahead of execution:
///
///  * **Gate fusion** (qsim style): adjacent gates whose combined support
///    stays within `fuse_width` qubits are greedily merged — across
///    commuting, wire-disjoint neighbours — into single dense-block gates,
///    so dozens of sweeps collapse into one.  Controls are folded into the
///    fused block (a controlled-U is just a bigger unitary).  A per-cluster
///    cost model compares the fused block against the sweeps it replaces
///    and falls back to the verbatim gates when fusing would lose.
///  * **Diagonal fusion**: runs of diagonal gates (Z/S/T/RZ/Phase and their
///    controlled forms — the controlled-phase rungs that dominate the QFT
///    and the QPE oracle ladder) merge into single diagonal ops over up to
///    kMaxDiagonalWidth qubits.  A fused diagonal costs *one* multiply per
///    amplitude regardless of how many gates it absorbed — the biggest
///    single-sweep collapse in the QPE network.
///  * **Precompilation**: every op carries its masks, local-offset tables,
///    block-base enumeration and materialized matrices, so executing a plan
///    performs no per-gate validation, mask building, or matrix
///    construction — the costs a trajectory ensemble otherwise pays
///    hundreds of times.
///  * **Scratch arena**: the plan owns the gather/scatter and operator
///    batch buffers its execution needs, so `apply_plan` allocates nothing
///    per gate (and nothing at all after the first execution).
///  * **Noise slots**: compiled with `preserve_noise_slots`, the plan keeps
///    one op per source gate and records each gate's touched qubits, so the
///    noisy walk (for_each_gate_with_noise) keeps the *exact* error
///    placement and RNG draw order of the uncompiled path while still
///    skipping all per-gate setup.
///
/// Environment knobs (read by compiler_options_from_env): `QTDA_FUSE=0`
/// disables fusion entirely — the plan then reproduces today's gate-by-gate
/// arithmetic bit for bit — and `QTDA_FUSE_WIDTH` overrides the maximum
/// fused support (default 4).
///
/// A plan is immutable and engine-agnostic; it may be executed many times
/// (all QPE shots and all noise trajectories of an estimate reuse one
/// plan), but by one executor at a time — the scratch arena is shared
/// mutable state.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "quantum/circuit.hpp"
#include "quantum/register_layout.hpp"
#include "quantum/types.hpp"

namespace qtda {

/// Compilation knobs.
struct CompilerOptions {
  /// Master fusion switch; off, every source gate lowers to exactly one op
  /// with its original targets/controls — bit-identical to the uncompiled
  /// walk.
  bool fuse = true;
  /// Maximum qubit support of a fused dense block (clamped to [1, 8];
  /// 2^k×2^k dense blocks).  Width 1 still merges runs of gates on one
  /// wire.
  std::size_t fuse_width = 4;
  /// Maximum qubit support of a fused diagonal (clamped to
  /// [1, kMaxDiagonalWidth]).  Engines without native diagonal execution
  /// (anything relying on the generic apply_plan fallback, which densifies
  /// diagonals) should compile with ≤ 8.  The QTDA_FUSE_WIDTH override
  /// lowers this bound too, so forcing width 1 really does approach the
  /// per-gate walk.
  std::size_t diagonal_width = 12;
  /// Keep one op per source gate and record its noise slot (touched qubits,
  /// strength class) so noisy execution preserves the exact error placement
  /// and RNG consumption order of the unfused walk.  Implies no cross-gate
  /// fusion.
  bool preserve_noise_slots = false;
};

/// \p base overridden by the environment: QTDA_FUSE (0/1) and
/// QTDA_FUSE_WIDTH (integer ≥ 1).  Malformed values fail fast naming the
/// variable, mirroring the QTDA_SIMULATOR convention.
CompilerOptions compiler_options_from_env(CompilerOptions base = {});

/// Canonical cache-key token of the options ("fuse=1,width=4,diag=12,
/// noise=0"): two CompilerOptions produce interchangeable plans for the
/// same circuit iff their tokens are equal.  This is the fuse-settings
/// component of the serving layer's content-keyed plan cache — keying on
/// the token (instead of a hash of it) keeps distinct settings structurally
/// incapable of colliding.
std::string compiler_options_cache_key(const CompilerOptions& options);

/// Hard ceiling of CompilerOptions::diagonal_width (4096-entry tables,
/// 64 KB — cache-resident, and wide enough that a whole QPE
/// controlled-phase ladder collapses into a handful of passes;
/// register_layout.hpp's apply_diagonal_run dispatch must cover this
/// width).
inline constexpr std::size_t kMaxDiagonalWidth = 12;

/// One executable unit of a plan.
struct CompiledOp {
  enum class Kind {
    kSingleQubit,  ///< 2×2 matrix, precomputed entries + masks
    kBlock,        ///< dense 2^m×2^m block over ordered targets
    kDiagonal,     ///< fused diagonal: one table lookup + multiply per amp
    kOperator,     ///< matrix-free LinearOperator gate
  };

  Kind kind = Kind::kSingleQubit;

  /// The op as an ordinary IR gate — the engine-agnostic representation
  /// every SimulatorBackend::apply_gate understands (named single-qubit
  /// gates are materialized to kUnitary so no engine rebuilds matrices per
  /// application).  For kDiagonal ops the matrix is left empty — engines
  /// execute the `diagonal` table directly; a generic fallback densifies on
  /// demand via dense_gate().
  Gate gate;

  /// The op as a directly executable gate: for kDiagonal, `gate` with its
  /// dense 2^m×2^m matrix materialized from the table; otherwise `gate`
  /// itself.  Only the engine-agnostic fallback path pays this.
  Gate dense_gate() const;

  // -- precomputed execution data (dense-engine fast path) -------------------
  std::uint64_t tmask = 0;  ///< union of target bits
  std::uint64_t cmask = 0;  ///< union of control bits
  Amplitude u00, u01, u10, u11;          ///< kSingleQubit matrix entries
  std::vector<std::uint64_t> offsets;    ///< local-index → global offset
  std::vector<std::uint64_t> bases;      ///< kOperator block bases
  bool contiguous = false;               ///< kOperator memcpy layout
  /// kDiagonal: the 2^m phase table (local convention of offsets) and the
  /// shift/mask recipe extracting its index from a global index.
  std::vector<Amplitude> diagonal;
  DiagonalExtract diag_extract;

  // -- noise slot (meaningful when the plan preserves noise slots) -----------
  std::vector<std::size_t> noise_qubits;  ///< targets then controls
  bool noise_multi = false;  ///< ≥2 touched wires → two-qubit strength

  /// How many source gates this op absorbed (1 unless fused).
  std::size_t fused_gates = 1;

  /// Lazily-built complex64 mirror of `diagonal`, for the float-precision
  /// executors (compiled_diagonal<float>).  Built on first use without
  /// locking — safe under the plan's one-executor-at-a-time contract, the
  /// same contract the shared scratch arena already relies on.
  const std::vector<std::complex<float>>& diagonal_f32() const {
    if (diagonal_f32_.empty() && !diagonal.empty()) {
      diagonal_f32_.reserve(diagonal.size());
      for (const Amplitude& d : diagonal)
        diagonal_f32_.emplace_back(static_cast<float>(d.real()),
                                   static_cast<float>(d.imag()));
    }
    return diagonal_f32_;
  }

  /// Lazily-built complex64 mirror of the dense matrix (row-major), same
  /// contract as diagonal_f32().
  const std::vector<std::complex<float>>& matrix_f32() const {
    const std::size_t n = gate.matrix.rows() * gate.matrix.cols();
    if (matrix_f32_.empty() && n != 0) {
      matrix_f32_.reserve(n);
      const Amplitude* src = gate.matrix.data();
      for (std::size_t i = 0; i < n; ++i)
        matrix_f32_.emplace_back(static_cast<float>(src[i].real()),
                                 static_cast<float>(src[i].imag()));
    }
    return matrix_f32_;
  }

 private:
  mutable std::vector<std::complex<float>> diagonal_f32_;
  mutable std::vector<std::complex<float>> matrix_f32_;
};

/// What the compiler did — surfaced by `--stats` drivers and asserted by
/// tests.
struct CompilerStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t fused_blocks = 0;     ///< ops absorbing ≥ 2 source gates
  std::size_t diagonal_blocks = 0;  ///< the fused ops that are diagonal
  std::size_t operator_gates = 0;   ///< matrix-free passthrough ops
  /// block_width_histogram[w] = number of fused ops (dense or diagonal)
  /// with support w (index 0 unused).
  std::vector<std::size_t> block_width_histogram;

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Reusable buffers owned by a plan: gather/scatter block scratch and the
/// operator batch buffers.  Grown on first use, then reused by every
/// subsequent execution of the plan.
struct ExecutionScratch {
  std::vector<Amplitude> block;
  std::vector<Amplitude> block_out;  ///< vectorized block-apply output rows
  std::vector<Amplitude> packed_in;
  std::vector<Amplitude> packed_out;
  // complex64 mirrors used by the float-precision executors (the plan does
  // not know the precision of the engine that will run it).
  std::vector<std::complex<float>> block_f32;
  std::vector<std::complex<float>> block_out_f32;
  std::vector<std::complex<float>> packed_in_f32;
  std::vector<std::complex<float>> packed_out_f32;
};

/// Precision-keyed views of the scratch arena and of a CompiledOp's
/// materialized tables: the templated engines pick their buffers through
/// these so one executor body serves both scalars.
template <typename Real>
std::vector<std::complex<Real>>& scratch_block(ExecutionScratch& s);
template <>
inline std::vector<Amplitude>& scratch_block<double>(ExecutionScratch& s) {
  return s.block;
}
template <>
inline std::vector<std::complex<float>>& scratch_block<float>(
    ExecutionScratch& s) {
  return s.block_f32;
}

template <typename Real>
std::vector<std::complex<Real>>& scratch_block_out(ExecutionScratch& s);
template <>
inline std::vector<Amplitude>& scratch_block_out<double>(ExecutionScratch& s) {
  return s.block_out;
}
template <>
inline std::vector<std::complex<float>>& scratch_block_out<float>(
    ExecutionScratch& s) {
  return s.block_out_f32;
}

template <typename Real>
std::vector<std::complex<Real>>& scratch_packed_in(ExecutionScratch& s);
template <>
inline std::vector<Amplitude>& scratch_packed_in<double>(ExecutionScratch& s) {
  return s.packed_in;
}
template <>
inline std::vector<std::complex<float>>& scratch_packed_in<float>(
    ExecutionScratch& s) {
  return s.packed_in_f32;
}

template <typename Real>
std::vector<std::complex<Real>>& scratch_packed_out(ExecutionScratch& s);
template <>
inline std::vector<Amplitude>& scratch_packed_out<double>(
    ExecutionScratch& s) {
  return s.packed_out;
}
template <>
inline std::vector<std::complex<float>>& scratch_packed_out<float>(
    ExecutionScratch& s) {
  return s.packed_out_f32;
}

/// The diagonal table of a kDiagonal op at the executor's precision.
template <typename Real>
const std::complex<Real>* compiled_diagonal(const CompiledOp& op);
template <>
inline const Amplitude* compiled_diagonal<double>(const CompiledOp& op) {
  return op.diagonal.data();
}
template <>
inline const std::complex<float>* compiled_diagonal<float>(
    const CompiledOp& op) {
  return op.diagonal_f32().data();
}

/// The dense matrix of a kBlock op (row-major) at the executor's precision.
template <typename Real>
const std::complex<Real>* compiled_matrix_data(const CompiledOp& op);
template <>
inline const Amplitude* compiled_matrix_data<double>(const CompiledOp& op) {
  return op.gate.matrix.data();
}
template <>
inline const std::complex<float>* compiled_matrix_data<float>(
    const CompiledOp& op) {
  return op.matrix_f32().data();
}

/// A compiled, immutable, execute-many circuit.
class ExecutionPlan {
 public:
  std::size_t num_qubits() const { return num_qubits_; }
  double global_phase() const { return global_phase_; }
  const std::vector<CompiledOp>& ops() const { return ops_; }
  const CompilerStats& stats() const { return stats_; }
  /// True when the plan was compiled with preserve_noise_slots — the
  /// precondition of every *_with_noise execution path.
  bool preserves_noise_slots() const { return noise_slots_; }

  /// The plan's scratch arena.  Mutable by design: executing a plan reuses
  /// these buffers, which is why one plan must not be executed from two
  /// threads at once (parallelism lives *inside* the kernels).
  ExecutionScratch& scratch() const { return scratch_; }

  /// Approximate resident size of the plan: compiled matrices, diagonal
  /// tables, offset/base enumerations, and the scratch arena's current
  /// capacity.  The byte-budget accounting unit of the serving layer's
  /// plan cache (the lazily-built complex64 mirrors are counted as if
  /// materialized, so a cached plan cannot quietly outgrow its admission
  /// size on first float execution).
  std::size_t memory_bytes() const;

 private:
  friend ExecutionPlan compile_circuit(const Circuit&, const CompilerOptions&);

  std::size_t num_qubits_ = 0;
  double global_phase_ = 0.0;
  bool noise_slots_ = false;
  std::vector<CompiledOp> ops_;
  CompilerStats stats_;
  mutable ExecutionScratch scratch_;
};

/// Lowers \p circuit into an ExecutionPlan under explicit options (pass
/// compiler_options_from_env() to honour the QTDA_FUSE* overrides, as the
/// estimator does).
ExecutionPlan compile_circuit(const Circuit& circuit,
                              const CompilerOptions& options);

/// The compiled counterpart of noise.hpp's for_each_gate_with_noise: walks
/// a noise-slot-preserving plan, invoking `apply_op(const CompiledOp&)` per
/// op and `apply_error(qubit, probability)` for every touched qubit of its
/// source gate (targets before controls, multi-qubit strength when the
/// gate touched ≥ 2 wires).  Every noisy plan executor routes through this
/// one walk, so the error placement and RNG draw order of the compiled and
/// uncompiled paths cannot drift apart.
template <typename NoiseModelT, typename ApplyOp, typename ApplyError>
void for_each_plan_op_with_noise(const ExecutionPlan& plan,
                                 const NoiseModelT& noise, ApplyOp&& apply_op,
                                 ApplyError&& apply_error) {
  for (const CompiledOp& op : plan.ops()) {
    apply_op(op);
    const double p =
        op.noise_multi ? noise.two_qubit_error : noise.single_qubit_error;
    if (p <= 0.0) continue;
    for (std::size_t q : op.noise_qubits) apply_error(q, p);
  }
}

}  // namespace qtda
