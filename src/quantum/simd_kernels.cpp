/// \file simd_kernels.cpp
/// \brief AVX2 / AVX-512 implementations of the four hot loops.
///
/// Every function carries a function-level target attribute instead of the
/// whole TU being built with -mavx2/-mavx512f: the file compiles for the
/// baseline architecture, the vector bodies opt in per function, and the
/// dispatchers at the bottom pick a body the probed CPU can execute.  The
/// build adds -ffp-contract=off for this file (see src/quantum/CMakeLists);
/// together with the deliberate absence of "fma" from the target attributes
/// that keeps every product/sum a separately rounded operation, which the
/// bit-identity contract of simd_kernels.hpp depends on.
///
/// Complex multiply lane recipe (the workhorse): with a = (ar, ai) and
/// b = (br, bi) interleaved in even/odd lanes,
///   t0 = a · dup_even(b) = (ar·br, ai·br)
///   t1 = swap(a) · dup_odd(b) = (ai·bi, ar·bi)
///   addsub(t0, t1) = (ar·br − ai·bi, ai·br + ar·bi)
/// — the libstdc++ textbook product with the two imaginary terms added in
/// the commuted order, which IEEE addition makes bitwise identical.
/// AVX-512 has no addsub; it is emulated by XOR-flipping the sign bit of
/// t1's even lanes and adding, exact because a − b ≡ a + (−b).
#include "quantum/simd_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define QTDA_X86_SIMD 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC's avx512fintrin.h implements _mm512_undefined_pd() as a
// self-initialized local, which the uninitialized-use warnings flag at every
// _mm512_permute_pd / _mm512_broadcast_f64x2 inline site.  Known header
// noise, not a real read.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#else
#define QTDA_X86_SIMD 0
#endif

namespace qtda {
namespace simd {
namespace detail {

namespace {

/// Table index of global index i under a fused-diagonal extraction recipe
/// (scalar; the index math is integer and identical at every level).
inline std::uint64_t extract_local(std::uint64_t i, const std::uint64_t* shifts,
                                   const std::uint64_t* masks,
                                   std::size_t runs) {
  std::uint64_t local = 0;
  for (std::size_t r = 0; r < runs; ++r) local |= (i >> shifts[r]) & masks[r];
  return local;
}

#if QTDA_X86_SIMD

#define QTDA_TARGET_AVX2 __attribute__((target("avx2")))
#define QTDA_TARGET_AVX512 __attribute__((target("avx512f,avx512dq,avx512vl")))

constexpr long long kSignBit64 = static_cast<long long>(0x8000000000000000ULL);
constexpr long long kSignBit32Lo = 0x80000000LL;  // sign of the even float lane

// ---------------------------------------------------------------------------
// Complex-multiply lane helpers.
// ---------------------------------------------------------------------------

QTDA_TARGET_AVX2 inline __m256d cmul_pd(__m256d a, __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);       // (br, br) per complex
  const __m256d bi = _mm256_permute_pd(b, 0xF);  // (bi, bi) per complex
  const __m256d as = _mm256_permute_pd(a, 0x5);  // (ai, ar) per complex
  return _mm256_addsub_pd(_mm256_mul_pd(a, br), _mm256_mul_pd(as, bi));
}

QTDA_TARGET_AVX2 inline __m256 cmul_ps(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);
  const __m256 bi = _mm256_movehdup_ps(b);
  const __m256 as = _mm256_permute_ps(a, 0xB1);
  return _mm256_addsub_ps(_mm256_mul_ps(a, br), _mm256_mul_ps(as, bi));
}

QTDA_TARGET_AVX512 inline __m512d cmul512_pd(__m512d a, __m512d b) {
  const __m512d br = _mm512_movedup_pd(b);
  const __m512d bi = _mm512_permute_pd(b, 0xFF);
  const __m512d as = _mm512_permute_pd(a, 0x55);
  const __m512d t1 = _mm512_mul_pd(as, bi);
  const __m512i sign = _mm512_set_epi64(0, kSignBit64, 0, kSignBit64,
                                        0, kSignBit64, 0, kSignBit64);
  return _mm512_add_pd(_mm512_mul_pd(a, br),
                       _mm512_xor_pd(t1, _mm512_castsi512_pd(sign)));
}

/// Broadcasts one complex<double> to both complex slots of a ymm.
QTDA_TARGET_AVX2 inline __m256d broadcast_cd(const std::complex<double>* c) {
  return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(c));
}

/// Broadcasts one complex<float> to all four complex slots of a ymm.
QTDA_TARGET_AVX2 inline __m256 broadcast_cf(const std::complex<float>* c) {
  const __m128 v =
      _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(c)));
  const __m128 pair = _mm_shuffle_ps(v, v, 0x44);  // (re, im, re, im)
  return _mm256_insertf128_ps(_mm256_castps128_ps256(pair), pair, 1);
}

/// Broadcasts one complex<double> to all four complex slots of a zmm.
QTDA_TARGET_AVX512 inline __m512d broadcast512_cd(const std::complex<double>* c) {
  return _mm512_broadcast_f64x2(
      _mm_loadu_pd(reinterpret_cast<const double*>(c)));
}

// ---------------------------------------------------------------------------
// Pair sweep (uncontrolled single-qubit gate over contiguous runs).
// ---------------------------------------------------------------------------

QTDA_TARGET_AVX2 void pair_sweep_avx2_pd(std::complex<double>* p0,
                                         std::complex<double>* p1,
                                         std::uint64_t n,
                                         const std::complex<double>* u) {
  double* d0 = reinterpret_cast<double*>(p0);
  double* d1 = reinterpret_cast<double*>(p1);
  const __m256d u00 = broadcast_cd(u + 0);
  const __m256d u01 = broadcast_cd(u + 1);
  const __m256d u10 = broadcast_cd(u + 2);
  const __m256d u11 = broadcast_cd(u + 3);
  std::uint64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d a0 = _mm256_loadu_pd(d0 + 2 * k);
    const __m256d a1 = _mm256_loadu_pd(d1 + 2 * k);
    _mm256_storeu_pd(d0 + 2 * k,
                     _mm256_add_pd(cmul_pd(u00, a0), cmul_pd(u01, a1)));
    _mm256_storeu_pd(d1 + 2 * k,
                     _mm256_add_pd(cmul_pd(u10, a0), cmul_pd(u11, a1)));
  }
  for (; k < n; ++k) {
    const std::complex<double> a0 = p0[k];
    const std::complex<double> a1 = p1[k];
    p0[k] = u[0] * a0 + u[1] * a1;
    p1[k] = u[2] * a0 + u[3] * a1;
  }
}

QTDA_TARGET_AVX512 void pair_sweep_avx512_pd(std::complex<double>* p0,
                                             std::complex<double>* p1,
                                             std::uint64_t n,
                                             const std::complex<double>* u) {
  double* d0 = reinterpret_cast<double*>(p0);
  double* d1 = reinterpret_cast<double*>(p1);
  const __m512d u00 = broadcast512_cd(u + 0);
  const __m512d u01 = broadcast512_cd(u + 1);
  const __m512d u10 = broadcast512_cd(u + 2);
  const __m512d u11 = broadcast512_cd(u + 3);
  std::uint64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m512d a0 = _mm512_loadu_pd(d0 + 2 * k);
    const __m512d a1 = _mm512_loadu_pd(d1 + 2 * k);
    _mm512_storeu_pd(d0 + 2 * k,
                     _mm512_add_pd(cmul512_pd(u00, a0), cmul512_pd(u01, a1)));
    _mm512_storeu_pd(d1 + 2 * k,
                     _mm512_add_pd(cmul512_pd(u10, a0), cmul512_pd(u11, a1)));
  }
  for (; k < n; ++k) {
    const std::complex<double> a0 = p0[k];
    const std::complex<double> a1 = p1[k];
    p0[k] = u[0] * a0 + u[1] * a1;
    p1[k] = u[2] * a0 + u[3] * a1;
  }
}

QTDA_TARGET_AVX2 void pair_sweep_avx2_ps(std::complex<float>* p0,
                                         std::complex<float>* p1,
                                         std::uint64_t n,
                                         const std::complex<float>* u) {
  float* d0 = reinterpret_cast<float*>(p0);
  float* d1 = reinterpret_cast<float*>(p1);
  const __m256 u00 = broadcast_cf(u + 0);
  const __m256 u01 = broadcast_cf(u + 1);
  const __m256 u10 = broadcast_cf(u + 2);
  const __m256 u11 = broadcast_cf(u + 3);
  std::uint64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256 a0 = _mm256_loadu_ps(d0 + 2 * k);
    const __m256 a1 = _mm256_loadu_ps(d1 + 2 * k);
    _mm256_storeu_ps(d0 + 2 * k,
                     _mm256_add_ps(cmul_ps(u00, a0), cmul_ps(u01, a1)));
    _mm256_storeu_ps(d1 + 2 * k,
                     _mm256_add_ps(cmul_ps(u10, a0), cmul_ps(u11, a1)));
  }
  for (; k < n; ++k) {
    const std::complex<float> a0 = p0[k];
    const std::complex<float> a1 = p1[k];
    p0[k] = u[0] * a0 + u[1] * a1;
    p1[k] = u[2] * a0 + u[3] * a1;
  }
}

// ---------------------------------------------------------------------------
// Four-point sweep (uncontrolled two-qubit gate over contiguous runs).
// ---------------------------------------------------------------------------

QTDA_TARGET_AVX2 void four_point_sweep_avx2_pd(
    std::complex<double>* p0, std::complex<double>* p1,
    std::complex<double>* p2, std::complex<double>* p3, std::uint64_t n,
    const std::complex<double>* u) {
  double* d0 = reinterpret_cast<double*>(p0);
  double* d1 = reinterpret_cast<double*>(p1);
  double* d2 = reinterpret_cast<double*>(p2);
  double* d3 = reinterpret_cast<double*>(p3);
  std::uint64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d a0 = _mm256_loadu_pd(d0 + 2 * k);
    const __m256d a1 = _mm256_loadu_pd(d1 + 2 * k);
    const __m256d a2 = _mm256_loadu_pd(d2 + 2 * k);
    const __m256d a3 = _mm256_loadu_pd(d3 + 2 * k);
    double* const outs[4] = {d0 + 2 * k, d1 + 2 * k, d2 + 2 * k, d3 + 2 * k};
    for (std::size_t r = 0; r < 4; ++r) {
      const std::complex<double>* urow = u + 4 * r;
      __m256d acc = _mm256_setzero_pd();
      acc = _mm256_add_pd(acc, cmul_pd(broadcast_cd(urow + 0), a0));
      acc = _mm256_add_pd(acc, cmul_pd(broadcast_cd(urow + 1), a1));
      acc = _mm256_add_pd(acc, cmul_pd(broadcast_cd(urow + 2), a2));
      acc = _mm256_add_pd(acc, cmul_pd(broadcast_cd(urow + 3), a3));
      _mm256_storeu_pd(outs[r], acc);
    }
  }
  for (; k < n; ++k) {
    const std::complex<double> a0 = p0[k];
    const std::complex<double> a1 = p1[k];
    const std::complex<double> a2 = p2[k];
    const std::complex<double> a3 = p3[k];
    std::complex<double>* const outs[4] = {p0 + k, p1 + k, p2 + k, p3 + k};
    for (std::size_t r = 0; r < 4; ++r) {
      const std::complex<double>* urow = u + 4 * r;
      std::complex<double> acc{};
      acc += urow[0] * a0;
      acc += urow[1] * a1;
      acc += urow[2] * a2;
      acc += urow[3] * a3;
      *outs[r] = acc;
    }
  }
}

QTDA_TARGET_AVX2 void four_point_sweep_avx2_ps(
    std::complex<float>* p0, std::complex<float>* p1, std::complex<float>* p2,
    std::complex<float>* p3, std::uint64_t n, const std::complex<float>* u) {
  float* d0 = reinterpret_cast<float*>(p0);
  float* d1 = reinterpret_cast<float*>(p1);
  float* d2 = reinterpret_cast<float*>(p2);
  float* d3 = reinterpret_cast<float*>(p3);
  std::uint64_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256 a0 = _mm256_loadu_ps(d0 + 2 * k);
    const __m256 a1 = _mm256_loadu_ps(d1 + 2 * k);
    const __m256 a2 = _mm256_loadu_ps(d2 + 2 * k);
    const __m256 a3 = _mm256_loadu_ps(d3 + 2 * k);
    float* const outs[4] = {d0 + 2 * k, d1 + 2 * k, d2 + 2 * k, d3 + 2 * k};
    for (std::size_t r = 0; r < 4; ++r) {
      const std::complex<float>* urow = u + 4 * r;
      __m256 acc = _mm256_setzero_ps();
      acc = _mm256_add_ps(acc, cmul_ps(broadcast_cf(urow + 0), a0));
      acc = _mm256_add_ps(acc, cmul_ps(broadcast_cf(urow + 1), a1));
      acc = _mm256_add_ps(acc, cmul_ps(broadcast_cf(urow + 2), a2));
      acc = _mm256_add_ps(acc, cmul_ps(broadcast_cf(urow + 3), a3));
      _mm256_storeu_ps(outs[r], acc);
    }
  }
  for (; k < n; ++k) {
    const std::complex<float> a0 = p0[k];
    const std::complex<float> a1 = p1[k];
    const std::complex<float> a2 = p2[k];
    const std::complex<float> a3 = p3[k];
    std::complex<float>* const outs[4] = {p0 + k, p1 + k, p2 + k, p3 + k};
    for (std::size_t r = 0; r < 4; ++r) {
      const std::complex<float>* urow = u + 4 * r;
      std::complex<float> acc{};
      acc += urow[0] * a0;
      acc += urow[1] * a1;
      acc += urow[2] * a2;
      acc += urow[3] * a3;
      *outs[r] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Diagonal table-lookup pass.
// ---------------------------------------------------------------------------

QTDA_TARGET_AVX2 void diagonal_pass_avx2_pd(
    std::complex<double>* amp, std::uint64_t first_index, std::uint64_t count,
    const std::uint64_t* shifts, const std::uint64_t* masks, std::size_t runs,
    const std::complex<double>* table) {
  double* ap = reinterpret_cast<double*>(amp);
  const double* tp = reinterpret_cast<const double*>(table);
  std::uint64_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const std::uint64_t i = first_index + k;
    const std::uint64_t l0 = extract_local(i, shifts, masks, runs);
    const std::uint64_t l1 = extract_local(i + 1, shifts, masks, runs);
    const __m128d t0 = _mm_loadu_pd(tp + 2 * l0);
    const __m128d t1 = _mm_loadu_pd(tp + 2 * l1);
    const __m256d t = _mm256_insertf128_pd(_mm256_castpd128_pd256(t0), t1, 1);
    const __m256d a = _mm256_loadu_pd(ap + 2 * k);
    _mm256_storeu_pd(ap + 2 * k, cmul_pd(a, t));
  }
  for (; k < count; ++k)
    amp[k] *= table[extract_local(first_index + k, shifts, masks, runs)];
}

QTDA_TARGET_AVX512 void diagonal_pass_avx512_pd(
    std::complex<double>* amp, std::uint64_t first_index, std::uint64_t count,
    const std::uint64_t* shifts, const std::uint64_t* masks, std::size_t runs,
    const std::complex<double>* table) {
  double* ap = reinterpret_cast<double*>(amp);
  const double* tp = reinterpret_cast<const double*>(table);
  std::uint64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const std::uint64_t i = first_index + k;
    const std::uint64_t l0 = extract_local(i, shifts, masks, runs);
    const std::uint64_t l1 = extract_local(i + 1, shifts, masks, runs);
    const std::uint64_t l2 = extract_local(i + 2, shifts, masks, runs);
    const std::uint64_t l3 = extract_local(i + 3, shifts, masks, runs);
    const __m256d tlo = _mm256_insertf128_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(tp + 2 * l0)),
        _mm_loadu_pd(tp + 2 * l1), 1);
    const __m256d thi = _mm256_insertf128_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(tp + 2 * l2)),
        _mm_loadu_pd(tp + 2 * l3), 1);
    const __m512d t =
        _mm512_insertf64x4(_mm512_castpd256_pd512(tlo), thi, 1);
    const __m512d a = _mm512_loadu_pd(ap + 2 * k);
    _mm512_storeu_pd(ap + 2 * k, cmul512_pd(a, t));
  }
  for (; k < count; ++k)
    amp[k] *= table[extract_local(first_index + k, shifts, masks, runs)];
}

QTDA_TARGET_AVX2 void diagonal_pass_avx2_ps(
    std::complex<float>* amp, std::uint64_t first_index, std::uint64_t count,
    const std::uint64_t* shifts, const std::uint64_t* masks, std::size_t runs,
    const std::complex<float>* table) {
  float* ap = reinterpret_cast<float*>(amp);
  std::uint64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const std::uint64_t i = first_index + k;
    const std::uint64_t l0 = extract_local(i, shifts, masks, runs);
    const std::uint64_t l1 = extract_local(i + 1, shifts, masks, runs);
    const std::uint64_t l2 = extract_local(i + 2, shifts, masks, runs);
    const std::uint64_t l3 = extract_local(i + 3, shifts, masks, runs);
    const __m256 t = _mm256_setr_ps(
        table[l0].real(), table[l0].imag(), table[l1].real(), table[l1].imag(),
        table[l2].real(), table[l2].imag(), table[l3].real(), table[l3].imag());
    const __m256 a = _mm256_loadu_ps(ap + 2 * k);
    _mm256_storeu_ps(ap + 2 * k, cmul_ps(a, t));
  }
  for (; k < count; ++k)
    amp[k] *= table[extract_local(first_index + k, shifts, masks, runs)];
}

// ---------------------------------------------------------------------------
// Dense block matvec (vectorized ACROSS output rows; per-row accumulation
// stays sequential in c, preserving the scalar row-dot bit for bit).
// ---------------------------------------------------------------------------

QTDA_TARGET_AVX2 void block_matvec_avx2_pd(const std::complex<double>* u,
                                           const std::complex<double>* in,
                                           std::complex<double>* out,
                                           std::size_t block) {
  const double* ud = reinterpret_cast<const double*>(u);
  double* outd = reinterpret_cast<double*>(out);
  std::size_t r = 0;
  for (; r + 2 <= block; r += 2) {
    const double* row0 = ud + 2 * r * block;
    const double* row1 = row0 + 2 * block;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t c = 0; c < block; ++c) {
      const __m256d uv = _mm256_insertf128_pd(
          _mm256_castpd128_pd256(_mm_loadu_pd(row0 + 2 * c)),
          _mm_loadu_pd(row1 + 2 * c), 1);
      acc = _mm256_add_pd(acc, cmul_pd(uv, broadcast_cd(in + c)));
    }
    _mm256_storeu_pd(outd + 2 * r, acc);
  }
  for (; r < block; ++r) {
    const std::complex<double>* urow = u + r * block;
    std::complex<double> acc{};
    for (std::size_t c = 0; c < block; ++c) acc += urow[c] * in[c];
    out[r] = acc;
  }
}

QTDA_TARGET_AVX2 void block_matvec_avx2_ps(const std::complex<float>* u,
                                           const std::complex<float>* in,
                                           std::complex<float>* out,
                                           std::size_t block) {
  float* outd = reinterpret_cast<float*>(out);
  std::size_t r = 0;
  for (; r + 4 <= block; r += 4) {
    const std::complex<float>* row0 = u + (r + 0) * block;
    const std::complex<float>* row1 = u + (r + 1) * block;
    const std::complex<float>* row2 = u + (r + 2) * block;
    const std::complex<float>* row3 = u + (r + 3) * block;
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t c = 0; c < block; ++c) {
      const __m256 uv = _mm256_setr_ps(
          row0[c].real(), row0[c].imag(), row1[c].real(), row1[c].imag(),
          row2[c].real(), row2[c].imag(), row3[c].real(), row3[c].imag());
      acc = _mm256_add_ps(acc, cmul_ps(uv, broadcast_cf(in + c)));
    }
    _mm256_storeu_ps(outd + 2 * r, acc);
  }
  for (; r < block; ++r) {
    const std::complex<float>* urow = u + r * block;
    std::complex<float> acc{};
    for (std::size_t c = 0; c < block; ++c) acc += urow[c] * in[c];
    out[r] = acc;
  }
}

// ---------------------------------------------------------------------------
// CSR matvec (lane-split row dots; the one reassociating kernel).
// ---------------------------------------------------------------------------

QTDA_TARGET_AVX2 void csr_matvec_avx2_pd(const std::size_t* offsets,
                                         const std::size_t* cols,
                                         const double* vals,
                                         const std::complex<double>* x,
                                         std::complex<double>* y,
                                         std::size_t row_lo,
                                         std::size_t row_hi) {
  const double* xd = reinterpret_cast<const double*>(x);
  for (std::size_t r = row_lo; r < row_hi; ++r) {
    std::size_t k = offsets[r];
    const std::size_t end = offsets[r + 1];
    __m256d acc2 = _mm256_setzero_pd();
    for (; k + 2 <= end; k += 2) {
      const __m256d xv = _mm256_insertf128_pd(
          _mm256_castpd128_pd256(_mm_loadu_pd(xd + 2 * cols[k])),
          _mm_loadu_pd(xd + 2 * cols[k + 1]), 1);
      const __m256d vv =
          _mm256_setr_pd(vals[k], vals[k], vals[k + 1], vals[k + 1]);
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(vv, xv));
    }
    const __m128d folded = _mm_add_pd(_mm256_castpd256_pd128(acc2),
                                      _mm256_extractf128_pd(acc2, 1));
    double buf[2];
    _mm_storeu_pd(buf, folded);
    std::complex<double> acc{buf[0], buf[1]};
    for (; k < end; ++k) acc += vals[k] * x[cols[k]];
    y[r] = acc;
  }
}

#endif  // QTDA_X86_SIMD

}  // namespace

// ---------------------------------------------------------------------------
// Level dispatchers.  On non-x86 builds active_simd_level() is always
// kScalar so these bodies are unreachable; they still fall back to the
// scalar wrappers to keep the symbols well-defined.
// ---------------------------------------------------------------------------

#if QTDA_X86_SIMD

void pair_sweep_vec(SimdLevel level, std::complex<double>* p0,
                    std::complex<double>* p1, std::uint64_t n,
                    const std::complex<double>* u) {
  if (level == SimdLevel::kAvx512) {
    pair_sweep_avx512_pd(p0, p1, n, u);
    return;
  }
  pair_sweep_avx2_pd(p0, p1, n, u);
}

void pair_sweep_vec(SimdLevel level, std::complex<float>* p0,
                    std::complex<float>* p1, std::uint64_t n,
                    const std::complex<float>* u) {
  (void)level;  // the float pair sweep ships one 256-bit path
  pair_sweep_avx2_ps(p0, p1, n, u);
}

void four_point_sweep_vec(SimdLevel level, std::complex<double>* p0,
                          std::complex<double>* p1, std::complex<double>* p2,
                          std::complex<double>* p3, std::uint64_t n,
                          const std::complex<double>* u) {
  (void)level;  // 256-bit path serves both vector levels
  four_point_sweep_avx2_pd(p0, p1, p2, p3, n, u);
}

void four_point_sweep_vec(SimdLevel level, std::complex<float>* p0,
                          std::complex<float>* p1, std::complex<float>* p2,
                          std::complex<float>* p3, std::uint64_t n,
                          const std::complex<float>* u) {
  (void)level;
  four_point_sweep_avx2_ps(p0, p1, p2, p3, n, u);
}

void diagonal_pass_vec(SimdLevel level, std::complex<double>* amp,
                       std::uint64_t first_index, std::uint64_t count,
                       const std::uint64_t* shifts, const std::uint64_t* masks,
                       std::size_t runs, const std::complex<double>* table) {
  if (level == SimdLevel::kAvx512) {
    diagonal_pass_avx512_pd(amp, first_index, count, shifts, masks, runs,
                            table);
    return;
  }
  diagonal_pass_avx2_pd(amp, first_index, count, shifts, masks, runs, table);
}

void diagonal_pass_vec(SimdLevel level, std::complex<float>* amp,
                       std::uint64_t first_index, std::uint64_t count,
                       const std::uint64_t* shifts, const std::uint64_t* masks,
                       std::size_t runs, const std::complex<float>* table) {
  (void)level;
  diagonal_pass_avx2_ps(amp, first_index, count, shifts, masks, runs, table);
}

void block_matvec_vec(SimdLevel level, const std::complex<double>* u,
                      const std::complex<double>* in, std::complex<double>* out,
                      std::size_t block) {
  (void)level;  // 256-bit path serves both vector levels
  block_matvec_avx2_pd(u, in, out, block);
}

void block_matvec_vec(SimdLevel level, const std::complex<float>* u,
                      const std::complex<float>* in, std::complex<float>* out,
                      std::size_t block) {
  (void)level;
  block_matvec_avx2_ps(u, in, out, block);
}

void csr_matvec_vec(SimdLevel level, const std::size_t* offsets,
                    const std::size_t* cols, const double* vals,
                    const std::complex<double>* x, std::complex<double>* y,
                    std::size_t row_lo, std::size_t row_hi) {
  (void)level;
  csr_matvec_avx2_pd(offsets, cols, vals, x, y, row_lo, row_hi);
}

void csr_matvec_vec(SimdLevel level, const std::size_t* offsets,
                    const std::size_t* cols, const float* vals,
                    const std::complex<float>* x, std::complex<float>* y,
                    std::size_t row_lo, std::size_t row_hi) {
  // Measured, not assumed: an insert-gathered 8-lane float kernel benched
  // ~0.6x the scalar dot (bench_micro_simd BM_CsrMatvec<float>) — the
  // per-nonzero setr setup dwarfs the multiply it feeds.  Until a genuine
  // gather strategy earns its keep, the float path keeps the scalar loop.
  (void)level;
  for (std::size_t r = row_lo; r < row_hi; ++r) {
    std::complex<float> acc{};
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
      acc += vals[k] * x[cols[k]];
    y[r] = acc;
  }
}

#else  // !QTDA_X86_SIMD — scalar stubs so the symbols always link

void pair_sweep_vec(SimdLevel, std::complex<double>* p0,
                    std::complex<double>* p1, std::uint64_t n,
                    const std::complex<double>* u) {
  pair_sweep(SimdLevel::kScalar, p0, p1, n, u);
}

void pair_sweep_vec(SimdLevel, std::complex<float>* p0, std::complex<float>* p1,
                    std::uint64_t n, const std::complex<float>* u) {
  pair_sweep(SimdLevel::kScalar, p0, p1, n, u);
}

void four_point_sweep_vec(SimdLevel, std::complex<double>* p0,
                          std::complex<double>* p1, std::complex<double>* p2,
                          std::complex<double>* p3, std::uint64_t n,
                          const std::complex<double>* u) {
  four_point_sweep(SimdLevel::kScalar, p0, p1, p2, p3, n, u);
}

void four_point_sweep_vec(SimdLevel, std::complex<float>* p0,
                          std::complex<float>* p1, std::complex<float>* p2,
                          std::complex<float>* p3, std::uint64_t n,
                          const std::complex<float>* u) {
  four_point_sweep(SimdLevel::kScalar, p0, p1, p2, p3, n, u);
}

void diagonal_pass_vec(SimdLevel, std::complex<double>* amp,
                       std::uint64_t first_index, std::uint64_t count,
                       const std::uint64_t* shifts, const std::uint64_t* masks,
                       std::size_t runs, const std::complex<double>* table) {
  for (std::uint64_t k = 0; k < count; ++k)
    amp[k] *= table[extract_local(first_index + k, shifts, masks, runs)];
}

void diagonal_pass_vec(SimdLevel, std::complex<float>* amp,
                       std::uint64_t first_index, std::uint64_t count,
                       const std::uint64_t* shifts, const std::uint64_t* masks,
                       std::size_t runs, const std::complex<float>* table) {
  for (std::uint64_t k = 0; k < count; ++k)
    amp[k] *= table[extract_local(first_index + k, shifts, masks, runs)];
}

void block_matvec_vec(SimdLevel, const std::complex<double>* u,
                      const std::complex<double>* in, std::complex<double>* out,
                      std::size_t block) {
  block_matvec(SimdLevel::kScalar, u, in, out, block);
}

void block_matvec_vec(SimdLevel, const std::complex<float>* u,
                      const std::complex<float>* in, std::complex<float>* out,
                      std::size_t block) {
  block_matvec(SimdLevel::kScalar, u, in, out, block);
}

void csr_matvec_vec(SimdLevel, const std::size_t* offsets,
                    const std::size_t* cols, const double* vals,
                    const std::complex<double>* x, std::complex<double>* y,
                    std::size_t row_lo, std::size_t row_hi) {
  csr_matvec_rows(SimdLevel::kScalar, offsets, cols, vals, x, y, row_lo,
                  row_hi);
}

void csr_matvec_vec(SimdLevel, const std::size_t* offsets,
                    const std::size_t* cols, const float* vals,
                    const std::complex<float>* x, std::complex<float>* y,
                    std::size_t row_lo, std::size_t row_hi) {
  csr_matvec_rows(SimdLevel::kScalar, offsets, cols, vals, x, y, row_lo,
                  row_hi);
}

#endif  // QTDA_X86_SIMD

}  // namespace detail
}  // namespace simd
}  // namespace qtda
