/// \file register_layout.hpp
/// \brief Shared target/control mask building and block enumeration for the
/// simulation engines.
///
/// The dense and sharded state-vector engines promise *bit-identical*
/// results, which starts with decomposing the register identically: the
/// same target masks (MSB-first wire convention of types.hpp), the same
/// local-offset tables, and the same block-column base enumeration, in the
/// same order.  Both engines call these helpers so the decomposition exists
/// exactly once.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "quantum/types.hpp"

namespace qtda {

/// Masks of an ordered target sub-register plus its controls.
struct TargetLayout {
  std::uint64_t tmask = 0;  ///< union of all target bits
  std::uint64_t cmask = 0;  ///< union of all control bits (all-ones condition)
  /// local_bit_mask[j] is the global bit of local bit j (LSB-first), i.e. of
  /// targets[m−1−j]: the first listed target is the most significant local
  /// bit, mirroring the global convention.
  std::vector<std::uint64_t> local_bit_mask;
};

/// Validates targets/controls against the register width and builds the
/// masks.  Throws on out-of-range wires, duplicate targets, and controls
/// overlapping targets.
inline TargetLayout build_target_layout(
    const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls, std::size_t num_qubits) {
  const std::size_t m = targets.size();
  TargetLayout layout;
  layout.local_bit_mask.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t q = targets[m - 1 - j];
    QTDA_REQUIRE(q < num_qubits, "target out of range");
    layout.local_bit_mask[j] = qubit_mask(q, num_qubits);
    QTDA_REQUIRE((layout.tmask & layout.local_bit_mask[j]) == 0,
                 "duplicate target");
    layout.tmask |= layout.local_bit_mask[j];
  }
  for (std::size_t c : controls) {
    QTDA_REQUIRE(c < num_qubits, "control out of range");
    const std::uint64_t bit = qubit_mask(c, num_qubits);
    QTDA_REQUIRE((bit & layout.tmask) == 0, "control overlaps target");
    layout.cmask |= bit;
  }
  return layout;
}

/// Global offset of every local block index l ∈ [0, 2^m): the scatter map
/// of a gathered sub-register block.
inline std::vector<std::uint64_t> block_offsets(
    const std::vector<std::uint64_t>& local_bit_mask) {
  const std::uint64_t block = std::uint64_t{1} << local_bit_mask.size();
  std::vector<std::uint64_t> offset(block);
  for (std::uint64_t l = 0; l < block; ++l) {
    std::uint64_t off = 0;
    for (std::size_t j = 0; j < local_bit_mask.size(); ++j)
      if ((l >> j) & 1ULL) off |= local_bit_mask[j];
    offset[l] = off;
  }
  return offset;
}

/// True when the ordered targets are the trailing wires of the register —
/// then sub-register blocks are contiguous index ranges and gather/scatter
/// is a memcpy (the sampled-basis QPE layout).
inline bool targets_are_trailing(const std::vector<std::size_t>& targets,
                                 std::size_t num_qubits) {
  for (std::size_t j = 0; j < targets.size(); ++j)
    if (targets[j] != num_qubits - targets.size() + j) return false;
  return true;
}

/// Base indices of the blocks an operator acts on: every setting of the
/// non-target bits whose control bits are all one, enumerated in increasing
/// order (both engines must walk blocks identically).
inline std::vector<std::uint64_t> enumerate_block_bases(std::uint64_t dim,
                                                        std::uint64_t tmask,
                                                        std::uint64_t cmask) {
  const std::uint64_t free_mask = (dim - 1) & ~tmask & ~cmask;
  std::vector<std::uint64_t> bases;
  std::uint64_t sub = 0;
  do {
    bases.push_back(sub | cmask);
    sub = (sub | ~free_mask) + 1;
    sub &= free_mask;
  } while (sub != 0);
  return bases;
}

/// Index-extraction recipe of a fused diagonal: the table index of global
/// index i is  OR_r (i >> shifts[r]) & masks[r].  Support wires that are
/// adjacent in the register compress into one (shift, mask) pair, so a
/// typical QPE diagonal (a precision run plus a system run) extracts its
/// index in two shifts — the difference between a fused-diagonal sweep
/// costing ~1 plain gate sweep and ~3.
struct DiagonalExtract {
  std::vector<std::uint64_t> shifts;
  std::vector<std::uint64_t> masks;  ///< pre-positioned at the local bits
};

/// Builds the extraction recipe from a TargetLayout's per-local-bit masks
/// (LSB-first; local bit j's global position strictly increases with j, so
/// runs of +1 steps compress).
inline DiagonalExtract build_diagonal_extract(
    const std::vector<std::uint64_t>& local_bit_mask) {
  DiagonalExtract extract;
  std::size_t j = 0;
  while (j < local_bit_mask.size()) {
    std::size_t g = 0;
    while ((local_bit_mask[j] >> g) != 1ULL) ++g;  // global bit position
    std::size_t length = 1;
    while (j + length < local_bit_mask.size() &&
           local_bit_mask[j + length] == local_bit_mask[j] << length)
      ++length;
    // Move global bits [g, g+length) to local bits [j, j+length); g ≥ j
    // because global positions grow at least as fast as local ones.
    extract.shifts.push_back(g - j);
    extract.masks.push_back(((std::uint64_t{1} << length) - 1) << j);
    j += length;
  }
  return extract;
}

/// Applies a fused diagonal to the amplitude run amp[0..count) holding the
/// global indices [first_index, first_index + count).  The run count is a
/// template parameter so the extraction fully unrolls — shared by the
/// dense and sharded engines, whose per-amplitude arithmetic must match
/// bit for bit.  Templated over the complex amplitude type so the float32
/// engines reuse the identical kernel shape.
template <std::size_t R, typename C>
inline void apply_diagonal_run_fixed(C* amp, std::uint64_t first_index,
                                     std::uint64_t count,
                                     const std::uint64_t* shifts,
                                     const std::uint64_t* masks,
                                     const C* table) {
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t i = first_index + k;
    std::uint64_t local = 0;
    for (std::size_t r = 0; r < R; ++r) local |= (i >> shifts[r]) & masks[r];
    amp[k] *= table[local];
  }
}

/// Runtime dispatch of apply_diagonal_run_fixed (a fused diagonal of width
/// ≤ 8 has at most 8 runs).
template <typename C>
inline void apply_diagonal_run(C* amp, std::uint64_t first_index,
                               std::uint64_t count,
                               const DiagonalExtract& extract,
                               const C* table) {
  const std::uint64_t* s = extract.shifts.data();
  const std::uint64_t* m = extract.masks.data();
  switch (extract.shifts.size()) {
    case 1: apply_diagonal_run_fixed<1>(amp, first_index, count, s, m, table); break;
    case 2: apply_diagonal_run_fixed<2>(amp, first_index, count, s, m, table); break;
    case 3: apply_diagonal_run_fixed<3>(amp, first_index, count, s, m, table); break;
    case 4: apply_diagonal_run_fixed<4>(amp, first_index, count, s, m, table); break;
    case 5: apply_diagonal_run_fixed<5>(amp, first_index, count, s, m, table); break;
    case 6: apply_diagonal_run_fixed<6>(amp, first_index, count, s, m, table); break;
    case 7: apply_diagonal_run_fixed<7>(amp, first_index, count, s, m, table); break;
    case 8: apply_diagonal_run_fixed<8>(amp, first_index, count, s, m, table); break;
    case 9: apply_diagonal_run_fixed<9>(amp, first_index, count, s, m, table); break;
    case 10: apply_diagonal_run_fixed<10>(amp, first_index, count, s, m, table); break;
    case 11: apply_diagonal_run_fixed<11>(amp, first_index, count, s, m, table); break;
    case 12: apply_diagonal_run_fixed<12>(amp, first_index, count, s, m, table); break;
    default:
      QTDA_REQUIRE(false, "fused diagonal wider than the supported maximum");
  }
}

/// Validates a marginal-measurement qubit list (all wires in range, outcome
/// space bounded) and returns the outcome bit masks: outcome bit j
/// (LSB-first) is qubits[m−1−j] (MSB-first listing).  Validation happens
/// for the whole list before any mask is built, so an out-of-range wire
/// throws instead of reaching qubit_mask's undefined shift.
inline std::vector<std::uint64_t> marginal_bit_masks(
    const std::vector<std::size_t>& qubits, std::size_t num_qubits) {
  QTDA_REQUIRE(!qubits.empty(), "marginal over an empty qubit set");
  const std::size_t m = qubits.size();
  QTDA_REQUIRE(m <= 26, "marginal outcome space too large");
  for (std::size_t q : qubits)
    QTDA_REQUIRE(q < num_qubits, "qubit out of range");
  std::vector<std::uint64_t> bit_mask(m);
  for (std::size_t j = 0; j < m; ++j)
    bit_mask[j] = qubit_mask(qubits[m - 1 - j], num_qubits);
  return bit_mask;
}

}  // namespace qtda
