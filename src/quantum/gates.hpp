/// \file gates.hpp
/// \brief Standard gate matrices.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace qtda::gates {

/// 2×2 constants.
ComplexMatrix I();
ComplexMatrix X();
ComplexMatrix Y();
ComplexMatrix Z();
ComplexMatrix H();
ComplexMatrix S();
ComplexMatrix Sdg();
ComplexMatrix T();
ComplexMatrix Tdg();

/// Rotations: R_A(θ) = exp(−iθA/2).
ComplexMatrix RX(double theta);
ComplexMatrix RY(double theta);
ComplexMatrix RZ(double theta);

/// Phase gate diag(1, e^{iφ}).
ComplexMatrix Phase(double phi);

}  // namespace qtda::gates
