/// \file precision.hpp
/// \brief Amplitude precision selection for the simulation spine.
///
/// Every engine (Statevector, ShardedStatevector, DensityMatrix) is a
/// template over the real scalar of its amplitudes; this enum is the
/// runtime handle the factory and the estimator options use to pick an
/// instantiation.  complex128 (double) is the default and the reference;
/// complex64 (float) halves memory traffic — the lever identified by the
/// mixed-precision exemplars — at ~1e-7 relative amplitude error, which the
/// precision-tolerance tests bound per backend.
///
/// The `QTDA_PRECISION` environment variable overrides the requested
/// precision in make_simulator (values: "float64"/"float32"); malformed
/// values fail fast naming the variable, matching QTDA_SIMULATOR.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

#include "common/error.hpp"

namespace qtda {

/// Real scalar of the complex amplitudes an engine stores.
enum class Precision {
  kFloat64,  ///< std::complex<double> — the reference arithmetic
  kFloat32,  ///< std::complex<float> — half the bandwidth, ~1e-7 accuracy
};

/// Printable name ("float64", "float32").
inline std::string precision_name(Precision precision) {
  switch (precision) {
    case Precision::kFloat64: return "float64";
    case Precision::kFloat32: return "float32";
  }
  return "?";
}

/// Inverse of precision_name; throws listing the valid names.
inline Precision precision_from_name(const std::string& name) {
  if (name == "float64") return Precision::kFloat64;
  if (name == "float32") return Precision::kFloat32;
  QTDA_REQUIRE(false, "unknown precision \"" << name
                                             << "\" (valid: float64, float32)");
  return Precision::kFloat64;
}

/// The Precision tag of a template instantiation's real scalar — the bridge
/// from compile-time Real to the runtime enum (used by the backends'
/// precision() accessor).
template <typename Real>
constexpr Precision precision_of();

template <>
constexpr Precision precision_of<double>() {
  return Precision::kFloat64;
}

template <>
constexpr Precision precision_of<float>() {
  return Precision::kFloat32;
}

/// Parses the QTDA_PRECISION override: unset/empty → nullopt (use the
/// caller's requested precision).  Throws an Error naming the variable on
/// any other value, mirroring the QTDA_SIMULATOR convention.
inline std::optional<Precision> precision_from_env() {
  const char* value = std::getenv("QTDA_PRECISION");
  if (value == nullptr || *value == '\0') return std::nullopt;
  const std::string name(value);
  if (name == "float64") return Precision::kFloat64;
  if (name == "float32") return Precision::kFloat32;
  QTDA_REQUIRE(false, "QTDA_PRECISION=\""
                          << name
                          << "\" is not a valid precision (valid: float64, "
                             "float32)");
  return std::nullopt;
}

}  // namespace qtda
