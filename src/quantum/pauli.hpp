/// \file pauli.hpp
/// \brief Pauli strings, Pauli sums, and Hamiltonian decomposition.
///
/// The paper's Appendix A expands the padded Laplacian into the Pauli basis
/// (Eq. 19) before synthesizing the e^{iH} circuit.  A PauliString stores
/// one letter per qubit (MSB-first, "ZIX" = Z⊗I⊗X); a PauliSum is a real
/// linear combination — real coefficients suffice because the decomposed
/// operators are Hermitian.  Decomposition uses the Hilbert–Schmidt inner
/// product with O(2^n) work per string (each Pauli has one nonzero per row).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace qtda {

enum class PauliKind : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

char pauli_kind_char(PauliKind kind);
PauliKind pauli_kind_from_char(char c);

/// A tensor product of single-qubit Paulis.
class PauliString {
 public:
  /// Identity string on \p num_qubits qubits.
  explicit PauliString(std::size_t num_qubits);
  /// From letters, e.g. PauliString("ZIX").
  explicit PauliString(const std::string& letters);
  /// From explicit kinds (MSB-first).
  explicit PauliString(std::vector<PauliKind> kinds);

  std::size_t num_qubits() const { return kinds_.size(); }
  PauliKind kind(std::size_t qubit) const { return kinds_[qubit]; }
  const std::vector<PauliKind>& kinds() const { return kinds_; }

  /// Number of non-identity letters.
  std::size_t weight() const;
  bool is_identity() const { return weight() == 0; }

  /// "ZIX"-style rendering.
  std::string to_string() const;

  /// Dense 2^n × 2^n matrix (test/diagnostic path; O(4^n) memory).
  ComplexMatrix matrix() const;

  /// ⟨bra|P|ket⟩ entries without densifying: P|ket⟩ = phase · |ket ^ flip⟩.
  /// flip_mask has the X/Y qubits' bits set (MSB-first convention).
  std::uint64_t flip_mask() const;
  /// The phase applied to basis state \p ket.
  std::complex<double> phase_for(std::uint64_t ket) const;

  bool operator==(const PauliString& other) const {
    return kinds_ == other.kinds_;
  }
  bool operator<(const PauliString& other) const {
    return kinds_ < other.kinds_;
  }

 private:
  std::vector<PauliKind> kinds_;
};

/// One weighted string.
struct PauliTerm {
  double coefficient = 0.0;
  PauliString string;
};

/// A real linear combination of Pauli strings (a Hermitian operator).
class PauliSum {
 public:
  PauliSum() = default;
  explicit PauliSum(std::vector<PauliTerm> terms);

  const std::vector<PauliTerm>& terms() const { return terms_; }
  std::size_t size() const { return terms_.size(); }
  std::size_t num_qubits() const;

  /// Dense matrix Σ c_i · P_i.
  ComplexMatrix matrix() const;

  /// Coefficient of a string by its letters; 0 when absent.
  double coefficient_of(const std::string& letters) const;

  /// Terms sorted by letters (deterministic output for printing/tests).
  PauliSum sorted() const;

 private:
  std::vector<PauliTerm> terms_;
};

/// Partitions the terms of a sum into mutually commuting families, grouped
/// by *basis signature*: the string with every diagonal letter (I or Z)
/// erased to I.  Two terms with the same signature agree letter-for-letter
/// at every X/Y position and are diagonal everywhere else, so they commute
/// qubit-wise — and, crucially for circuit synthesis, they share one
/// basis-change conjugation into the Z eigenbasis.  The partition is stable:
/// families appear in first-occurrence order and terms keep their original
/// relative order inside each family, so flattening the groups is a
/// reordering of the sum, never a rewrite.
std::vector<std::vector<PauliTerm>> group_commuting_terms(const PauliSum& sum);

/// Expands a Hermitian matrix (given as real symmetric, the Laplacian case)
/// into the Pauli basis.  The matrix dimension must be a power of two.
/// Terms with |coefficient| ≤ \p tolerance are dropped.
PauliSum pauli_decompose(const RealMatrix& hamiltonian,
                         double tolerance = 1e-12);

/// Same for complex Hermitian input.
PauliSum pauli_decompose(const ComplexMatrix& hamiltonian,
                         double tolerance = 1e-12);

/// Sparse-aware decomposition of a real symmetric CSR matrix — the
/// Trotter-on-CSR path of the sparse operator spine.  Every Pauli string P
/// with flip mask f (the X/Y positions) only sees entries H(l, l⊕f), i.e.
/// the structural diagonal r⊕c = f, so the decomposition iterates over the
/// *distinct flip patterns present in the sparsity structure* instead of
/// enumerating all 4^n strings: for each such f the 2^n coefficients over
/// the I/Z–X/Y letter choices are one fast Walsh–Hadamard transform of the
/// length-2^n entry vector.  Cost O(#patterns · n · 2^n) versus the dense
/// path's O(4^n) — for a k-simplex Laplacian the pattern count is bounded
/// by the distinct index-XORs of its nonzeros, far below 2^n.  Output terms
/// (order and values, up to summation rounding) match the dense overload on
/// the densified matrix.
PauliSum pauli_decompose(const SparseMatrix& hamiltonian,
                         double tolerance = 1e-12);

}  // namespace qtda
