#include "quantum/executor.hpp"

#include "common/error.hpp"

namespace qtda {

namespace plan_accounting {

namespace {

/// Counter pairs in CompiledOp::Kind enum order; resolved once, cached for
/// the process lifetime (registry entries are never destroyed).
struct KindCounters {
  telemetry::Counter* ns[kNumKinds];
  telemetry::Counter* ops[kNumKinds];
};

const KindCounters& kind_counters() {
  static const KindCounters counters = [] {
    static const char* const kKindNames[kNumKinds] = {
        "single_qubit", "block", "diagonal", "operator"};
    KindCounters out;
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      out.ns[k] = &telemetry::registry().counter(std::string("exec.ns.") +
                                                 kKindNames[k]);
      out.ops[k] = &telemetry::registry().counter(std::string("exec.ops.") +
                                                  kKindNames[k]);
    }
    return out;
  }();
  return counters;
}

}  // namespace

void record(const std::array<std::uint64_t, kNumKinds>& ns,
            const std::array<std::uint64_t, kNumKinds>& ops) {
  const KindCounters& counters = kind_counters();
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    if (ops[k] == 0) continue;
    counters.ns[k]->add(ns[k]);
    counters.ops[k]->add(ops[k]);
  }
}

}  // namespace plan_accounting

Statevector run_circuit(const Circuit& circuit) {
  Statevector state(circuit.num_qubits());
  state.apply_circuit(circuit);
  return state;
}

Statevector run_circuit_from_basis(const Circuit& circuit,
                                   std::uint64_t initial_state) {
  Statevector state(circuit.num_qubits());
  state.set_basis_state(initial_state);
  state.apply_circuit(circuit);
  return state;
}

std::vector<std::uint64_t> sample_circuit(
    const Circuit& circuit, const std::vector<std::size_t>& measured_qubits,
    std::size_t shots, Rng& rng) {
  const Statevector state = run_circuit(circuit);
  return state.sample_counts(measured_qubits, shots, rng);
}

std::vector<std::uint64_t> sample_circuit_noisy(
    const Circuit& circuit, const std::vector<std::size_t>& measured_qubits,
    std::size_t shots, const NoiseModel& noise, Rng& rng) {
  if (noise.is_noiseless())
    return sample_circuit(circuit, measured_qubits, shots, rng);
  QTDA_REQUIRE(!measured_qubits.empty(), "no measured qubits");
  std::vector<std::uint64_t> counts(std::uint64_t{1} << measured_qubits.size(),
                                    0);
  for (std::size_t s = 0; s < shots; ++s) {
    const Statevector state = run_noisy_trajectory(circuit, noise, rng);
    const auto one = state.sample_counts(measured_qubits, 1, rng);
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += one[i];
  }
  return counts;
}

}  // namespace qtda
