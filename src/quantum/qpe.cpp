#include "quantum/qpe.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quantum/qft.hpp"
#include "quantum/types.hpp"

namespace qtda {

std::vector<std::size_t> QpeLayout::precision_wires() const {
  std::vector<std::size_t> wires(precision_qubits);
  for (std::size_t i = 0; i < precision_qubits; ++i) wires[i] = i;
  return wires;
}

std::vector<std::size_t> QpeLayout::system_wires() const {
  std::vector<std::size_t> wires(system_qubits);
  for (std::size_t i = 0; i < system_qubits; ++i)
    wires[i] = precision_qubits + i;
  return wires;
}

std::vector<std::size_t> QpeLayout::ancilla_wires() const {
  std::vector<std::size_t> wires(ancilla_qubits);
  for (std::size_t i = 0; i < ancilla_qubits; ++i)
    wires[i] = precision_qubits + system_qubits + i;
  return wires;
}

Circuit build_qpe_circuit(const QpeLayout& layout,
                          const ControlledPowerAppender& append_power) {
  QTDA_REQUIRE(layout.precision_qubits >= 1, "QPE needs precision qubits");
  QTDA_REQUIRE(layout.system_qubits >= 1, "QPE needs a system register");
  Circuit circuit(layout.total());
  const std::size_t t = layout.precision_qubits;

  for (std::size_t j = 0; j < t; ++j) circuit.h(j);
  // Precision wire j (MSB-first) carries weight 2^{t−1−j}.
  for (std::size_t j = 0; j < t; ++j) {
    const std::uint64_t power = std::uint64_t{1} << (t - 1 - j);
    append_power(circuit, power, j);
  }
  append_inverse_qft(circuit, layout.precision_wires());
  return circuit;
}

Circuit build_qpe_circuit_dense(
    const QpeLayout& layout,
    const std::function<ComplexMatrix(std::uint64_t)>& unitary_power) {
  const std::vector<std::size_t> system = layout.system_wires();
  return build_qpe_circuit(
      layout, [&](Circuit& circuit, std::uint64_t power, std::size_t control) {
        circuit.unitary(unitary_power(power), system, {control});
      });
}

Circuit build_qpe_circuit_sparse(
    const QpeLayout& layout,
    const std::function<std::shared_ptr<const LinearOperator>(std::uint64_t)>&
        operator_power) {
  const std::vector<std::size_t> system = layout.system_wires();
  return build_qpe_circuit(
      layout, [&](Circuit& circuit, std::uint64_t power, std::size_t control) {
        circuit.operator_gate(operator_power(power), system, {control});
      });
}

double qpe_outcome_probability(double theta, std::uint64_t m, std::size_t t) {
  QTDA_REQUIRE(t >= 1 && t <= 62, "precision qubit count out of range");
  const double big_t = static_cast<double>(std::uint64_t{1} << t);
  QTDA_REQUIRE(m < static_cast<std::uint64_t>(big_t), "outcome out of range");
  // Δ = θ − m/2^t reduced to (−1/2, 1/2]; the kernel is 1-periodic.
  double delta = theta - static_cast<double>(m) / big_t;
  delta -= std::round(delta);
  if (std::abs(delta) < 1e-15) return 1.0;
  const double numerator = std::sin(kPi * big_t * delta);
  const double denominator = std::sin(kPi * delta);
  const double amplitude = numerator / (big_t * denominator);
  return amplitude * amplitude;
}

double qpe_zero_probability(double theta, std::size_t t) {
  return qpe_outcome_probability(theta, 0, t);
}

}  // namespace qtda
