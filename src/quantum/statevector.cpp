#include "quantum/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/register_layout.hpp"

namespace qtda {

namespace {

/// Below this state size the OpenMP fork/join overhead dominates
/// (measured: parallel dispatch on 2^14-amplitude states made the exact
/// density-matrix ablation ~10x slower than serial kernels).  Shared with
/// the sharded engine (statevector.hpp) so both backends pick identical
/// ordered-reduction chunkings — the root of their bit-identical marginals.
constexpr std::uint64_t kParallelThreshold = kStatevectorParallelThreshold;

/// Reusable per-thread buffers for the non-plan entry points: apply_unitary
/// and apply_operator used to allocate their gather/scatter scratch on every
/// call (and every OpenMP worker allocated its own per gate); these persist
/// for the thread's lifetime instead.  Plan execution uses the plan's own
/// arena, not these.
std::vector<Amplitude>& thread_block_scratch() {
  thread_local std::vector<Amplitude> buffer;
  return buffer;
}

std::vector<Amplitude>& thread_packed_in() {
  thread_local std::vector<Amplitude> buffer;
  return buffer;
}

std::vector<Amplitude>& thread_packed_out() {
  thread_local std::vector<Amplitude> buffer;
  return buffer;
}

}  // namespace

Statevector::Statevector(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(std::uint64_t{1} << num_qubits, Amplitude{0.0, 0.0}) {
  QTDA_REQUIRE(num_qubits > 0 && num_qubits <= 30,
               "statevector width " << num_qubits << " unsupported");
  amplitudes_[0] = Amplitude{1.0, 0.0};
}

Amplitude Statevector::amplitude(std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return amplitudes_[index];
}

void Statevector::set_basis_state(std::uint64_t index) {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  std::fill(amplitudes_.begin(), amplitudes_.end(), Amplitude{});
  amplitudes_[index] = Amplitude{1.0, 0.0};
}

void Statevector::set_amplitudes(std::vector<Amplitude> amplitudes) {
  QTDA_REQUIRE(amplitudes.size() == dimension(),
               "amplitude vector length mismatch");
  amplitudes_ = std::move(amplitudes);
}

void Statevector::apply_gate(const Gate& gate) {
  if (gate.kind == GateKind::kUnitary) {
    apply_unitary(gate.matrix, gate.targets, gate.controls);
  } else if (gate.kind == GateKind::kOperator) {
    apply_operator(*gate.op, gate.targets, gate.controls);
  } else {
    apply_single_qubit(gate.single_qubit_matrix(), gate.targets.at(0),
                       gate.controls);
  }
}

void Statevector::apply_circuit(const Circuit& circuit) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits_,
               "circuit width " << circuit.num_qubits()
                                << " does not match state width "
                                << num_qubits_);
  for (const Gate& gate : circuit.gates()) apply_gate(gate);
  if (circuit.global_phase() != 0.0) apply_global_phase(circuit.global_phase());
}

void Statevector::apply_single_qubit(const ComplexMatrix& u,
                                     std::size_t target,
                                     const std::vector<std::size_t>& controls) {
  QTDA_REQUIRE(u.rows() == 2 && u.cols() == 2, "expected a 2x2 matrix");
  QTDA_REQUIRE(target < num_qubits_, "target out of range");
  const std::uint64_t mask = qubit_mask(target, num_qubits_);
  std::uint64_t cmask = 0;
  for (std::size_t c : controls) {
    QTDA_REQUIRE(c < num_qubits_ && c != target, "bad control qubit");
    cmask |= qubit_mask(c, num_qubits_);
  }
  single_qubit_kernel(u(0, 0), u(0, 1), u(1, 0), u(1, 1), mask, cmask);
}

void Statevector::single_qubit_kernel(Amplitude u00, Amplitude u01,
                                      Amplitude u10, Amplitude u11,
                                      std::uint64_t mask,
                                      std::uint64_t cmask) {
  const std::uint64_t dim = dimension();
  Amplitude* amp = amplitudes_.data();

  const auto body = [&](std::uint64_t i0) {
    if ((i0 & cmask) != cmask) return;
    const std::uint64_t i1 = i0 | mask;
    const Amplitude a0 = amp[i0];
    const Amplitude a1 = amp[i1];
    amp[i0] = u00 * a0 + u01 * a1;
    amp[i1] = u10 * a0 + u11 * a1;
  };

  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
      const auto idx = static_cast<std::uint64_t>(i);
      if ((idx & mask) == 0) body(idx);
    }
  } else {
    for (std::uint64_t block = 0; block < dim; block += 2 * mask) {
      for (std::uint64_t i = block; i < block + mask; ++i) body(i);
    }
  }
}

void Statevector::apply_unitary(const ComplexMatrix& u,
                                const std::vector<std::size_t>& targets,
                                const std::vector<std::size_t>& controls) {
  if (targets.size() == 1) {
    apply_single_qubit(u, targets[0], controls);
    return;
  }
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m <= 20, "dense unitary over too many targets");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(u.rows() == block && u.cols() == block,
               "unitary shape does not match target count");
  const TargetLayout layout =
      build_target_layout(targets, controls, num_qubits_);
  block_kernel(u, layout.tmask, layout.cmask,
               block_offsets(layout.local_bit_mask), thread_block_scratch());
}

void Statevector::block_kernel(const ComplexMatrix& u, std::uint64_t tmask,
                               std::uint64_t cmask,
                               const std::vector<std::uint64_t>& offset,
                               std::vector<Amplitude>& scratch) {
  const std::uint64_t block = offset.size();
  const std::uint64_t dim = dimension();
  Amplitude* amp = amplitudes_.data();

  const auto body = [&](std::uint64_t base, std::vector<Amplitude>& buf) {
    for (std::uint64_t l = 0; l < block; ++l) buf[l] = amp[base | offset[l]];
    for (std::uint64_t r = 0; r < block; ++r) {
      Amplitude acc{};
      const Amplitude* urow = u.row(r);
      for (std::uint64_t c = 0; c < block; ++c) acc += urow[c] * buf[c];
      amp[base | offset[r]] = acc;
    }
  };

  if (dim >= kParallelThreshold && block <= 64) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel
    {
      // Per-OpenMP-thread reusable buffer (persists across gates).
      std::vector<Amplitude>& local = thread_block_scratch();
      local.resize(block);
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
        const auto idx = static_cast<std::uint64_t>(i);
        if ((idx & tmask) == 0 && (idx & cmask) == cmask) body(idx, local);
      }
    }
    return;
#endif
  }
  scratch.resize(block);
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & tmask) == 0 && (i & cmask) == cmask) body(i, scratch);
  }
}

void Statevector::apply_operator(const LinearOperator& op,
                                 const std::vector<std::size_t>& targets,
                                 const std::vector<std::size_t>& controls) {
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m >= 1 && m <= num_qubits_, "bad operator target count");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(op.dimension() == block,
               "operator dimension " << op.dimension() << " does not match "
                                     << m << " targets");
  const TargetLayout layout =
      build_target_layout(targets, controls, num_qubits_);

  // Blocks are contiguous slices exactly when the targets are the trailing
  // wires in order (the sampled-basis QPE layout) — then gather/scatter is
  // a memcpy.
  const bool contiguous = targets_are_trailing(targets, num_qubits_);
  std::vector<std::uint64_t> offset;
  if (!contiguous) offset = block_offsets(layout.local_bit_mask);

  const std::vector<std::uint64_t> bases =
      enumerate_block_bases(dimension(), layout.tmask, layout.cmask);
  operator_kernel(op, contiguous, offset, bases, thread_packed_in(),
                  thread_packed_out());
  // Reuse is worth keeping only at moderate size: the batch buffers grow to
  // the ~64 MB batch cap on large states, and a thread_local would pin that
  // for the thread's lifetime.  (Plan execution bounds the same buffers to
  // the plan's lifetime via its arena instead.)
  constexpr std::size_t kRetainedAmplitudeCap = std::size_t{1} << 18;
  if (thread_packed_in().capacity() > kRetainedAmplitudeCap) {
    thread_packed_in() = {};
    thread_packed_out() = {};
  }
}

void Statevector::operator_kernel(const LinearOperator& op, bool contiguous,
                                  const std::vector<std::uint64_t>& offset,
                                  const std::vector<std::uint64_t>& bases,
                                  std::vector<Amplitude>& packed_in,
                                  std::vector<Amplitude>& packed_out) {
  const std::uint64_t block = op.dimension();
  // Batch blocks through packed buffers so the operator can amortize setup
  // and parallelize across blocks; the batch cap bounds the extra memory at
  // ~2×64 MB regardless of register width.
  constexpr std::uint64_t kBatchAmplitudeCap = std::uint64_t{1} << 22;
  const std::size_t blocks_per_batch = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, kBatchAmplitudeCap / block));
  Amplitude* amp = amplitudes_.data();
  for (std::size_t first = 0; first < bases.size();
       first += blocks_per_batch) {
    const std::size_t count =
        std::min(blocks_per_batch, bases.size() - first);
    packed_in.resize(count * block);
    packed_out.resize(count * block);
    for (std::size_t b = 0; b < count; ++b) {
      const std::uint64_t base = bases[first + b];
      if (contiguous) {
        std::memcpy(packed_in.data() + b * block, amp + base,
                    block * sizeof(Amplitude));
      } else {
        for (std::uint64_t l = 0; l < block; ++l)
          packed_in[b * block + l] = amp[base | offset[l]];
      }
    }
    op.apply_batch(packed_in.data(), packed_out.data(), count);
    for (std::size_t b = 0; b < count; ++b) {
      const std::uint64_t base = bases[first + b];
      if (contiguous) {
        std::memcpy(amp + base, packed_out.data() + b * block,
                    block * sizeof(Amplitude));
      } else {
        for (std::uint64_t l = 0; l < block; ++l)
          amp[base | offset[l]] = packed_out[b * block + l];
      }
    }
  }
}

void Statevector::two_qubit_kernel(const ComplexMatrix& u,
                                   std::uint64_t mask_high,
                                   std::uint64_t mask_low) {
  // mask_high carries local bit 1 (targets[0]), mask_low local bit 0
  // (targets[1]) — the gather order of block_kernel, so results match the
  // generic path bit for bit.
  const std::uint64_t m_small = std::min(mask_high, mask_low);
  const std::uint64_t m_big = std::max(mask_high, mask_low);
  const std::uint64_t dim = dimension();
  Amplitude* amp = amplitudes_.data();
  const Amplitude* u0 = u.row(0);
  const Amplitude* u1 = u.row(1);
  const Amplitude* u2 = u.row(2);
  const Amplitude* u3 = u.row(3);

  const auto body = [&](std::uint64_t i) {
    const std::uint64_t i0 = i;
    const std::uint64_t i1 = i | mask_low;
    const std::uint64_t i2 = i | mask_high;
    const std::uint64_t i3 = i | mask_high | mask_low;
    const Amplitude a0 = amp[i0];
    const Amplitude a1 = amp[i1];
    const Amplitude a2 = amp[i2];
    const Amplitude a3 = amp[i3];
    // Accumulation order identical to block_kernel's row loop.
    Amplitude acc0{};
    acc0 += u0[0] * a0; acc0 += u0[1] * a1; acc0 += u0[2] * a2; acc0 += u0[3] * a3;
    Amplitude acc1{};
    acc1 += u1[0] * a0; acc1 += u1[1] * a1; acc1 += u1[2] * a2; acc1 += u1[3] * a3;
    Amplitude acc2{};
    acc2 += u2[0] * a0; acc2 += u2[1] * a1; acc2 += u2[2] * a2; acc2 += u2[3] * a3;
    Amplitude acc3{};
    acc3 += u3[0] * a0; acc3 += u3[1] * a1; acc3 += u3[2] * a2; acc3 += u3[3] * a3;
    amp[i0] = acc0;
    amp[i1] = acc1;
    amp[i2] = acc2;
    amp[i3] = acc3;
  };

  // Nested strided loops keep the innermost run contiguous (length
  // m_small), which is what lets the compiler pipeline the complex
  // arithmetic — a flat compressed-index loop ran ~2× slower.
  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel for schedule(static)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(dim >> 2); ++s) {
      // Expand the compressed counter: insert zeros at the two positions.
      std::uint64_t base = ((static_cast<std::uint64_t>(s) & ~(m_small - 1))
                            << 1) |
                           (static_cast<std::uint64_t>(s) & (m_small - 1));
      base = ((base & ~(m_big - 1)) << 1) | (base & (m_big - 1));
      body(base);
    }
    return;
#endif
  }
  for (std::uint64_t a = 0; a < dim; a += m_big << 1) {
    for (std::uint64_t b = a; b < a + m_big; b += m_small << 1) {
      for (std::uint64_t i = b; i < b + m_small; ++i) body(i);
    }
  }
}

void Statevector::diagonal_kernel(const std::vector<Amplitude>& diag,
                                  const DiagonalExtract& extract) {
  // One multiply per amplitude, however many gates the diagonal absorbed:
  // the big fusion win of the controlled-phase-dominated QPE networks.
  const std::uint64_t dim = dimension();
  Amplitude* amp = amplitudes_.data();
  const Amplitude* table = diag.data();
  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
    constexpr std::int64_t kChunks = 64;
    const std::uint64_t span = (dim + kChunks - 1) / kChunks;
#pragma omp parallel for schedule(static)
    for (std::int64_t chunk = 0; chunk < kChunks; ++chunk) {
      const std::uint64_t lo = static_cast<std::uint64_t>(chunk) * span;
      if (lo >= dim) continue;
      const std::uint64_t hi = std::min(dim, lo + span);
      apply_diagonal_run(amp + lo, lo, hi - lo, extract, table);
    }
    return;
#endif
  }
  apply_diagonal_run(amp, 0, dim, extract, table);
}

void Statevector::apply_plan(const ExecutionPlan& plan) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits_,
               "plan width " << plan.num_qubits()
                             << " does not match state width " << num_qubits_);
  ExecutionScratch& scratch = plan.scratch();
  for (const CompiledOp& op : plan.ops()) apply_plan_op(op, scratch);
  if (plan.global_phase() != 0.0) apply_global_phase(plan.global_phase());
}

void Statevector::apply_plan_op(const CompiledOp& op,
                                ExecutionScratch& scratch) {
  switch (op.kind) {
    case CompiledOp::Kind::kSingleQubit:
      single_qubit_kernel(op.u00, op.u01, op.u10, op.u11, op.tmask, op.cmask);
      break;
    case CompiledOp::Kind::kBlock:
      if (op.offsets.size() == 4 && op.cmask == 0) {
        two_qubit_kernel(op.gate.matrix, op.offsets[2], op.offsets[1]);
      } else {
        block_kernel(op.gate.matrix, op.tmask, op.cmask, op.offsets,
                     scratch.block);
      }
      break;
    case CompiledOp::Kind::kDiagonal:
      diagonal_kernel(op.diagonal, op.diag_extract);
      break;
    case CompiledOp::Kind::kOperator:
      operator_kernel(*op.gate.op, op.contiguous, op.offsets, op.bases,
                      scratch.packed_in, scratch.packed_out);
      break;
  }
}

void Statevector::apply_global_phase(double phi) {
  const Amplitude factor{std::cos(phi), std::sin(phi)};
  for (Amplitude& a : amplitudes_) a *= factor;
}

double Statevector::probability(std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return std::norm(amplitudes_[index]);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amplitudes_.size());
  parallel_for_chunked(
      0, amplitudes_.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          p[i] = std::norm(amplitudes_[i]);
      },
      kParallelThreshold);
  return p;
}

std::vector<double> Statevector::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  const std::vector<std::uint64_t> bit_mask =
      marginal_bit_masks(qubits, num_qubits_);
  const std::size_t m = qubits.size();
  const std::uint64_t out_dim = std::uint64_t{1} << m;
  // Chunk-local histograms merged in index order: the sampling cumulative
  // sums downstream need run-to-run reproducible totals.
  std::vector<double> marginal(out_dim, 0.0);
  parallel_reduce_ordered(
      0, static_cast<std::size_t>(dimension()), marginal,
      std::vector<double>(out_dim, 0.0),
      [&](std::size_t i, std::vector<double>& into) {
        const double p = std::norm(amplitudes_[i]);
        if (p == 0.0) return;
        std::uint64_t outcome = 0;
        for (std::size_t j = 0; j < m; ++j)
          if (i & bit_mask[j]) outcome |= std::uint64_t{1} << j;
        into[outcome] += p;
      },
      [out_dim](std::vector<double>& total, const std::vector<double>& part) {
        for (std::uint64_t o = 0; o < out_dim; ++o) total[o] += part[o];
      },
      kParallelThreshold);
  return marginal;
}

std::vector<std::uint64_t> Statevector::sample_counts(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return multinomial_sample(marginal_probabilities(qubits), shots, rng);
}

double Statevector::norm_squared() const {
  double s = 0.0;
  parallel_reduce_ordered(
      0, static_cast<std::size_t>(dimension()), s, 0.0,
      [&](std::size_t i, double& acc) { acc += std::norm(amplitudes_[i]); },
      [](double& total, double part) { total += part; }, kParallelThreshold);
  return s;
}

void Statevector::normalize() {
  const double n2 = norm_squared();
  QTDA_REQUIRE(n2 > 0.0, "cannot normalize the zero vector");
  const double inv = 1.0 / std::sqrt(n2);
  for (Amplitude& a : amplitudes_) a *= inv;
}

Amplitude Statevector::inner_product(const Statevector& other) const {
  QTDA_REQUIRE(other.num_qubits() == num_qubits_,
               "inner product width mismatch");
  Amplitude acc{};
  for (std::uint64_t i = 0; i < dimension(); ++i)
    acc += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  return acc;
}

std::vector<std::uint64_t> multinomial_sample(
    const std::vector<double>& distribution, std::size_t shots, Rng& rng) {
  QTDA_REQUIRE(!distribution.empty(), "empty distribution");
  std::vector<double> cumulative(distribution.size());
  double total = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    QTDA_REQUIRE(distribution[i] >= -1e-12,
                 "negative probability " << distribution[i]);
    total += std::max(distribution[i], 0.0);
    cumulative[i] = total;
  }
  QTDA_REQUIRE(total > 0.0, "distribution sums to zero");
  std::vector<std::uint64_t> counts(distribution.size(), 0);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const std::size_t idx =
        std::min<std::size_t>(std::distance(cumulative.begin(), it),
                              distribution.size() - 1);
    ++counts[idx];
  }
  return counts;
}

}  // namespace qtda
