#include "quantum/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

namespace {

/// Below this state size the OpenMP fork/join overhead dominates
/// (measured: parallel dispatch on 2^14-amplitude states made the exact
/// density-matrix ablation ~10x slower than serial kernels).
constexpr std::uint64_t kParallelThreshold = 1ULL << 17;

}  // namespace

Statevector::Statevector(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(std::uint64_t{1} << num_qubits, Amplitude{0.0, 0.0}) {
  QTDA_REQUIRE(num_qubits > 0 && num_qubits <= 30,
               "statevector width " << num_qubits << " unsupported");
  amplitudes_[0] = Amplitude{1.0, 0.0};
}

Amplitude Statevector::amplitude(std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return amplitudes_[index];
}

void Statevector::set_basis_state(std::uint64_t index) {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  std::fill(amplitudes_.begin(), amplitudes_.end(), Amplitude{});
  amplitudes_[index] = Amplitude{1.0, 0.0};
}

void Statevector::set_amplitudes(std::vector<Amplitude> amplitudes) {
  QTDA_REQUIRE(amplitudes.size() == dimension(),
               "amplitude vector length mismatch");
  amplitudes_ = std::move(amplitudes);
}

void Statevector::apply_gate(const Gate& gate) {
  if (gate.kind == GateKind::kUnitary) {
    apply_unitary(gate.matrix, gate.targets, gate.controls);
  } else {
    apply_single_qubit(gate.single_qubit_matrix(), gate.targets.at(0),
                       gate.controls);
  }
}

void Statevector::apply_circuit(const Circuit& circuit) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits_,
               "circuit width " << circuit.num_qubits()
                                << " does not match state width "
                                << num_qubits_);
  for (const Gate& gate : circuit.gates()) apply_gate(gate);
  if (circuit.global_phase() != 0.0) apply_global_phase(circuit.global_phase());
}

void Statevector::apply_single_qubit(const ComplexMatrix& u,
                                     std::size_t target,
                                     const std::vector<std::size_t>& controls) {
  QTDA_REQUIRE(u.rows() == 2 && u.cols() == 2, "expected a 2x2 matrix");
  QTDA_REQUIRE(target < num_qubits_, "target out of range");
  const std::uint64_t mask = qubit_mask(target, num_qubits_);
  std::uint64_t cmask = 0;
  for (std::size_t c : controls) {
    QTDA_REQUIRE(c < num_qubits_ && c != target, "bad control qubit");
    cmask |= qubit_mask(c, num_qubits_);
  }
  const Amplitude u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const std::uint64_t dim = dimension();
  Amplitude* amp = amplitudes_.data();

  const auto body = [&](std::uint64_t i0) {
    if ((i0 & cmask) != cmask) return;
    const std::uint64_t i1 = i0 | mask;
    const Amplitude a0 = amp[i0];
    const Amplitude a1 = amp[i1];
    amp[i0] = u00 * a0 + u01 * a1;
    amp[i1] = u10 * a0 + u11 * a1;
  };

  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
      const auto idx = static_cast<std::uint64_t>(i);
      if ((idx & mask) == 0) body(idx);
    }
  } else {
    for (std::uint64_t block = 0; block < dim; block += 2 * mask) {
      for (std::uint64_t i = block; i < block + mask; ++i) body(i);
    }
  }
}

void Statevector::apply_unitary(const ComplexMatrix& u,
                                const std::vector<std::size_t>& targets,
                                const std::vector<std::size_t>& controls) {
  if (targets.size() == 1) {
    apply_single_qubit(u, targets[0], controls);
    return;
  }
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m <= 20, "dense unitary over too many targets");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(u.rows() == block && u.cols() == block,
               "unitary shape does not match target count");
  std::uint64_t tmask = 0;
  // Local bit j (LSB-first) is targets[m−1−j]: the first listed target is
  // the most significant local bit, mirroring the global convention.
  std::vector<std::uint64_t> local_bit_mask(m);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t q = targets[m - 1 - j];
    QTDA_REQUIRE(q < num_qubits_, "target out of range");
    local_bit_mask[j] = qubit_mask(q, num_qubits_);
    QTDA_REQUIRE((tmask & local_bit_mask[j]) == 0, "duplicate target");
    tmask |= local_bit_mask[j];
  }
  std::uint64_t cmask = 0;
  for (std::size_t c : controls) {
    QTDA_REQUIRE(c < num_qubits_, "control out of range");
    const std::uint64_t bit = qubit_mask(c, num_qubits_);
    QTDA_REQUIRE((bit & tmask) == 0, "control overlaps target");
    cmask |= bit;
  }
  // Global offsets of each local index.
  std::vector<std::uint64_t> offset(block);
  for (std::uint64_t l = 0; l < block; ++l) {
    std::uint64_t off = 0;
    for (std::size_t j = 0; j < m; ++j)
      if ((l >> j) & 1ULL) off |= local_bit_mask[j];
    offset[l] = off;
  }

  const std::uint64_t dim = dimension();
  Amplitude* amp = amplitudes_.data();
  std::vector<Amplitude> scratch(block);

  const auto body = [&](std::uint64_t base, std::vector<Amplitude>& buf) {
    for (std::uint64_t l = 0; l < block; ++l) buf[l] = amp[base | offset[l]];
    for (std::uint64_t r = 0; r < block; ++r) {
      Amplitude acc{};
      const Amplitude* urow = u.row(r);
      for (std::uint64_t c = 0; c < block; ++c) acc += urow[c] * buf[c];
      amp[base | offset[r]] = acc;
    }
  };

  if (dim >= kParallelThreshold && block <= 64) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel
    {
      std::vector<Amplitude> local(block);
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
        const auto idx = static_cast<std::uint64_t>(i);
        if ((idx & tmask) == 0 && (idx & cmask) == cmask) body(idx, local);
      }
    }
    return;
#endif
  }
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & tmask) == 0 && (i & cmask) == cmask) body(i, scratch);
  }
}

void Statevector::apply_global_phase(double phi) {
  const Amplitude factor{std::cos(phi), std::sin(phi)};
  for (Amplitude& a : amplitudes_) a *= factor;
}

double Statevector::probability(std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return std::norm(amplitudes_[index]);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amplitudes_.size());
  for (std::size_t i = 0; i < amplitudes_.size(); ++i)
    p[i] = std::norm(amplitudes_[i]);
  return p;
}

std::vector<double> Statevector::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  QTDA_REQUIRE(!qubits.empty(), "marginal over an empty qubit set");
  const std::size_t m = qubits.size();
  QTDA_REQUIRE(m <= 26, "marginal outcome space too large");
  std::vector<std::uint64_t> bit_mask(m);
  for (std::size_t j = 0; j < m; ++j) {
    QTDA_REQUIRE(qubits[j] < num_qubits_, "qubit out of range");
    // Outcome bit j (LSB-first) is qubits[m−1−j] (MSB-first listing).
    bit_mask[j] = qubit_mask(qubits[m - 1 - j], num_qubits_);
  }
  std::vector<double> marginal(std::uint64_t{1} << m, 0.0);
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    const double p = std::norm(amplitudes_[i]);
    if (p == 0.0) continue;
    std::uint64_t outcome = 0;
    for (std::size_t j = 0; j < m; ++j)
      if (i & bit_mask[j]) outcome |= std::uint64_t{1} << j;
    marginal[outcome] += p;
  }
  return marginal;
}

std::vector<std::uint64_t> Statevector::sample_counts(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return multinomial_sample(marginal_probabilities(qubits), shots, rng);
}

double Statevector::norm_squared() const {
  double s = 0.0;
  for (const Amplitude& a : amplitudes_) s += std::norm(a);
  return s;
}

void Statevector::normalize() {
  const double n2 = norm_squared();
  QTDA_REQUIRE(n2 > 0.0, "cannot normalize the zero vector");
  const double inv = 1.0 / std::sqrt(n2);
  for (Amplitude& a : amplitudes_) a *= inv;
}

Amplitude Statevector::inner_product(const Statevector& other) const {
  QTDA_REQUIRE(other.num_qubits() == num_qubits_,
               "inner product width mismatch");
  Amplitude acc{};
  for (std::uint64_t i = 0; i < dimension(); ++i)
    acc += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  return acc;
}

std::vector<std::uint64_t> multinomial_sample(
    const std::vector<double>& distribution, std::size_t shots, Rng& rng) {
  QTDA_REQUIRE(!distribution.empty(), "empty distribution");
  std::vector<double> cumulative(distribution.size());
  double total = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    QTDA_REQUIRE(distribution[i] >= -1e-12,
                 "negative probability " << distribution[i]);
    total += std::max(distribution[i], 0.0);
    cumulative[i] = total;
  }
  QTDA_REQUIRE(total > 0.0, "distribution sums to zero");
  std::vector<std::uint64_t> counts(distribution.size(), 0);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const std::size_t idx =
        std::min<std::size_t>(std::distance(cumulative.begin(), it),
                              distribution.size() - 1);
    ++counts[idx];
  }
  return counts;
}

}  // namespace qtda
