#include "quantum/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/executor.hpp"
#include "quantum/register_layout.hpp"
#include "quantum/simd_kernels.hpp"

namespace qtda {

namespace {

/// Below this state size the OpenMP fork/join overhead dominates
/// (measured: parallel dispatch on 2^14-amplitude states made the exact
/// density-matrix ablation ~10x slower than serial kernels).  Shared with
/// the sharded engine (statevector.hpp) so both backends pick identical
/// ordered-reduction chunkings — the root of their bit-identical marginals.
constexpr std::uint64_t kParallelThreshold = kStatevectorParallelThreshold;

/// Contiguous runs shorter than this stay on the scalar pair/four-point
/// sweeps: a sub-vector-width run per dispatch call costs more than it
/// saves.  Safe to mix freely with the vector paths — they are bitwise
/// identical by construction.
constexpr std::uint64_t kMinSimdRun = 4;

/// Reusable per-thread buffers for the non-plan entry points: apply_unitary
/// and apply_operator used to allocate their gather/scatter scratch on every
/// call (and every OpenMP worker allocated its own per gate); these persist
/// for the thread's lifetime.  Plan execution uses the plan's own arena, not
/// these.  Templated over the amplitude type: each engine precision owns its
/// buffers.
template <typename C>
std::vector<C>& thread_block_scratch() {
  thread_local std::vector<C> buffer;
  return buffer;
}

template <typename C>
std::vector<C>& thread_block_out() {
  thread_local std::vector<C> buffer;
  return buffer;
}

template <typename C>
std::vector<C>& thread_packed_in() {
  thread_local std::vector<C> buffer;
  return buffer;
}

template <typename C>
std::vector<C>& thread_packed_out() {
  thread_local std::vector<C> buffer;
  return buffer;
}

template <typename C>
std::vector<C>& thread_matrix_scratch() {
  thread_local std::vector<C> buffer;
  return buffer;
}

/// Row-major matrix entries at the engine's precision: the double engine
/// reads the ComplexMatrix storage directly (no copy — and no change to the
/// historical arithmetic); the float engine narrows into a reusable scratch.
template <typename Real>
const std::complex<Real>* cast_matrix(const ComplexMatrix& u,
                                      std::vector<std::complex<Real>>& scratch);

template <>
const Amplitude* cast_matrix<double>(const ComplexMatrix& u,
                                     std::vector<Amplitude>&) {
  return u.data();
}

template <>
const std::complex<float>* cast_matrix<float>(
    const ComplexMatrix& u, std::vector<std::complex<float>>& scratch) {
  const std::size_t n = u.rows() * u.cols();
  scratch.resize(n);
  const Amplitude* src = u.data();
  for (std::size_t i = 0; i < n; ++i)
    scratch[i] = std::complex<float>(static_cast<float>(src[i].real()),
                                     static_cast<float>(src[i].imag()));
  return scratch.data();
}

/// Batch apply at the engine's precision (LinearOperator's native rail for
/// double, its complex64 rail for float).
inline void operator_apply_batch(const LinearOperator& op, const Amplitude* in,
                                 Amplitude* out, std::size_t count) {
  op.apply_batch(in, out, count);
}
inline void operator_apply_batch(const LinearOperator& op,
                                 const std::complex<float>* in,
                                 std::complex<float>* out, std::size_t count) {
  op.apply_batch_f32(in, out, count);
}

}  // namespace

template <typename Real>
BasicStatevector<Real>::BasicStatevector(std::size_t num_qubits)
    : num_qubits_(num_qubits),
      amplitudes_(std::uint64_t{1} << num_qubits, C{}) {
  QTDA_REQUIRE(num_qubits > 0 && num_qubits <= 30,
               "statevector width " << num_qubits << " unsupported");
  amplitudes_[0] = C{Real{1}, Real{0}};
}

template <typename Real>
typename BasicStatevector<Real>::C BasicStatevector<Real>::amplitude(
    std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return amplitudes_[index];
}

template <typename Real>
void BasicStatevector<Real>::set_basis_state(std::uint64_t index) {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  std::fill(amplitudes_.begin(), amplitudes_.end(), C{});
  amplitudes_[index] = C{Real{1}, Real{0}};
}

template <typename Real>
void BasicStatevector<Real>::set_amplitudes(std::vector<C> amplitudes) {
  QTDA_REQUIRE(amplitudes.size() == dimension(),
               "amplitude vector length mismatch");
  amplitudes_ = std::move(amplitudes);
}

template <typename Real>
void BasicStatevector<Real>::apply_gate(const Gate& gate) {
  if (gate.kind == GateKind::kUnitary) {
    apply_unitary(gate.matrix, gate.targets, gate.controls);
  } else if (gate.kind == GateKind::kOperator) {
    apply_operator(*gate.op, gate.targets, gate.controls);
  } else {
    apply_single_qubit(gate.single_qubit_matrix(), gate.targets.at(0),
                       gate.controls);
  }
}

template <typename Real>
void BasicStatevector<Real>::apply_circuit(const Circuit& circuit) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits_,
               "circuit width " << circuit.num_qubits()
                                << " does not match state width "
                                << num_qubits_);
  for (const Gate& gate : circuit.gates()) apply_gate(gate);
  if (circuit.global_phase() != 0.0) apply_global_phase(circuit.global_phase());
}

template <typename Real>
void BasicStatevector<Real>::apply_single_qubit(
    const ComplexMatrix& u, std::size_t target,
    const std::vector<std::size_t>& controls) {
  QTDA_REQUIRE(u.rows() == 2 && u.cols() == 2, "expected a 2x2 matrix");
  QTDA_REQUIRE(target < num_qubits_, "target out of range");
  const std::uint64_t mask = qubit_mask(target, num_qubits_);
  std::uint64_t cmask = 0;
  for (std::size_t c : controls) {
    QTDA_REQUIRE(c < num_qubits_ && c != target, "bad control qubit");
    cmask |= qubit_mask(c, num_qubits_);
  }
  single_qubit_kernel(static_cast<C>(u(0, 0)), static_cast<C>(u(0, 1)),
                      static_cast<C>(u(1, 0)), static_cast<C>(u(1, 1)), mask,
                      cmask);
}

template <typename Real>
void BasicStatevector<Real>::single_qubit_kernel(C u00, C u01, C u10, C u11,
                                                 std::uint64_t mask,
                                                 std::uint64_t cmask) {
  const std::uint64_t dim = dimension();
  C* amp = amplitudes_.data();

  // Uncontrolled gates sweep disjoint contiguous pair runs — the top hot
  // loop, dispatched to the vector kernels (bitwise identical to the scalar
  // expressions below; see simd_kernels.hpp).
  const SimdLevel level = active_simd_level();
  if (level != SimdLevel::kScalar && cmask == 0 && mask >= kMinSimdRun) {
    const C u[4] = {u00, u01, u10, u11};
    for (std::uint64_t block = 0; block < dim; block += 2 * mask)
      simd::pair_sweep(level, amp + block, amp + block + mask, mask, u);
    return;
  }

  const auto body = [&](std::uint64_t i0) {
    if ((i0 & cmask) != cmask) return;
    const std::uint64_t i1 = i0 | mask;
    const C a0 = amp[i0];
    const C a1 = amp[i1];
    amp[i0] = u00 * a0 + u01 * a1;
    amp[i1] = u10 * a0 + u11 * a1;
  };

  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
      const auto idx = static_cast<std::uint64_t>(i);
      if ((idx & mask) == 0) body(idx);
    }
  } else {
    for (std::uint64_t block = 0; block < dim; block += 2 * mask) {
      for (std::uint64_t i = block; i < block + mask; ++i) body(i);
    }
  }
}

template <typename Real>
void BasicStatevector<Real>::apply_unitary(
    const ComplexMatrix& u, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  if (targets.size() == 1) {
    apply_single_qubit(u, targets[0], controls);
    return;
  }
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m <= 20, "dense unitary over too many targets");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(u.rows() == block && u.cols() == block,
               "unitary shape does not match target count");
  const TargetLayout layout =
      build_target_layout(targets, controls, num_qubits_);
  block_kernel(cast_matrix<Real>(u, thread_matrix_scratch<C>()), layout.tmask,
               layout.cmask, block_offsets(layout.local_bit_mask),
               thread_block_scratch<C>(), thread_block_out<C>());
}

template <typename Real>
void BasicStatevector<Real>::block_kernel(
    const C* u, std::uint64_t tmask, std::uint64_t cmask,
    const std::vector<std::uint64_t>& offset, std::vector<C>& scratch,
    std::vector<C>& scratch_out) {
  const std::uint64_t block = offset.size();
  const std::uint64_t dim = dimension();
  C* amp = amplitudes_.data();

  // Vector path: gather, row-vectorized matvec into the out buffer, scatter.
  // Per-row accumulation order matches the scalar row-dot exactly (see
  // simd_kernels.hpp), so mixing paths cannot change results.
  const SimdLevel level = active_simd_level();
  if (level != SimdLevel::kScalar) {
    scratch.resize(block);
    scratch_out.resize(block);
    for (std::uint64_t i = 0; i < dim; ++i) {
      if ((i & tmask) == 0 && (i & cmask) == cmask) {
        for (std::uint64_t l = 0; l < block; ++l)
          scratch[l] = amp[i | offset[l]];
        simd::block_matvec(level, u, scratch.data(), scratch_out.data(),
                           block);
        for (std::uint64_t r = 0; r < block; ++r)
          amp[i | offset[r]] = scratch_out[r];
      }
    }
    return;
  }

  const auto body = [&](std::uint64_t base, std::vector<C>& buf) {
    for (std::uint64_t l = 0; l < block; ++l) buf[l] = amp[base | offset[l]];
    for (std::uint64_t r = 0; r < block; ++r) {
      C acc{};
      const C* urow = u + r * block;
      for (std::uint64_t c = 0; c < block; ++c) acc += urow[c] * buf[c];
      amp[base | offset[r]] = acc;
    }
  };

  if (dim >= kParallelThreshold && block <= 64) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel
    {
      // Per-OpenMP-thread reusable buffer (persists across gates).
      std::vector<C>& local = thread_block_scratch<C>();
      local.resize(block);
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim); ++i) {
        const auto idx = static_cast<std::uint64_t>(i);
        if ((idx & tmask) == 0 && (idx & cmask) == cmask) body(idx, local);
      }
    }
    return;
#endif
  }
  scratch.resize(block);
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & tmask) == 0 && (i & cmask) == cmask) body(i, scratch);
  }
}

template <typename Real>
void BasicStatevector<Real>::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  const std::size_t m = targets.size();
  QTDA_REQUIRE(m >= 1 && m <= num_qubits_, "bad operator target count");
  const std::uint64_t block = std::uint64_t{1} << m;
  QTDA_REQUIRE(op.dimension() == block,
               "operator dimension " << op.dimension() << " does not match "
                                     << m << " targets");
  const TargetLayout layout =
      build_target_layout(targets, controls, num_qubits_);

  // Blocks are contiguous slices exactly when the targets are the trailing
  // wires in order (the sampled-basis QPE layout) — then gather/scatter is
  // a memcpy.
  const bool contiguous = targets_are_trailing(targets, num_qubits_);
  std::vector<std::uint64_t> offset;
  if (!contiguous) offset = block_offsets(layout.local_bit_mask);

  const std::vector<std::uint64_t> bases =
      enumerate_block_bases(dimension(), layout.tmask, layout.cmask);
  operator_kernel(op, contiguous, offset, bases, thread_packed_in<C>(),
                  thread_packed_out<C>());
  // Reuse is worth keeping only at moderate size: the batch buffers grow to
  // the ~64 MB batch cap on large states, and a thread_local would pin that
  // for the thread's lifetime.  (Plan execution bounds the same buffers to
  // the plan's lifetime via its arena instead.)
  constexpr std::size_t kRetainedAmplitudeCap = std::size_t{1} << 18;
  if (thread_packed_in<C>().capacity() > kRetainedAmplitudeCap) {
    thread_packed_in<C>() = {};
    thread_packed_out<C>() = {};
  }
}

template <typename Real>
void BasicStatevector<Real>::operator_kernel(
    const LinearOperator& op, bool contiguous,
    const std::vector<std::uint64_t>& offset,
    const std::vector<std::uint64_t>& bases, std::vector<C>& packed_in,
    std::vector<C>& packed_out) {
  const std::uint64_t block = op.dimension();
  // Batch blocks through packed buffers so the operator can amortize setup
  // and parallelize across blocks; the batch cap bounds the extra memory at
  // ~2×64 MB regardless of register width.
  constexpr std::uint64_t kBatchAmplitudeCap = std::uint64_t{1} << 22;
  const std::size_t blocks_per_batch = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, kBatchAmplitudeCap / block));
  C* amp = amplitudes_.data();
  for (std::size_t first = 0; first < bases.size();
       first += blocks_per_batch) {
    const std::size_t count =
        std::min(blocks_per_batch, bases.size() - first);
    packed_in.resize(count * block);
    packed_out.resize(count * block);
    for (std::size_t b = 0; b < count; ++b) {
      const std::uint64_t base = bases[first + b];
      if (contiguous) {
        std::memcpy(packed_in.data() + b * block, amp + base,
                    block * sizeof(C));
      } else {
        for (std::uint64_t l = 0; l < block; ++l)
          packed_in[b * block + l] = amp[base | offset[l]];
      }
    }
    operator_apply_batch(op, packed_in.data(), packed_out.data(), count);
    for (std::size_t b = 0; b < count; ++b) {
      const std::uint64_t base = bases[first + b];
      if (contiguous) {
        std::memcpy(amp + base, packed_out.data() + b * block,
                    block * sizeof(C));
      } else {
        for (std::uint64_t l = 0; l < block; ++l)
          amp[base | offset[l]] = packed_out[b * block + l];
      }
    }
  }
}

template <typename Real>
void BasicStatevector<Real>::two_qubit_kernel(const C* u,
                                              std::uint64_t mask_high,
                                              std::uint64_t mask_low) {
  // mask_high carries local bit 1 (targets[0]), mask_low local bit 0
  // (targets[1]) — the gather order of block_kernel, so results match the
  // generic path bit for bit.
  const std::uint64_t m_small = std::min(mask_high, mask_low);
  const std::uint64_t m_big = std::max(mask_high, mask_low);
  const std::uint64_t dim = dimension();
  C* amp = amplitudes_.data();

  // Vector path: the innermost run [b, b+m_small) gives four contiguous
  // streams at constant offsets — the four-point sweep (bitwise identical
  // to the scalar accumulation chains below).
  const SimdLevel level = active_simd_level();
  if (level != SimdLevel::kScalar && m_small >= kMinSimdRun) {
    for (std::uint64_t a = 0; a < dim; a += m_big << 1) {
      for (std::uint64_t b = a; b < a + m_big; b += m_small << 1) {
        simd::four_point_sweep(level, amp + b, amp + (b | mask_low),
                               amp + (b | mask_high),
                               amp + (b | mask_high | mask_low), m_small, u);
      }
    }
    return;
  }

  const C* u0 = u;
  const C* u1 = u + 4;
  const C* u2 = u + 8;
  const C* u3 = u + 12;

  const auto body = [&](std::uint64_t i) {
    const std::uint64_t i0 = i;
    const std::uint64_t i1 = i | mask_low;
    const std::uint64_t i2 = i | mask_high;
    const std::uint64_t i3 = i | mask_high | mask_low;
    const C a0 = amp[i0];
    const C a1 = amp[i1];
    const C a2 = amp[i2];
    const C a3 = amp[i3];
    // Accumulation order identical to block_kernel's row loop.
    C acc0{};
    acc0 += u0[0] * a0; acc0 += u0[1] * a1; acc0 += u0[2] * a2; acc0 += u0[3] * a3;
    C acc1{};
    acc1 += u1[0] * a0; acc1 += u1[1] * a1; acc1 += u1[2] * a2; acc1 += u1[3] * a3;
    C acc2{};
    acc2 += u2[0] * a0; acc2 += u2[1] * a1; acc2 += u2[2] * a2; acc2 += u2[3] * a3;
    C acc3{};
    acc3 += u3[0] * a0; acc3 += u3[1] * a1; acc3 += u3[2] * a2; acc3 += u3[3] * a3;
    amp[i0] = acc0;
    amp[i1] = acc1;
    amp[i2] = acc2;
    amp[i3] = acc3;
  };

  // Nested strided loops keep the innermost run contiguous (length
  // m_small), which is what lets the compiler pipeline the complex
  // arithmetic — a flat compressed-index loop ran ~2× slower.
  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
#pragma omp parallel for schedule(static)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(dim >> 2); ++s) {
      // Expand the compressed counter: insert zeros at the two positions.
      std::uint64_t base = ((static_cast<std::uint64_t>(s) & ~(m_small - 1))
                            << 1) |
                           (static_cast<std::uint64_t>(s) & (m_small - 1));
      base = ((base & ~(m_big - 1)) << 1) | (base & (m_big - 1));
      body(base);
    }
    return;
#endif
  }
  for (std::uint64_t a = 0; a < dim; a += m_big << 1) {
    for (std::uint64_t b = a; b < a + m_big; b += m_small << 1) {
      for (std::uint64_t i = b; i < b + m_small; ++i) body(i);
    }
  }
}

template <typename Real>
void BasicStatevector<Real>::diagonal_kernel(const C* table,
                                             const DiagonalExtract& extract) {
  // One multiply per amplitude, however many gates the diagonal absorbed:
  // the big fusion win of the controlled-phase-dominated QPE networks.
  const std::uint64_t dim = dimension();
  C* amp = amplitudes_.data();
  const SimdLevel level = active_simd_level();
  if (dim >= kParallelThreshold) {
#ifdef QTDA_HAVE_OPENMP
    constexpr std::int64_t kChunks = 64;
    const std::uint64_t span = (dim + kChunks - 1) / kChunks;
#pragma omp parallel for schedule(static)
    for (std::int64_t chunk = 0; chunk < kChunks; ++chunk) {
      const std::uint64_t lo = static_cast<std::uint64_t>(chunk) * span;
      if (lo >= dim) continue;
      const std::uint64_t hi = std::min(dim, lo + span);
      simd::diagonal_pass(level, amp + lo, lo, hi - lo, extract, table);
    }
    return;
#endif
  }
  simd::diagonal_pass(level, amp, 0, dim, extract, table);
}

template <typename Real>
void BasicStatevector<Real>::apply_plan(const ExecutionPlan& plan) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits_,
               "plan width " << plan.num_qubits()
                             << " does not match state width " << num_qubits_);
  ExecutionScratch& scratch = plan.scratch();
  for_each_plan_op_accounted(
      plan, [&](const CompiledOp& op) { apply_plan_op(op, scratch); });
  if (plan.global_phase() != 0.0) apply_global_phase(plan.global_phase());
}

template <typename Real>
void BasicStatevector<Real>::apply_plan_op(const CompiledOp& op,
                                           ExecutionScratch& scratch) {
  switch (op.kind) {
    case CompiledOp::Kind::kSingleQubit:
      single_qubit_kernel(static_cast<C>(op.u00), static_cast<C>(op.u01),
                          static_cast<C>(op.u10), static_cast<C>(op.u11),
                          op.tmask, op.cmask);
      break;
    case CompiledOp::Kind::kBlock:
      if (op.offsets.size() == 4 && op.cmask == 0) {
        two_qubit_kernel(compiled_matrix_data<Real>(op), op.offsets[2],
                         op.offsets[1]);
      } else {
        block_kernel(compiled_matrix_data<Real>(op), op.tmask, op.cmask,
                     op.offsets, scratch_block<Real>(scratch),
                     scratch_block_out<Real>(scratch));
      }
      break;
    case CompiledOp::Kind::kDiagonal:
      diagonal_kernel(compiled_diagonal<Real>(op), op.diag_extract);
      break;
    case CompiledOp::Kind::kOperator:
      operator_kernel(*op.gate.op, op.contiguous, op.offsets, op.bases,
                      scratch_packed_in<Real>(scratch),
                      scratch_packed_out<Real>(scratch));
      break;
  }
}

template <typename Real>
void BasicStatevector<Real>::apply_global_phase(double phi) {
  // cos/sin evaluate in double at every precision; only the stored factor
  // narrows.
  const C factor{static_cast<Real>(std::cos(phi)),
                 static_cast<Real>(std::sin(phi))};
  for (C& a : amplitudes_) a *= factor;
}

template <typename Real>
double BasicStatevector<Real>::probability(std::uint64_t index) const {
  QTDA_REQUIRE(index < dimension(), "basis index out of range");
  return norm_sq_as_double(amplitudes_[index]);
}

template <typename Real>
std::vector<double> BasicStatevector<Real>::probabilities() const {
  std::vector<double> p(amplitudes_.size());
  parallel_for_chunked(
      0, amplitudes_.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          p[i] = norm_sq_as_double(amplitudes_[i]);
      },
      kParallelThreshold);
  return p;
}

template <typename Real>
std::vector<double> BasicStatevector<Real>::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  const std::vector<std::uint64_t> bit_mask =
      marginal_bit_masks(qubits, num_qubits_);
  const std::size_t m = qubits.size();
  const std::uint64_t out_dim = std::uint64_t{1} << m;
  // Chunk-local histograms merged in index order: the sampling cumulative
  // sums downstream need run-to-run reproducible totals.
  std::vector<double> marginal(out_dim, 0.0);
  parallel_reduce_ordered(
      0, static_cast<std::size_t>(dimension()), marginal,
      std::vector<double>(out_dim, 0.0),
      [&](std::size_t i, std::vector<double>& into) {
        const double p = norm_sq_as_double(amplitudes_[i]);
        if (p == 0.0) return;
        std::uint64_t outcome = 0;
        for (std::size_t j = 0; j < m; ++j)
          if (i & bit_mask[j]) outcome |= std::uint64_t{1} << j;
        into[outcome] += p;
      },
      [out_dim](std::vector<double>& total, const std::vector<double>& part) {
        for (std::uint64_t o = 0; o < out_dim; ++o) total[o] += part[o];
      },
      kParallelThreshold);
  return marginal;
}

template <typename Real>
std::vector<std::uint64_t> BasicStatevector<Real>::sample_counts(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return multinomial_sample(marginal_probabilities(qubits), shots, rng);
}

template <typename Real>
double BasicStatevector<Real>::norm_squared() const {
  double s = 0.0;
  parallel_reduce_ordered(
      0, static_cast<std::size_t>(dimension()), s, 0.0,
      [&](std::size_t i, double& acc) {
        acc += norm_sq_as_double(amplitudes_[i]);
      },
      [](double& total, double part) { total += part; }, kParallelThreshold);
  return s;
}

template <typename Real>
void BasicStatevector<Real>::normalize() {
  const double n2 = norm_squared();
  QTDA_REQUIRE(n2 > 0.0, "cannot normalize the zero vector");
  const double inv = 1.0 / std::sqrt(n2);
  const Real scale = static_cast<Real>(inv);
  for (C& a : amplitudes_) a *= scale;
}

template <typename Real>
Amplitude BasicStatevector<Real>::inner_product(
    const BasicStatevector& other) const {
  QTDA_REQUIRE(other.num_qubits() == num_qubits_,
               "inner product width mismatch");
  Amplitude acc{};
  for (std::uint64_t i = 0; i < dimension(); ++i)
    acc += std::conj(widen(amplitudes_[i])) * widen(other.amplitudes_[i]);
  return acc;
}

template class BasicStatevector<double>;
template class BasicStatevector<float>;

std::vector<std::uint64_t> multinomial_sample(
    const std::vector<double>& distribution, std::size_t shots, Rng& rng) {
  QTDA_REQUIRE(!distribution.empty(), "empty distribution");
  std::vector<double> cumulative(distribution.size());
  double total = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    QTDA_REQUIRE(distribution[i] >= -1e-12,
                 "negative probability " << distribution[i]);
    total += std::max(distribution[i], 0.0);
    cumulative[i] = total;
  }
  QTDA_REQUIRE(total > 0.0, "distribution sums to zero");
  std::vector<std::uint64_t> counts(distribution.size(), 0);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const std::size_t idx =
        std::min<std::size_t>(std::distance(cumulative.begin(), it),
                              distribution.size() - 1);
    ++counts[idx];
  }
  return counts;
}

}  // namespace qtda
