#include "quantum/optimizer.hpp"

#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "quantum/types.hpp"

namespace qtda {

namespace {

/// Rotation period: RX/RY/RZ repeat at 4π, the Phase gate at 2π.
double rotation_period(GateKind kind) {
  return kind == GateKind::kPhase ? kTwoPi : 2.0 * kTwoPi;
}

bool angle_is_trivial(GateKind kind, double angle) {
  const double period = rotation_period(kind);
  const double reduced = std::remainder(angle, period);
  return std::abs(reduced) < 1e-12;
}

bool same_wires(const Gate& a, const Gate& b) {
  return a.targets == b.targets && a.controls == b.controls;
}

/// True when the two gates cancel exactly (self-inverse named gates, same
/// wires; also S/Sdg and T/Tdg pairs).
bool cancels(const Gate& a, const Gate& b) {
  if (!same_wires(a, b)) return false;
  if (is_self_inverse(a.kind) && a.kind == b.kind) return true;
  const auto inverse_pair = [](GateKind x, GateKind y) {
    return (x == GateKind::kS && y == GateKind::kSdg) ||
           (x == GateKind::kSdg && y == GateKind::kS) ||
           (x == GateKind::kT && y == GateKind::kTdg) ||
           (x == GateKind::kTdg && y == GateKind::kT);
  };
  return inverse_pair(a.kind, b.kind);
}

bool mergeable_rotations(const Gate& a, const Gate& b) {
  return is_rotation(a.kind) && a.kind == b.kind && same_wires(a, b);
}

}  // namespace

Circuit optimize_circuit(const Circuit& circuit, OptimizerReport* report) {
  OptimizerReport local;
  local.gates_before = circuit.gate_count();
  local.depth_before = circuit.depth();

  constexpr std::size_t kNoGate = static_cast<std::size_t>(-1);
  std::vector<Gate> out;
  out.reserve(circuit.gate_count());
  // last_toucher[q] = index in `out` of the last surviving gate using q.
  std::vector<std::size_t> last_toucher(circuit.num_qubits(), kNoGate);
  std::vector<bool> erased;  // parallel to `out`

  const auto wires_of = [](const Gate& g) {
    std::vector<std::size_t> wires = g.targets;
    wires.insert(wires.end(), g.controls.begin(), g.controls.end());
    return wires;
  };

  const auto previous_on_all_wires =
      [&](const Gate& g) -> std::optional<std::size_t> {
    // The candidate must be the immediately preceding gate on EVERY wire the
    // new gate uses, otherwise something intervenes and the rewrite is
    // unsound.
    std::optional<std::size_t> candidate;
    for (std::size_t q : wires_of(g)) {
      const std::size_t last = last_toucher[q];
      if (last == kNoGate || erased[last]) return std::nullopt;
      if (!candidate) candidate = last;
      if (*candidate != last) return std::nullopt;
    }
    return candidate;
  };

  for (const Gate& gate : circuit.gates()) {
    // Rule: drop trivial rotations outright.
    if (is_rotation(gate.kind) && angle_is_trivial(gate.kind, gate.parameter)) {
      ++local.dropped_rotations;
      continue;
    }
    bool consumed = false;
    if (gate.kind != GateKind::kUnitary && gate.kind != GateKind::kOperator) {
      const auto prev = previous_on_all_wires(gate);
      if (prev && !erased[*prev]) {
        Gate& before = out[*prev];
        if (cancels(before, gate)) {
          erased[*prev] = true;
          ++local.cancelled_pairs;
          consumed = true;
        } else if (mergeable_rotations(before, gate)) {
          before.parameter += gate.parameter;
          ++local.merged_rotations;
          if (angle_is_trivial(before.kind, before.parameter)) {
            erased[*prev] = true;
            ++local.dropped_rotations;
          }
          consumed = true;
        }
      }
    }
    if (!consumed) {
      out.push_back(gate);
      erased.push_back(false);
      for (std::size_t q : wires_of(gate))
        last_toucher[q] = out.size() - 1;
    }
  }

  Circuit optimized(circuit.num_qubits());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!erased[i]) optimized.append(out[i]);
  }
  optimized.add_global_phase(circuit.global_phase());

  // Iterate to a fixpoint: a cancellation can expose a new adjacent pair.
  if (optimized.gate_count() < circuit.gate_count()) {
    OptimizerReport inner;
    Circuit again = optimize_circuit(optimized, &inner);
    local.cancelled_pairs += inner.cancelled_pairs;
    local.merged_rotations += inner.merged_rotations;
    local.dropped_rotations += inner.dropped_rotations;
    optimized = std::move(again);
  }

  local.gates_after = optimized.gate_count();
  local.depth_after = optimized.depth();
  if (report) *report = local;
  return optimized;
}

}  // namespace qtda
