#include "quantum/qasm.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qtda {

namespace {

/// Angle literal with enough digits for a lossless round trip.
std::string angle(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

/// The qelib1 mnemonic for an uncontrolled named gate.
std::string base_name(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::kH: return "h";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRX: return "rx(" + angle(gate.parameter) + ")";
    case GateKind::kRY: return "ry(" + angle(gate.parameter) + ")";
    case GateKind::kRZ: return "rz(" + angle(gate.parameter) + ")";
    case GateKind::kPhase: return "u1(" + angle(gate.parameter) + ")";
    case GateKind::kUnitary:
    case GateKind::kOperator:
      QTDA_REQUIRE(false, "dense unitaries and matrix-free operators have no "
                          "OpenQASM 2 form; synthesize via the Trotter "
                          "backend first");
  }
  return "";
}

/// The mnemonic for a singly-controlled named gate, where qelib1 has one.
std::string controlled_name(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::kX: return "cx";
    case GateKind::kY: return "cy";
    case GateKind::kZ: return "cz";
    case GateKind::kH: return "ch";
    case GateKind::kRX: return "crx(" + angle(gate.parameter) + ")";
    case GateKind::kRY: return "cry(" + angle(gate.parameter) + ")";
    case GateKind::kRZ: return "crz(" + angle(gate.parameter) + ")";
    case GateKind::kPhase: return "cu1(" + angle(gate.parameter) + ")";
    default:
      QTDA_REQUIRE(false, "no qelib1 controlled form for "
                              << gate_kind_name(gate.kind));
  }
  return "";
}

}  // namespace

std::string to_qasm(const Circuit& circuit, const QasmOptions& options) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  const std::string& reg = options.register_name;
  os << "qreg " << reg << '[' << circuit.num_qubits() << "];\n";
  if (options.include_measurements)
    os << "creg c[" << circuit.num_qubits() << "];\n";
  if (options.emit_global_phase_comment && circuit.global_phase() != 0.0)
    os << "// global phase: " << angle(circuit.global_phase()) << "\n";

  const auto wire = [&](std::size_t q) {
    return reg + '[' + std::to_string(q) + ']';
  };

  for (const Gate& gate : circuit.gates()) {
    QTDA_REQUIRE(
        gate.kind != GateKind::kUnitary && gate.kind != GateKind::kOperator,
        "dense unitaries and matrix-free operators have no OpenQASM 2 form; "
        "synthesize via the Trotter backend first");
    const std::size_t controls = gate.controls.size();
    if (controls == 0) {
      os << base_name(gate) << ' ' << wire(gate.targets[0]) << ";\n";
    } else if (controls == 1) {
      os << controlled_name(gate) << ' ' << wire(gate.controls[0]) << ','
         << wire(gate.targets[0]) << ";\n";
    } else if (controls == 2 && gate.kind == GateKind::kX) {
      os << "ccx " << wire(gate.controls[0]) << ',' << wire(gate.controls[1])
         << ',' << wire(gate.targets[0]) << ";\n";
    } else {
      QTDA_REQUIRE(false, "gate " << gate_kind_name(gate.kind) << " with "
                                  << controls
                                  << " controls has no OpenQASM 2 form");
    }
  }
  if (options.include_measurements) {
    for (std::size_t q = 0; q < circuit.num_qubits(); ++q)
      os << "measure " << wire(q) << " -> c[" << q << "];\n";
  }
  return os.str();
}

}  // namespace qtda
