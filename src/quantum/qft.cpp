#include "quantum/qft.hpp"

#include "common/error.hpp"
#include "quantum/types.hpp"

namespace qtda {

void append_qft(Circuit& circuit, const std::vector<std::size_t>& qubits) {
  QTDA_REQUIRE(!qubits.empty(), "QFT over no qubits");
  const std::size_t t = qubits.size();
  // Textbook network (Nielsen & Chuang §5.1): process from the MSB wire,
  // Hadamard then controlled phases from the lower wires.
  for (std::size_t j = 0; j < t; ++j) {
    circuit.h(qubits[j]);
    for (std::size_t k = j + 1; k < t; ++k) {
      const double angle = kTwoPi / static_cast<double>(1ULL << (k - j + 1));
      circuit.controlled_phase(qubits[k], qubits[j], angle);
    }
  }
  // Bit reversal.
  for (std::size_t j = 0; j < t / 2; ++j)
    circuit.swap(qubits[j], qubits[t - 1 - j]);
}

void append_inverse_qft(Circuit& circuit,
                        const std::vector<std::size_t>& qubits) {
  QTDA_REQUIRE(!qubits.empty(), "inverse QFT over no qubits");
  const std::size_t t = qubits.size();
  for (std::size_t j = 0; j < t / 2; ++j)
    circuit.swap(qubits[j], qubits[t - 1 - j]);
  for (std::size_t j = t; j-- > 0;) {
    for (std::size_t k = t; k-- > j + 1;) {
      const double angle = -kTwoPi / static_cast<double>(1ULL << (k - j + 1));
      circuit.controlled_phase(qubits[k], qubits[j], angle);
    }
    circuit.h(qubits[j]);
  }
}

}  // namespace qtda
