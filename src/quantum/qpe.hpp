/// \file qpe.hpp
/// \brief Quantum phase estimation circuit builder (paper Fig. 6).
///
/// Register layout (MSB-first): precision qubits [0, t), system qubits
/// [t, t+q), optional ancillas [t+q, t+q+a) for mixed-state purification.
/// Precision qubit j controls U^{2^{t−1−j}} so the measured integer m (read
/// MSB-first off the precision register) estimates the phase θ ≈ m/2^t.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/linear_operator.hpp"
#include "quantum/circuit.hpp"

namespace qtda {

/// Fixed register layout of a QPE instance.
struct QpeLayout {
  std::size_t precision_qubits = 3;
  std::size_t system_qubits = 1;
  std::size_t ancilla_qubits = 0;

  std::size_t total() const {
    return precision_qubits + system_qubits + ancilla_qubits;
  }
  std::vector<std::size_t> precision_wires() const;
  std::vector<std::size_t> system_wires() const;
  std::vector<std::size_t> ancilla_wires() const;
};

/// Supplies the controlled powers of U.  Given the power p (one of 1, 2, 4,
/// …, 2^{t−1}) and the control wire, the callback must append the controlled
/// U^p acting on the layout's system wires.
using ControlledPowerAppender =
    std::function<void(Circuit&, std::uint64_t power, std::size_t control)>;

/// Builds the QPE network: H wall on the precision register, controlled
/// powers (through the callback), inverse QFT.  State preparation of the
/// system/ancilla registers is the caller's job (prepend it).
Circuit build_qpe_circuit(const QpeLayout& layout,
                          const ControlledPowerAppender& append_power);

/// Convenience: QPE with a dense unitary oracle.  `unitary_power(p)` must
/// return the 2^q × 2^q matrix of U^p.
Circuit build_qpe_circuit_dense(
    const QpeLayout& layout,
    const std::function<ComplexMatrix(std::uint64_t)>& unitary_power);

/// Matrix-free QPE: `operator_power(p)` returns a LinearOperator applying
/// U^p to the system register (e.g. SparseExpOperator with θ = p).  The
/// controlled powers enter the circuit as operator gates, so no 2^q×2^q
/// matrix is ever formed — this is the sparse-oracle path that pushes the
/// feasible system size past the dense ceiling.
Circuit build_qpe_circuit_sparse(
    const QpeLayout& layout,
    const std::function<std::shared_ptr<const LinearOperator>(std::uint64_t)>&
        operator_power);

/// Theoretical QPE outcome distribution for one eigenphase θ ∈ [0, 1):
/// probability of measuring integer m on t precision qubits,
///   Pr[m] = |2^{−t} Σ_x e^{2πi x (θ − m/2^t)}|²  (Fejér kernel).
double qpe_outcome_probability(double theta, std::uint64_t m, std::size_t t);

/// Pr[m = 0] for eigenphase θ — the quantity the Betti estimator counts.
double qpe_zero_probability(double theta, std::size_t t);

}  // namespace qtda
