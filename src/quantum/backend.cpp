#include "quantum/backend.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/noise.hpp"

namespace qtda {

namespace {

constexpr SimulatorKind kAllSimulatorKinds[] = {
    SimulatorKind::kStatevector,
    SimulatorKind::kShardedStatevector,
};

}  // namespace

std::string simulator_kind_name(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kStatevector: return "statevector";
    case SimulatorKind::kShardedStatevector: return "sharded-statevector";
  }
  return "?";
}

std::string simulator_kind_names() {
  std::string names;
  for (SimulatorKind kind : kAllSimulatorKinds) {
    if (!names.empty()) names += ", ";
    names += simulator_kind_name(kind);
  }
  return names;
}

SimulatorKind simulator_kind_from_name(const std::string& name) {
  for (SimulatorKind kind : kAllSimulatorKinds) {
    if (name == simulator_kind_name(kind)) return kind;
  }
  QTDA_REQUIRE(false, "unknown simulator \"" << name << "\" (valid: "
                                             << simulator_kind_names() << ")");
  return SimulatorKind::kStatevector;
}

StatevectorBackend::StatevectorBackend(std::size_t num_qubits)
    : state_(num_qubits) {}

void StatevectorBackend::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

void StatevectorBackend::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

void StatevectorBackend::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

void StatevectorBackend::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

void StatevectorBackend::apply_depolarizing(std::size_t qubit,
                                            double probability, Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

std::vector<double> StatevectorBackend::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

std::vector<std::uint64_t> StatevectorBackend::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

ShardedStatevectorBackend::ShardedStatevectorBackend(std::size_t num_qubits,
                                                     std::size_t num_shards)
    : state_(num_qubits, num_shards) {}

void ShardedStatevectorBackend::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

void ShardedStatevectorBackend::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

void ShardedStatevectorBackend::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

void ShardedStatevectorBackend::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

void ShardedStatevectorBackend::apply_depolarizing(std::size_t qubit,
                                                   double probability,
                                                   Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

std::vector<double> ShardedStatevectorBackend::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

std::vector<std::uint64_t> ShardedStatevectorBackend::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

std::unique_ptr<SimulatorBackend> make_simulator(SimulatorKind kind,
                                                 std::size_t num_qubits,
                                                 std::size_t shards) {
  // CI / debugging hook: force every factory-built engine onto one kind and
  // shard count without touching call sites.  Safe because the sharded
  // engine is bit-identical to the dense one.
  if (const char* forced = std::getenv("QTDA_SIMULATOR");
      forced != nullptr && *forced != '\0') {
    kind = simulator_kind_from_name(forced);
  }
  if (const char* forced = std::getenv("QTDA_SHARDS");
      forced != nullptr && *forced != '\0') {
    const long value = std::atol(forced);
    QTDA_REQUIRE(value >= 1, "QTDA_SHARDS must be >= 1, got " << forced);
    shards = static_cast<std::size_t>(value);
  }
  switch (kind) {
    case SimulatorKind::kStatevector:
      return std::make_unique<StatevectorBackend>(num_qubits);
    case SimulatorKind::kShardedStatevector:
      return std::make_unique<ShardedStatevectorBackend>(
          num_qubits, shards == 0 ? hardware_concurrency() : shards);
  }
  QTDA_REQUIRE(false, "unknown simulator kind");
  return nullptr;
}

}  // namespace qtda
