#include "quantum/backend.hpp"

#include "common/error.hpp"
#include "quantum/noise.hpp"

namespace qtda {

std::string simulator_kind_name(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kStatevector: return "statevector";
  }
  return "?";
}

StatevectorBackend::StatevectorBackend(std::size_t num_qubits)
    : state_(num_qubits) {}

void StatevectorBackend::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

void StatevectorBackend::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

void StatevectorBackend::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

void StatevectorBackend::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

void StatevectorBackend::apply_depolarizing(std::size_t qubit,
                                            double probability, Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

std::vector<double> StatevectorBackend::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

std::vector<std::uint64_t> StatevectorBackend::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

std::unique_ptr<SimulatorBackend> make_simulator(SimulatorKind kind,
                                                 std::size_t num_qubits) {
  switch (kind) {
    case SimulatorKind::kStatevector:
      return std::make_unique<StatevectorBackend>(num_qubits);
  }
  QTDA_REQUIRE(false, "unknown simulator kind");
  return nullptr;
}

}  // namespace qtda
