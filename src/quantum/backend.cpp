#include "quantum/backend.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/noise.hpp"

namespace qtda {

namespace {

constexpr SimulatorKind kAllSimulatorKinds[] = {
    SimulatorKind::kStatevector,
    SimulatorKind::kShardedStatevector,
    SimulatorKind::kDensityMatrix,
};

}  // namespace

std::string simulator_kind_name(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kStatevector: return "statevector";
    case SimulatorKind::kShardedStatevector: return "sharded-statevector";
    case SimulatorKind::kDensityMatrix: return "density-matrix";
  }
  return "?";
}

std::string simulator_kind_names() {
  std::string names;
  for (SimulatorKind kind : kAllSimulatorKinds) {
    if (!names.empty()) names += ", ";
    names += simulator_kind_name(kind);
  }
  return names;
}

SimulatorKind simulator_kind_from_name(const std::string& name) {
  for (SimulatorKind kind : kAllSimulatorKinds) {
    if (name == simulator_kind_name(kind)) return kind;
  }
  QTDA_REQUIRE(false, "unknown simulator \"" << name << "\" (valid: "
                                             << simulator_kind_names() << ")");
  return SimulatorKind::kStatevector;
}

void SimulatorBackend::apply_circuit_with_noise(const Circuit& circuit,
                                                const NoiseModel& noise,
                                                Rng& rng) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits(),
               "circuit width " << circuit.num_qubits()
                                << " does not match backend width "
                                << num_qubits());
  // Shared error placement (for_each_gate_with_noise) keeps the RNG
  // consumption order identical to run_noisy_trajectory.  The global phase
  // is dropped: unobservable through this interface's measurements.
  for_each_gate_with_noise(
      circuit, noise, [&](const Gate& gate) { apply_gate(gate); },
      [&](std::size_t q, double p) { apply_depolarizing(q, p, rng); });
}

StatevectorBackend::StatevectorBackend(std::size_t num_qubits)
    : state_(num_qubits) {}

void StatevectorBackend::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

void StatevectorBackend::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

void StatevectorBackend::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

void StatevectorBackend::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

void StatevectorBackend::apply_depolarizing(std::size_t qubit,
                                            double probability, Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

std::vector<double> StatevectorBackend::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

std::vector<std::uint64_t> StatevectorBackend::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

ShardedStatevectorBackend::ShardedStatevectorBackend(std::size_t num_qubits,
                                                     std::size_t num_shards)
    : state_(num_qubits, num_shards) {}

void ShardedStatevectorBackend::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

void ShardedStatevectorBackend::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

void ShardedStatevectorBackend::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

void ShardedStatevectorBackend::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

void ShardedStatevectorBackend::apply_depolarizing(std::size_t qubit,
                                                   double probability,
                                                   Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

std::vector<double> ShardedStatevectorBackend::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

std::vector<std::uint64_t> ShardedStatevectorBackend::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

DensityMatrixBackend::DensityMatrixBackend(std::size_t num_qubits)
    : state_(num_qubits) {}

void DensityMatrixBackend::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

void DensityMatrixBackend::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

void DensityMatrixBackend::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

void DensityMatrixBackend::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

void DensityMatrixBackend::apply_depolarizing(std::size_t qubit,
                                              double probability, Rng& rng) {
  // Exact channel: deterministic, so the Rng of the trajectory-shaped
  // contract is intentionally untouched (exact_channels() advertises this).
  (void)rng;
  state_.apply_depolarizing(qubit, probability);
}

std::vector<double> DensityMatrixBackend::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

std::vector<std::uint64_t> DensityMatrixBackend::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

std::unique_ptr<SimulatorBackend> make_simulator(SimulatorKind kind,
                                                 std::size_t num_qubits,
                                                 std::size_t shards) {
  // CI / debugging hook: force every factory-built engine onto one kind and
  // shard count without touching call sites.  Safe for the sharded engine
  // (bit-identical to the dense one); the density-matrix engine additionally
  // needs the width guard below because of its 4^n storage cap.
  bool kind_forced_by_env = false;
  if (const char* forced = std::getenv("QTDA_SIMULATOR");
      forced != nullptr && *forced != '\0') {
    // Re-raise parse failures with the variable named: a malformed override
    // set process-wide (e.g. by CI) must not surface as a bare unknown-name
    // error with no hint where the name came from.
    try {
      kind = simulator_kind_from_name(forced);
    } catch (const Error&) {
      QTDA_REQUIRE(false, "QTDA_SIMULATOR=\""
                              << forced
                              << "\" is not a valid simulator name (valid: "
                              << simulator_kind_names() << ")");
    }
    kind_forced_by_env = true;
  }
  if (const char* forced = std::getenv("QTDA_SHARDS");
      forced != nullptr && *forced != '\0') {
    char* end = nullptr;
    const long value = std::strtol(forced, &end, 10);
    QTDA_REQUIRE(end != forced && *end == '\0' && value >= 1,
                 "QTDA_SHARDS=\"" << forced
                                  << "\" is not a valid shard count (need an "
                                     "integer >= 1)");
    shards = static_cast<std::size_t>(value);
  }
  if (kind == SimulatorKind::kDensityMatrix &&
      num_qubits > kDensityMatrixMaxQubits) {
    QTDA_REQUIRE(false,
                 "the density-matrix simulator stores 4^n amplitudes and "
                 "supports at most "
                     << kDensityMatrixMaxQubits << " qubits, but "
                     << num_qubits << " were requested"
                     << (kind_forced_by_env
                             ? " (QTDA_SIMULATOR=density-matrix forced the "
                               "engine; unset it or use a statevector engine "
                               "for registers this wide)"
                             : ""));
  }
  switch (kind) {
    case SimulatorKind::kStatevector:
      return std::make_unique<StatevectorBackend>(num_qubits);
    case SimulatorKind::kShardedStatevector:
      return std::make_unique<ShardedStatevectorBackend>(
          num_qubits, shards == 0 ? hardware_concurrency() : shards);
    case SimulatorKind::kDensityMatrix:
      return std::make_unique<DensityMatrixBackend>(num_qubits);
  }
  QTDA_REQUIRE(false, "unknown simulator kind");
  return nullptr;
}

}  // namespace qtda
