#include "quantum/backend.hpp"

#include <cstdlib>
#include <string>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/executor.hpp"
#include "quantum/noise.hpp"

namespace qtda {

namespace {

constexpr SimulatorKind kAllSimulatorKinds[] = {
    SimulatorKind::kStatevector,
    SimulatorKind::kShardedStatevector,
    SimulatorKind::kDensityMatrix,
};

/// Executes a fused diagonal through the generic gate interface when it is
/// too wide to densify whole: split the support into a high part and a
/// 256-entry low part, and apply one dense sub-diagonal per high-part
/// assignment, controlled on that assignment (controls test for ones, so
/// zero bits are X-conjugated).  Slow but correct — the fallback of engines
/// without native diagonal execution.
void apply_wide_diagonal(SimulatorBackend& backend, const CompiledOp& op) {
  constexpr std::size_t kLowBits = 8;
  const std::vector<std::size_t>& support = op.gate.targets;
  const std::size_t m = support.size();
  const std::size_t hi_bits = m - kLowBits;
  const std::vector<std::size_t> low_targets(support.end() - kLowBits,
                                             support.end());
  // High local bit j (LSB-first, j ≥ kLowBits) lives on wire
  // support[m − 1 − j]; collect the wires in that bit order.
  std::vector<std::size_t> hi_wires(hi_bits);
  for (std::size_t j = 0; j < hi_bits; ++j)
    hi_wires[j] = support[m - 1 - (kLowBits + j)];

  const std::uint64_t low_dim = std::uint64_t{1} << kLowBits;
  for (std::uint64_t hi = 0; hi < (std::uint64_t{1} << hi_bits); ++hi) {
    Gate flip;
    flip.kind = GateKind::kX;
    std::vector<std::size_t> flipped;
    for (std::size_t j = 0; j < hi_bits; ++j)
      if (((hi >> j) & 1ULL) == 0) flipped.push_back(hi_wires[j]);
    for (std::size_t w : flipped) {
      flip.targets = {w};
      backend.apply_gate(flip);
    }
    Gate sub;
    sub.kind = GateKind::kUnitary;
    sub.targets = low_targets;
    sub.controls = hi_wires;
    sub.matrix = ComplexMatrix(low_dim, low_dim);
    for (std::uint64_t lo = 0; lo < low_dim; ++lo)
      sub.matrix(lo, lo) = op.diagonal[(hi << kLowBits) | lo];
    backend.apply_gate(sub);
    for (std::size_t w : flipped) {
      flip.targets = {w};
      backend.apply_gate(flip);
    }
  }
}

}  // namespace

std::string simulator_kind_name(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kStatevector: return "statevector";
    case SimulatorKind::kShardedStatevector: return "sharded-statevector";
    case SimulatorKind::kDensityMatrix: return "density-matrix";
  }
  return "?";
}

std::string simulator_kind_names() {
  std::string names;
  for (SimulatorKind kind : kAllSimulatorKinds) {
    if (!names.empty()) names += ", ";
    names += simulator_kind_name(kind);
  }
  return names;
}

SimulatorKind simulator_kind_from_name(const std::string& name) {
  for (SimulatorKind kind : kAllSimulatorKinds) {
    if (name == simulator_kind_name(kind)) return kind;
  }
  QTDA_REQUIRE(false, "unknown simulator \"" << name << "\" (valid: "
                                             << simulator_kind_names() << ")");
  return SimulatorKind::kStatevector;
}

void SimulatorBackend::apply_plan(const ExecutionPlan& plan) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits(),
               "plan width " << plan.num_qubits()
                             << " does not match backend width "
                             << num_qubits());
  // Generic path: the fused blocks and materialized matrices still apply —
  // each op is one ordinary IR gate — only the mask/offset precomputation
  // is engine-specific and recomputed here.  Diagonal tables densify on
  // demand, wide ones through the controlled-sub-diagonal split (the three
  // in-tree engines all override with native diagonal execution; this
  // keeps unknown future engines correct for every compiled plan).
  for_each_plan_op_accounted(plan, [&](const CompiledOp& op) {
    if (op.kind != CompiledOp::Kind::kDiagonal) {
      apply_gate(op.gate);
    } else if (op.diagonal.size() <= 256) {
      apply_gate(op.dense_gate());
    } else {
      apply_wide_diagonal(*this, op);
    }
  });
  if (plan.global_phase() != 0.0) apply_global_phase(plan.global_phase());
}

void SimulatorBackend::apply_plan_with_noise(const ExecutionPlan& plan,
                                             const NoiseModel& noise,
                                             Rng& rng) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits(),
               "plan width " << plan.num_qubits()
                             << " does not match backend width "
                             << num_qubits());
  QTDA_REQUIRE(plan.preserves_noise_slots(),
               "noisy execution needs a plan compiled with "
               "preserve_noise_slots (error placement would otherwise "
               "change)");
  for_each_plan_op_with_noise(
      plan, noise, [&](const CompiledOp& op) { apply_gate(op.gate); },
      [&](std::size_t q, double p) { apply_depolarizing(q, p, rng); });
  // Global phase dropped: unobservable through this interface's
  // measurements, exactly as in apply_circuit_with_noise.
}

void SimulatorBackend::apply_circuit_with_noise(const Circuit& circuit,
                                                const NoiseModel& noise,
                                                Rng& rng) {
  QTDA_REQUIRE(circuit.num_qubits() == num_qubits(),
               "circuit width " << circuit.num_qubits()
                                << " does not match backend width "
                                << num_qubits());
  // Shared error placement (for_each_gate_with_noise) keeps the RNG
  // consumption order identical to run_noisy_trajectory.  The global phase
  // is dropped: unobservable through this interface's measurements.
  for_each_gate_with_noise(
      circuit, noise, [&](const Gate& gate) { apply_gate(gate); },
      [&](std::size_t q, double p) { apply_depolarizing(q, p, rng); });
}

template <typename Real>
BasicStatevectorBackend<Real>::BasicStatevectorBackend(std::size_t num_qubits)
    : state_(num_qubits) {}

template <typename Real>
void BasicStatevectorBackend<Real>::prepare_basis_state(std::uint64_t index) {
  state_.set_basis_state(index);
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_global_phase(double phi) {
  state_.apply_global_phase(phi);
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_plan(const ExecutionPlan& plan) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits(),
               "plan width " << plan.num_qubits()
                             << " does not match backend width "
                             << num_qubits());
  state_.apply_plan(plan);
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_plan_with_noise(
    const ExecutionPlan& plan, const NoiseModel& noise, Rng& rng) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits(),
               "plan width " << plan.num_qubits()
                             << " does not match backend width "
                             << num_qubits());
  QTDA_REQUIRE(plan.preserves_noise_slots(),
               "noisy execution needs a plan compiled with "
               "preserve_noise_slots (error placement would otherwise "
               "change)");
  ExecutionScratch& scratch = plan.scratch();
  for_each_plan_op_with_noise(
      plan, noise,
      [&](const CompiledOp& op) { state_.apply_plan_op(op, scratch); },
      [&](std::size_t q, double p) {
        maybe_apply_depolarizing(state_, q, p, rng);
      });
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

template <typename Real>
void BasicStatevectorBackend<Real>::apply_depolarizing(std::size_t qubit,
                                                       double probability,
                                                       Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

template <typename Real>
std::vector<double> BasicStatevectorBackend<Real>::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

template <typename Real>
std::vector<std::uint64_t> BasicStatevectorBackend<Real>::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

template <typename Real>
BasicShardedStatevectorBackend<Real>::BasicShardedStatevectorBackend(
    std::size_t num_qubits, std::size_t num_shards)
    : state_(num_qubits, num_shards) {}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::prepare_basis_state(
    std::uint64_t index) {
  state_.set_basis_state(index);
}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::apply_circuit(
    const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::apply_global_phase(double phi) {
  state_.apply_global_phase(phi);
}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::apply_plan(
    const ExecutionPlan& plan) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits(),
               "plan width " << plan.num_qubits()
                             << " does not match backend width "
                             << num_qubits());
  for_each_plan_op_accounted(plan, [&](const CompiledOp& op) {
    if (op.kind == CompiledOp::Kind::kDiagonal) {
      // Native slab-local diagonal — bit-identical to the dense engine's
      // diagonal kernel, no dense 2^m×2^m fallback.  The table is the
      // plan's cached width-matched diagonal.
      state_.apply_diagonal(compiled_diagonal<Real>(op), op.diag_extract);
    } else {
      state_.apply_gate(op.gate);
    }
  });
  if (plan.global_phase() != 0.0) state_.apply_global_phase(plan.global_phase());
}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

template <typename Real>
void BasicShardedStatevectorBackend<Real>::apply_depolarizing(
    std::size_t qubit, double probability, Rng& rng) {
  maybe_apply_depolarizing(state_, qubit, probability, rng);
}

template <typename Real>
std::vector<double>
BasicShardedStatevectorBackend<Real>::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

template <typename Real>
std::vector<std::uint64_t> BasicShardedStatevectorBackend<Real>::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

template <typename Real>
BasicDensityMatrixBackend<Real>::BasicDensityMatrixBackend(
    std::size_t num_qubits)
    : state_(num_qubits) {}

template <typename Real>
void BasicDensityMatrixBackend<Real>::prepare_basis_state(
    std::uint64_t index) {
  state_.set_basis_state(index);
}

template <typename Real>
void BasicDensityMatrixBackend<Real>::apply_gate(const Gate& gate) {
  state_.apply_gate(gate);
}

template <typename Real>
void BasicDensityMatrixBackend<Real>::apply_circuit(const Circuit& circuit) {
  state_.apply_circuit(circuit);
}

template <typename Real>
void BasicDensityMatrixBackend<Real>::apply_global_phase(double phi) {
  // e^{iφ}ρe^{−iφ} = ρ: nothing to do.
  (void)phi;
}

template <typename Real>
void BasicDensityMatrixBackend<Real>::apply_plan(const ExecutionPlan& plan) {
  QTDA_REQUIRE(plan.num_qubits() == num_qubits(),
               "plan width " << plan.num_qubits()
                             << " does not match backend width "
                             << num_qubits());
  for (const CompiledOp& op : plan.ops()) {
    if (op.kind == CompiledOp::Kind::kDiagonal) {
      // DρD† in one pass over vec(ρ), no dense 2^m×2^m fallback.
      state_.apply_diagonal(compiled_diagonal<Real>(op), op.diag_extract);
    } else {
      state_.apply_gate(op.gate);
    }
  }
  // Global phase cancels on ρ.
}

template <typename Real>
void BasicDensityMatrixBackend<Real>::apply_operator(
    const LinearOperator& op, const std::vector<std::size_t>& targets,
    const std::vector<std::size_t>& controls) {
  state_.apply_operator(op, targets, controls);
}

template <typename Real>
void BasicDensityMatrixBackend<Real>::apply_depolarizing(std::size_t qubit,
                                                         double probability,
                                                         Rng& rng) {
  // Exact channel: deterministic, so the Rng of the trajectory-shaped
  // contract is intentionally untouched (exact_channels() advertises this).
  (void)rng;
  state_.apply_depolarizing(qubit, probability);
}

template <typename Real>
std::vector<double> BasicDensityMatrixBackend<Real>::marginal_probabilities(
    const std::vector<std::size_t>& qubits) const {
  return state_.marginal_probabilities(qubits);
}

template <typename Real>
std::vector<std::uint64_t> BasicDensityMatrixBackend<Real>::sample(
    const std::vector<std::size_t>& qubits, std::size_t shots,
    Rng& rng) const {
  return state_.sample_counts(qubits, shots, rng);
}

template class BasicStatevectorBackend<double>;
template class BasicStatevectorBackend<float>;
template class BasicShardedStatevectorBackend<double>;
template class BasicShardedStatevectorBackend<float>;
template class BasicDensityMatrixBackend<double>;
template class BasicDensityMatrixBackend<float>;

namespace {

template <typename Real>
std::unique_ptr<SimulatorBackend> make_simulator_at(SimulatorKind kind,
                                                    std::size_t num_qubits,
                                                    std::size_t shards) {
  switch (kind) {
    case SimulatorKind::kStatevector:
      return std::make_unique<BasicStatevectorBackend<Real>>(num_qubits);
    case SimulatorKind::kShardedStatevector:
      return std::make_unique<BasicShardedStatevectorBackend<Real>>(
          num_qubits, shards == 0 ? hardware_concurrency() : shards);
    case SimulatorKind::kDensityMatrix:
      return std::make_unique<BasicDensityMatrixBackend<Real>>(num_qubits);
  }
  QTDA_REQUIRE(false, "unknown simulator kind");
  return nullptr;
}

}  // namespace

std::unique_ptr<SimulatorBackend> make_simulator(SimulatorKind kind,
                                                 std::size_t num_qubits,
                                                 std::size_t shards,
                                                 Precision precision) {
  // CI / debugging hook: force every factory-built engine onto one kind,
  // shard count and precision without touching call sites.  Safe for the
  // sharded engine (bit-identical to the dense one); the density-matrix
  // engine additionally needs the width guard below because of its 4^n
  // storage cap.
  bool kind_forced_by_env = false;
  if (const char* forced = std::getenv("QTDA_SIMULATOR");
      forced != nullptr && *forced != '\0') {
    // Re-raise parse failures with the variable named: a malformed override
    // set process-wide (e.g. by CI) must not surface as a bare unknown-name
    // error with no hint where the name came from.
    try {
      kind = simulator_kind_from_name(forced);
    } catch (const Error&) {
      QTDA_REQUIRE(false, "QTDA_SIMULATOR=\""
                              << forced
                              << "\" is not a valid simulator name (valid: "
                              << simulator_kind_names() << ")");
    }
    kind_forced_by_env = true;
  }
  if (const char* forced = std::getenv("QTDA_SHARDS");
      forced != nullptr && *forced != '\0') {
    char* end = nullptr;
    const long value = std::strtol(forced, &end, 10);
    QTDA_REQUIRE(end != forced && *end == '\0' && value >= 1,
                 "QTDA_SHARDS=\"" << forced
                                  << "\" is not a valid shard count (need an "
                                     "integer >= 1)");
    shards = static_cast<std::size_t>(value);
  }
  // Throws with the variable named on malformed values (see precision.hpp).
  if (const std::optional<Precision> forced = precision_from_env())
    precision = *forced;
  // Validate QTDA_SIMD eagerly too: a typo'd SIMD override should fail at
  // engine construction, attributed to its variable, not when the first hot
  // kernel dispatches.
  (void)simd_level_from_env();
  if (kind == SimulatorKind::kDensityMatrix &&
      num_qubits > kDensityMatrixMaxQubits) {
    QTDA_REQUIRE(false,
                 "the density-matrix simulator stores 4^n amplitudes and "
                 "supports at most "
                     << kDensityMatrixMaxQubits << " qubits, but "
                     << num_qubits << " were requested"
                     << (kind_forced_by_env
                             ? " (QTDA_SIMULATOR=density-matrix forced the "
                               "engine; unset it or use a statevector engine "
                               "for registers this wide)"
                             : ""));
  }
  return precision == Precision::kFloat64
             ? make_simulator_at<double>(kind, num_qubits, shards)
             : make_simulator_at<float>(kind, num_qubits, shards);
}

}  // namespace qtda
