#include "quantum/compiler.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/register_layout.hpp"

namespace qtda {

namespace {

/// Hard ceiling of the fused dense-block support (2^8×2^8 blocks).
constexpr std::size_t kMaxFuseWidth = 8;

// -- cost model --------------------------------------------------------------
// Per-amplitude costs in units of one complex multiply, used to decide
// whether a finished cluster is emitted fused or as its verbatim gates.
// Every gate — fused or not — is one full pass over the state; kPassCost is
// the loop/memory overhead of such a pass, which is what fusion eliminates.
// A 2^m dense block costs 2^m multiplies per amplitude, so fusing only wins
// when the absorbed gates' arithmetic plus their saved passes outweigh that
// (measured: a cache-resident single-qubit sweep is almost pure arithmetic,
// hence the small pass constant); a fused diagonal costs ~2 (branchless
// index extraction + one multiply) regardless of how many gates it
// absorbed, which is where the QPE networks' controlled-phase ladders
// collapse.

constexpr double kPassCost = 1.0;
constexpr double kGatherCost = 2.0;

double gate_sweep_cost(const Gate& gate) {
  const double arithmetic =
      std::ldexp(1.0, static_cast<int>(gate.targets.size())) /
      std::ldexp(1.0, static_cast<int>(gate.controls.size()));
  return arithmetic + kPassCost;
}

/// Per-amplitude cost of one fused pass.  Width-2 dense blocks run through
/// a specialized pair kernel (no offset-table gather); wider blocks pay the
/// generic gather + matmul — priced in so a block is only emitted when it
/// genuinely beats the gates it replaces.
///
/// Two calibrations, selected by the runtime kernel dispatch level,
/// because vectorization shifts the ratios the model prices:
///
///  * Scalar (QTDA_SIMD=0): the historical constants, re-confirmed against
///    the scalar kernels (four-point pass 3.3× a pair sweep → width-2 at
///    13.0; diagonal pass 1.3× → 2.0 + pass).  Keeping these untouched
///    also keeps scalar plan shapes — and therefore the pre-vectorization
///    bit-identity fingerprints — byte-stable.
///  * Vectorized (AVX2/AVX-512): re-measured per amplitude against the
///    dispatched kernels (bench_micro_simd plus a pair-sweep-normalized
///    calibration sweep).  The four-point pass dropped to 2.1× a
///    vectorized pair sweep (both vectorize well) → width-2 at 7.0, so
///    2-wide fusion now pays off around 3 absorbed gates instead of ~5.
///    The table-lookup diagonal pass vectorizes worst of the four hot
///    loops (gather-bound): 2.4× a pair sweep, ≈7.3 units measured.  It
///    is priced at 6.0 — the profitable-growth bound (kGrowthSlack admits
///    a ladder's second rung only at ≤ 6.0) — which still flips the
///    decision the measurement calls for: 2-gate diagonal runs stay
///    verbatim, runs of 3+ (every QPE ladder that matters) collapse.
///    Wide blocks measured 33/38/73 units at widths 3/4/5 vs the model's
///    23/43/83: the 2.5·2^m form still brackets the data (fixed per-block
///    overhead dominates width 3, vector throughput wins at 4–5), so it
///    is kept for both calibrations.
double fused_sweep_cost(bool diagonal, std::size_t width) {
  if (width <= 1) return 2.0 + kPassCost;  // emitted as a plain pair sweep
  const bool vectorized = active_simd_level() != SimdLevel::kScalar;
  if (diagonal) return vectorized ? 6.0 : 2.0 + kPassCost;
  if (width == 2) return vectorized ? 7.0 : 13.0;
  return 2.5 * std::ldexp(1.0, static_cast<int>(width)) + kGatherCost +
         kPassCost;
}

/// Headroom allowed while a cluster grows: a merge may dip below
/// profitability by this much, because later gates can land in the same
/// support and pay it back (a swap's three CNOTs only become profitable at
/// the third).  The emission check is the final arbiter.
constexpr double kGrowthSlack = 2.0;

// -- support bookkeeping -----------------------------------------------------

/// Sorted union of a gate's targets and controls — the wires a fused block
/// must cover to absorb it.
std::vector<std::size_t> gate_support(const Gate& gate) {
  std::vector<std::size_t> support = gate.targets;
  support.insert(support.end(), gate.controls.begin(), gate.controls.end());
  std::sort(support.begin(), support.end());
  return support;
}

std::size_t union_size(const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b) {
  std::size_t count = a.size();
  for (std::size_t q : b)
    if (!std::binary_search(a.begin(), a.end(), q)) ++count;
  return count;
}

std::vector<std::size_t> sorted_union(const std::vector<std::size_t>& a,
                                      const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Local bit position (LSB-first) of wire \p q inside the ordered support
/// list: support[0] is the most significant local bit, matching the
/// target-list convention of register_layout.hpp.
std::size_t support_bit(const std::vector<std::size_t>& support,
                        std::size_t q) {
  const auto it = std::lower_bound(support.begin(), support.end(), q);
  QTDA_ASSERT(it != support.end() && *it == q, "wire not in fused support");
  return support.size() - 1 -
         static_cast<std::size_t>(std::distance(support.begin(), it));
}

// -- matrix / diagonal embedding ---------------------------------------------

/// The gate's unitary matrix over its own ordered target list.
ComplexMatrix gate_target_matrix(const Gate& gate) {
  return gate.kind == GateKind::kUnitary ? gate.matrix
                                         : gate.single_qubit_matrix();
}

/// True when the gate's action is a diagonal matrix (controls preserve
/// diagonality).  Named diagonal kinds are listed explicitly; dense gates
/// are inspected.
bool is_diagonal_gate(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kPhase:
      return true;
    case GateKind::kUnitary: {
      for (std::size_t r = 0; r < gate.matrix.rows(); ++r)
        for (std::size_t c = 0; c < gate.matrix.cols(); ++c)
          if (r != c && gate.matrix(r, c) != Amplitude{}) return false;
      return true;
    }
    default:
      return false;
  }
}

/// Embeds \p gate (matrix over its targets, conditioned on its controls)
/// into the 2^m×2^m unitary over the sorted wire list \p support, which must
/// contain every target and control.  Identity on the remaining wires and on
/// the control-failing subspace.
ComplexMatrix embed_gate_matrix(const Gate& gate,
                                const std::vector<std::size_t>& support) {
  const ComplexMatrix u = gate_target_matrix(gate);
  const std::size_t m = support.size();
  const std::size_t mg = gate.targets.size();
  const std::uint64_t dim = std::uint64_t{1} << m;
  const std::uint64_t block = std::uint64_t{1} << mg;

  // Support-local bit (LSB-first) of every target / control wire.
  std::vector<std::size_t> target_bit(mg);
  for (std::size_t k = 0; k < mg; ++k)
    target_bit[k] = support_bit(support, gate.targets[mg - 1 - k]);
  std::uint64_t control_mask = 0;
  for (std::size_t c : gate.controls)
    control_mask |= std::uint64_t{1} << support_bit(support, c);

  ComplexMatrix out(dim, dim);
  for (std::uint64_t col = 0; col < dim; ++col) {
    if ((col & control_mask) != control_mask) {
      out(col, col) = Amplitude{1.0, 0.0};
      continue;
    }
    std::uint64_t in_local = 0;
    std::uint64_t cleared = col;
    for (std::size_t k = 0; k < mg; ++k) {
      const std::uint64_t bit = std::uint64_t{1} << target_bit[k];
      if (col & bit) in_local |= std::uint64_t{1} << k;
      cleared &= ~bit;
    }
    for (std::uint64_t r = 0; r < block; ++r) {
      std::uint64_t row = cleared;
      for (std::size_t k = 0; k < mg; ++k)
        if ((r >> k) & 1ULL) row |= std::uint64_t{1} << target_bit[k];
      out(row, col) = u(r, in_local);
    }
  }
  return out;
}

/// Diagonal counterpart of embed_gate_matrix: multiplies \p gate's diagonal
/// into \p diag over the support (the gate must be diagonal).
void multiply_gate_diagonal(std::vector<Amplitude>& diag,
                            const Gate& gate,
                            const std::vector<std::size_t>& support) {
  const ComplexMatrix u = gate_target_matrix(gate);
  const std::size_t mg = gate.targets.size();
  std::vector<std::size_t> target_bit(mg);
  for (std::size_t k = 0; k < mg; ++k)
    target_bit[k] = support_bit(support, gate.targets[mg - 1 - k]);
  std::uint64_t control_mask = 0;
  for (std::size_t c : gate.controls)
    control_mask |= std::uint64_t{1} << support_bit(support, c);

  for (std::uint64_t a = 0; a < diag.size(); ++a) {
    if ((a & control_mask) != control_mask) continue;
    std::uint64_t local = 0;
    for (std::size_t k = 0; k < mg; ++k)
      if (a & (std::uint64_t{1} << target_bit[k]))
        local |= std::uint64_t{1} << k;
    diag[a] *= u(local, local);
  }
}

// -- fusion clusters ---------------------------------------------------------

/// An open fusion cluster (or a closed passthrough op awaiting emission).
struct Cluster {
  bool passthrough = false;  ///< operator / too-wide gate, emitted verbatim
  bool diagonal = false;     ///< all members diagonal; `diag` is the action
  std::vector<std::size_t> support;  ///< sorted wires (incl. folded controls)
  ComplexMatrix matrix;              ///< fused unitary (dense clusters)
  std::vector<Amplitude> diag;       ///< fused diagonal (diagonal clusters)
  std::vector<Gate> gates;           ///< members, for cost-model fallback
  double member_cost = 0.0;          ///< Σ gate_sweep_cost over members
};

/// Grows a cluster's action to a wider support (identity on new wires).
void widen_cluster(Cluster& cluster,
                   const std::vector<std::size_t>& new_support) {
  if (new_support == cluster.support) return;
  if (cluster.diagonal) {
    const std::size_t m = cluster.support.size();
    std::vector<std::size_t> old_bit(m);
    for (std::size_t k = 0; k < m; ++k)
      old_bit[k] = support_bit(new_support, cluster.support[m - 1 - k]);
    std::vector<Amplitude> widened(std::uint64_t{1} << new_support.size());
    for (std::uint64_t a = 0; a < widened.size(); ++a) {
      std::uint64_t local = 0;
      for (std::size_t k = 0; k < m; ++k)
        if (a & (std::uint64_t{1} << old_bit[k]))
          local |= std::uint64_t{1} << k;
      widened[a] = cluster.diag[local];
    }
    cluster.diag = std::move(widened);
  } else {
    Gate as_gate;
    as_gate.kind = GateKind::kUnitary;
    as_gate.targets = cluster.support;
    as_gate.matrix = cluster.matrix;
    cluster.matrix = embed_gate_matrix(as_gate, new_support);
  }
  cluster.support = new_support;
}

void absorb_gate(Cluster& cluster, const Gate& gate,
                 const std::vector<std::size_t>& support_g) {
  if (cluster.gates.empty()) {
    cluster.support = support_g;
    if (cluster.diagonal) {
      cluster.diag.assign(std::uint64_t{1} << support_g.size(),
                          Amplitude{1.0, 0.0});
      multiply_gate_diagonal(cluster.diag, gate, support_g);
    } else {
      cluster.matrix = embed_gate_matrix(gate, support_g);
    }
  } else {
    widen_cluster(cluster, sorted_union(cluster.support, support_g));
    if (cluster.diagonal) {
      multiply_gate_diagonal(cluster.diag, gate, cluster.support);
    } else {
      cluster.matrix =
          matmul(embed_gate_matrix(gate, cluster.support), cluster.matrix);
    }
  }
  cluster.gates.push_back(gate);
  cluster.member_cost += gate_sweep_cost(gate);
}

// -- lowering ----------------------------------------------------------------

/// Fills the precomputed execution data of an op from its `gate` field.
void precompute_op(CompiledOp& op, std::size_t num_qubits) {
  const Gate& gate = op.gate;
  const TargetLayout layout =
      build_target_layout(gate.targets, gate.controls, num_qubits);
  op.tmask = layout.tmask;
  op.cmask = layout.cmask;
  switch (op.kind) {
    case CompiledOp::Kind::kSingleQubit: {
      const ComplexMatrix u = gate_target_matrix(gate);
      op.u00 = u(0, 0);
      op.u01 = u(0, 1);
      op.u10 = u(1, 0);
      op.u11 = u(1, 1);
      break;
    }
    case CompiledOp::Kind::kBlock:
      op.offsets = block_offsets(layout.local_bit_mask);
      break;
    case CompiledOp::Kind::kDiagonal:
      op.diag_extract = build_diagonal_extract(layout.local_bit_mask);
      break;
    case CompiledOp::Kind::kOperator:
      op.contiguous = targets_are_trailing(gate.targets, num_qubits);
      if (!op.contiguous) op.offsets = block_offsets(layout.local_bit_mask);
      op.bases = enumerate_block_bases(std::uint64_t{1} << num_qubits,
                                       layout.tmask, layout.cmask);
      break;
  }
}

/// Lowers one source gate verbatim (no fusion, no control folding) — the
/// arithmetic of the op is bit-identical to Statevector::apply_gate on the
/// original gate.
CompiledOp lower_verbatim(const Gate& gate, std::size_t num_qubits) {
  CompiledOp op;
  if (gate.kind == GateKind::kOperator) {
    op.kind = CompiledOp::Kind::kOperator;
    op.gate = gate;
  } else if (gate.targets.size() == 1) {
    // Named gates materialize their 2×2 matrix once, here, instead of once
    // per application (the per-trajectory cost the plan exists to remove).
    op.kind = CompiledOp::Kind::kSingleQubit;
    op.gate.kind = GateKind::kUnitary;
    op.gate.matrix = gate_target_matrix(gate);
    op.gate.targets = gate.targets;
    op.gate.controls = gate.controls;
  } else {
    op.kind = CompiledOp::Kind::kBlock;
    op.gate = gate;
  }
  precompute_op(op, num_qubits);
  return op;
}

/// Lowers a finished fused cluster (≥ 2 members, cost-model approved).
CompiledOp lower_cluster(const Cluster& cluster, std::size_t num_qubits) {
  CompiledOp op;
  op.fused_gates = cluster.gates.size();
  op.gate.kind = GateKind::kUnitary;
  op.gate.targets = cluster.support;
  if (cluster.diagonal) {
    if (cluster.support.size() == 1) {
      op.kind = CompiledOp::Kind::kSingleQubit;
      op.gate.matrix = ComplexMatrix(2, 2);
      op.gate.matrix(0, 0) = cluster.diag[0];
      op.gate.matrix(1, 1) = cluster.diag[1];
    } else {
      // The matrix stays empty: engines run the table (dense_gate()
      // densifies for the generic fallback only).
      op.kind = CompiledOp::Kind::kDiagonal;
      op.diagonal = cluster.diag;
    }
  } else {
    op.gate.matrix = cluster.matrix;
    op.kind = cluster.support.size() == 1 ? CompiledOp::Kind::kSingleQubit
                                          : CompiledOp::Kind::kBlock;
  }
  precompute_op(op, num_qubits);
  return op;
}

/// Whether emitting \p cluster as one fused op beats replaying its member
/// gates verbatim (per-amplitude cost model above; ties go to the fused op,
/// which still saves the extra passes).
bool fusion_pays_off(const Cluster& cluster) {
  if (cluster.gates.size() < 2) return false;
  return fused_sweep_cost(cluster.diagonal, cluster.support.size()) <=
         cluster.member_cost;
}

}  // namespace

Gate CompiledOp::dense_gate() const {
  if (kind != Kind::kDiagonal) return gate;
  const std::uint64_t dim = diagonal.size();
  // The built-in engines all execute the table natively; densifying a wide
  // diagonal would allocate dim² entries, so the generic fallback is
  // deliberately bounded.
  QTDA_REQUIRE(dim <= 256,
               "fused diagonal too wide to densify for the generic backend "
               "path; override SimulatorBackend::apply_plan with native "
               "diagonal execution, or compile with "
               "CompilerOptions::diagonal_width <= 8");
  Gate dense = gate;
  dense.matrix = ComplexMatrix(dim, dim);
  for (std::uint64_t a = 0; a < dim; ++a) dense.matrix(a, a) = diagonal[a];
  return dense;
}

CompilerOptions compiler_options_from_env(CompilerOptions base) {
  if (const char* fuse = std::getenv("QTDA_FUSE");
      fuse != nullptr && *fuse != '\0') {
    const std::string value(fuse);
    QTDA_REQUIRE(value == "0" || value == "1",
                 "QTDA_FUSE=\"" << value << "\" is not a valid fusion switch "
                                   "(use 0 or 1)");
    base.fuse = value == "1";
  }
  if (const char* width = std::getenv("QTDA_FUSE_WIDTH");
      width != nullptr && *width != '\0') {
    char* end = nullptr;
    const long value = std::strtol(width, &end, 10);
    QTDA_REQUIRE(end != width && *end == '\0' && value >= 1,
                 "QTDA_FUSE_WIDTH=\""
                     << width
                     << "\" is not a valid fused-block width (need an "
                        "integer >= 1)");
    base.fuse_width = static_cast<std::size_t>(value);
    // The override is the user saying "no fused support wider than this" —
    // it bounds the diagonal tables too, so forcing width 1 approaches the
    // gate-by-gate walk instead of leaving 12-wide diagonals behind.
    base.diagonal_width =
        std::min(base.diagonal_width, static_cast<std::size_t>(value));
  }
  return base;
}

std::string compiler_options_cache_key(const CompilerOptions& options) {
  std::ostringstream os;
  os << "fuse=" << (options.fuse ? 1 : 0) << ",width=" << options.fuse_width
     << ",diag=" << options.diagonal_width
     << ",noise=" << (options.preserve_noise_slots ? 1 : 0);
  return os.str();
}

std::size_t ExecutionPlan::memory_bytes() const {
  std::size_t bytes = sizeof(ExecutionPlan);
  for (const CompiledOp& op : ops_) {
    bytes += sizeof(CompiledOp);
    const std::size_t matrix_entries =
        op.gate.matrix.rows() * op.gate.matrix.cols();
    // Dense matrix + diagonal table, plus their complex64 mirrors as if
    // already materialized.
    bytes += matrix_entries *
             (sizeof(Amplitude) + sizeof(std::complex<float>));
    bytes += op.diagonal.size() *
             (sizeof(Amplitude) + sizeof(std::complex<float>));
    bytes += op.offsets.size() * sizeof(std::uint64_t);
    bytes += op.bases.size() * sizeof(std::uint64_t);
    bytes += op.noise_qubits.size() * sizeof(std::size_t);
    bytes += op.gate.targets.size() * sizeof(std::size_t);
    bytes += op.gate.controls.size() * sizeof(std::size_t);
  }
  bytes += (scratch_.block.capacity() + scratch_.block_out.capacity() +
            scratch_.packed_in.capacity() + scratch_.packed_out.capacity()) *
           sizeof(Amplitude);
  bytes += (scratch_.block_f32.capacity() + scratch_.block_out_f32.capacity() +
            scratch_.packed_in_f32.capacity() +
            scratch_.packed_out_f32.capacity()) *
           sizeof(std::complex<float>);
  return bytes;
}

std::string CompilerStats::to_string() const {
  std::ostringstream os;
  os << "compiled " << gates_before << " gates -> " << gates_after
     << " ops (" << fused_blocks << " fused blocks, " << diagonal_blocks
     << " of them diagonal, " << operator_gates << " operator gates)\n";
  for (std::size_t w = 0; w < block_width_histogram.size(); ++w) {
    if (block_width_histogram[w] == 0) continue;
    os << "  fused blocks over " << w << " qubit" << (w == 1 ? "" : "s")
       << ": " << block_width_histogram[w] << '\n';
  }
  return os.str();
}

namespace {

/// Per-compilation fusion-decision counters, flushed once per
/// compile_circuit call.
void record_compile_telemetry(const CompilerStats& stats) {
  if (!telemetry::enabled()) return;
  static telemetry::Counter& compilations =
      telemetry::registry().counter("compiler.compilations");
  static telemetry::Counter& gates_before =
      telemetry::registry().counter("compiler.gates_before");
  static telemetry::Counter& gates_after =
      telemetry::registry().counter("compiler.gates_after");
  static telemetry::Counter& fused_blocks =
      telemetry::registry().counter("compiler.fused_blocks");
  static telemetry::Counter& diagonal_blocks =
      telemetry::registry().counter("compiler.diagonal_blocks");
  static telemetry::Counter& operator_gates =
      telemetry::registry().counter("compiler.operator_gates");
  compilations.add(1);
  gates_before.add(stats.gates_before);
  gates_after.add(stats.gates_after);
  fused_blocks.add(stats.fused_blocks);
  diagonal_blocks.add(stats.diagonal_blocks);
  operator_gates.add(stats.operator_gates);
}

}  // namespace

ExecutionPlan compile_circuit(const Circuit& circuit,
                              const CompilerOptions& options) {
  QTDA_SPAN("compile");
  ExecutionPlan plan;
  plan.num_qubits_ = circuit.num_qubits();
  plan.global_phase_ = circuit.global_phase();
  plan.noise_slots_ = options.preserve_noise_slots;
  plan.stats_.gates_before = circuit.gate_count();

  // Noise slots pin one op per source gate: fusing across gates would move
  // the state the depolarizing events see and break RNG-order parity.
  const bool fuse = options.fuse && !options.preserve_noise_slots;
  const std::size_t width =
      std::min(std::max<std::size_t>(options.fuse_width, 1), kMaxFuseWidth);
  const std::size_t diagonal_width = std::min(
      std::max<std::size_t>(options.diagonal_width, 1), kMaxDiagonalWidth);

  if (!fuse) {
    plan.ops_.reserve(circuit.gate_count());
    for (const Gate& gate : circuit.gates()) {
      CompiledOp op = lower_verbatim(gate, plan.num_qubits_);
      if (options.preserve_noise_slots) {
        op.noise_qubits = gate.targets;
        op.noise_qubits.insert(op.noise_qubits.end(), gate.controls.begin(),
                               gate.controls.end());
        op.noise_multi = gate.targets.size() + gate.controls.size() >= 2;
      }
      if (op.kind == CompiledOp::Kind::kOperator)
        ++plan.stats_.operator_gates;
      plan.ops_.push_back(std::move(op));
    }
    plan.stats_.gates_after = plan.ops_.size();
    record_compile_telemetry(plan.stats_);
    return plan;
  }

  // Greedy qsim-style clustering.  Clusters are emitted in creation order;
  // a gate may join any cluster created at or after the newest cluster
  // touching one of its wires (everything in between is wire-disjoint from
  // the gate, hence commutes with it).  Diagonal gates prefer diagonal
  // clusters — unbounded absorption at constant per-amplitude cost — but
  // also fold into dense clusters; dense gates only fold into dense ones.
  std::vector<Cluster> clusters;
  std::vector<std::ptrdiff_t> last_toucher(circuit.num_qubits(), -1);

  for (const Gate& gate : circuit.gates()) {
    const std::vector<std::size_t> support_g = gate_support(gate);
    const bool diagonal = gate.kind != GateKind::kOperator &&
                          is_diagonal_gate(gate) &&
                          support_g.size() <= diagonal_width;
    const bool fusible =
        gate.kind != GateKind::kOperator &&
        (diagonal || support_g.size() <= width);

    std::ptrdiff_t earliest = 0;
    for (std::size_t q : support_g)
      earliest = std::max(earliest, last_toucher[q]);

    std::ptrdiff_t host = -1;
    if (fusible) {
      for (std::ptrdiff_t ci = std::max<std::ptrdiff_t>(earliest, 0);
           ci < static_cast<std::ptrdiff_t>(clusters.size()); ++ci) {
        const Cluster& cluster = clusters[ci];
        if (cluster.passthrough) continue;
        const std::size_t merged = union_size(cluster.support, support_g);
        bool fits = cluster.diagonal
                        ? (diagonal && merged <= diagonal_width)
                        : (support_g.size() <= width && merged <= width);
        // Don't let an unprofitable union swallow gates that would pair
        // better elsewhere (an H-wall packed to width 4 would reject as one
        // big block; kept to pairs it fuses).  kGrowthSlack keeps room for
        // clusters whose profit arrives a few gates later.
        fits = fits && fused_sweep_cost(cluster.diagonal, merged) <=
                           cluster.member_cost + gate_sweep_cost(gate) +
                               kGrowthSlack;
        if (fits) {
          host = ci;
          break;
        }
      }
    }
    if (host < 0) {
      Cluster cluster;
      if (!fusible) {
        cluster.passthrough = true;
        cluster.support = support_g;
        cluster.gates.push_back(gate);
      } else {
        cluster.diagonal = diagonal;
        absorb_gate(cluster, gate, support_g);
      }
      clusters.push_back(std::move(cluster));
      host = static_cast<std::ptrdiff_t>(clusters.size()) - 1;
    } else {
      absorb_gate(clusters[host], gate, support_g);
    }
    for (std::size_t q : support_g) last_toucher[q] = host;
  }

  for (const Cluster& cluster : clusters) {
    if (cluster.passthrough || !fusion_pays_off(cluster)) {
      // Unprofitable clusters replay their members verbatim — fusion never
      // makes a circuit slower than the uncompiled walk.
      for (const Gate& gate : cluster.gates) {
        CompiledOp op = lower_verbatim(gate, plan.num_qubits_);
        if (op.kind == CompiledOp::Kind::kOperator)
          ++plan.stats_.operator_gates;
        plan.ops_.push_back(std::move(op));
      }
      continue;
    }
    CompiledOp op = lower_cluster(cluster, plan.num_qubits_);
    ++plan.stats_.fused_blocks;
    if (cluster.diagonal) ++plan.stats_.diagonal_blocks;
    const std::size_t w = cluster.support.size();
    if (plan.stats_.block_width_histogram.size() <= w)
      plan.stats_.block_width_histogram.resize(w + 1, 0);
    ++plan.stats_.block_width_histogram[w];
    plan.ops_.push_back(std::move(op));
  }
  plan.stats_.gates_after = plan.ops_.size();
  record_compile_telemetry(plan.stats_);
  return plan;
}

}  // namespace qtda
