/// \file qasm.hpp
/// \brief OpenQASM 2.0 export of circuit IR.
///
/// The paper's stated goal is making QTDA runnable on existing quantum
/// SDKs; this exporter bridges our IR to that world: the Trotterized QPE
/// circuits (all named gates with ≤ 2 controls) serialize to standard
/// qelib1 QASM that Qiskit/PennyLane can ingest.  Dense kUnitary oracles
/// have no QASM-2 representation and are rejected — synthesize through the
/// Trotter backend first.
#pragma once

#include <string>

#include "quantum/circuit.hpp"

namespace qtda {

/// Options for the exporter.
struct QasmOptions {
  std::string register_name = "q";
  bool include_measurements = true;  ///< measure every qubit at the end
  bool emit_global_phase_comment = true;
};

/// Serializes a circuit to OpenQASM 2.0.  Throws qtda::Error for gates that
/// QASM 2 cannot express (dense unitaries; more than two controls; >1
/// control on parameterized rotations other than Phase).
std::string to_qasm(const Circuit& circuit, const QasmOptions& options = {});

}  // namespace qtda
