/// \file executor.hpp
/// \brief Circuit execution and shot sampling (ideal and noisy), plus the
/// telemetry-aware plan-op walk shared by every engine's apply_plan.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/cancel.hpp"
#include "common/random.hpp"
#include "common/telemetry.hpp"
#include "quantum/circuit.hpp"
#include "quantum/compiler.hpp"
#include "quantum/noise.hpp"
#include "quantum/statevector.hpp"

namespace qtda {

namespace plan_accounting {

/// One slot per CompiledOp::Kind (kSingleQubit, kBlock, kDiagonal,
/// kOperator), in enum order.
constexpr std::size_t kNumKinds = 4;

/// Flushes one plan execution's per-kind op counts and nanoseconds into the
/// exec.ops.* / exec.ns.* telemetry counters.  Called once per apply_plan
/// (not per op), so the registry is touched O(1) times per evolution.
void record(const std::array<std::uint64_t, kNumKinds>& ns,
            const std::array<std::uint64_t, kNumKinds>& ops);

}  // namespace plan_accounting

/// Walks a plan's ops through \p fn.  With telemetry disabled this is the
/// plain range-for every engine ran before instrumentation existed; with it
/// enabled, each op is timed and the totals are flushed per kind.  The
/// callback's arithmetic is identical either way — timing wraps the call,
/// so bit-identity fingerprints cannot move.  Each op boundary is also a
/// cooperative-cancellation checkpoint: a served request whose deadline
/// passes mid-evolution aborts between ops (each op is a full register
/// pass, so this bounds overrun without per-amplitude checks).
template <typename Fn>
void for_each_plan_op_accounted(const ExecutionPlan& plan, Fn&& fn) {
  if (!telemetry::enabled()) {
    for (const CompiledOp& op : plan.ops()) {
      cancel::checkpoint();
      fn(op);
    }
    return;
  }
  std::array<std::uint64_t, plan_accounting::kNumKinds> ns{};
  std::array<std::uint64_t, plan_accounting::kNumKinds> ops{};
  for (const CompiledOp& op : plan.ops()) {
    cancel::checkpoint();
    const auto start = std::chrono::steady_clock::now();
    fn(op);
    const auto stop = std::chrono::steady_clock::now();
    const auto kind = static_cast<std::size_t>(op.kind);
    ns[kind] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    ops[kind] += 1;
  }
  plan_accounting::record(ns, ops);
}

/// Runs a circuit from |0…0⟩ and returns the final state.
Statevector run_circuit(const Circuit& circuit);

/// Runs from a given initial basis state.
Statevector run_circuit_from_basis(const Circuit& circuit,
                                   std::uint64_t initial_state);

/// Ideal sampling: one state-vector evolution, exact multinomial shots over
/// the measured qubits (MSB-first outcome encoding).
std::vector<std::uint64_t> sample_circuit(
    const Circuit& circuit, const std::vector<std::size_t>& measured_qubits,
    std::size_t shots, Rng& rng);

/// Noisy sampling by Monte-Carlo trajectories: each shot evolves its own
/// trajectory with stochastic Pauli errors injected per gate, then draws one
/// outcome.  Exact but O(shots · circuit) — use modest shot counts.
std::vector<std::uint64_t> sample_circuit_noisy(
    const Circuit& circuit, const std::vector<std::size_t>& measured_qubits,
    std::size_t shots, const NoiseModel& noise, Rng& rng);

}  // namespace qtda
