/// \file executor.hpp
/// \brief Circuit execution and shot sampling (ideal and noisy).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "quantum/circuit.hpp"
#include "quantum/noise.hpp"
#include "quantum/statevector.hpp"

namespace qtda {

/// Runs a circuit from |0…0⟩ and returns the final state.
Statevector run_circuit(const Circuit& circuit);

/// Runs from a given initial basis state.
Statevector run_circuit_from_basis(const Circuit& circuit,
                                   std::uint64_t initial_state);

/// Ideal sampling: one state-vector evolution, exact multinomial shots over
/// the measured qubits (MSB-first outcome encoding).
std::vector<std::uint64_t> sample_circuit(
    const Circuit& circuit, const std::vector<std::size_t>& measured_qubits,
    std::size_t shots, Rng& rng);

/// Noisy sampling by Monte-Carlo trajectories: each shot evolves its own
/// trajectory with stochastic Pauli errors injected per gate, then draws one
/// outcome.  Exact but O(shots · circuit) — use modest shot counts.
std::vector<std::uint64_t> sample_circuit_noisy(
    const Circuit& circuit, const std::vector<std::size_t>& measured_qubits,
    std::size_t shots, const NoiseModel& noise, Rng& rng);

}  // namespace qtda
