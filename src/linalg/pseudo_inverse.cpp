#include "linalg/pseudo_inverse.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace qtda {

RealMatrix pseudo_inverse_symmetric(const RealMatrix& a, double tolerance) {
  QTDA_REQUIRE(a.is_square(), "pseudo-inverse needs a square matrix");
  const std::size_t n = a.rows();
  if (n == 0) return a;
  const auto eigen = symmetric_eigen(a);
  double max_abs = 0.0;
  for (double v : eigen.values) max_abs = std::max(max_abs, std::abs(v));
  const double threshold = tolerance * std::max(max_abs, 1e-300);

  // A⁺ = V · diag(1/λ over the nonzero spectrum) · Vᵀ.
  RealMatrix pinv(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = eigen.values[k];
    if (std::abs(lambda) <= threshold) continue;
    const double inv = 1.0 / lambda;
    for (std::size_t i = 0; i < n; ++i) {
      const double vik = eigen.vectors(i, k) * inv;
      if (vik == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j)
        pinv(i, j) += vik * eigen.vectors(j, k);
    }
  }
  return pinv;
}

}  // namespace qtda
