/// \file rank.hpp
/// \brief Numeric rank of dense matrices.
///
/// Classical Betti numbers need ranks of boundary operators:
///   β_k = |S_k| − rank ∂_k − rank ∂_{k+1}.
/// Boundary matrices have entries in {−1, 0, +1}; Gaussian elimination with
/// full partial pivoting and a relative tolerance is exact for them in
/// practice.  A second, independent path computes rank over GF(p) (p a
/// 62-bit-safe prime) which for integer matrices equals the rational rank
/// with probability 1 − O(1/p); the two are cross-checked in tests.
#pragma once

#include <cstdint>

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace qtda {

/// Numeric rank via row-echelon reduction with partial pivoting; entries
/// smaller than tol·max|a_ij| are treated as zero.
std::size_t rank(const RealMatrix& a, double tolerance = 1e-10);

/// Rank over GF(p) for an integer-valued matrix (entries are rounded; a
/// non-integer entry throws).  For boundary matrices this equals the rank
/// over the rationals.
std::size_t rank_mod_p(const RealMatrix& a,
                       std::uint64_t p = 2147483647ULL /* 2^31−1 */);

/// Convenience: rank of a sparse matrix (densified; boundary matrices are
/// small enough).
std::size_t rank(const SparseMatrix& a, double tolerance = 1e-10);

/// Nullity = cols − rank.
std::size_t nullity(const RealMatrix& a, double tolerance = 1e-10);

}  // namespace qtda
