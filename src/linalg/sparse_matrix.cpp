#include "linalg/sparse_matrix.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "quantum/simd_kernels.hpp"

namespace qtda {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_offsets_(rows + 1, 0) {}

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    QTDA_REQUIRE(t.row < rows && t.col < cols,
                 "triplet (" << t.row << ',' << t.col << ") out of " << rows
                             << 'x' << cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m(rows, cols);
  m.col_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_offsets_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      double value = triplets[i].value;
      const std::size_t col = triplets[i].col;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == col) {
        value += triplets[i].value;  // merge duplicates
        ++i;
      }
      if (value != 0.0) {
        m.col_indices_.push_back(col);
        m.values_.push_back(value);
      }
    }
  }
  m.row_offsets_[rows] = m.values_.size();
  return m;
}

RealVector SparseMatrix::multiply(const RealVector& x) const {
  QTDA_REQUIRE(x.size() == cols_, "sparse matvec shape mismatch");
  RealVector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      acc += values_[k] * x[col_indices_[k]];
    y[r] = acc;
  }
  return y;
}

RealVector SparseMatrix::multiply_transposed(const RealVector& x) const {
  QTDA_REQUIRE(x.size() == rows_, "sparse matvec-T shape mismatch");
  RealVector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      y[col_indices_[k]] += values_[k] * xr;
  }
  return y;
}

ComplexVector SparseMatrix::multiply(const ComplexVector& x) const {
  QTDA_REQUIRE(x.size() == cols_, "sparse matvec shape mismatch");
  ComplexVector y(rows_);
  multiply(x.data(), y.data());
  return y;
}

void SparseMatrix::multiply(const std::complex<double>* x,
                            std::complex<double>* y, bool parallel) const {
  const std::size_t* offsets = row_offsets_.data();
  const std::size_t* cols = col_indices_.data();
  const double* vals = values_.data();
  // Single shared hot kernel for every engine: at QTDA_SIMD=0 the scalar
  // branch is the historical row-dot loop; the vector path lane-splits each
  // row dot (the one reassociating kernel — see simd_kernels.hpp).
  const SimdLevel level = active_simd_level();
  const auto rows_body = [&](std::size_t lo, std::size_t hi) {
    simd::csr_matvec_rows(level, offsets, cols, vals, x, y, lo, hi);
  };
  if (parallel) {
    parallel_for_chunked(0, rows_, rows_body, /*min_parallel_size=*/4096);
  } else {
    rows_body(0, rows_);
  }
}

RealMatrix SparseMatrix::gram() const {
  // (AᵀA)(i,j) = Σ_r A(r,i)·A(r,j): accumulate per-row outer products.
  RealMatrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k1 = row_offsets_[r]; k1 < row_offsets_[r + 1]; ++k1) {
      for (std::size_t k2 = row_offsets_[r]; k2 < row_offsets_[r + 1]; ++k2) {
        g(col_indices_[k1], col_indices_[k2]) += values_[k1] * values_[k2];
      }
    }
  }
  return g;
}

RealMatrix SparseMatrix::outer_gram() const {
  // (AAᵀ)(r,s) = Σ_c A(r,c)·A(s,c): go through the transpose's rows.
  return transposed().gram();
}

SparseMatrix SparseMatrix::gram_sparse() const {
  // Same per-row outer-product accumulation as gram(), but into triplets so
  // the |S_k|×|S_k| Laplacian never materializes densely.  Boundary
  // operators have k+1 nonzeros per column, so the triplet count stays
  // near-linear in the simplex count.
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k1 = row_offsets_[r]; k1 < row_offsets_[r + 1]; ++k1) {
      for (std::size_t k2 = row_offsets_[r]; k2 < row_offsets_[r + 1]; ++k2) {
        triplets.push_back(
            {col_indices_[k1], col_indices_[k2], values_[k1] * values_[k2]});
      }
    }
  }
  return from_triplets(cols_, cols_, std::move(triplets));
}

SparseMatrix SparseMatrix::outer_gram_sparse() const {
  return transposed().gram_sparse();
}

SparseMatrix SparseMatrix::scaled(double factor) const {
  SparseMatrix out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

RealMatrix SparseMatrix::to_dense() const {
  RealMatrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      d(r, col_indices_[k]) = values_[k];
  return d;
}

SparseMatrix SparseMatrix::transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      triplets.push_back({col_indices_[k], r, values_[k]});
  return from_triplets(cols_, rows_, std::move(triplets));
}

SparseMatrix sparse_add(const SparseMatrix& a, const SparseMatrix& b) {
  QTDA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "sparse_add shape mismatch: " << a.rows() << 'x' << a.cols()
                                             << " vs " << b.rows() << 'x'
                                             << b.cols());
  std::vector<Triplet> triplets;
  triplets.reserve(a.nonzeros() + b.nonzeros());
  for (const SparseMatrix* m : {&a, &b}) {
    const auto& offsets = m->row_offsets();
    const auto& cols = m->col_indices();
    const auto& vals = m->values();
    for (std::size_t r = 0; r < m->rows(); ++r)
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
        triplets.push_back({r, cols[k], vals[k]});
  }
  return SparseMatrix::from_triplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace qtda
