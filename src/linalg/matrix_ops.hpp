/// \file matrix_ops.hpp
/// \brief Dense matrix kernels: products, transposes, norms, predicates.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// C = A·B.  Requires A.cols() == B.rows().
RealMatrix matmul(const RealMatrix& a, const RealMatrix& b);
ComplexMatrix matmul(const ComplexMatrix& a, const ComplexMatrix& b);

/// y = A·x.
RealVector matvec(const RealMatrix& a, const RealVector& x);
ComplexVector matvec(const ComplexMatrix& a, const ComplexVector& x);

/// Transpose.
RealMatrix transpose(const RealMatrix& a);
/// Conjugate transpose.
ComplexMatrix adjoint(const ComplexMatrix& a);

/// Elementwise sum / difference / scalar multiple.
RealMatrix add(const RealMatrix& a, const RealMatrix& b);
RealMatrix subtract(const RealMatrix& a, const RealMatrix& b);
RealMatrix scale(const RealMatrix& a, double factor);
ComplexMatrix add(const ComplexMatrix& a, const ComplexMatrix& b);
ComplexMatrix scale(const ComplexMatrix& a, std::complex<double> factor);

/// Promotes a real matrix to complex.
ComplexMatrix to_complex(const RealMatrix& a);

/// Kronecker product (used to build Pauli-string matrices in tests).
ComplexMatrix kronecker(const ComplexMatrix& a, const ComplexMatrix& b);

/// Frobenius norm.
double frobenius_norm(const RealMatrix& a);
double frobenius_norm(const ComplexMatrix& a);

/// Max-abs entry difference; matrices must have equal shape.
double max_abs_diff(const RealMatrix& a, const RealMatrix& b);
double max_abs_diff(const ComplexMatrix& a, const ComplexMatrix& b);

/// True when |A − Aᵀ|∞ ≤ tol.
bool is_symmetric(const RealMatrix& a, double tol = 1e-12);
/// True when |A − A†|∞ ≤ tol.
bool is_hermitian(const ComplexMatrix& a, double tol = 1e-12);
/// True when |A†A − I|∞ ≤ tol.
bool is_unitary(const ComplexMatrix& a, double tol = 1e-10);

/// Trace.
double trace(const RealMatrix& a);
std::complex<double> trace(const ComplexMatrix& a);

}  // namespace qtda
