/// \file pseudo_inverse.hpp
/// \brief Moore–Penrose pseudo-inverse of symmetric PSD matrices.
///
/// Needed by the persistent Laplacian's Schur complement: the block of the
/// up-Laplacian on the "new" simplices is PSD but usually singular, so the
/// complement uses C⁺ instead of C⁻¹.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// Pseudo-inverse of a symmetric matrix via its eigendecomposition.
/// Eigenvalues with |λ| ≤ tol·max|λ| are treated as zero.
RealMatrix pseudo_inverse_symmetric(const RealMatrix& a,
                                    double tolerance = 1e-10);

}  // namespace qtda
