/// \file linear_operator.hpp
/// \brief Matrix-free complex linear operators.
///
/// The sparse QPE oracle applies exp(iθΔ̃) to system sub-registers without
/// ever materializing the 2^q×2^q unitary.  This interface is the contract
/// between such operators and the simulator backends: an operator knows its
/// dimension and how to map an input block of amplitudes to an output block.
/// Batched application exists so an implementation can amortize shared setup
/// (e.g. Chebyshev coefficients) and parallelize across blocks itself,
/// avoiding nested use of the shared thread pool.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// A linear map C^d → C^d applied out-of-place to amplitude blocks.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Block dimension d (a power of two when used as a sub-register oracle).
  virtual std::size_t dimension() const = 0;

  /// Short diagnostic name ("dense", "chebyshev-exp", …).
  virtual std::string name() const = 0;

  /// y = Op·x.  \p x and \p y are length-dimension() buffers that do not
  /// alias.  Must be safe to call concurrently from several threads.
  virtual void apply(const std::complex<double>* x,
                     std::complex<double>* y) const = 0;

  /// Applies the operator to \p count consecutive blocks (x and y hold
  /// count·dimension() scalars).  The default loops over apply(); heavy
  /// operators override this to share setup and parallelize across blocks.
  virtual void apply_batch(const std::complex<double>* x,
                           std::complex<double>* y, std::size_t count) const {
    const std::size_t d = dimension();
    for (std::size_t b = 0; b < count; ++b)
      apply(x + b * d, y + b * d);
  }

  /// complex64 batch rail for the float-precision engines.  The default
  /// widens to double, runs apply_batch, and narrows back — correct for any
  /// operator at the cost of a transient double buffer (the accuracy is set
  /// by the float endpoints either way).  Operators with a profitable native
  /// float path (the Chebyshev oracle) override this.
  virtual void apply_batch_f32(const std::complex<float>* x,
                               std::complex<float>* y,
                               std::size_t count) const {
    const std::size_t total = count * dimension();
    std::vector<std::complex<double>> wide_x(total);
    std::vector<std::complex<double>> wide_y(total);
    for (std::size_t i = 0; i < total; ++i)
      wide_x[i] = std::complex<double>(x[i].real(), x[i].imag());
    apply_batch(wide_x.data(), wide_y.data(), count);
    for (std::size_t i = 0; i < total; ++i)
      y[i] = std::complex<float>(static_cast<float>(wide_y[i].real()),
                                 static_cast<float>(wide_y[i].imag()));
  }
};

/// Adapter presenting a dense matrix as a LinearOperator (reference
/// implementation used by tests to validate matrix-free paths).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(ComplexMatrix matrix) : matrix_(std::move(matrix)) {
    QTDA_REQUIRE(matrix_.is_square() && matrix_.rows() > 0,
                 "DenseOperator needs a non-empty square matrix");
  }

  std::size_t dimension() const override { return matrix_.rows(); }
  std::string name() const override { return "dense"; }

  void apply(const std::complex<double>* x,
             std::complex<double>* y) const override {
    const std::size_t n = matrix_.rows();
    for (std::size_t r = 0; r < n; ++r) {
      std::complex<double> acc{};
      const std::complex<double>* row = matrix_.row(r);
      for (std::size_t c = 0; c < n; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  }

 private:
  ComplexMatrix matrix_;
};

/// Adapter applying the entrywise complex conjugate of a wrapped operator:
/// y = conj(Op · conj(x)), i.e. the action of the matrix conj(Op).
///
/// This is the column-register half of vectorized density-matrix evolution:
/// vec(UρU†) = (U ⊗ conj(U))·vec(ρ), so an exact-channel engine can run any
/// matrix-free oracle on the column wires by wrapping it here — the inner
/// operator is applied verbatim with its input and output conjugated, no
/// matrix is ever formed.
class ConjugatedOperator final : public LinearOperator {
 public:
  /// Non-owning borrow for call-scoped wrapping: \p inner must outlive this
  /// adapter (the density-matrix engine builds one per application).
  explicit ConjugatedOperator(const LinearOperator& inner) : inner_(&inner) {}

  std::size_t dimension() const override { return inner_->dimension(); }
  std::string name() const override { return "conj(" + inner_->name() + ")"; }

  void apply(const std::complex<double>* x,
             std::complex<double>* y) const override {
    // Local scratch keeps apply() safe for concurrent callers, matching the
    // thread-safety contract of the wrapped operator.
    std::vector<std::complex<double>> conj_x(dimension());
    for (std::size_t i = 0; i < conj_x.size(); ++i) conj_x[i] = std::conj(x[i]);
    inner_->apply(conj_x.data(), y);
    for (std::size_t i = 0; i < conj_x.size(); ++i) y[i] = std::conj(y[i]);
  }

  void apply_batch(const std::complex<double>* x, std::complex<double>* y,
                   std::size_t count) const override {
    // Conjugate the whole batch so the inner operator keeps its cross-block
    // amortization (shared coefficients, block-level parallelism).
    const std::size_t total = count * dimension();
    std::vector<std::complex<double>> conj_x(total);
    for (std::size_t i = 0; i < total; ++i) conj_x[i] = std::conj(x[i]);
    inner_->apply_batch(conj_x.data(), y, count);
    for (std::size_t i = 0; i < total; ++i) y[i] = std::conj(y[i]);
  }

  /// Conjugation commutes with precision: conjugate the float batch and hand
  /// it to the inner operator's float rail (keeping a native inner float
  /// path native instead of widening around it).
  void apply_batch_f32(const std::complex<float>* x, std::complex<float>* y,
                       std::size_t count) const override {
    const std::size_t total = count * dimension();
    std::vector<std::complex<float>> conj_x(total);
    for (std::size_t i = 0; i < total; ++i) conj_x[i] = std::conj(x[i]);
    inner_->apply_batch_f32(conj_x.data(), y, count);
    for (std::size_t i = 0; i < total; ++i) y[i] = std::conj(y[i]);
  }

  const LinearOperator& inner() const { return *inner_; }

 private:
  const LinearOperator* inner_;
};

}  // namespace qtda
