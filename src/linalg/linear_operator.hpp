/// \file linear_operator.hpp
/// \brief Matrix-free complex linear operators.
///
/// The sparse QPE oracle applies exp(iθΔ̃) to system sub-registers without
/// ever materializing the 2^q×2^q unitary.  This interface is the contract
/// between such operators and the simulator backends: an operator knows its
/// dimension and how to map an input block of amplitudes to an output block.
/// Batched application exists so an implementation can amortize shared setup
/// (e.g. Chebyshev coefficients) and parallelize across blocks itself,
/// avoiding nested use of the shared thread pool.
#pragma once

#include <complex>
#include <cstddef>
#include <string>

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// A linear map C^d → C^d applied out-of-place to amplitude blocks.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Block dimension d (a power of two when used as a sub-register oracle).
  virtual std::size_t dimension() const = 0;

  /// Short diagnostic name ("dense", "chebyshev-exp", …).
  virtual std::string name() const = 0;

  /// y = Op·x.  \p x and \p y are length-dimension() buffers that do not
  /// alias.  Must be safe to call concurrently from several threads.
  virtual void apply(const std::complex<double>* x,
                     std::complex<double>* y) const = 0;

  /// Applies the operator to \p count consecutive blocks (x and y hold
  /// count·dimension() scalars).  The default loops over apply(); heavy
  /// operators override this to share setup and parallelize across blocks.
  virtual void apply_batch(const std::complex<double>* x,
                           std::complex<double>* y, std::size_t count) const {
    const std::size_t d = dimension();
    for (std::size_t b = 0; b < count; ++b)
      apply(x + b * d, y + b * d);
  }
};

/// Adapter presenting a dense matrix as a LinearOperator (reference
/// implementation used by tests to validate matrix-free paths).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(ComplexMatrix matrix) : matrix_(std::move(matrix)) {
    QTDA_REQUIRE(matrix_.is_square() && matrix_.rows() > 0,
                 "DenseOperator needs a non-empty square matrix");
  }

  std::size_t dimension() const override { return matrix_.rows(); }
  std::string name() const override { return "dense"; }

  void apply(const std::complex<double>* x,
             std::complex<double>* y) const override {
    const std::size_t n = matrix_.rows();
    for (std::size_t r = 0; r < n; ++r) {
      std::complex<double> acc{};
      const std::complex<double>* row = matrix_.row(r);
      for (std::size_t c = 0; c < n; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  }

 private:
  ComplexMatrix matrix_;
};

}  // namespace qtda
