#include "linalg/expm_multiply.hpp"

#include <cmath>
#include <list>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/thread_annotations.hpp"
#include "quantum/simd_kernels.hpp"

namespace qtda {

namespace {

/// Expansion order covering |J_k(z)|: the Bessel tail turns superexponential
/// past k ≈ z, with a transition region of width O(z^{1/3}).
std::size_t chebyshev_order(double z) {
  const double az = std::abs(z);
  return static_cast<std::size_t>(std::ceil(az)) +
         static_cast<std::size_t>(12.0 * std::cbrt(az + 1.0)) + 25;
}

/// Computes the truncated Jacobi–Anger coefficient vector
/// a_k = (2 − δ_{k0}) i^k J_k(z) e^{iφ} for z = θh, φ = θc.
std::vector<std::complex<double>> exp_coefficients(double z, double phi,
                                                   double tolerance) {
  const double az = std::abs(z);
  const std::vector<double> bessel =
      bessel_j_sequence(chebyshev_order(az), az);
  // Truncate the tail only — below k ≈ z the coefficients oscillate through
  // small values without having decayed.
  std::size_t last = 0;
  for (std::size_t k = 0; k < bessel.size(); ++k)
    if (std::abs(bessel[k]) > tolerance) last = k;

  const std::complex<double> phase{std::cos(phi), std::sin(phi)};
  std::vector<std::complex<double>> coefficients(last + 1);
  // i^k cycles (1, i, −1, −i); J_k(−z) = (−1)^k J_k(z) folds the sign of z in.
  std::complex<double> ik{1.0, 0.0};
  const std::complex<double> i_unit =
      z >= 0.0 ? std::complex<double>{0.0, 1.0}
               : std::complex<double>{0.0, -1.0};
  for (std::size_t k = 0; k <= last; ++k) {
    const double weight = (k == 0 ? 1.0 : 2.0) * bessel[k];
    coefficients[k] = weight * ik * phase;
    ik *= i_unit;
  }
  return coefficients;
}

/// Process-wide memo of coefficient vectors.  The coefficients are a pure
/// function of (z, φ, tolerance), so the 2^j ladder of one QPE circuit and
/// every rebuild of that ladder (each estimate, trajectory study, and bench
/// iteration constructs the operators afresh) share one Bessel derivation.
/// LRU-bounded: a long-running server touches a new (z, φ) pair for every
/// distinct (Laplacian, δ) it compiles, so the memo evicts the coldest entry
/// instead of dumping the hot ladders wholesale — the working set of any one
/// experiment (a handful of ladders) always stays resident.
class ExpmCoefficientCache {
 public:
  using Key = std::tuple<double, double, double>;
  using Value = std::shared_ptr<const std::vector<std::complex<double>>>;

  static ExpmCoefficientCache& instance() {
    static ExpmCoefficientCache* cache =
        new ExpmCoefficientCache();  // intentionally leaked
    return *cache;
  }

  Value get(double z, double phi, double tolerance) {
    const Key key{z, phi, tolerance};
    {
      MutexLock lock(mutex_);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
        return it->second->second;
      }
      ++stats_.misses;
    }
    // Compute outside the lock (a miss costs a full Bessel recurrence); a
    // racing thread may duplicate the work, but whichever insert lands first
    // wins and both callers get a valid vector.
    auto computed = std::make_shared<const std::vector<std::complex<double>>>(
        exp_coefficients(z, phi, tolerance));
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    lru_.emplace_front(key, std::move(computed));
    index_[key] = lru_.begin();
    while (lru_.size() > kMaxEntries) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
    return lru_.front().second;
  }

  ExpmCoefficientCacheStats stats() const {
    MutexLock lock(mutex_);
    ExpmCoefficientCacheStats out = stats_;
    out.entries = lru_.size();
    return out;
  }

  void clear() {
    MutexLock lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_ = ExpmCoefficientCacheStats{};
  }

 private:
  static constexpr std::size_t kMaxEntries = 512;

  mutable Mutex mutex_;
  /// front = most recently used
  std::list<std::pair<Key, Value>> lru_ QTDA_GUARDED_BY(mutex_);
  std::map<Key, std::list<std::pair<Key, Value>>::iterator> index_
      QTDA_GUARDED_BY(mutex_);
  ExpmCoefficientCacheStats stats_ QTDA_GUARDED_BY(mutex_);
};

std::shared_ptr<const std::vector<std::complex<double>>>
shared_exp_coefficients(double z, double phi, double tolerance) {
  return ExpmCoefficientCache::instance().get(z, phi, tolerance);
}

}  // namespace

ExpmCoefficientCacheStats expm_coefficient_cache_stats() {
  return ExpmCoefficientCache::instance().stats();
}

void expm_coefficient_cache_clear() {
  ExpmCoefficientCache::instance().clear();
}

std::vector<double> bessel_j_sequence(std::size_t n, double z) {
  QTDA_REQUIRE(z >= 0.0, "bessel_j_sequence needs z >= 0");
  std::vector<double> j(n + 1, 0.0);
  if (z == 0.0) {
    j[0] = 1.0;  // J_k(0) = δ_{k0}
    return j;
  }
  // Miller's algorithm: run the (unstable-upward, stable-downward) recurrence
  // J_{k−1} = (2k/z)·J_k − J_{k+1} from a start index safely past both n and
  // the turning point k ≈ z, then normalize with J_0 + 2·Σ J_{2i} = 1.
  const std::size_t start =
      std::max(n, static_cast<std::size_t>(std::ceil(z))) +
      static_cast<std::size_t>(12.0 * std::cbrt(z + 1.0)) + 30;
  double g_above = 0.0;   // g_{k+1}
  double g_k = 1e-30;     // g_start (arbitrary seed)
  double even_sum = 0.0;  // Σ g_{2i}, i ≥ 1
  if (start % 2 == 0) even_sum += g_k;
  if (start <= n) j[start] = g_k;
  for (std::size_t k = start; k >= 1; --k) {
    const double g_below = (2.0 * static_cast<double>(k) / z) * g_k - g_above;
    g_above = g_k;
    g_k = g_below;
    if (std::abs(g_k) > 1e250) {  // rescale before overflow
      constexpr double kScale = 1e-250;
      g_k *= kScale;
      g_above *= kScale;
      even_sum *= kScale;
      for (double& v : j) v *= kScale;
    }
    const std::size_t idx = k - 1;
    if (idx <= n) j[idx] = g_k;
    if (idx >= 1 && idx % 2 == 0) even_sum += g_k;
  }
  const double norm = g_k + 2.0 * even_sum;  // g_k now holds g_0
  QTDA_REQUIRE(norm != 0.0, "Bessel normalization degenerated");
  for (double& v : j) v /= norm;
  return j;
}

SparseExpOperator::SparseExpOperator(SparseMatrix a, double theta,
                                     double lambda_min, double lambda_max,
                                     const ExpmOptions& options)
    : SparseExpOperator(std::make_shared<const SparseMatrix>(std::move(a)),
                        theta, lambda_min, lambda_max, options) {}

SparseExpOperator::SparseExpOperator(std::shared_ptr<const SparseMatrix> a,
                                     double theta, double lambda_min,
                                     double lambda_max,
                                     const ExpmOptions& options)
    : a_(std::move(a)), theta_(theta) {
  QTDA_REQUIRE(a_ != nullptr, "exponential action needs a matrix");
  QTDA_REQUIRE(a_->rows() == a_->cols() && a_->rows() > 0,
               "exponential action needs a non-empty square matrix");
  QTDA_REQUIRE(lambda_max >= lambda_min, "spectral bounds out of order");
  center_ = 0.5 * (lambda_max + lambda_min);
  half_width_ = 0.5 * (lambda_max - lambda_min);
  coefficients_ = shared_exp_coefficients(theta_ * half_width_,
                                          theta_ * center_, options.tolerance);
}

void SparseExpOperator::apply_serial(
    const std::complex<double>* x, std::complex<double>* y,
    std::vector<std::complex<double>>& t_prev,
    std::vector<std::complex<double>>& t_cur,
    std::vector<std::complex<double>>& scratch, bool parallel_matvec) const {
  const std::size_t n = a_->rows();
  const std::vector<std::complex<double>>& coefficients = *coefficients_;
  const std::complex<double> a0 = coefficients[0];
  for (std::size_t i = 0; i < n; ++i) y[i] = a0 * x[i];
  if (coefficients.size() == 1) return;

  const double inv_h = 1.0 / half_width_;  // ≥ 2 terms ⇒ z ≠ 0 ⇒ h > 0
  // T_0·x = x, T_1·x = B·x with B = (A − c·I)/h.
  t_prev.assign(x, x + n);
  a_->multiply(x, t_cur.data(), parallel_matvec);
  for (std::size_t i = 0; i < n; ++i)
    t_cur[i] = (t_cur[i] - center_ * x[i]) * inv_h;
  const std::complex<double> a1 = coefficients[1];
  for (std::size_t i = 0; i < n; ++i) y[i] += a1 * t_cur[i];

  for (std::size_t k = 2; k < coefficients.size(); ++k) {
    // T_{k} = 2B·T_{k−1} − T_{k−2}, overwriting the oldest buffer.
    a_->multiply(t_cur.data(), scratch.data(), parallel_matvec);
    const std::complex<double> ak = coefficients[k];
    for (std::size_t i = 0; i < n; ++i) {
      const std::complex<double> next =
          2.0 * (scratch[i] - center_ * t_cur[i]) * inv_h - t_prev[i];
      t_prev[i] = next;
      y[i] += ak * next;
    }
    t_prev.swap(t_cur);
  }
}

void SparseExpOperator::ensure_f32() const {
  std::call_once(f32_once_, [this] {
    const std::vector<double>& vals = a_->values();
    values_f32_.resize(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
      values_f32_[i] = static_cast<float>(vals[i]);
    coefficients_f32_.reserve(coefficients_->size());
    for (const std::complex<double>& c : *coefficients_)
      coefficients_f32_.emplace_back(static_cast<float>(c.real()),
                                     static_cast<float>(c.imag()));
  });
}

void SparseExpOperator::apply_serial_f32(
    const std::complex<float>* x, std::complex<float>* y,
    std::vector<std::complex<float>>& t_prev,
    std::vector<std::complex<float>>& t_cur,
    std::vector<std::complex<float>>& scratch, bool parallel_matvec) const {
  // The double recurrence of apply_serial, term for term, in float: float CSR
  // values, float coefficients, float workspace — every matvec moves half the
  // bytes.  B = (A − c·I)/h is formed with c, 1/h narrowed once up front.
  const std::size_t n = a_->rows();
  const std::size_t* offsets = a_->row_offsets().data();
  const std::size_t* cols = a_->col_indices().data();
  const float* vals = values_f32_.data();
  const SimdLevel level = active_simd_level();
  const auto matvec = [&](const std::complex<float>* in,
                          std::complex<float>* out) {
    const auto rows_body = [&](std::size_t lo, std::size_t hi) {
      simd::csr_matvec_rows(level, offsets, cols, vals, in, out, lo, hi);
    };
    if (parallel_matvec) {
      parallel_for_chunked(0, n, rows_body, /*min_parallel_size=*/4096);
    } else {
      rows_body(0, n);
    }
  };

  const std::complex<float> a0 = coefficients_f32_[0];
  for (std::size_t i = 0; i < n; ++i) y[i] = a0 * x[i];
  if (coefficients_f32_.size() == 1) return;

  const float center = static_cast<float>(center_);
  const float inv_h = 1.0f / static_cast<float>(half_width_);
  t_prev.assign(x, x + n);
  matvec(x, t_cur.data());
  for (std::size_t i = 0; i < n; ++i)
    t_cur[i] = (t_cur[i] - center * x[i]) * inv_h;
  const std::complex<float> a1 = coefficients_f32_[1];
  for (std::size_t i = 0; i < n; ++i) y[i] += a1 * t_cur[i];

  for (std::size_t k = 2; k < coefficients_f32_.size(); ++k) {
    matvec(t_cur.data(), scratch.data());
    const std::complex<float> ak = coefficients_f32_[k];
    for (std::size_t i = 0; i < n; ++i) {
      const std::complex<float> next =
          2.0f * (scratch[i] - center * t_cur[i]) * inv_h - t_prev[i];
      t_prev[i] = next;
      y[i] += ak * next;
    }
    t_prev.swap(t_cur);
  }
}

void SparseExpOperator::apply_batch_f32(const std::complex<float>* x,
                                        std::complex<float>* y,
                                        std::size_t count) const {
  ensure_f32();
  const std::size_t d = a_->rows();
  if (count == 1) {
    std::vector<std::complex<float>> t_prev(d), t_cur(d), scratch(d);
    apply_serial_f32(x, y, t_prev, t_cur, scratch, /*parallel_matvec=*/true);
    return;
  }
  parallel_for_chunked(
      0, count,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<std::complex<float>> t_prev(d), t_cur(d), scratch(d);
        for (std::size_t b = lo; b < hi; ++b)
          apply_serial_f32(x + b * d, y + b * d, t_prev, t_cur, scratch,
                           /*parallel_matvec=*/false);
      },
      /*min_parallel_size=*/2);
}

void SparseExpOperator::apply(const std::complex<double>* x,
                              std::complex<double>* y) const {
  std::vector<std::complex<double>> t_prev(a_->rows()), t_cur(a_->rows()),
      scratch(a_->rows());
  apply_serial(x, y, t_prev, t_cur, scratch, /*parallel_matvec=*/true);
}

void SparseExpOperator::apply_batch(const std::complex<double>* x,
                                    std::complex<double>* y,
                                    std::size_t count) const {
  if (count == 1) {
    apply(x, y);  // single block: parallelize inside the matvec instead
    return;
  }
  const std::size_t d = a_->rows();
  // One Chebyshev recurrence per block; workers reuse one workspace per
  // chunk.  Matvecs stay serial — nesting on the shared pool would deadlock.
  parallel_for_chunked(
      0, count,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<std::complex<double>> t_prev(d), t_cur(d), scratch(d);
        for (std::size_t b = lo; b < hi; ++b)
          apply_serial(x + b * d, y + b * d, t_prev, t_cur, scratch,
                       /*parallel_matvec=*/false);
      },
      /*min_parallel_size=*/2);
}

ComplexVector expm_multiply(const SparseMatrix& a, double theta,
                            const ComplexVector& x, double lambda_min,
                            double lambda_max, const ExpmOptions& options) {
  QTDA_REQUIRE(x.size() == a.cols(), "expm_multiply shape mismatch");
  const SparseExpOperator op(a, theta, lambda_min, lambda_max, options);
  ComplexVector y(x.size());
  op.apply(x.data(), y.data());
  return y;
}

}  // namespace qtda
