#include "linalg/matrix_ops.hpp"

#include <cmath>

namespace qtda {

namespace {

template <typename Scalar>
Matrix<Scalar> matmul_impl(const Matrix<Scalar>& a, const Matrix<Scalar>& b) {
  QTDA_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch: " << a.rows()
                                                               << 'x' << a.cols()
                                                               << " * "
                                                               << b.rows() << 'x'
                                                               << b.cols());
  Matrix<Scalar> c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Scalar aik = a(i, k);
      if (aik == Scalar{}) continue;
      const Scalar* brow = b.row(k);
      Scalar* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

template <typename Scalar>
std::vector<Scalar> matvec_impl(const Matrix<Scalar>& a,
                                const std::vector<Scalar>& x) {
  QTDA_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<Scalar> y(a.rows(), Scalar{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Scalar* arow = a.row(i);
    Scalar acc{};
    for (std::size_t j = 0; j < a.cols(); ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
  return y;
}

template <typename Scalar>
Matrix<Scalar> add_impl(const Matrix<Scalar>& a, const Matrix<Scalar>& b) {
  QTDA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "add shape mismatch");
  Matrix<Scalar> c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] + b.data()[i];
  return c;
}

}  // namespace

RealMatrix matmul(const RealMatrix& a, const RealMatrix& b) {
  return matmul_impl(a, b);
}
ComplexMatrix matmul(const ComplexMatrix& a, const ComplexMatrix& b) {
  return matmul_impl(a, b);
}

RealVector matvec(const RealMatrix& a, const RealVector& x) {
  return matvec_impl(a, x);
}
ComplexVector matvec(const ComplexMatrix& a, const ComplexVector& x) {
  return matvec_impl(a, x);
}

RealMatrix transpose(const RealMatrix& a) {
  RealMatrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

ComplexMatrix adjoint(const ComplexMatrix& a) {
  ComplexMatrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = std::conj(a(i, j));
  return t;
}

RealMatrix add(const RealMatrix& a, const RealMatrix& b) { return add_impl(a, b); }
ComplexMatrix add(const ComplexMatrix& a, const ComplexMatrix& b) {
  return add_impl(a, b);
}

RealMatrix subtract(const RealMatrix& a, const RealMatrix& b) {
  QTDA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "subtract shape mismatch");
  RealMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    c.data()[i] = a.data()[i] - b.data()[i];
  return c;
}

RealMatrix scale(const RealMatrix& a, double factor) {
  RealMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * factor;
  return c;
}

ComplexMatrix scale(const ComplexMatrix& a, std::complex<double> factor) {
  ComplexMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * factor;
  return c;
}

ComplexMatrix to_complex(const RealMatrix& a) {
  ComplexMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i];
  return c;
}

ComplexMatrix kronecker(const ComplexMatrix& a, const ComplexMatrix& b) {
  ComplexMatrix c(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia)
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const std::complex<double> av = a(ia, ja);
      if (av == std::complex<double>{}) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib)
        for (std::size_t jb = 0; jb < b.cols(); ++jb)
          c(ia * b.rows() + ib, ja * b.cols() + jb) = av * b(ib, jb);
    }
  return c;
}

double frobenius_norm(const RealMatrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a.data()[i] * a.data()[i];
  return std::sqrt(s);
}

double frobenius_norm(const ComplexMatrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::norm(a.data()[i]);
  return std::sqrt(s);
}

double max_abs_diff(const RealMatrix& a, const RealMatrix& b) {
  QTDA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

double max_abs_diff(const ComplexMatrix& a, const ComplexMatrix& b) {
  QTDA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

bool is_symmetric(const RealMatrix& a, double tol) {
  if (!a.is_square()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      if (std::abs(a(i, j) - a(j, i)) > tol) return false;
  return true;
}

bool is_hermitian(const ComplexMatrix& a, double tol) {
  if (!a.is_square()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (std::abs(a(i, i).imag()) > tol) return false;
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      if (std::abs(a(i, j) - std::conj(a(j, i))) > tol) return false;
  }
  return true;
}

bool is_unitary(const ComplexMatrix& a, double tol) {
  if (!a.is_square()) return false;
  const ComplexMatrix product = matmul(adjoint(a), a);
  const ComplexMatrix id = ComplexMatrix::identity(a.rows());
  return max_abs_diff(product, id) <= tol;
}

double trace(const RealMatrix& a) {
  QTDA_REQUIRE(a.is_square(), "trace of non-square matrix");
  double t = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) t += a(i, i);
  return t;
}

std::complex<double> trace(const ComplexMatrix& a) {
  QTDA_REQUIRE(a.is_square(), "trace of non-square matrix");
  std::complex<double> t{};
  for (std::size_t i = 0; i < a.rows(); ++i) t += a(i, i);
  return t;
}

}  // namespace qtda
