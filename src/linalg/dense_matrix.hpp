/// \file dense_matrix.hpp
/// \brief Row-major dense matrix over an arbitrary scalar.
///
/// The library deliberately carries its own small dense-matrix type rather
/// than an external dependency: every matrix in the QTDA pipeline (boundary
/// operators, Laplacians, unitaries) is at most a few hundred rows, so a
/// cache-friendly row-major layout plus straightforward kernels is fast
/// enough while staying fully auditable.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/error.hpp"

namespace qtda {

/// Dense row-major matrix.
template <typename Scalar>
class Matrix {
 public:
  Matrix() = default;

  /// rows×cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Scalar{}) {}

  /// rows×cols matrix filled with \p value.
  Matrix(std::size_t rows, std::size_t cols, Scalar value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Construction from a nested initializer list (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<Scalar>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      QTDA_REQUIRE(row.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = Scalar{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool is_square() const { return rows_ == cols_; }

  Scalar& operator()(std::size_t i, std::size_t j) {
    QTDA_ASSERT(i < rows_ && j < cols_,
                "index (" << i << ',' << j << ") out of " << rows_ << 'x'
                          << cols_);
    return data_[i * cols_ + j];
  }
  const Scalar& operator()(std::size_t i, std::size_t j) const {
    QTDA_ASSERT(i < rows_ && j < cols_,
                "index (" << i << ',' << j << ") out of " << rows_ << 'x'
                          << cols_);
    return data_[i * cols_ + j];
  }

  Scalar* data() { return data_.data(); }
  const Scalar* data() const { return data_.data(); }
  Scalar* row(std::size_t i) { return data_.data() + i * cols_; }
  const Scalar* row(std::size_t i) const { return data_.data() + i * cols_; }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Scalar> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;
using RealVector = std::vector<double>;
using ComplexVector = std::vector<std::complex<double>>;

}  // namespace qtda
