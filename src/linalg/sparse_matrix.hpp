/// \file sparse_matrix.hpp
/// \brief Compressed sparse row matrix for boundary operators.
///
/// Boundary operators ∂_k have exactly k+1 nonzeros per column, so the
/// whole Δ_k = ∂†∂ + ∂∂† chain can stay sparse end to end: symmetric CSR
/// products assemble the Laplacian without densifying, and the complex
/// matvec feeds the matrix-free exp(iθΔ̃) oracle of the sparse QPE path.
/// Dense copies remain available for the small-case eigensolver.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// One triplet (row, col, value) used during assembly.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// CSR sparse matrix over doubles.
class SparseMatrix {
 public:
  /// Empty rows×cols matrix.
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A·x.
  RealVector multiply(const RealVector& x) const;
  /// y = Aᵀ·x.
  RealVector multiply_transposed(const RealVector& x) const;

  /// y = A·x over complex vectors (A is real): the hot kernel of the
  /// matrix-free exponential action.  Parallelized across rows for large
  /// matrices.
  ComplexVector multiply(const ComplexVector& x) const;
  /// Raw-pointer core of the complex matvec; \p x and \p y are length
  /// cols()/rows() buffers that must not alias.  \p parallel enables the
  /// shared-pool row split (callers already inside a pool task pass false).
  void multiply(const std::complex<double>* x, std::complex<double>* y,
                bool parallel = true) const;

  /// Dense Aᵀ·A (size cols×cols).
  RealMatrix gram() const;
  /// Dense A·Aᵀ (size rows×rows).
  RealMatrix outer_gram() const;

  /// Sparse Aᵀ·A (size cols×cols) without densifying.
  SparseMatrix gram_sparse() const;
  /// Sparse A·Aᵀ (size rows×rows) without densifying.
  SparseMatrix outer_gram_sparse() const;

  /// Copy with every stored value multiplied by \p factor.
  SparseMatrix scaled(double factor) const;

  /// Dense copy.
  RealMatrix to_dense() const;

  /// Transposed copy (CSR of Aᵀ).
  SparseMatrix transposed() const;

  /// CSR internals (read-only), exposed for kernels and tests.
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

/// C = A + B (shapes must match); structural zeros produced by cancellation
/// are dropped.
SparseMatrix sparse_add(const SparseMatrix& a, const SparseMatrix& b);

}  // namespace qtda
