/// \file sparse_matrix.hpp
/// \brief Compressed sparse row matrix for boundary operators.
///
/// Boundary operators ∂_k have exactly k+1 nonzeros per column, so the
/// Laplacian assembly (∂† ∂ products) is done sparsely and only the final
/// Laplacian is densified for the eigensolver.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// One triplet (row, col, value) used during assembly.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// CSR sparse matrix over doubles.
class SparseMatrix {
 public:
  /// Empty rows×cols matrix.
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A·x.
  RealVector multiply(const RealVector& x) const;
  /// y = Aᵀ·x.
  RealVector multiply_transposed(const RealVector& x) const;

  /// Dense Aᵀ·A (size cols×cols).
  RealMatrix gram() const;
  /// Dense A·Aᵀ (size rows×rows).
  RealMatrix outer_gram() const;

  /// Dense copy.
  RealMatrix to_dense() const;

  /// Transposed copy (CSR of Aᵀ).
  SparseMatrix transposed() const;

  /// CSR internals (read-only), exposed for kernels and tests.
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace qtda
