#include "linalg/matrix_exp.hpp"

#include <cmath>
#include <complex>

namespace qtda {

HamiltonianExponential::HamiltonianExponential(const RealMatrix& hamiltonian)
    : eigen_(symmetric_eigen(hamiltonian)) {}

ComplexMatrix HamiltonianExponential::unitary(double scale) const {
  const std::size_t n = dimension();
  const RealMatrix& v = eigen_.vectors;
  ComplexMatrix u(n, n);
  // U = V · diag(e^{iλs}) · Vᵀ, assembled as a sum of rank-1 terms; O(n³)
  // same as a matmul but without forming intermediates.
  std::vector<std::complex<double>> phases(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle = eigen_.values[k] * scale;
    phases[k] = std::complex<double>(std::cos(angle), std::sin(angle));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::complex<double> vp = v(i, k) * phases[k];
      if (vp == std::complex<double>{}) continue;
      for (std::size_t j = 0; j < n; ++j) u(i, j) += vp * v(j, k);
    }
  }
  return u;
}

ComplexMatrix unitary_exp(const RealMatrix& hamiltonian, double scale) {
  return HamiltonianExponential(hamiltonian).unitary(scale);
}

}  // namespace qtda
