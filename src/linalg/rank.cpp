#include "linalg/rank.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qtda {

std::size_t rank(const RealMatrix& a, double tolerance) {
  if (a.rows() == 0 || a.cols() == 0) return 0;
  RealMatrix m = a;
  double max_entry = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i)
    max_entry = std::max(max_entry, std::abs(m.data()[i]));
  if (max_entry == 0.0) return 0;
  const double threshold = tolerance * max_entry;

  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::size_t r = 0;  // current pivot row
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    // Partial pivoting: largest |entry| in column c at or below row r.
    std::size_t pivot = r;
    double best = std::abs(m(r, c));
    for (std::size_t i = r + 1; i < rows; ++i) {
      const double v = std::abs(m(i, c));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best <= threshold) continue;
    if (pivot != r) {
      for (std::size_t j = c; j < cols; ++j) std::swap(m(pivot, j), m(r, j));
    }
    const double inv = 1.0 / m(r, c);
    for (std::size_t i = r + 1; i < rows; ++i) {
      const double factor = m(i, c) * inv;
      if (factor == 0.0) continue;
      m(i, c) = 0.0;
      for (std::size_t j = c + 1; j < cols; ++j) m(i, j) -= factor * m(r, j);
    }
    ++r;
  }
  return r;
}

namespace {

std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b, std::uint64_t p) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % p);
}

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t p) {
  std::uint64_t result = 1;
  base %= p;
  while (exp > 0) {
    if (exp & 1) result = mod_mul(result, base, p);
    base = mod_mul(base, base, p);
    exp >>= 1;
  }
  return result;
}

std::uint64_t mod_inverse(std::uint64_t a, std::uint64_t p) {
  // p is prime: a^(p−2) mod p.
  return mod_pow(a, p - 2, p);
}

}  // namespace

std::size_t rank_mod_p(const RealMatrix& a, std::uint64_t p) {
  QTDA_REQUIRE(p > 2, "rank_mod_p needs an odd prime modulus");
  if (a.rows() == 0 || a.cols() == 0) return 0;
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  // Convert to residues.
  std::vector<std::uint64_t> m(rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = a(i, j);
      const double rounded = std::round(v);
      QTDA_REQUIRE(std::abs(v - rounded) < 1e-9,
                   "rank_mod_p requires integer entries, got " << v);
      auto iv = static_cast<std::int64_t>(rounded);
      std::int64_t residue = iv % static_cast<std::int64_t>(p);
      if (residue < 0) residue += static_cast<std::int64_t>(p);
      m[i * cols + j] = static_cast<std::uint64_t>(residue);
    }
  }
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    std::size_t pivot = rows;  // sentinel: none found
    for (std::size_t i = r; i < rows; ++i) {
      if (m[i * cols + c] != 0) {
        pivot = i;
        break;
      }
    }
    if (pivot == rows) continue;
    if (pivot != r) {
      for (std::size_t j = c; j < cols; ++j)
        std::swap(m[pivot * cols + j], m[r * cols + j]);
    }
    const std::uint64_t inv = mod_inverse(m[r * cols + c], p);
    for (std::size_t i = r + 1; i < rows; ++i) {
      const std::uint64_t factor = mod_mul(m[i * cols + c], inv, p);
      if (factor == 0) continue;
      for (std::size_t j = c; j < cols; ++j) {
        const std::uint64_t sub = mod_mul(factor, m[r * cols + j], p);
        m[i * cols + j] = (m[i * cols + j] + p - sub) % p;
      }
    }
    ++r;
  }
  return r;
}

std::size_t rank(const SparseMatrix& a, double tolerance) {
  return rank(a.to_dense(), tolerance);
}

std::size_t nullity(const RealMatrix& a, double tolerance) {
  return a.cols() - rank(a, tolerance);
}

}  // namespace qtda
