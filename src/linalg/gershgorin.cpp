#include "linalg/gershgorin.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

std::vector<GershgorinDisc> gershgorin_discs(const RealMatrix& a) {
  QTDA_REQUIRE(a.is_square(), "Gershgorin discs need a square matrix");
  std::vector<GershgorinDisc> discs;
  discs.reserve(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double radius = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (j != i) radius += std::abs(a(i, j));
    discs.push_back({a(i, i), radius});
  }
  return discs;
}

double gershgorin_max(const RealMatrix& a) {
  QTDA_REQUIRE(a.rows() > 0, "Gershgorin bound of an empty matrix");
  double best = -1e300;
  for (const GershgorinDisc& d : gershgorin_discs(a))
    best = std::max(best, d.center + d.radius);
  return best;
}

double gershgorin_min(const RealMatrix& a) {
  QTDA_REQUIRE(a.rows() > 0, "Gershgorin bound of an empty matrix");
  double best = 1e300;
  for (const GershgorinDisc& d : gershgorin_discs(a))
    best = std::min(best, d.center - d.radius);
  return best;
}

namespace {

/// Disc of one CSR row: stored off-diagonals contribute to the radius,
/// a stored diagonal (if any) is the center.
GershgorinDisc sparse_row_disc(const SparseMatrix& a, std::size_t row) {
  GershgorinDisc disc{0.0, 0.0};
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  for (std::size_t k = offsets[row]; k < offsets[row + 1]; ++k) {
    if (cols[k] == row) {
      disc.center = vals[k];
    } else {
      disc.radius += std::abs(vals[k]);
    }
  }
  return disc;
}

}  // namespace

double gershgorin_max(const SparseMatrix& a) {
  QTDA_REQUIRE(a.rows() == a.cols() && a.rows() > 0,
               "Gershgorin bound needs a non-empty square matrix");
  double best = -1e300;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const GershgorinDisc d = sparse_row_disc(a, i);
    best = std::max(best, d.center + d.radius);
  }
  return best;
}

double gershgorin_min(const SparseMatrix& a) {
  QTDA_REQUIRE(a.rows() == a.cols() && a.rows() > 0,
               "Gershgorin bound needs a non-empty square matrix");
  double best = 1e300;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const GershgorinDisc d = sparse_row_disc(a, i);
    best = std::min(best, d.center - d.radius);
  }
  return best;
}

}  // namespace qtda
