#include "linalg/gershgorin.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qtda {

std::vector<GershgorinDisc> gershgorin_discs(const RealMatrix& a) {
  QTDA_REQUIRE(a.is_square(), "Gershgorin discs need a square matrix");
  std::vector<GershgorinDisc> discs;
  discs.reserve(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double radius = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (j != i) radius += std::abs(a(i, j));
    discs.push_back({a(i, i), radius});
  }
  return discs;
}

double gershgorin_max(const RealMatrix& a) {
  QTDA_REQUIRE(a.rows() > 0, "Gershgorin bound of an empty matrix");
  double best = -1e300;
  for (const GershgorinDisc& d : gershgorin_discs(a))
    best = std::max(best, d.center + d.radius);
  return best;
}

double gershgorin_min(const RealMatrix& a) {
  QTDA_REQUIRE(a.rows() > 0, "Gershgorin bound of an empty matrix");
  double best = 1e300;
  for (const GershgorinDisc& d : gershgorin_discs(a))
    best = std::min(best, d.center - d.radius);
  return best;
}

}  // namespace qtda
