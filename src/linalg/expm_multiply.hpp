/// \file expm_multiply.hpp
/// \brief Matrix-free action of exp(iθA) on a vector (Chebyshev expansion).
///
/// The sparse QPE oracle needs y = e^{iθΔ̃}·x for the scaled Laplacian Δ̃
/// without forming the 2^q×2^q unitary.  With the spectrum of A inside
/// [λmin, λmax], substitute A = c·I + h·B (c the center, h the half-width,
/// so spec(B) ⊆ [−1, 1]) and use the Jacobi–Anger expansion
///
///   e^{iθA} = e^{iθc} · Σ_k (2 − δ_{k0}) i^k J_k(θh) T_k(B),
///
/// where J_k are Bessel functions of the first kind and T_k Chebyshev
/// polynomials.  |J_k(z)| decays superexponentially for k > |z|, so ~|θh| +
/// O(|θh|^{1/3}) sparse matvecs give full double precision — unlike a
/// truncated Taylor series, whose huge alternating terms cancel
/// catastrophically at the θ ≈ 2^t·λmax values QPE needs.  The three-term
/// Chebyshev recurrence T_{k+1} = 2B·T_k − T_{k−1} costs one matvec per
/// term and three vectors of workspace; nothing quadratic in the dimension
/// is ever allocated.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/linear_operator.hpp"
#include "linalg/sparse_matrix.hpp"

namespace qtda {

/// Tuning knobs of the Chebyshev expansion.
struct ExpmOptions {
  /// Coefficients below this magnitude are truncated; 1e-13 keeps the
  /// oracle bit-comparable to the dense eigendecomposition path.
  double tolerance = 1e-13;
};

/// Bessel functions J_0..J_n at z ≥ 0 via Miller's downward recurrence
/// (self-contained: libc++ lacks std::cyl_bessel_j).  Exposed for tests.
std::vector<double> bessel_j_sequence(std::size_t n, double z);

/// Counters of the process-wide Chebyshev/Bessel coefficient memo shared by
/// every SparseExpOperator.  The memo is LRU-bounded (a long-running daemon
/// must not leak one entry per distinct θ it ever served), and these
/// counters are how the serving layer's stats surface reports its health.
struct ExpmCoefficientCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;  ///< currently resident coefficient vectors
};

/// Snapshot of the memo counters (thread-safe).
ExpmCoefficientCacheStats expm_coefficient_cache_stats();

/// Empties the memo and zeroes the counters (tests and cold-cache benches;
/// outstanding shared_ptr holders keep their coefficient vectors alive).
void expm_coefficient_cache_clear();

/// One-shot y = exp(i·theta·A)·x for symmetric A with spectrum inside
/// [lambda_min, lambda_max] (bounds need not be tight — Gershgorin is fine).
ComplexVector expm_multiply(const SparseMatrix& a, double theta,
                            const ComplexVector& x, double lambda_min,
                            double lambda_max, const ExpmOptions& options = {});

/// The exp(i·theta·A) action packaged as a reusable LinearOperator: the
/// Chebyshev coefficients are computed once at construction, then every
/// apply() costs num_terms() sparse matvecs.  This is the matrix-free QPE
/// oracle U^p = exp(i·p·H) (construct with theta = p).
class SparseExpOperator final : public LinearOperator {
 public:
  /// \p a must be symmetric with spectrum inside [lambda_min, lambda_max].
  SparseExpOperator(SparseMatrix a, double theta, double lambda_min,
                    double lambda_max, const ExpmOptions& options = {});

  /// Shared-matrix overload: the t controlled powers of one QPE circuit all
  /// exponentiate the same Hamiltonian, so they share one CSR copy instead
  /// of duplicating it per power (the matrix dominates memory at large q).
  SparseExpOperator(std::shared_ptr<const SparseMatrix> a, double theta,
                    double lambda_min, double lambda_max,
                    const ExpmOptions& options = {});

  std::size_t dimension() const override { return a_->rows(); }
  std::string name() const override { return "chebyshev-exp"; }

  void apply(const std::complex<double>* x,
             std::complex<double>* y) const override;

  /// Parallelizes across blocks (one Chebyshev recurrence each) when the
  /// batch is large, across matvec rows when it is a single big block.
  void apply_batch(const std::complex<double>* x, std::complex<double>* y,
                   std::size_t count) const override;

  /// Native complex64 rail: the whole recurrence — CSR values, Chebyshev
  /// coefficients, workspace — runs in float, halving the memory traffic of
  /// every matvec instead of widening around the default rail.  The float
  /// mirrors of the values and coefficients are narrowed once, lazily.
  void apply_batch_f32(const std::complex<float>* x, std::complex<float>* y,
                       std::size_t count) const override;

  /// Number of retained expansion terms (matvecs per application).
  std::size_t num_terms() const { return coefficients_->size(); }

  double theta() const { return theta_; }

  /// The shared coefficient vector — exposed so tests can assert that equal
  /// setups (the 2^j ladder rebuilt across shots/trajectories/estimates)
  /// share one computation instead of rederiving Bessel sequences.
  std::shared_ptr<const std::vector<std::complex<double>>> coefficients()
      const {
    return coefficients_;
  }

 private:
  void apply_serial(const std::complex<double>* x, std::complex<double>* y,
                    std::vector<std::complex<double>>& t_prev,
                    std::vector<std::complex<double>>& t_cur,
                    std::vector<std::complex<double>>& scratch,
                    bool parallel_matvec) const;
  void apply_serial_f32(const std::complex<float>* x, std::complex<float>* y,
                        std::vector<std::complex<float>>& t_prev,
                        std::vector<std::complex<float>>& t_cur,
                        std::vector<std::complex<float>>& scratch,
                        bool parallel_matvec) const;
  /// Builds values_f32_/coefficients_f32_ on first float application.
  void ensure_f32() const;

  std::shared_ptr<const SparseMatrix> a_;
  double theta_ = 0.0;
  double center_ = 0.0;      ///< spectral center c
  double half_width_ = 0.0;  ///< spectral half-width h (0 ⇒ A = c·I)
  /// a_k = (2 − δ_{k0}) i^k J_k(θh) · e^{iθc}, truncated at tolerance.
  /// Shared through a process-wide memo: the coefficients depend only on
  /// (z = θh, φ = θc, tolerance), so every controlled power of the QPE
  /// ladder — and every rebuild of the same ladder — reuses one setup.
  std::shared_ptr<const std::vector<std::complex<double>>> coefficients_;
  /// Narrowed mirrors for the float rail (values in CSR order).  Built under
  /// call_once: apply_batch_f32 must stay safe for concurrent callers.
  mutable std::once_flag f32_once_;
  mutable std::vector<float> values_f32_;
  mutable std::vector<std::complex<float>> coefficients_f32_;
};

}  // namespace qtda
