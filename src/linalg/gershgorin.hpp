/// \file gershgorin.hpp
/// \brief Gershgorin circle bounds on the spectrum of a square matrix.
///
/// The QTDA algorithm (paper §3) needs a cheap upper bound λ̃max on the
/// largest eigenvalue of the combinatorial Laplacian: it sets the padding
/// value λ̃max/2 and the rescaling factor δ/λ̃max.  Gershgorin's theorem
/// gives max_i (a_ii + Σ_{j≠i} |a_ij|) without any eigensolve.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace qtda {

/// Upper Gershgorin bound: max over rows of center + radius.
double gershgorin_max(const RealMatrix& a);

/// Lower Gershgorin bound: min over rows of center − radius.
double gershgorin_min(const RealMatrix& a);

/// Sparse overloads: one CSR pass, never densifying (the sparse QPE path
/// needs λ̃max of Laplacians whose dense form would not fit in memory).
double gershgorin_max(const SparseMatrix& a);
double gershgorin_min(const SparseMatrix& a);

/// One Gershgorin disc.
struct GershgorinDisc {
  double center;
  double radius;
};

/// All row discs of the matrix.
std::vector<GershgorinDisc> gershgorin_discs(const RealMatrix& a);

}  // namespace qtda
