#include "linalg/symmetric_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {

namespace {

/// Sum of squares of strictly-off-diagonal entries.
double off_diagonal_norm_sq(const RealMatrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) s += a(i, j) * a(i, j);
  return s;
}

struct JacobiState {
  RealMatrix a;
  RealMatrix v;  // empty when eigenvectors are not requested
  std::size_t sweeps = 0;
};

JacobiState run_jacobi(const RealMatrix& input, const JacobiOptions& options,
                       bool want_vectors) {
  QTDA_REQUIRE(input.is_square(), "eigendecomposition needs a square matrix");
  double max_entry = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i)
    max_entry = std::max(max_entry, std::abs(input.data()[i]));
  QTDA_REQUIRE(is_symmetric(input, 1e-9 * std::max(1.0, max_entry)),
               "eigendecomposition needs a symmetric matrix");

  JacobiState state;
  state.a = input;
  const std::size_t n = input.rows();
  if (want_vectors) state.v = RealMatrix::identity(n);
  if (n <= 1) return state;

  const double frob = frobenius_norm(input);
  const double threshold_sq =
      options.tolerance * options.tolerance * std::max(frob * frob, 1e-300);

  RealMatrix& a = state.a;
  for (state.sweeps = 0; state.sweeps < options.max_sweeps; ++state.sweeps) {
    if (off_diagonal_norm_sq(a) <= threshold_sq) return state;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Stable computation of the rotation (Golub & Van Loan §8.5).
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // A ← JᵀAJ with J the rotation in the (p, q) plane.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        if (want_vectors) {
          for (std::size_t k = 0; k < n; ++k) {
            const double vkp = state.v(k, p);
            const double vkq = state.v(k, q);
            state.v(k, p) = c * vkp - s * vkq;
            state.v(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
  }
  QTDA_REQUIRE(off_diagonal_norm_sq(a) <= threshold_sq,
               "Jacobi failed to converge in " << options.max_sweeps
                                               << " sweeps");
  return state;
}

}  // namespace

SymmetricEigenResult symmetric_eigen(const RealMatrix& a,
                                     const JacobiOptions& options) {
  JacobiState state = run_jacobi(a, options, /*want_vectors=*/true);
  const std::size_t n = a.rows();
  SymmetricEigenResult result;
  result.sweeps = state.sweeps;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = state.a(i, i);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return result.values[x] < result.values[y];
  });

  RealVector sorted_values(n);
  RealMatrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = result.values[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      sorted_vectors(i, j) = state.v(i, order[j]);
  }
  result.values = std::move(sorted_values);
  result.vectors = std::move(sorted_vectors);
  return result;
}

RealVector symmetric_eigenvalues(const RealMatrix& a,
                                 const JacobiOptions& options) {
  JacobiState state = run_jacobi(a, options, /*want_vectors=*/false);
  RealVector values(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) values[i] = state.a(i, i);
  std::sort(values.begin(), values.end());
  return values;
}

std::size_t count_zero_eigenvalues(const RealMatrix& a, double tol) {
  const RealVector values = symmetric_eigenvalues(a);
  std::size_t count = 0;
  for (double v : values)
    if (std::abs(v) <= tol) ++count;
  return count;
}

}  // namespace qtda
