/// \file matrix_exp.hpp
/// \brief Unitary exponentials of Hermitian generators.
///
/// QPE needs U = e^{iH} (and its powers U^{2^j}) for the rescaled padded
/// Laplacian H.  Since H is real symmetric we diagonalize once,
/// H = V·diag(λ)·Vᵀ, and assemble e^{iHs} = V·diag(e^{iλs})·Vᵀ for any
/// power s — the numerically exact oracle against which the Trotterized
/// circuits are validated.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace qtda {

/// e^{i·scale·H} for real symmetric H.
ComplexMatrix unitary_exp(const RealMatrix& hamiltonian, double scale = 1.0);

/// Caches the eigendecomposition of H so that many powers e^{iH·s} can be
/// formed cheaply (QPE needs s = 1, 2, 4, …, 2^{t−1}).
class HamiltonianExponential {
 public:
  explicit HamiltonianExponential(const RealMatrix& hamiltonian);

  /// e^{i·H·scale}.
  ComplexMatrix unitary(double scale = 1.0) const;

  /// Eigenvalues of H (ascending).
  const RealVector& eigenvalues() const { return eigen_.values; }

  std::size_t dimension() const { return eigen_.vectors.rows(); }

 private:
  SymmetricEigenResult eigen_;
};

}  // namespace qtda
