/// \file symmetric_eigen.hpp
/// \brief Cyclic Jacobi eigensolver for real symmetric matrices.
///
/// The combinatorial Laplacians in this reproduction are at most a few
/// hundred rows, where the Jacobi method is simple, numerically excellent
/// (it computes small eigenvalues to high relative accuracy — exactly what
/// kernel counting needs) and trivially correct.  Eigenvalues are returned
/// in ascending order with matching eigenvectors.
#pragma once

#include "linalg/dense_matrix.hpp"

namespace qtda {

/// Result of a symmetric eigendecomposition: A = V·diag(values)·Vᵀ.
struct SymmetricEigenResult {
  RealVector values;   ///< ascending eigenvalues
  RealMatrix vectors;  ///< column j is the eigenvector of values[j]
  std::size_t sweeps = 0;  ///< Jacobi sweeps used
};

/// Options for the Jacobi iteration.
struct JacobiOptions {
  double tolerance = 1e-12;   ///< off-diagonal Frobenius threshold (relative)
  std::size_t max_sweeps = 100;
};

/// Full eigendecomposition of a symmetric matrix.  Throws on non-symmetric
/// input (tolerance 1e-9 relative to the largest entry) or non-convergence.
SymmetricEigenResult symmetric_eigen(const RealMatrix& a,
                                     const JacobiOptions& options = {});

/// Eigenvalues only (still Jacobi, skips the accumulation of V).
RealVector symmetric_eigenvalues(const RealMatrix& a,
                                 const JacobiOptions& options = {});

/// Number of eigenvalues with |λ| ≤ tol — the kernel dimension, i.e. the
/// Betti number when \p a is a combinatorial Laplacian.
std::size_t count_zero_eigenvalues(const RealMatrix& a, double tol = 1e-8);

}  // namespace qtda
