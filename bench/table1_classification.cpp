/// \file table1_classification.cpp
/// \brief Regenerates Table 1: gearbox fault classification from quantum
/// Betti-number features, sweeping the number of precision qubits.
///
/// Pipeline (paper §5, second experiment): 255 six-feature samples (51
/// healthy) → four 3-D points per sample (consecutive feature triples) →
/// Rips complex at grouping scale ε → {β̃0, β̃1} via the QTDA estimator
/// (100 shots) → logistic regression with a 20%/80% train/validation split.
/// The last row reports the baseline with actual (classical) Betti numbers
/// (paper: train 0.980 / validation 0.902).
///
/// `--timeseries` additionally runs the paper's first §5 pipeline: raw
/// 500-sample vibration windows → Takens embedding → Rips → Betti features
/// → classifier (paper reports 100% validation accuracy there).
///
/// Data substitution: synthetic gearbox vibration model (see DESIGN.md §4);
/// absolute accuracies may differ from the paper, the trends (accuracy and
/// MAE improving with precision qubits; estimated ≈ actual at t = 5) hold.
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "core/pipeline.hpp"
#include "data/features.hpp"
#include "data/gearbox.hpp"
#include "data/windowing.hpp"
#include "experiment_common.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "ml/takens.hpp"
#include "topology/betti.hpp"
#include "topology/rips.hpp"

namespace {

using namespace qtda;

/// Median of the per-cloud diameters: the natural unit for ε.
double median_cloud_diameter(const std::vector<PointCloud>& clouds) {
  std::vector<double> diameters;
  diameters.reserve(clouds.size());
  for (const auto& cloud : clouds) {
    double dmax = 0.0;
    for (std::size_t i = 0; i < cloud.size(); ++i)
      for (std::size_t j = i + 1; j < cloud.size(); ++j)
        dmax = std::max(dmax, cloud.distance(i, j));
    diameters.push_back(dmax);
  }
  return median(diameters);
}

struct EvalResult {
  double train_accuracy;
  double val_accuracy;
  double mae;
};

/// Trains/evaluates logistic regression on the given per-sample Betti
/// features; mae is against the exact features.
EvalResult evaluate(const std::vector<std::vector<double>>& features,
                    const std::vector<std::vector<double>>& exact_features,
                    const std::vector<int>& labels, std::uint64_t seed) {
  Dataset data;
  for (std::size_t i = 0; i < features.size(); ++i)
    data.add(features[i], labels[i]);

  Rng rng(seed);
  const auto split = stratified_split(data, 0.2, rng);  // paper: 20% train
  StandardScaler scaler;
  scaler.fit(split.train.features);
  Dataset train{scaler.transform(split.train.features), split.train.labels};
  Dataset val{scaler.transform(split.validation.features),
              split.validation.labels};
  LogisticRegression model;
  model.fit(train);

  std::vector<double> flat_estimated, flat_exact;
  for (std::size_t i = 0; i < features.size(); ++i)
    for (std::size_t j = 0; j < features[i].size(); ++j) {
      flat_estimated.push_back(features[i][j]);
      flat_exact.push_back(exact_features[i][j]);
    }
  return {accuracy(train.labels, model.predict_all(train.features)),
          accuracy(val.labels, model.predict_all(val.features)),
          mean_absolute_error(flat_exact, flat_estimated)};
}

void run_feature_experiment(const CliArgs& args) {
  const auto total = static_cast<std::size_t>(args.get_int("samples", 255));
  const auto healthy = static_cast<std::size_t>(args.get_int("healthy", 51));
  const auto shots = static_cast<std::size_t>(args.get_int("shots", 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  bench::banner("Table 1: gearbox-feature dataset (" + std::to_string(total) +
                " samples, " + std::to_string(healthy) + " healthy)");

  GearboxSignalOptions signal_options;
  Rng rng(seed);
  const auto samples = generate_gearbox_feature_dataset(
      total, healthy, 512, signal_options, rng);

  std::vector<PointCloud> clouds;
  std::vector<int> labels;
  for (const auto& sample : samples) {
    clouds.push_back(feature_point_cloud(sample.features));
    labels.push_back(sample.label);
  }
  const double unit = median_cloud_diameter(clouds);
  const double eps = args.get_double("eps", 0.75 * unit);
  std::printf("grouping scale eps = %.4f (median cloud diameter %.4f)\n",
              eps, unit);

  // Exact Betti features (the baseline row).
  std::vector<std::vector<double>> exact_features;
  for (const auto& cloud : clouds) {
    const auto complex = rips_complex(cloud, eps, 2);
    exact_features.push_back(
        {static_cast<double>(betti_number(complex, 0)),
         static_cast<double>(betti_number(complex, 1))});
  }

  std::printf("%-16s %-16s %-20s %-18s\n", "Precision qubits",
              "Training accuracy", "Validation accuracy",
              "Mean absolute error");
  bench::print_rule(72);
  for (std::size_t t = 1; t <= 5; ++t) {
    std::vector<std::vector<double>> estimated;
    for (std::size_t i = 0; i < clouds.size(); ++i) {
      const auto complex = rips_complex(clouds[i], eps, 2);
      EstimatorOptions options;
      options.precision_qubits = t;
      options.shots = shots;
      options.seed = seed * 31 + i * 7 + t;
      const auto b0 = estimate_betti(complex, 0, options);
      options.seed += 1;
      const auto b1 = estimate_betti(complex, 1, options);
      estimated.push_back({b0.estimated_betti, b1.estimated_betti});
    }
    const auto result = evaluate(estimated, exact_features, labels, seed);
    std::printf("%-16zu %-17.3f %-20.3f %-18.3f\n", t, result.train_accuracy,
                result.val_accuracy, result.mae);
  }
  const auto baseline = evaluate(exact_features, exact_features, labels, seed);
  std::printf("%-16s %-17.3f %-20.3f %-18s\n", "actual (exact)",
              baseline.train_accuracy, baseline.val_accuracy, "0 (by def.)");
}

void run_timeseries_experiment(const CliArgs& args) {
  const auto per_class =
      static_cast<std::size_t>(args.get_int("windows", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  bench::banner("Section 5 time-series pipeline (" +
                std::to_string(2 * per_class) + " windows of 500 samples)");

  GearboxSignalOptions signal_options;
  Rng rng(seed + 1);
  // Long recordings per class, cut into 500-sample windows (paper protocol).
  const auto healthy_signal = generate_gearbox_signal(
      GearboxCondition::kHealthy, 500 * per_class, signal_options, rng);
  const auto faulty_signal = generate_gearbox_signal(
      GearboxCondition::kSurfaceFault, 500 * per_class, signal_options, rng);

  TakensOptions takens_options;
  takens_options.dimension = 3;
  takens_options.delay = 4;
  takens_options.stride = 10;  // ~46 embedded points per window

  // Embed all windows first, then share one grouping scale across them
  // (per-window scales would normalize away the class signal).
  std::vector<PointCloud> clouds;
  std::vector<int> labels;
  const auto embed_windows = [&](const std::vector<double>& signal,
                                 int label) {
    for (const auto& window : split_windows(signal, 500)) {
      clouds.push_back(takens_embedding(window, takens_options));
      labels.push_back(label);
    }
  };
  embed_windows(healthy_signal, 0);
  embed_windows(faulty_signal, 1);
  const double eps = 0.15 * median_cloud_diameter(clouds);

  std::vector<std::vector<double>> estimated, exact_features;
  for (std::size_t w = 0; w < clouds.size(); ++w) {
    PipelineOptions options;
    options.epsilon = eps;
    options.dimensions = {0, 1};
    options.estimator.precision_qubits = 5;
    options.estimator.shots = 1000;
    options.estimator.seed = seed + w;
    const auto features = extract_betti_features(clouds[w], options);
    estimated.push_back(features.estimated);
    exact_features.push_back({static_cast<double>(features.exact[0]),
                              static_cast<double>(features.exact[1])});
  }

  const auto quantum = evaluate(estimated, exact_features, labels, seed);
  const auto classical =
      evaluate(exact_features, exact_features, labels, seed);
  std::printf("%-28s train=%.3f  val=%.3f  betti-MAE=%.3f\n",
              "quantum Betti features:", quantum.train_accuracy,
              quantum.val_accuracy, quantum.mae);
  std::printf("%-28s train=%.3f  val=%.3f\n",
              "actual Betti features:", classical.train_accuracy,
              classical.val_accuracy);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::printf("Table 1 reproduction: classification accuracy vs precision "
              "qubits (shots = %lld)\n",
              (long long)args.get_int("shots", 100));
  run_feature_experiment(args);
  if (args.get_bool("timeseries", true)) run_timeseries_experiment(args);
  return 0;
}
