/// \file micro_compiler.cpp
/// \brief google-benchmark microbenches for the circuit compiler.
///
/// The headline pair is BM_QpeNetworkSweep (unfused, Arg 0) against
/// BM_QpeNetworkSweepFused: the gate-dominated part of the paper's QPE
/// network — H wall, controlled-phase oracle rungs, inverse QFT — executed
/// gate by gate versus through a compiled plan with width-4 gate fusion.
/// Every fused block collapses several full passes over the 2^n amplitudes
/// into one.  BM_SparseQpeEstimate runs the whole sparse-oracle estimator
/// end to end (compile-once ladder included), and BM_TrajectoryEnsemble
/// measures the compile-once win of the noisy trajectory path (one plan,
/// hundreds of trajectories — the noise slots keep RNG order identical).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "quantum/backend.hpp"
#include "quantum/compiler.hpp"
#include "quantum/noise.hpp"
#include "quantum/qft.hpp"
#include "quantum/qpe.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

namespace {

using namespace qtda;

/// The gate-only QPE network shell: H wall on t precision wires, a
/// controlled-phase ladder standing in for the diagonalized oracle powers
/// (one rung per precision × system wire pair), and the inverse QFT.  All
/// named/controlled gates — the workload fusion targets.
Circuit qpe_network(std::size_t precision, std::size_t system) {
  QpeLayout layout;
  layout.precision_qubits = precision;
  layout.system_qubits = system;
  return build_qpe_circuit(
      layout, [&](Circuit& c, std::uint64_t power, std::size_t control) {
        for (std::size_t s = 0; s < system; ++s) {
          c.controlled_phase(control, precision + s,
                             0.37 * static_cast<double>(power) /
                                 static_cast<double>(s + 1));
        }
      });
}

void BM_QpeNetworkSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circuit circuit = qpe_network(n / 2, n - n / 2);
  Statevector psi(n);
  for (auto _ : state) {
    psi.set_basis_state(0);
    psi.apply_circuit(circuit);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.counters["gates"] = static_cast<double>(circuit.gate_count());
}
BENCHMARK(BM_QpeNetworkSweep)->Arg(12)->Arg(14)->Arg(16);

void BM_QpeNetworkSweepFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circuit circuit = qpe_network(n / 2, n - n / 2);
  CompilerOptions options;  // default width-4 fusion
  const ExecutionPlan plan = compile_circuit(circuit, options);
  Statevector psi(n);
  for (auto _ : state) {
    psi.set_basis_state(0);
    psi.apply_plan(plan);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.counters["gates"] = static_cast<double>(circuit.gate_count());
  state.counters["fused_ops"] = static_cast<double>(plan.ops().size());
}
BENCHMARK(BM_QpeNetworkSweepFused)->Arg(12)->Arg(14)->Arg(16);

/// Full sparse-oracle Betti estimate (pipeline default): circuit built,
/// compiled once, executed with the fused plan and the shared-coefficient
/// QPE ladder.
void BM_SparseQpeEstimate(benchmark::State& state) {
  const auto vertices = static_cast<std::size_t>(state.range(0));
  std::vector<Simplex> edges;
  for (VertexId a = 0; a < vertices; ++a)
    for (VertexId b = a + 1; b < vertices; ++b)
      edges.push_back(Simplex{a, b});
  const auto complex = SimplicialComplex::from_simplices(edges, true);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 4;
  options.shots = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_betti_from_sparse_laplacian(laplacian, options)
            .estimated_betti);
  }
}
BENCHMARK(BM_SparseQpeEstimate)->Arg(5)->Arg(6);

/// Noisy trajectory ensemble over a compiled plan (Arg 1) versus re-walking
/// the raw gate IR per trajectory (Arg 0).  Same circuit — the sparse-oracle
/// QPE network the estimator actually runs under noise — same RNG draws,
/// same physics; the delta is pure per-gate setup cost (matrix
/// materialization, mask building, block-base enumeration, buffer
/// allocation), paid once instead of once per trajectory.
void BM_TrajectoryEnsemble(benchmark::State& state) {
  const bool compiled = state.range(0) == 1;
  constexpr std::size_t kTrajectories = 100;
  std::vector<Simplex> traj_edges;
  for (VertexId a = 0; a < 4; ++a)
    for (VertexId b = a + 1; b < 4; ++b) traj_edges.push_back(Simplex{a, b});
  const auto traj_complex =
      SimplicialComplex::from_simplices(traj_edges, true);
  EstimatorOptions traj_options;
  traj_options.backend = EstimatorBackend::kCircuitSparse;
  traj_options.precision_qubits = 3;
  const Circuit circuit = build_qtda_circuit(
      sparse_combinatorial_laplacian(traj_complex, 1), traj_options);
  const NoiseModel noise{0.01, 0.02};
  CompilerOptions options;
  options.preserve_noise_slots = true;
  const ExecutionPlan plan = compile_circuit(circuit, options);
  const std::vector<std::size_t> measured{0, 1, 2};
  Rng rng(7);
  for (auto _ : state) {
    std::vector<double> mean(8, 0.0);
    for (std::size_t i = 0; i < kTrajectories; ++i) {
      const Statevector psi = compiled
                                  ? run_noisy_trajectory(plan, noise, rng)
                                  : run_noisy_trajectory(circuit, noise, rng);
      const auto marginal = psi.marginal_probabilities(measured);
      for (std::size_t m = 0; m < mean.size(); ++m) mean[m] += marginal[m];
    }
    benchmark::DoNotOptimize(mean.data());
  }
  state.counters["trajectories"] = static_cast<double>(kTrajectories);
}
BENCHMARK(BM_TrajectoryEnsemble)->Arg(0)->Arg(1);

}  // namespace
