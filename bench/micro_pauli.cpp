/// \file micro_pauli.cpp
/// \brief google-benchmark microbenches for Pauli algebra and decomposition.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.hpp"
#include "quantum/pauli.hpp"

namespace {

using namespace qtda;

RealMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.uniform(-2.0, 2.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

void BM_PauliDecompose(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto h = random_symmetric(std::size_t{1} << q, 31 + q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pauli_decompose(h).size());
  }
  state.counters["strings"] = std::pow(4.0, static_cast<double>(q));
}
BENCHMARK(BM_PauliDecompose)->DenseRange(1, 6, 1);

void BM_PauliSumMatrix(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto sum = pauli_decompose(random_symmetric(std::size_t{1} << q, 37));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sum.matrix().rows());
  }
  state.counters["terms"] = static_cast<double>(sum.size());
}
BENCHMARK(BM_PauliSumMatrix)->DenseRange(1, 5, 1);

void BM_PauliPhaseSweep(benchmark::State& state) {
  const PauliString p("XYZYXZXY");
  std::uint64_t ket = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.phase_for(ket++ & 255));
  }
}
BENCHMARK(BM_PauliPhaseSweep);

void BM_PauliStringMatrix(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  std::string letters;
  const char alphabet[4] = {'I', 'X', 'Y', 'Z'};
  for (std::size_t i = 0; i < q; ++i) letters += alphabet[i % 4];
  const PauliString p(letters);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.matrix().rows());
  }
}
BENCHMARK(BM_PauliStringMatrix)->DenseRange(1, 8, 1);

}  // namespace
