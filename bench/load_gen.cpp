/// \file load_gen.cpp
/// \brief Open-loop Poisson load generator for the serving layer.
///
/// Closes the ROADMAP's "open-loop load generator" item: arrivals follow a
/// deterministic Poisson process (exponential gaps drawn from qtda::Rng, so
/// the schedule is identical on every host) and are *not* gated on
/// responses — a slow server accumulates queue, exactly the regime where
/// closed-loop drivers flatter tail latency.  One benchmark iteration runs
/// a full experiment against an in-process BettiServer over the loopback
/// transport:
///
///   arrival thread  — sleeps to each precomputed absolute arrival time and
///                     writes the request line (never blocks on reads);
///   collector thread — reads response lines as they complete (possibly out
///                     of order) and records client-observed latency into a
///                     telemetry::Histogram.
///
/// Counters: p50/p95/p99_ms from the histogram's deterministic buckets,
/// est_per_sec (completed estimates over the experiment wall time),
/// offered_rps for reference, and err_<code> per-taxonomy-code error
/// counts.  scripts/bench.sh records this binary into BENCH_micro.json
/// like every other bench_micro_* target.
///
/// BM_OverloadShedding floods a deliberately tiny server (one worker,
/// batching off, admission queue bounded at a handful of entries) with
/// closed-loop retrying clients: the server must shed the excess with
/// retryable `overloaded` errors instead of growing without bound, and
/// every request must eventually succeed with the correct (bit-identical)
/// result once the clients back off.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "common/telemetry.hpp"
#include "serve/client.hpp"
#include "serve/errors.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace {

using namespace qtda;
using Clock = std::chrono::steady_clock;

std::vector<std::vector<double>> circle_points(std::size_t n) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  return points;
}

/// The q=10 warm-path request micro_serve benchmarks: complete Rips graph
/// on a 33-point circle, sampled-basis mixture, few shots.  Every arrival
/// uses the same key, so after the warm-up request all cache levels hit and
/// the experiment measures queueing + plan execution, not compilation.
EstimateRequest load_request() {
  EstimateRequest request;
  request.points = circle_points(33);
  request.epsilon = 3.0;
  request.k = 1;
  request.options.backend = EstimatorBackend::kCircuitSparse;
  request.options.mixed_state = MixedStateMode::kSampledBasis;
  request.options.precision_qubits = 2;
  request.options.shots = 4;
  request.options.seed = 7;
  return request;
}

/// Cumulative arrival offsets (ns) for \p total Poisson arrivals at rate
/// \p lambda_rps.  Fixed seed: the same offered schedule every run.
std::vector<std::uint64_t> poisson_offsets_ns(std::size_t total,
                                              double lambda_rps) {
  Rng rng(2023);
  std::vector<std::uint64_t> offsets;
  offsets.reserve(total);
  double t_seconds = 0.0;
  for (std::size_t i = 0; i < total; ++i) {
    t_seconds += -std::log(1.0 - rng.uniform()) / lambda_rps;
    offsets.push_back(static_cast<std::uint64_t>(t_seconds * 1e9));
  }
  return offsets;
}

struct ExperimentResult {
  telemetry::HistogramSnapshot latency;  ///< client-observed, nanoseconds
  double wall_seconds = 0.0;
  std::size_t completed = 0;
  std::size_t errors = 0;
  /// Error-taxonomy code name → occurrences (empty on a clean run).
  std::map<std::string, std::size_t> errors_by_code;
};

/// One open-loop experiment: \p total arrivals at \p lambda_rps offered.
ExperimentResult run_experiment(double lambda_rps, std::size_t total) {
  ServerOptions options;
  options.cache.budget_bytes = std::size_t{64} << 20;
  BettiServer server(options);
  LoopbackTransport transport;
  server.start(transport);

  // Warm every cache level on a side connection so the timed arrivals all
  // measure the steady-state serving path.
  {
    ServeClient warm(transport.connect());
    warm.estimate(load_request());
  }

  const std::vector<std::uint64_t> offsets = poisson_offsets_ns(total,
                                                                lambda_rps);
  std::shared_ptr<Connection> connection = transport.connect();
  std::vector<Clock::time_point> sent(total);
  telemetry::Histogram latency;

  const Clock::time_point start = Clock::now();
  std::thread arrivals([&] {
    const EstimateRequest base = load_request();
    for (std::size_t i = 0; i < total; ++i) {
      std::this_thread::sleep_until(start +
                                    std::chrono::nanoseconds(offsets[i]));
      EstimateRequest request = base;
      request.id = "L" + std::to_string(i);
      sent[i] = Clock::now();
      connection->write_line(format_request(request));
    }
  });

  std::size_t errors = 0;
  std::map<std::string, std::size_t> errors_by_code;
  for (std::size_t received = 0; received < total; ++received) {
    const std::optional<std::string> line = connection->read_line();
    if (!line.has_value()) break;  // connection died: count the shortfall
    const Clock::time_point completed_at = Clock::now();
    const EstimateResponse response = parse_response(*line);
    if (!response.ok) {
      ++errors;
      ++errors_by_code[serve_error_name(response.code)];
    }
    const std::size_t index =
        static_cast<std::size_t>(std::stoul(response.id.substr(1)));
    latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(completed_at -
                                                             sent[index])
            .count()));
  }
  const Clock::time_point end = Clock::now();
  arrivals.join();

  ExperimentResult result;
  result.latency = latency.snapshot();
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  result.completed = result.latency.count;
  result.errors = errors;
  result.errors_by_code = std::move(errors_by_code);

  server.stop();
  return result;
}

/// Arg(0): offered load in requests/second.  Each iteration is one full
/// experiment; latency quantiles accumulate across iterations (the bucket
/// layout makes the merge exact).
void BM_OpenLoopPoisson(benchmark::State& state) {
  const double lambda_rps = static_cast<double>(state.range(0));
  const std::size_t total = 48;
  telemetry::HistogramSnapshot merged;
  double wall_seconds = 0.0;
  std::size_t completed = 0, errors = 0;
  std::map<std::string, std::size_t> errors_by_code;
  for (auto _ : state) {
    const ExperimentResult result = run_experiment(lambda_rps, total);
    merged.merge(result.latency);
    wall_seconds += result.wall_seconds;
    completed += result.completed;
    errors += result.errors;
    for (const auto& [code, count] : result.errors_by_code)
      errors_by_code[code] += count;
  }
  state.counters["offered_rps"] = lambda_rps;
  state.counters["est_per_sec"] =
      wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds : 0.0;
  state.counters["p50_ms"] = merged.quantile(0.50) / 1e6;
  state.counters["p95_ms"] = merged.quantile(0.95) / 1e6;
  state.counters["p99_ms"] = merged.quantile(0.99) / 1e6;
  state.counters["errors"] = static_cast<double>(errors);
  for (const auto& [code, count] : errors_by_code)
    state.counters["err_" + code] = static_cast<double>(count);
}
BENCHMARK(BM_OpenLoopPoisson)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

/// Flood a one-worker, bounded-queue, batching-off server from several
/// closed-loop retrying clients.  Shed requests come back as retryable
/// `overloaded` errors with a retry-after hint; clients back off and
/// resubmit until everything lands.  Counters prove the shedding actually
/// happened (shed > 0 on any meaningful run), that retries drove the
/// recovery, and that no accepted result deviated from the expected bits.
void BM_OverloadShedding(benchmark::State& state) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 16;
  std::size_t shed = 0;
  std::uint64_t retries = 0;
  std::size_t failures = 0;
  std::size_t mismatches = 0;
  for (auto _ : state) {
    ServerOptions options;
    options.cache.budget_bytes = std::size_t{64} << 20;
    options.workers = 1;
    options.batching = false;  // no coalescing: every request occupies the
                               // single worker, keeping the queue saturated
    options.max_queue = 2;
    options.shed_retry_after_ms = 1;
    BettiServer server(options);
    LoopbackTransport transport;
    server.start(transport);

    // Reference bits (also warms the caches so the flood measures
    // admission, not compilation).
    std::uint64_t expected_zero_counts = 0;
    {
      ServeClient warm(transport.connect());
      expected_zero_counts = warm.estimate(load_request()).estimate.zero_counts;
    }

    std::atomic<std::size_t> thread_failures{0};
    std::atomic<std::size_t> thread_mismatches{0};
    std::atomic<std::uint64_t> thread_retries{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        RetryPolicy policy;
        policy.max_attempts = 64;
        policy.initial_backoff_ms = 1;
        policy.max_backoff_ms = 16;
        policy.jitter_seed = static_cast<std::uint64_t>(40 + c);
        ServeClient client([&transport] { return transport.connect(); },
                           policy);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          try {
            const EstimateResponse response = client.estimate(load_request());
            if (!response.ok) {
              thread_failures.fetch_add(1);
            } else if (response.estimate.zero_counts != expected_zero_counts) {
              thread_mismatches.fetch_add(1);
            }
          } catch (const std::exception&) {
            thread_failures.fetch_add(1);
          }
        }
        thread_retries.fetch_add(client.retries());
      });
    }
    for (std::thread& client : clients) client.join();
    shed += server.stats().shed;
    retries += thread_retries.load();
    failures += thread_failures.load();
    mismatches += thread_mismatches.load();
    server.stop();
  }
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["retries"] = static_cast<double>(retries);
  state.counters["failures"] = static_cast<double>(failures);
  state.counters["mismatches"] = static_cast<double>(mismatches);
}
BENCHMARK(BM_OverloadShedding)->Unit(benchmark::kMillisecond);

}  // namespace
