/// \file ablation_noise.cpp
/// \brief NISQ-noise ablation (paper future work: "how the algorithm
/// behaves on NISQ devices").
///
/// Depolarizing noise is injected after every gate of the Trotterized QPE
/// circuit, two ways: Monte-Carlo trajectories (the shot-sampling route)
/// and an exact density-matrix evolution of the very same circuit.  The
/// trajectory estimate converges to the exact column; both drift toward the
/// fully depolarized limit (phase register → uniform → β̃ → 2^q/2^t) as the
/// error rate grows.
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/betti_estimator.hpp"
#include "experiment_common.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/qpe.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto shots = static_cast<std::size_t>(args.get_int("shots", 200));
  const auto t = static_cast<std::size_t>(args.get_int("precision", 3));

  // Small instance (hollow triangle, β1 = 1) keeps per-trajectory cost low.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}}, true);
  const auto laplacian = combinatorial_laplacian(complex, 1);
  const auto classical = static_cast<double>(betti_number(complex, 1));

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitTrotter;
  options.precision_qubits = t;
  options.shots = shots;
  options.delta = 0.0;  // default 0.95·2π
  options.trotter = {4, 2};
  options.seed = 1234;

  // The exact-noise reference shares the identical circuit.
  const Circuit circuit = build_qtda_circuit(laplacian, options);
  QpeLayout layout{t, 2, 2};  // hollow triangle pads 3 → 4 (q = 2)
  const auto precision_wires = layout.precision_wires();

  std::printf("Noise ablation: depolarizing error vs Betti estimate "
              "(hollow triangle, beta_1 = 1, t = %zu, shots = %zu)\n",
              t, shots);
  std::printf("circuit: %zu qubits, %zu gates, depth %zu\n\n",
              circuit.num_qubits(), circuit.gate_count(), circuit.depth());
  std::printf("%-12s %-22s %-22s %-10s\n", "error rate",
              "trajectories: b~ (err)", "exact rho: b~ (err)", "time(s)");
  bench::print_rule(70);

  for (const double p : {0.0, 0.00001, 0.00003, 0.0001, 0.0003, 0.001}) {
    Timer timer;
    options.noise = NoiseModel{p, p};
    const auto estimate = estimate_betti_from_laplacian(laplacian, options);

    // Exact channel on the same circuit.
    const auto rho = run_circuit_density(circuit, options.noise);
    const double exact_p0 = rho.marginal_probabilities(precision_wires)[0];
    const double exact_estimate = 4.0 * exact_p0;  // 2^q = 4

    std::printf("%-12.5f %8.3f (%6.3f)       %8.3f (%6.3f)       %-10.2f\n",
                p, estimate.estimated_betti,
                std::abs(estimate.estimated_betti - classical),
                exact_estimate, std::abs(exact_estimate - classical),
                timer.seconds());
  }
  std::printf("\nDepolarized limit: beta -> 2^q/2^t = %.3f\n",
              4.0 / std::pow(2.0, static_cast<double>(t)));
  return 0;
}
