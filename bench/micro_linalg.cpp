/// \file micro_linalg.cpp
/// \brief google-benchmark microbenches for the linear-algebra substrate.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/matrix_exp.hpp"
#include "linalg/matrix_ops.hpp"
#include "linalg/rank.hpp"
#include "linalg/symmetric_eigen.hpp"

namespace {

using namespace qtda;

RealMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.uniform(-2.0, 2.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

RealMatrix random_pm_one(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  Rng rng(seed);
  RealMatrix a(rows, cols);
  for (std::size_t i = 0; i < a.size(); ++i)
    a.data()[i] = static_cast<double>(rng.uniform_int(-1, 1));
  return a;
}

void BM_JacobiEigenvalues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_symmetric(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(symmetric_eigenvalues(a).front());
  }
}
BENCHMARK(BM_JacobiEigenvalues)->RangeMultiplier(2)->Range(8, 128);

void BM_JacobiFullDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_symmetric(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(symmetric_eigen(a).values.front());
  }
}
BENCHMARK(BM_JacobiFullDecomposition)->RangeMultiplier(2)->Range(8, 64);

void BM_RankGaussian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_pm_one(n, n + 10, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rank(a));
  }
}
BENCHMARK(BM_RankGaussian)->RangeMultiplier(2)->Range(8, 256);

void BM_RankModP(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_pm_one(n, n + 10, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rank_mod_p(a));
  }
}
BENCHMARK(BM_RankModP)->RangeMultiplier(2)->Range(8, 256);

void BM_MatrixExponential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto h = random_symmetric(n, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unitary_exp(h).rows());
  }
}
BENCHMARK(BM_MatrixExponential)->RangeMultiplier(2)->Range(8, 64);

void BM_CachedUnitaryPowers(benchmark::State& state) {
  // QPE asks for e^{iH·2^j}; the cached eigendecomposition amortizes this.
  const auto n = static_cast<std::size_t>(state.range(0));
  const HamiltonianExponential exp_h(random_symmetric(n, 13));
  for (auto _ : state) {
    for (double s : {1.0, 2.0, 4.0, 8.0}) {
      benchmark::DoNotOptimize(exp_h.unitary(s).rows());
    }
  }
}
BENCHMARK(BM_CachedUnitaryPowers)->RangeMultiplier(2)->Range(8, 32);

void BM_GershgorinBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_symmetric(n, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gershgorin_max(a));
  }
}
BENCHMARK(BM_GershgorinBound)->RangeMultiplier(4)->Range(16, 1024);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_symmetric(n, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, a).rows());
  }
}
BENCHMARK(BM_Matmul)->RangeMultiplier(2)->Range(16, 256);

}  // namespace
