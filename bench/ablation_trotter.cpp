/// \file ablation_trotter.cpp
/// \brief Ablation of the e^{iH} oracle: exact controlled powers versus
/// Trotterized circuits (paper Fig. 7 route), sweeping steps and order,
/// with and without the peephole optimizer (paper future work: depth
/// reduction).
///
/// Columns: Trotter error of the estimated p(0) against the exact value,
/// plus gate count / depth before and after optimization.
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/betti_estimator.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "experiment_common.hpp"
#include "quantum/optimizer.hpp"
#include "quantum/pauli.hpp"
#include "quantum/trotter.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

namespace {

using namespace qtda;

SimplicialComplex worked_example_complex() {
  return SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}},
      /*close_downward=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto shots = static_cast<std::size_t>(args.get_int("shots", 20000));
  const auto t = static_cast<std::size_t>(args.get_int("precision", 3));

  std::printf("Trotter ablation on the worked-example Laplacian "
              "(t = %zu, shots = %zu, delta = lambda_max)\n\n",
              t, shots);

  const auto complex = worked_example_complex();
  const auto laplacian = combinatorial_laplacian(complex, 1);
  const auto scaled = rescale_laplacian(pad_laplacian(laplacian), 6.0);
  const auto hamiltonian = pauli_decompose(scaled.matrix);
  std::printf("Pauli decomposition: %zu terms over %zu qubits (Eq. 19 has "
              "24)\n\n",
              hamiltonian.size(), hamiltonian.num_qubits());

  // Reference exact probability.
  EstimatorOptions exact_options;
  exact_options.backend = EstimatorBackend::kAnalytic;
  exact_options.precision_qubits = t;
  exact_options.shots = 1;
  exact_options.delta = 6.0;
  const auto exact =
      estimate_betti_from_laplacian(laplacian, exact_options);
  std::printf("Exact p(0) = %.5f  (beta/2^q = %.5f)\n\n",
              exact.exact_zero_probability, 1.0 / 8.0);

  std::printf("%-8s %-7s %-12s %-12s %-12s %-12s %-12s %-9s\n", "steps",
              "order", "|p0 - exact|", "gates", "depth", "gates(opt)",
              "depth(opt)", "time(s)");
  bench::print_rule(92);
  for (const int order : {1, 2}) {
    for (const std::size_t steps : {1u, 2u, 4u, 8u, 16u, 32u}) {
      Timer timer;
      EstimatorOptions options;
      options.backend = EstimatorBackend::kCircuitTrotter;
      options.precision_qubits = t;
      options.shots = shots;
      options.delta = 6.0;
      options.trotter = {steps, order};
      const auto estimate =
          estimate_betti_from_laplacian(laplacian, options);
      const double elapsed = timer.seconds();

      // Circuit-size accounting on the single-power fragment (e^{iH·1}).
      const Circuit fragment =
          trotter_circuit(hamiltonian, 1.0, options.trotter, 3);
      OptimizerReport report;
      const Circuit optimized = optimize_circuit(fragment, &report);
      std::printf("%-8zu %-7d %-12.5f %-12zu %-12zu %-12zu %-12zu %-9.2f\n",
                  steps, order,
                  std::abs(estimate.zero_probability -
                           exact.exact_zero_probability),
                  report.gates_before, report.depth_before,
                  report.gates_after, report.depth_after, elapsed);
      (void)optimized;
    }
  }
  std::printf("\nNote: |p0 − exact| mixes Trotter bias with shot noise "
              "(sigma ≈ %.4f at these shots).\n",
              std::sqrt(0.15 * 0.85 / static_cast<double>(shots)));
  return 0;
}
