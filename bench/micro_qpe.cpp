/// \file micro_qpe.cpp
/// \brief google-benchmark microbenches for QPE and the Betti estimator.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "core/analytic_qpe.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace {

using namespace qtda;

RealMatrix sample_laplacian(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    RandomComplexOptions options;
    options.num_vertices = n;
    options.edge_probability = 0.5;
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) > 0) return combinatorial_laplacian(complex, 1);
  }
}

void BM_AnalyticEstimator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto laplacian = sample_laplacian(n, 21);
  EstimatorOptions options;
  options.precision_qubits = 8;
  options.shots = 1000000;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    benchmark::DoNotOptimize(
        estimate_betti_from_laplacian(laplacian, options).estimated_betti);
  }
}
BENCHMARK(BM_AnalyticEstimator)->DenseRange(6, 14, 2);

void BM_CircuitExactEstimator(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto laplacian = sample_laplacian(6, 23);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitExact;
  options.precision_qubits = t;
  options.shots = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_betti_from_laplacian(laplacian, options).estimated_betti);
  }
}
BENCHMARK(BM_CircuitExactEstimator)->DenseRange(1, 6, 1);

void BM_TrotterEstimator(benchmark::State& state) {
  const auto steps = static_cast<std::size_t>(state.range(0));
  const auto laplacian = sample_laplacian(6, 25);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitTrotter;
  options.precision_qubits = 3;
  options.shots = 1000;
  options.trotter = {steps, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_betti_from_laplacian(laplacian, options).estimated_betti);
  }
}
BENCHMARK(BM_TrotterEstimator)->RangeMultiplier(2)->Range(1, 16);

void BM_FejerZeroProbability(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(27);
  RealVector eigenvalues(dim);
  for (double& v : eigenvalues) v = rng.uniform(0.0, 6.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic_zero_probability(eigenvalues, 10));
  }
}
BENCHMARK(BM_FejerZeroProbability)->RangeMultiplier(4)->Range(16, 1024);

void BM_SampledBasisVsPurification(benchmark::State& state) {
  // state.range(0) == 0 → purification, 1 → sampled basis.
  const auto laplacian = sample_laplacian(6, 29);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitExact;
  options.precision_qubits = 3;
  options.shots = 500;
  options.mixed_state = state.range(0) == 0 ? MixedStateMode::kPurification
                                            : MixedStateMode::kSampledBasis;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_betti_from_laplacian(laplacian, options).estimated_betti);
  }
}
BENCHMARK(BM_SampledBasisVsPurification)->Arg(0)->Arg(1);

}  // namespace
