/// \file classical_vs_quantum.cpp
/// \brief Baseline comparison: wall-clock of the classical Betti
/// computation (rank route and Laplacian-kernel route) versus the simulated
/// quantum estimator's three backends, as the complex grows.
///
/// This quantifies the obvious-but-worth-printing point: a *simulated*
/// quantum algorithm costs exponentially more than the classical baseline
/// (state vectors double per qubit) — the paper's speedup claims concern
/// real hardware, not simulation.  It also shows the Analytic backend
/// tracking the classical eigensolver's cost, which is what makes the
/// Fig. 3 sweeps feasible.
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "core/betti_estimator.hpp"
#include "experiment_common.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::printf("Classical baseline vs simulated quantum estimator "
              "(k = 1, t = 4, shots = 1000)\n\n");
  std::printf("%-6s %-8s %-6s %-14s %-14s %-14s %-14s %-14s\n", "n", "|S_1|",
              "2^q", "classical(s)", "laplacian(s)", "analytic(s)",
              "circuit(s)", "trotter(s)");
  bench::print_rule(96);

  Rng rng(seed);
  for (const std::size_t n : {5u, 8u, 11u, 14u}) {
    RandomComplexOptions complex_options;
    complex_options.num_vertices = n;
    complex_options.edge_probability = 0.45;
    complex_options.max_dimension = 2;
    const auto complex = random_flag_complex(complex_options, rng);
    if (complex.count(1) == 0) continue;
    const auto laplacian = combinatorial_laplacian(complex, 1);

    Timer timer;
    const auto classical = betti_number(complex, 1);
    const double classical_time = timer.seconds();

    timer.reset();
    const auto via_laplacian = betti_number_via_laplacian(complex, 1);
    const double laplacian_time = timer.seconds();
    (void)via_laplacian;

    EstimatorOptions options;
    options.precision_qubits = 4;
    options.shots = 1000;
    options.seed = seed;

    timer.reset();
    options.backend = EstimatorBackend::kAnalytic;
    const auto analytic = estimate_betti_from_laplacian(laplacian, options);
    const double analytic_time = timer.seconds();

    double circuit_time = -1.0, trotter_time = -1.0;
    // Full circuit simulation only while the register stays affordable
    // (t + 2q ≤ 20 qubits).
    if (options.precision_qubits + 2 * analytic.system_qubits <= 20) {
      timer.reset();
      options.backend = EstimatorBackend::kCircuitExact;
      (void)estimate_betti_from_laplacian(laplacian, options);
      circuit_time = timer.seconds();
    }
    // Trotterized circuits additionally pay 4^q Pauli decomposition and
    // O(4^q)-term step circuits; cap at q ≤ 3 to keep the row seconds-scale.
    if (analytic.system_qubits <= 3) {
      timer.reset();
      options.backend = EstimatorBackend::kCircuitTrotter;
      options.trotter = {4, 2};
      (void)estimate_betti_from_laplacian(laplacian, options);
      trotter_time = timer.seconds();
    }

    const auto print_time = [](double value) {
      if (value < 0.0)
        std::printf("%-14s", "skipped");
      else
        std::printf("%-14.4f", value);
    };
    std::printf("%-6zu %-8zu %-6zu ", n, laplacian.rows(),
                std::size_t{1} << analytic.system_qubits);
    print_time(classical_time);
    print_time(laplacian_time);
    print_time(analytic_time);
    print_time(circuit_time);
    print_time(trotter_time);
    std::printf("   (beta_1 = %zu, estimate %.2f)\n", classical,
                analytic.estimated_betti);
  }
  return 0;
}
