/// \file micro_topology.cpp
/// \brief google-benchmark microbenches for the TDA substrate.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "topology/betti.hpp"
#include "topology/boundary.hpp"
#include "topology/laplacian.hpp"
#include "topology/persistence.hpp"
#include "topology/random_complex.hpp"
#include "topology/rips.hpp"

namespace {

using namespace qtda;

PointCloud random_cloud(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return PointCloud(random_point_cloud(n, m, rng));
}

void BM_RipsExpansion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cloud = random_cloud(n, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rips_complex(cloud, 0.6, 2).total_count());
  }
}
BENCHMARK(BM_RipsExpansion)->DenseRange(10, 60, 10);

void BM_BoundaryOperator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto complex = rips_complex(random_cloud(n, 3, 11), 0.6, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(boundary_operator(complex, 1).nonzeros());
  }
  state.counters["edges"] = static_cast<double>(complex.count(1));
}
BENCHMARK(BM_BoundaryOperator)->DenseRange(10, 40, 10);

void BM_LaplacianAssembly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto complex = rips_complex(random_cloud(n, 3, 13), 0.6, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(combinatorial_laplacian(complex, 1).rows());
  }
}
BENCHMARK(BM_LaplacianAssembly)->DenseRange(10, 40, 10);

void BM_ClassicalBettiRankRoute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto complex = rips_complex(random_cloud(n, 3, 17), 0.6, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(betti_number(complex, 1));
  }
}
BENCHMARK(BM_ClassicalBettiRankRoute)->DenseRange(10, 40, 10);

void BM_ClassicalBettiLaplacianRoute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto complex = rips_complex(random_cloud(n, 3, 17), 0.6, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(betti_number_via_laplacian(complex, 1));
  }
}
BENCHMARK(BM_ClassicalBettiLaplacianRoute)->DenseRange(10, 30, 10);

void BM_PersistenceReduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cloud = random_cloud(n, 2, 19);
  const auto filtration = rips_filtration(cloud, 0.7, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_persistence(filtration).pairs().size());
  }
  state.counters["simplices"] = static_cast<double>(filtration.size());
}
BENCHMARK(BM_PersistenceReduction)->DenseRange(10, 40, 10);

}  // namespace
