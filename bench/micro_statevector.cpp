/// \file micro_statevector.cpp
/// \brief google-benchmark microbenches for the state-vector kernels.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "quantum/executor.hpp"
#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"

namespace {

using namespace qtda;

void BM_HadamardGate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Statevector sv(n);
  std::size_t target = 0;
  for (auto _ : state) {
    sv.apply_single_qubit(gates::H(), target);
    target = (target + 1) % n;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(1ULL << n));
}
BENCHMARK(BM_HadamardGate)->DenseRange(8, 22, 2);

void BM_ControlledGate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Statevector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_single_qubit(gates::H(), q);
  for (auto _ : state) {
    sv.apply_single_qubit(gates::X(), n - 1, {0});
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(1ULL << n));
}
BENCHMARK(BM_ControlledGate)->DenseRange(8, 20, 4);

void BM_DenseThreeQubitUnitary(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Statevector sv(n);
  const auto u = ComplexMatrix::identity(8);
  for (auto _ : state) {
    sv.apply_unitary(u, {0, 1, 2});
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_DenseThreeQubitUnitary)->DenseRange(8, 18, 2);

void BM_MarginalProbabilities(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Statevector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_single_qubit(gates::H(), q);
  const std::vector<std::size_t> measured{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.marginal_probabilities(measured));
  }
}
BENCHMARK(BM_MarginalProbabilities)->DenseRange(10, 20, 5);

void BM_SampleShots(benchmark::State& state) {
  const auto shots = static_cast<std::size_t>(state.range(0));
  Statevector sv(10);
  for (std::size_t q = 0; q < 10; ++q) sv.apply_single_qubit(gates::H(), q);
  Rng rng(1);
  const std::vector<std::size_t> measured{0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.sample_counts(measured, shots, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shots));
}
BENCHMARK(BM_SampleShots)->RangeMultiplier(10)->Range(100, 1000000);

void BM_BellCircuitEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Circuit circuit(n);
  circuit.h(0);
  for (std::size_t q = 1; q < n; ++q) circuit.cnot(q - 1, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_circuit(circuit).norm_squared());
  }
}
BENCHMARK(BM_BellCircuitEndToEnd)->DenseRange(8, 20, 4);

}  // namespace
