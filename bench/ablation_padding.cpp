/// \file ablation_padding.cpp
/// \brief Ablation of the paper's padding design point (§3, Eq. 7): identity
/// padding with λ̃max/2 versus naive zero padding.
///
/// Zero padding adds 2^q − |S_k| spurious zero eigenvalues, so the Betti
/// estimate inflates by exactly that amount; identity padding parks the
/// ghost eigenvalues mid-spectrum where QPE rejects them.  The table prints
/// the mean absolute error of both schemes over random complexes, split by
/// how much padding the instance needed.
#include <cmath>
#include <cstdio>
#include <map>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/betti_estimator.hpp"
#include "experiment_common.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto num_complexes =
      static_cast<std::size_t>(args.get_int("complexes", 40));
  const auto t = static_cast<std::size_t>(args.get_int("precision", 8));
  const auto shots = static_cast<std::size_t>(args.get_int("shots", 100000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  std::printf("Padding ablation: identity (lambda_max/2)*I  vs  zero "
              "padding  (t = %zu, shots = %zu)\n\n",
              t, shots);
  std::printf("%-10s %-10s %-8s %-14s %-14s %-16s\n", "n", "|S_1|", "2^q",
              "pad size", "err(identity)", "err(zero)");
  bench::print_rule(76);

  Rng rng(seed);
  std::map<std::size_t, std::vector<double>> identity_by_pad, zero_by_pad;
  for (std::size_t i = 0; i < num_complexes; ++i) {
    RandomComplexOptions options;
    options.num_vertices = 8 + (i % 5);
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) == 0) continue;
    const auto laplacian = combinatorial_laplacian(complex, 1);
    const auto classical = static_cast<double>(betti_number(complex, 1));

    EstimatorOptions identity_options;
    identity_options.precision_qubits = t;
    identity_options.shots = shots;
    identity_options.seed = seed + i;
    EstimatorOptions zero_options = identity_options;
    zero_options.padding = PaddingScheme::kZero;

    const auto with_identity =
        estimate_betti_from_laplacian(laplacian, identity_options);
    const auto with_zero =
        estimate_betti_from_laplacian(laplacian, zero_options);
    const std::size_t dim = std::size_t{1} << with_identity.system_qubits;
    const std::size_t pad = dim - laplacian.rows();
    const double err_identity =
        std::abs(with_identity.estimated_betti - classical);
    const double err_zero = std::abs(with_zero.estimated_betti - classical);
    identity_by_pad[pad].push_back(err_identity);
    zero_by_pad[pad].push_back(err_zero);
    if (i < 12) {
      std::printf("%-10zu %-10zu %-8zu %-14zu %-14.3f %-16.3f\n",
                  options.num_vertices, laplacian.rows(), dim, pad,
                  err_identity, err_zero);
    }
  }

  std::printf("\nMean |error| grouped by padding amount (zero-padding error "
              "tracks the pad size, the paper's point):\n");
  std::printf("%-12s %-10s %-18s %-16s\n", "pad size", "count",
              "identity scheme", "zero scheme");
  bench::print_rule(58);
  for (const auto& [pad, errors] : identity_by_pad) {
    std::printf("%-12zu %-10zu %-18.3f %-16.3f\n", pad, errors.size(),
                mean(errors), mean(zero_by_pad[pad]));
  }
  return 0;
}
