/// \file micro_density_matrix.cpp
/// \brief google-benchmark microbenches for the exact-channel engine.
///
/// The headline pair is BM_ExactChannelQpe/q against
/// BM_TrajectoryEnsembleQpe/q at *matched accuracy*: one exact ρ evolution
/// of a noisy sparse-oracle QPE circuit versus the ~200-trajectory
/// run_noisy_trajectory ensemble whose mean marginal reaches the same few-%
/// statistical tolerance the convergence tests assert.  The exact channel
/// pays 4^n storage once; the ensemble pays one 2^n evolution per
/// trajectory, per shot batch.  BM_DepolarizingChannel tracks the in-place
/// channel kernel (one pass over vec(ρ), no full-vector copies).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "quantum/backend.hpp"
#include "quantum/compiler.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/noise.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

namespace {

using namespace qtda;

/// Trajectories needed for ~3% marginal accuracy — the tolerance the
/// convergence tests (and the example's --verify) use.  This is the matched
/// workload of the exact-vs-ensemble comparison.
constexpr std::size_t kMatchedTrajectories = 200;

constexpr double kSingleQubitError = 0.01;
constexpr double kTwoQubitError = 0.02;

/// Noisy sparse-oracle QPE circuit over the Δ_1 of a small flag complex:
/// q system qubits come from padding |S_1| to the next power of two, with
/// the register totalling t + 2q wires under purification.
Circuit qpe_circuit(std::size_t vertices, std::size_t precision) {
  std::vector<Simplex> edges;
  for (VertexId a = 0; a < vertices; ++a)
    for (VertexId b = a + 1; b < vertices; ++b)
      edges.push_back(Simplex{a, b});
  const auto complex = SimplicialComplex::from_simplices(edges, true);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = precision;
  return build_qtda_circuit(combinatorial_laplacian(complex, 1), options);
}

void BM_ExactChannelQpe(benchmark::State& state) {
  const auto vertices = static_cast<std::size_t>(state.range(0));
  const Circuit circuit = qpe_circuit(vertices, 3);
  const NoiseModel noise{kSingleQubitError, kTwoQubitError};
  const std::vector<std::size_t> measured{0, 1, 2};
  DensityMatrixBackend backend(circuit.num_qubits());
  Rng rng(7);
  for (auto _ : state) {
    backend.prepare_basis_state(0);
    backend.apply_circuit_with_noise(circuit, noise, rng);
    const auto marginal = backend.marginal_probabilities(measured);
    benchmark::DoNotOptimize(marginal.data());
  }
  state.counters["register_qubits"] =
      static_cast<double>(circuit.num_qubits());
}
BENCHMARK(BM_ExactChannelQpe)->Arg(3)->Arg(4);

void BM_TrajectoryEnsembleQpe(benchmark::State& state) {
  const auto vertices = static_cast<std::size_t>(state.range(0));
  const Circuit circuit = qpe_circuit(vertices, 3);
  const NoiseModel noise{kSingleQubitError, kTwoQubitError};
  const std::vector<std::size_t> measured{0, 1, 2};
  // Compile once, run every trajectory off the plan — the production path
  // of the trajectory estimator (noise slots keep the RNG order identical
  // to the raw-IR walk).
  CompilerOptions compiler_options = compiler_options_from_env();
  compiler_options.preserve_noise_slots = true;
  const ExecutionPlan plan = compile_circuit(circuit, compiler_options);
  Rng rng(7);
  for (auto _ : state) {
    std::vector<double> mean(std::size_t{1} << measured.size(), 0.0);
    for (std::size_t i = 0; i < kMatchedTrajectories; ++i) {
      const Statevector psi = run_noisy_trajectory(plan, noise, rng);
      const auto marginal = psi.marginal_probabilities(measured);
      for (std::size_t m = 0; m < mean.size(); ++m) mean[m] += marginal[m];
    }
    benchmark::DoNotOptimize(mean.data());
  }
  state.counters["register_qubits"] =
      static_cast<double>(circuit.num_qubits());
  state.counters["trajectories"] = static_cast<double>(kMatchedTrajectories);
}
BENCHMARK(BM_TrajectoryEnsembleQpe)->Arg(3)->Arg(4);

void BM_DepolarizingChannel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DensityMatrix rho(n);
  for (auto _ : state) {
    for (std::size_t q = 0; q < n; ++q) rho.apply_depolarizing(q, 0.01);
    benchmark::DoNotOptimize(rho.trace());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(1ULL << (2 * n)));
}
BENCHMARK(BM_DepolarizingChannel)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
