/// \file fig3_error_sweep.cpp
/// \brief Regenerates Fig. 3 (a,b,c): boxplots of the absolute error
/// |β̃1 − β1| on random simplicial complexes for n ∈ {5, 10, 15}, sweeping
/// the number of precision qubits (1..10) and shots (10²..10⁶).
///
/// The paper draws 100 random complexes per n; the default here is 30 for
/// wall-clock friendliness (--full restores 100, --complexes N overrides).
/// The Analytic backend makes the 10⁶-shot cells exact-and-instant: it
/// computes the same p(0) the circuit produces (tests pin the equivalence)
/// and draws the shot counter from Binomial(α, p(0)).
///
/// Expected shape (paper §4): error falls with both axes, reaching ~0 at
/// high precision/shots; larger n has larger worst-case error because
/// |S_1| — and with it 2^q — grows.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/betti_estimator.hpp"
#include "experiment_common.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace {

using namespace qtda;

struct Cell {
  std::size_t precision;
  std::size_t shots;
  std::vector<double> errors;
};

void run_for_n(std::size_t n, std::size_t num_complexes,
               const std::vector<std::int64_t>& shot_counts,
               std::size_t max_precision, std::uint64_t seed) {
  bench::banner("Fig 3: n = " + std::to_string(n) + "  (" +
                std::to_string(num_complexes) + " random complexes, k = 1)");

  // Pre-draw complexes and their exact data once; the (t, shots) sweep then
  // reuses the eigendecompositions implicitly through the estimator.
  struct Instance {
    RealMatrix laplacian;
    std::size_t betti;
  };
  std::vector<Instance> instances;
  Rng rng(seed);
  while (instances.size() < num_complexes) {
    RandomComplexOptions options;
    options.num_vertices = n;
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) == 0) continue;  // k = 1 needs edges
    instances.push_back({combinatorial_laplacian(complex, 1),
                         betti_number(complex, 1)});
  }

  std::printf("%-6s", "t \\ a");
  for (auto shots : shot_counts) std::printf("  %10lld", (long long)shots);
  std::printf("   (median |err|; q3 in parens)\n");

  for (std::size_t t = 1; t <= max_precision; ++t) {
    std::printf("t=%-4zu", t);
    for (auto shots : shot_counts) {
      std::vector<double> errors(instances.size());
      parallel_for(0, instances.size(), [&](std::size_t i) {
        EstimatorOptions options;
        options.backend = EstimatorBackend::kAnalytic;
        options.precision_qubits = t;
        options.shots = static_cast<std::size_t>(shots);
        options.seed = seed * 1000003 + i * 97 + t * 13 +
                       static_cast<std::uint64_t>(shots);
        const auto estimate =
            estimate_betti_from_laplacian(instances[i].laplacian, options);
        errors[i] = std::abs(estimate.estimated_betti -
                             static_cast<double>(instances[i].betti));
      }, 1);
      const auto summary = five_number_summary(errors);
      std::printf("  %6.3f(%5.2f)", summary.median, summary.q3);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool full = args.get_bool("full");
  const auto complexes = static_cast<std::size_t>(
      args.get_int("complexes", full ? 100 : 30));
  const auto max_precision =
      static_cast<std::size_t>(args.get_int("max-precision", 10));
  const auto shot_counts = args.get_int_list(
      "shots", {100, 1000, 10000, 100000, 1000000});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));

  std::printf("Fig. 3 reproduction: absolute error |estimated - actual| of "
              "the QTDA Betti estimate\n");
  std::printf("Backend: Analytic (exact QPE statistics + Binomial shots); "
              "padding: (lambda_max/2)*I; delta = 0.95*2*pi\n");

  Timer timer;
  for (std::size_t n : {std::size_t{5}, std::size_t{10}, std::size_t{15}}) {
    run_for_n(n, complexes, shot_counts, max_precision, seed + n);
  }
  std::printf("\nTotal wall time: %.2f s\n", timer.seconds());
  return 0;
}
