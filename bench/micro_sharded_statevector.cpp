/// \file micro_sharded_statevector.cpp
/// \brief google-benchmark microbenches for the slab-parallel engine.
///
/// The acceptance workload pairs BM_GateSweepDense/q against
/// BM_GateSweepSharded/q/workers (and likewise for the operator oracle):
/// identical circuits on the serial dense backend and on the sharded
/// backend, so the recorded BENCH_micro.json exposes the speedup directly.
/// Note the dense engine stays serial below 2^17 amplitudes by design, so
/// at q = 14 the sharded engine's private worker pool is the only
/// parallelism in play — on a multi-core host the ratio is the worker
/// scaling; on a single-core host it degrades to the slab bookkeeping
/// overhead.
#include <benchmark/benchmark.h>

#include <memory>

#include "linalg/expm_multiply.hpp"
#include "linalg/sparse_matrix.hpp"
#include "quantum/backend.hpp"
#include "quantum/circuit.hpp"

namespace {

using namespace qtda;

/// A gate sweep shaped like one QPE fragment: an H wall, an entangling CNOT
/// chain, and a rotation layer.
Circuit sweep_circuit(std::size_t q) {
  Circuit circuit(q);
  for (std::size_t w = 0; w < q; ++w) circuit.h(w);
  for (std::size_t w = 1; w < q; ++w) circuit.cnot(w - 1, w);
  for (std::size_t w = 0; w < q; ++w)
    circuit.rz(w, 0.1 * static_cast<double>(w + 1));
  return circuit;
}

/// Tridiagonal symmetric CSR Hamiltonian of dimension 2^m.
SparseMatrix tridiagonal_hamiltonian(std::size_t m) {
  const std::size_t dim = std::size_t{1} << m;
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < dim; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i + 1 < dim) {
      triplets.push_back({i, i + 1, -1.0});
      triplets.push_back({i + 1, i, -1.0});
    }
  }
  return SparseMatrix::from_triplets(dim, dim, std::move(triplets));
}

void BM_GateSweepDense(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  StatevectorBackend backend(q);
  const Circuit circuit = sweep_circuit(q);
  for (auto _ : state) {
    backend.apply_circuit(circuit);
    benchmark::DoNotOptimize(backend.state().amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(circuit.gate_count()) *
                          static_cast<std::int64_t>(1ULL << q));
}
BENCHMARK(BM_GateSweepDense)->DenseRange(12, 16, 2);

void BM_GateSweepSharded(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  ShardedStatevectorBackend backend(q, workers);
  const Circuit circuit = sweep_circuit(q);
  for (auto _ : state) {
    backend.apply_circuit(circuit);
    benchmark::DoNotOptimize(backend.state().slab_begin(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(circuit.gate_count()) *
                          static_cast<std::int64_t>(1ULL << q));
}
BENCHMARK(BM_GateSweepSharded)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({14, 1})
    ->Args({14, 2})
    ->Args({14, 4})
    ->Args({14, 8})
    ->Args({16, 4});

void BM_OperatorOracleDense(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const std::size_t m = q - 2;  // system register below 2 precision wires
  StatevectorBackend backend(q);
  const SparseExpOperator op(tridiagonal_hamiltonian(m), 1.0, 0.0, 4.0);
  std::vector<std::size_t> targets;
  for (std::size_t w = 2; w < q; ++w) targets.push_back(w);
  for (auto _ : state) {
    backend.apply_operator(op, targets, {0});
    benchmark::DoNotOptimize(backend.state().amplitudes().data());
  }
}
BENCHMARK(BM_OperatorOracleDense)->DenseRange(12, 14, 2);

void BM_OperatorOracleSharded(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const std::size_t m = q - 2;
  ShardedStatevectorBackend backend(q, workers);
  const SparseExpOperator op(tridiagonal_hamiltonian(m), 1.0, 0.0, 4.0);
  std::vector<std::size_t> targets;
  for (std::size_t w = 2; w < q; ++w) targets.push_back(w);
  for (auto _ : state) {
    backend.apply_operator(op, targets, {0});
    benchmark::DoNotOptimize(backend.state().slab_begin(0));
  }
}
BENCHMARK(BM_OperatorOracleSharded)
    ->Args({12, 4})
    ->Args({14, 1})
    ->Args({14, 4})
    ->Args({14, 8});

void BM_ShardedMarginals(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  ShardedStatevectorBackend backend(q, workers);
  backend.apply_circuit(sweep_circuit(q));
  const std::vector<std::size_t> measured{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.marginal_probabilities(measured));
  }
}
BENCHMARK(BM_ShardedMarginals)->Args({14, 1})->Args({14, 4});

}  // namespace
