/// \file micro_circuits.cpp
/// \brief google-benchmark microbenches for circuit synthesis, the
/// optimizer, and the QPE network builders (paper Figs. 6–7 machinery).
#include <benchmark/benchmark.h>

#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/optimizer.hpp"
#include "quantum/pauli.hpp"
#include "quantum/qft.hpp"
#include "quantum/qpe.hpp"
#include "quantum/trotter.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

namespace {

using namespace qtda;

/// The worked-example Hamiltonian (Eq. 18 with δ = λmax): 24 Pauli terms.
PauliSum worked_example_hamiltonian() {
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}}, true);
  const auto scaled = rescale_laplacian(
      pad_laplacian(combinatorial_laplacian(complex, 1)), 6.0);
  return pauli_decompose(scaled.matrix);
}

void BM_TrotterSynthesis(benchmark::State& state) {
  const auto steps = static_cast<std::size_t>(state.range(0));
  const auto h = worked_example_hamiltonian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trotter_circuit(h, 1.0, {steps, 2}, 3).gate_count());
  }
  const Circuit sample = trotter_circuit(h, 1.0, {steps, 2}, 3);
  state.counters["gates"] = static_cast<double>(sample.gate_count());
  state.counters["depth"] = static_cast<double>(sample.depth());
}
BENCHMARK(BM_TrotterSynthesis)->RangeMultiplier(2)->Range(1, 32);

void BM_OptimizerOnTrotterCircuit(benchmark::State& state) {
  const auto steps = static_cast<std::size_t>(state.range(0));
  const auto h = worked_example_hamiltonian();
  const Circuit circuit = trotter_circuit(h, 1.0, {steps, 2}, 3);
  OptimizerReport report;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_circuit(circuit, &report).gate_count());
  }
  state.counters["gates_before"] = static_cast<double>(report.gates_before);
  state.counters["gates_after"] = static_cast<double>(report.gates_after);
  state.counters["depth_before"] = static_cast<double>(report.depth_before);
  state.counters["depth_after"] = static_cast<double>(report.depth_after);
}
BENCHMARK(BM_OptimizerOnTrotterCircuit)->RangeMultiplier(2)->Range(1, 16);

void BM_QftSynthesis(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> wires(t);
  for (std::size_t i = 0; i < t; ++i) wires[i] = i;
  for (auto _ : state) {
    Circuit c(t);
    append_inverse_qft(c, wires);
    benchmark::DoNotOptimize(c.gate_count());
  }
}
BENCHMARK(BM_QftSynthesis)->DenseRange(2, 12, 2);

void BM_QpeNetworkDense(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}}, true);
  const auto scaled = rescale_laplacian(
      pad_laplacian(combinatorial_laplacian(complex, 1)), 6.0);
  const HamiltonianExponential exponential(scaled.matrix);
  QpeLayout layout{t, scaled.num_qubits, 0};
  for (auto _ : state) {
    const Circuit qpe = build_qpe_circuit_dense(
        layout, [&](std::uint64_t power) {
          return exponential.unitary(static_cast<double>(power));
        });
    benchmark::DoNotOptimize(qpe.gate_count());
  }
}
BENCHMARK(BM_QpeNetworkDense)->DenseRange(1, 8, 1);

void BM_ControlledFragment(benchmark::State& state) {
  const auto h = worked_example_hamiltonian();
  const Circuit fragment = trotter_circuit(h, 1.0, {2, 2}, 4, /*offset=*/1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fragment.controlled_on(0).gate_count());
  }
}
BENCHMARK(BM_ControlledFragment);

}  // namespace
