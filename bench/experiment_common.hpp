/// \file experiment_common.hpp
/// \brief Shared plumbing for the experiment harnesses in bench/.
///
/// Each harness regenerates one table or figure of the paper.  Output is a
/// plain-text table (one row per series point) so the numbers can be diffed
/// against EXPERIMENTS.md and re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace qtda::bench {

/// Prints a horizontal rule sized to the header.
inline void print_rule(std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Formats a boxplot row (Fig. 3 uses Tukey boxplots).
inline void print_boxplot_row(const std::string& label,
                              const FiveNumberSummary& s) {
  std::printf(
      "%-24s med=%7.3f  q1=%7.3f  q3=%7.3f  whisk=[%7.3f,%7.3f]  "
      "outliers=%2zu  n=%zu\n",
      label.c_str(), s.median, s.q1, s.q3, s.whisker_low, s.whisker_high,
      s.outliers, s.count);
}

}  // namespace qtda::bench
