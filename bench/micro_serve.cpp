/// \file micro_serve.cpp
/// \brief google-benchmark microbenches for the serving layer.
///
/// The headline pairs are the serving layer's two perf claims:
///
///  * BM_ServeCold vs BM_ServeWarm — one q=10 sparse estimate (33-point
///    cloud, complete Rips graph, 528 edges padded to 1024) answered from
///    an empty ArtifactStore versus a populated one.  Cold pays Rips
///    expansion, CSR Laplacian assembly, Chebyshev-ladder circuit
///    construction, plan compilation and the diagnostic eigensolve; warm
///    pays key lookup plus the shot execution only.
///  * BM_ServeSerial vs BM_ServeBatched — the batcher's primitive: six
///    identical-plan purification requests executed one evolution each
///    versus one shared evolution with per-request shot sampling
///    (bit-identical by construction, see estimate_betti_batch).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/betti_estimator.hpp"
#include "linalg/expm_multiply.hpp"
#include "serve/artifact_cache.hpp"
#include "topology/laplacian.hpp"
#include "topology/point_cloud.hpp"
#include "topology/rips.hpp"

namespace {

using namespace qtda;

PointCloud circle_cloud(std::size_t n) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  return PointCloud(std::move(points));
}

/// The q=10 serving request: ε=3 exceeds the circle's diameter, so the Rips
/// graph is complete — 528 edges, padded to a 1024-dimensional (q=10)
/// system register.  Sampled-basis mixture with few shots keeps the warm
/// side dominated by plan execution rather than shot volume.
EstimatorOptions serve_request_options() {
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.mixed_state = MixedStateMode::kSampledBasis;
  options.precision_qubits = 2;
  options.shots = 4;
  return options;
}

/// Cold request: a fresh store per iteration (and a cleared process-wide
/// Chebyshev coefficient memo — the daemon-restart condition), so every
/// cache level misses and the full resolve-and-compile chain runs.
void BM_ServeCold(benchmark::State& state) {
  const PointCloud cloud = circle_cloud(33);
  const EstimatorOptions options = serve_request_options();
  std::size_t system_qubits = 0;
  for (auto _ : state) {
    ArtifactStore store;
    expm_coefficient_cache_clear();
    const ResolvedArtifacts resolved = store.resolve(cloud, 3.0, 1, options);
    const BettiEstimate estimate =
        estimate_betti_with_plan(resolved.plan->compiled, options);
    system_qubits = estimate.system_qubits;
    benchmark::DoNotOptimize(estimate.estimated_betti);
  }
  state.counters["q"] = static_cast<double>(system_qubits);
}
BENCHMARK(BM_ServeCold);

/// Warm request against the same store: every level hits, so the iteration
/// is key lookup plus plan execution — the sustained-throughput regime the
/// cache exists for.  Bit-identical to the cold result (asserted by
/// tests/test_serve.cpp; here we only time it).
void BM_ServeWarm(benchmark::State& state) {
  const PointCloud cloud = circle_cloud(33);
  const EstimatorOptions options = serve_request_options();
  ArtifactStore store;
  store.resolve(cloud, 3.0, 1, options);  // populate every level
  std::size_t system_qubits = 0;
  for (auto _ : state) {
    const ResolvedArtifacts resolved = store.resolve(cloud, 3.0, 1, options);
    MutexLock lock(resolved.plan->exec_mutex);
    const BettiEstimate estimate =
        estimate_betti_with_plan(resolved.plan->compiled, options);
    system_qubits = estimate.system_qubits;
    benchmark::DoNotOptimize(estimate.estimated_betti);
  }
  state.counters["q"] = static_cast<double>(system_qubits);
}
BENCHMARK(BM_ServeWarm);

/// The batcher's workload: six identical-plan purification requests
/// (distinct seeds) on a q=7 complete-graph Laplacian — a 17-qubit
/// register, so each evolution dominates its request.
struct BatchWorkload {
  CompiledEstimate compiled;
  std::vector<EstimatorOptions> requests;
};

BatchWorkload batch_workload() {
  const PointCloud cloud = circle_cloud(12);
  const SimplicialComplex complex = rips_complex(cloud, 3.0, 2);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  options.shots = 256;
  BatchWorkload workload;
  workload.compiled = compile_betti_estimate(laplacian, options);
  workload.requests.assign(6, options);
  for (std::size_t i = 0; i < workload.requests.size(); ++i)
    workload.requests[i].seed = 100 + i;
  return workload;
}

/// Serial baseline: one full state evolution per request.
void BM_ServeSerial(benchmark::State& state) {
  const BatchWorkload workload = batch_workload();
  for (auto _ : state) {
    double total = 0.0;
    for (const EstimatorOptions& request : workload.requests)
      total += estimate_betti_with_plan(workload.compiled, request)
                   .estimated_betti;
    benchmark::DoNotOptimize(total);
  }
  state.counters["requests"] =
      static_cast<double>(workload.requests.size());
  state.counters["total_qubits"] =
      static_cast<double>(workload.compiled.total_qubits);
}
BENCHMARK(BM_ServeSerial);

/// Batched: one evolution, per-request shot sampling — what the server's
/// admission queue coalesces identical-plan requests into.
void BM_ServeBatched(benchmark::State& state) {
  const BatchWorkload workload = batch_workload();
  for (auto _ : state) {
    double total = 0.0;
    for (const BettiEstimate& estimate :
         estimate_betti_batch(workload.compiled, workload.requests))
      total += estimate.estimated_betti;
    benchmark::DoNotOptimize(total);
  }
  state.counters["requests"] =
      static_cast<double>(workload.requests.size());
  state.counters["total_qubits"] =
      static_cast<double>(workload.compiled.total_qubits);
}
BENCHMARK(BM_ServeBatched);

}  // namespace
