/// \file micro_simd.cpp
/// \brief google-benchmark microbenches for the four vectorized hot loops,
/// each at {double, float} × {scalar, simd}.
///
/// The kernels take the dispatch level as an argument, so the scalar and
/// vector variants of one loop run in one process on identical data — the
/// speedup ratio in BENCH_micro.json is the evidence for (or against) the
/// fusion cost-model constants in quantum/compiler.cpp.  On hosts without
/// AVX2 the "simd" variants degrade to the scalar path; the recorded pair
/// then shows ratio ≈ 1, which is itself informative.

#include <benchmark/benchmark.h>

#include <complex>
#include <cstdint>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/random.hpp"
#include "quantum/register_layout.hpp"
#include "quantum/simd_kernels.hpp"

namespace {

using namespace qtda;

SimdLevel level_for(std::int64_t simd) {
  return simd == 0 ? SimdLevel::kScalar : detected_simd_level();
}

template <typename R>
std::vector<std::complex<R>> random_amps(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<R>> amps(n);
  for (auto& a : amps)
    a = {static_cast<R>(rng.uniform() - 0.5),
         static_cast<R>(rng.uniform() - 0.5)};
  return amps;
}

// ---------------------------------------------------------------------------
// Contiguous pair sweep (uncontrolled single-qubit gate).
// ---------------------------------------------------------------------------

template <typename R>
void BM_PairSweep(benchmark::State& state) {
  const SimdLevel level = level_for(state.range(0));
  const std::size_t n = 1ULL << 16;
  auto amps = random_amps<R>(2 * n, 7);
  const auto u = random_amps<R>(4, 11);
  for (auto _ : state) {
    simd::pair_sweep(level, amps.data(), amps.data() + n, n, u.data());
    benchmark::DoNotOptimize(amps.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_PairSweep<double>)->Arg(0)->Arg(1);
BENCHMARK(BM_PairSweep<float>)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Diagonal table-lookup pass (fused controlled-phase ladder).
// ---------------------------------------------------------------------------

template <typename R>
void BM_DiagonalPass(benchmark::State& state) {
  const SimdLevel level = level_for(state.range(0));
  const std::size_t n = 1ULL << 17;
  auto amps = random_amps<R>(n, 13);
  // A 6-wide diagonal split across two bit runs of the 17-bit index — the
  // shape the compiler's wide fused diagonals produce.
  DiagonalExtract extract;
  extract.shifts = {11, 4};
  extract.masks = {0x7, 0x38};
  const auto table = random_amps<R>(64, 17);
  for (auto _ : state) {
    simd::diagonal_pass(level, amps.data(), 0, n, extract, table.data());
    benchmark::DoNotOptimize(amps.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DiagonalPass<double>)->Arg(0)->Arg(1);
BENCHMARK(BM_DiagonalPass<float>)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Fused dense-block apply (gathered 2^w block × matrix).
// ---------------------------------------------------------------------------

template <typename R>
void BM_BlockMatvec(benchmark::State& state) {
  const SimdLevel level = level_for(state.range(0));
  const std::size_t block = 16;  // a fused width-4 op
  const auto u = random_amps<R>(block * block, 19);
  const auto in = random_amps<R>(block, 23);
  std::vector<std::complex<R>> out(block);
  for (auto _ : state) {
    // One plan op touches 2^n / block such blocks; iterate enough of them
    // that the timer sees kernel cost, not loop overhead.
    for (int rep = 0; rep < 1024; ++rep) {
      simd::block_matvec(level, u.data(), in.data(), out.data(), block);
      benchmark::DoNotOptimize(out.data());
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(1024 * block * block));
}
BENCHMARK(BM_BlockMatvec<double>)->Arg(0)->Arg(1);
BENCHMARK(BM_BlockMatvec<float>)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// CSR matvec (Chebyshev oracle inner loop): path-graph Laplacian rows.
// ---------------------------------------------------------------------------

template <typename R>
void BM_CsrMatvec(benchmark::State& state) {
  const SimdLevel level = level_for(state.range(0));
  const std::size_t rows = 1ULL << 14;
  std::vector<std::size_t> offsets(rows + 1);
  std::vector<std::size_t> cols;
  std::vector<R> vals;
  Rng rng(29);
  for (std::size_t r = 0; r < rows; ++r) {
    offsets[r] = cols.size();
    // ~16 nonzeros per row, clustered near the diagonal (simplicial
    // Laplacians are banded-ish).
    for (std::size_t k = 0; k < 16; ++k) {
      cols.push_back((r + 3 * k) % rows);
      vals.push_back(static_cast<R>(rng.uniform() - 0.5));
    }
  }
  offsets[rows] = cols.size();
  const auto x = random_amps<R>(rows, 31);
  std::vector<std::complex<R>> y(rows);
  for (auto _ : state) {
    simd::csr_matvec_rows(level, offsets.data(), cols.data(), vals.data(),
                          x.data(), y.data(), 0, rows);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cols.size()));
}
BENCHMARK(BM_CsrMatvec<double>)->Arg(0)->Arg(1);
BENCHMARK(BM_CsrMatvec<float>)->Arg(0)->Arg(1);

}  // namespace
