/// \file fig4_grouping_scale.cpp
/// \brief Regenerates Fig. 4: training accuracy (using actual Betti
/// numbers) versus the grouping scale ε.
///
/// The paper sweeps 50 linearly spaced ε values and repeats the training-
/// data experiment 50 times; the curve rises to an interior plateau (the
/// topology is uninformative when ε is too small — everything is isolated
/// points — or too large — everything is one blob).  Our synthetic features
/// live on their own scale, so the sweep band is expressed in units of the
/// median cloud diameter (≈ the paper's [3, 5] band in their units).
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "data/features.hpp"
#include "data/gearbox.hpp"
#include "experiment_common.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "topology/betti.hpp"
#include "topology/rips.hpp"

namespace {

using namespace qtda;

double cloud_diameter(const PointCloud& cloud) {
  double dmax = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    for (std::size_t j = i + 1; j < cloud.size(); ++j)
      dmax = std::max(dmax, cloud.distance(i, j));
  return dmax;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("samples", 255));
  const auto healthy = static_cast<std::size_t>(args.get_int("healthy", 51));
  const auto num_eps = static_cast<std::size_t>(args.get_int("eps-steps", 25));
  const auto repeats = static_cast<std::size_t>(args.get_int("repeats", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::printf("Fig. 4 reproduction: training accuracy (actual Betti "
              "numbers) vs grouping scale\n");
  std::printf("(%zu eps values, %zu training repeats per value)\n\n", num_eps,
              repeats);

  GearboxSignalOptions signal_options;
  Rng rng(seed);
  const auto samples = generate_gearbox_feature_dataset(
      total, healthy, 512, signal_options, rng);

  std::vector<PointCloud> clouds;
  std::vector<int> labels;
  std::vector<double> diameters;
  for (const auto& sample : samples) {
    clouds.push_back(feature_point_cloud(sample.features));
    labels.push_back(sample.label);
    diameters.push_back(cloud_diameter(clouds.back()));
  }
  const double unit = qtda::median(diameters);
  const double lo = args.get_double("eps-min", 0.2 * unit);
  const double hi = args.get_double("eps-max", 1.6 * unit);

  std::printf("%-12s %-20s %-12s\n", "eps", "training accuracy (mean)",
              "stddev");
  qtda::bench::print_rule(48);

  double best_eps = lo;
  double best_accuracy = 0.0;
  for (std::size_t step = 0; step < num_eps; ++step) {
    const double eps =
        lo + (hi - lo) * static_cast<double>(step) /
                 static_cast<double>(num_eps - 1);
    // Exact Betti features at this scale.
    std::vector<std::vector<double>> features;
    for (const auto& cloud : clouds) {
      const auto complex = rips_complex(cloud, eps, 2);
      features.push_back({static_cast<double>(betti_number(complex, 0)),
                          static_cast<double>(betti_number(complex, 1))});
    }
    std::vector<double> accuracies;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      Dataset data;
      for (std::size_t i = 0; i < features.size(); ++i)
        data.add(features[i], labels[i]);
      Rng split_rng(seed * 100 + step * 10 + rep);
      const auto split = stratified_split(data, 0.2, split_rng);
      StandardScaler scaler;
      scaler.fit(split.train.features);
      Dataset train{scaler.transform(split.train.features),
                    split.train.labels};
      LogisticRegression model;
      model.fit(train);
      accuracies.push_back(
          accuracy(train.labels, model.predict_all(train.features)));
    }
    const double mean_accuracy = qtda::mean(accuracies);
    std::printf("%-12.4f %-24.3f %-12.3f\n", eps, mean_accuracy,
                qtda::stddev(accuracies));
    if (mean_accuracy > best_accuracy) {
      best_accuracy = mean_accuracy;
      best_eps = eps;
    }
  }
  std::printf("\nBest grouping scale: eps = %.4f (training accuracy %.3f)\n",
              best_eps, best_accuracy);
  return 0;
}
