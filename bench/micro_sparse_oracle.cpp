/// \file micro_sparse_oracle.cpp
/// \brief Dense vs matrix-free controlled-U^p QPE oracles.
///
/// The unit under test is one controlled power U^p = exp(i·p·H) applied to
/// a (1 + q)-qubit state (control wire + system register), the building
/// block the QPE network repeats t times:
///
///  * dense:  eigendecompose H (O(8^q)), assemble the 2^q×2^q unitary,
///            apply it with the dense kernel — the kCircuitExact path.
///  * dense-amortized: eigendecomposition hoisted out of the loop; only
///            unitary assembly + application are timed (the marginal cost
///            of one extra power in a QPE circuit).
///  * sparse: Chebyshev coefficients + num_terms() CSR matvecs — the
///            kCircuitSparse path.  Nothing 2^q×2^q is ever allocated, so
///            it keeps scaling (q = 12 here) after the dense oracle has
///            left the building.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "common/random.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/expm_multiply.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/statevector.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace {

using namespace qtda;

constexpr double kBenchPower = 8.0;  // the U^{2^3} controlled power

/// Random flag-complex Δ_1 whose padded dimension is exactly 2^q.
SparseMatrix sample_sparse_laplacian(std::size_t target_qubits) {
  const std::size_t lo = std::size_t{1} << (target_qubits - 1);
  const std::size_t hi = std::size_t{1} << target_qubits;
  // Expected edge count n(n−1)/4 ≈ 0.75·2^q puts |S_1| inside (2^{q−1}, 2^q].
  const std::size_t n = static_cast<std::size_t>(
      std::ceil(std::sqrt(3.0 * static_cast<double>(hi))));
  Rng rng(target_qubits * 7727 + 1);
  for (;;) {
    RandomComplexOptions options;
    options.num_vertices = n;
    options.edge_probability = 0.5;
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    const std::size_t edges = complex.count(1);
    if (edges > lo && edges <= hi)
      return sparse_combinatorial_laplacian(complex, 1);
  }
}

struct OracleFixture {
  SparseScaledHamiltonian sparse;
  std::size_t q = 0;
  std::vector<std::size_t> system;

  explicit OracleFixture(std::size_t target_qubits) {
    const SparseMatrix laplacian = sample_sparse_laplacian(target_qubits);
    sparse = rescale_laplacian_sparse(pad_laplacian_sparse(laplacian), 6.0);
    q = sparse.num_qubits;
    for (std::size_t w = 1; w <= q; ++w) system.push_back(w);
  }

  /// (1+q)-qubit state with the control wire (wire 0) set, so the
  /// controlled oracle actually fires on every block.
  Statevector initial_state() const {
    Statevector state(1 + q);
    state.set_basis_state(std::uint64_t{1} << q);
    return state;
  }
};

void BM_DenseOracleControlledPower(benchmark::State& state) {
  const OracleFixture fixture(static_cast<std::size_t>(state.range(0)));
  const RealMatrix dense_h = fixture.sparse.matrix.to_dense();
  for (auto _ : state) {
    const HamiltonianExponential exponential(dense_h);  // O(8^q) eigensolve
    const ComplexMatrix u = exponential.unitary(kBenchPower);
    Statevector sv = fixture.initial_state();
    sv.apply_unitary(u, fixture.system, {0});
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.counters["q"] = static_cast<double>(fixture.q);
}

void BM_DenseOracleAmortized(benchmark::State& state) {
  const OracleFixture fixture(static_cast<std::size_t>(state.range(0)));
  const HamiltonianExponential exponential(
      fixture.sparse.matrix.to_dense());
  for (auto _ : state) {
    const ComplexMatrix u = exponential.unitary(kBenchPower);
    Statevector sv = fixture.initial_state();
    sv.apply_unitary(u, fixture.system, {0});
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.counters["q"] = static_cast<double>(fixture.q);
}

void BM_SparseOracleControlledPower(benchmark::State& state) {
  const OracleFixture fixture(static_cast<std::size_t>(state.range(0)));
  std::size_t terms = 0;
  for (auto _ : state) {
    const SparseExpOperator op(fixture.sparse.matrix, kBenchPower,
                               fixture.sparse.spectrum_min(),
                               fixture.sparse.spectrum_max());
    Statevector sv = fixture.initial_state();
    sv.apply_operator(op, fixture.system, {0});
    terms = op.num_terms();
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.counters["q"] = static_cast<double>(fixture.q);
  state.counters["terms"] = static_cast<double>(terms);
  state.counters["nnz"] =
      static_cast<double>(fixture.sparse.matrix.nonzeros());
}

}  // namespace

// Dense stops at q = 9: the eigendecomposition alone is already ~minutes
// beyond that, which is the point of the sparse path.
BENCHMARK(BM_DenseOracleControlledPower)->DenseRange(8, 9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseOracleAmortized)->DenseRange(8, 9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseOracleControlledPower)->DenseRange(8, 12, 2)
    ->Unit(benchmark::kMillisecond);
