# Defines qtda_sanitizers, an interface target carrying sanitizer
# instrumentation selected by QTDA_SANITIZE.  Kept separate from
# qtda_warnings so diagnostics and instrumentation stay independently
# composable; intended for Debug/RelWithDebInfo builds, and the CI sanitizer
# jobs run the whole test suite under it.
#
# Accepted values (case-insensitive), validated fail-fast like the
# make_simulator-style runtime overrides — a typo'd CI matrix entry dies at
# configure time instead of silently building uninstrumented:
#
#   OFF (default)   no instrumentation
#   ON | address    AddressSanitizer + UndefinedBehaviorSanitizer
#                   ("ON" is the historical boolean spelling)
#   thread | tsan   ThreadSanitizer
#
# ASan and TSan are mutually exclusive instrumentations (each claims its own
# shadow-memory mapping of the address space); asking for both is a
# configure-time error rather than a link-time surprise.
add_library(qtda_sanitizers INTERFACE)

if(NOT QTDA_SANITIZE)
  return()  # OFF / 0 / empty: nothing to instrument
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  message(WARNING "QTDA_SANITIZE is only supported with GCC/Clang")
  return()
endif()

string(TOLOWER "${QTDA_SANITIZE}" _qtda_sanitize)
string(REPLACE "," ";" _qtda_sanitize "${_qtda_sanitize}")

list(LENGTH _qtda_sanitize _qtda_sanitize_count)
if(_qtda_sanitize_count GREATER 1)
  if(("address" IN_LIST _qtda_sanitize OR "on" IN_LIST _qtda_sanitize)
     AND ("thread" IN_LIST _qtda_sanitize OR "tsan" IN_LIST _qtda_sanitize))
    message(FATAL_ERROR
      "QTDA_SANITIZE=\"${QTDA_SANITIZE}\": AddressSanitizer and "
      "ThreadSanitizer are mutually exclusive instrumentations — configure "
      "two build trees (e.g. the 'asan' and 'tsan' presets) instead.")
  endif()
  message(FATAL_ERROR
    "QTDA_SANITIZE=\"${QTDA_SANITIZE}\": expected a single value "
    "(OFF, ON/address, thread).")
endif()

if(_qtda_sanitize MATCHES "^(on|true|yes|1|address|asan)$")
  set(_qtda_sanitize_flags -fsanitize=address,undefined)
elseif(_qtda_sanitize MATCHES "^(thread|tsan)$")
  set(_qtda_sanitize_flags -fsanitize=thread)
else()
  message(FATAL_ERROR
    "unknown QTDA_SANITIZE value \"${QTDA_SANITIZE}\" "
    "(valid: OFF, ON/address, thread)")
endif()

target_compile_options(qtda_sanitizers INTERFACE
  ${_qtda_sanitize_flags}
  -fno-omit-frame-pointer
  -fno-sanitize-recover=all)
target_link_options(qtda_sanitizers INTERFACE ${_qtda_sanitize_flags})
