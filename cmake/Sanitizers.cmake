# Defines qtda_sanitizers, an interface target carrying ASan+UBSan
# instrumentation when QTDA_SANITIZE=ON (empty otherwise).  Kept separate from
# qtda_warnings so diagnostics and instrumentation stay independently
# composable; intended for Debug builds, and the CI sanitizer job runs the
# whole test suite under it.
add_library(qtda_sanitizers INTERFACE)

if(QTDA_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(qtda_sanitizers INTERFACE
      -fsanitize=address,undefined
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
    target_link_options(qtda_sanitizers INTERFACE
      -fsanitize=address,undefined)
  else()
    message(WARNING "QTDA_SANITIZE is only supported with GCC/Clang")
  endif()
endif()
