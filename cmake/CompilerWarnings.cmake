# Defines the qtda_warnings interface target carrying the project-wide
# diagnostic flags.  The tree currently compiles clean under the full set, so
# QTDA_WERROR=ON is safe for CI even though it defaults to OFF for developers.
add_library(qtda_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(qtda_warnings INTERFACE
    -Wall
    -Wextra
    -Wpedantic
    -Wshadow)
  if(QTDA_WERROR)
    target_compile_options(qtda_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(qtda_warnings INTERFACE /W4)
  if(QTDA_WERROR)
    target_compile_options(qtda_warnings INTERFACE /WX)
  endif()
endif()
