# Defines the qtda_warnings interface target carrying the project-wide
# diagnostic flags.  The tree currently compiles clean under the full set, so
# QTDA_WERROR=ON is safe for CI even though it defaults to OFF for developers.
add_library(qtda_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(qtda_warnings INTERFACE
    -Wall
    -Wextra
    -Wpedantic
    -Wshadow)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    # Static lock-discipline checking against the QTDA_GUARDED_BY /
    # QTDA_REQUIRES annotations in common/thread_annotations.hpp.  Clang
    # only — GCC accepts the attributes as no-ops — so the clang CI leg
    # (QTDA_WERROR=ON) is the gate that fails the build on a violation.
    target_compile_options(qtda_warnings INTERFACE -Wthread-safety)
  endif()
  if(QTDA_WERROR)
    target_compile_options(qtda_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(qtda_warnings INTERFACE /W4)
  if(QTDA_WERROR)
    target_compile_options(qtda_warnings INTERFACE /WX)
  endif()
endif()
