# Header self-containment sweep: compiles every src/**/*.hpp as its own
# translation unit, so each header must include everything it uses.  PR 1
# ran this check by hand once; QTDA_CHECK_HEADERS=ON turns it into a build
# target that CI runs on every push, so new headers cannot regress.
#
# Each header gets a one-line generated TU (#include "<header>") compiled
# into an object library that nothing links — the compile itself is the
# check.  The generated TUs are written only when missing or stale, so
# reconfiguring does not force a rebuild of the whole sweep.
if(NOT QTDA_CHECK_HEADERS)
  return()
endif()

file(GLOB_RECURSE _qtda_check_headers
  RELATIVE ${PROJECT_SOURCE_DIR}/src
  CONFIGURE_DEPENDS
  ${PROJECT_SOURCE_DIR}/src/*.hpp)

set(_qtda_header_tus "")
foreach(_header IN LISTS _qtda_check_headers)
  string(MAKE_C_IDENTIFIER "${_header}" _id)
  set(_tu ${CMAKE_BINARY_DIR}/header_selfcheck/${_id}.cpp)
  set(_content "#include \"${_header}\"\n")
  if(EXISTS ${_tu})
    file(READ ${_tu} _existing)
  else()
    set(_existing "")
  endif()
  if(NOT _existing STREQUAL _content)
    file(WRITE ${_tu} "${_content}")
  endif()
  list(APPEND _qtda_header_tus ${_tu})
endforeach()

add_library(qtda_header_selfcheck OBJECT ${_qtda_header_tus})
target_include_directories(qtda_header_selfcheck
  PRIVATE ${PROJECT_SOURCE_DIR}/src)
target_link_libraries(qtda_header_selfcheck
  PRIVATE Threads::Threads qtda_warnings qtda_sanitizers)
