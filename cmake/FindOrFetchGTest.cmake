# Provides GTest::gtest / GTest::gtest_main.
#
# Prefers the system GoogleTest (baked into the CI/dev image, so the tier-1
# verify works fully offline); falls back to FetchContent for machines that
# have network access but no googletest package.
find_package(GTest QUIET)

if(NOT GTest_FOUND)
  message(STATUS "System GoogleTest not found; fetching v1.14.0")
  include(FetchContent)
  set(_qtda_gtest_args "")
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.24)
    list(APPEND _qtda_gtest_args DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  endif()
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    ${_qtda_gtest_args})
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  # Recent googletest defines the GTest:: aliases itself; only fill gaps.
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()
