/// \file test_cpu_features.cpp
/// \brief Contract of the CPUID probe, the QTDA_SIMD override parsing, and
/// the QTDA_PRECISION parsing (the two fast-fail environment knobs the
/// simulation spine grew with the SIMD/precision refactor).

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "quantum/precision.hpp"
#include "scoped_env.hpp"

namespace qtda {
namespace {

using testing::ScopedSimulatorEnv;

TEST(CpuFeatures, LevelNamesRoundTrip) {
  EXPECT_EQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_EQ(simd_level_name(SimdLevel::kAvx512), "avx512");
}

TEST(CpuFeatures, DetectionIsStableAcrossCalls) {
  EXPECT_EQ(detected_simd_level(), detected_simd_level());
}

TEST(CpuFeatures, ActiveLevelNeverExceedsDetected) {
  EXPECT_LE(static_cast<int>(active_simd_level()),
            static_cast<int>(detected_simd_level()));
}

TEST(CpuFeatures, EnvOverrideParsesEveryDocumentedValue) {
  ScopedSimulatorEnv guard;
  unsetenv("QTDA_SIMD");
  EXPECT_EQ(simd_level_from_env(), std::nullopt);
  setenv("QTDA_SIMD", "", 1);
  EXPECT_EQ(simd_level_from_env(), std::nullopt);
  setenv("QTDA_SIMD", "auto", 1);
  EXPECT_EQ(simd_level_from_env(), std::nullopt);
  setenv("QTDA_SIMD", "0", 1);
  EXPECT_EQ(simd_level_from_env(), SimdLevel::kScalar);
  setenv("QTDA_SIMD", "avx2", 1);
  EXPECT_EQ(simd_level_from_env(), SimdLevel::kAvx2);
  setenv("QTDA_SIMD", "avx512", 1);
  EXPECT_EQ(simd_level_from_env(), SimdLevel::kAvx512);
}

TEST(CpuFeatures, MalformedOverrideNamesTheVariable) {
  ScopedSimulatorEnv guard;
  setenv("QTDA_SIMD", "sse9", 1);
  try {
    (void)simd_level_from_env();
    FAIL() << "expected an Error for a malformed QTDA_SIMD";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QTDA_SIMD"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sse9"), std::string::npos);
  }
}

TEST(Precision, NamesRoundTrip) {
  EXPECT_EQ(precision_name(Precision::kFloat64), "float64");
  EXPECT_EQ(precision_name(Precision::kFloat32), "float32");
  EXPECT_EQ(precision_from_name("float64"), Precision::kFloat64);
  EXPECT_EQ(precision_from_name("float32"), Precision::kFloat32);
  EXPECT_THROW(precision_from_name("double"), Error);
}

TEST(Precision, CompileTimeTagMatchesScalar) {
  static_assert(precision_of<double>() == Precision::kFloat64);
  static_assert(precision_of<float>() == Precision::kFloat32);
}

TEST(Precision, EnvOverrideParsesAndFailsFastWithTheVariableNamed) {
  ScopedSimulatorEnv guard;
  unsetenv("QTDA_PRECISION");
  EXPECT_EQ(precision_from_env(), std::nullopt);
  setenv("QTDA_PRECISION", "float32", 1);
  EXPECT_EQ(precision_from_env(), Precision::kFloat32);
  setenv("QTDA_PRECISION", "float64", 1);
  EXPECT_EQ(precision_from_env(), Precision::kFloat64);
  setenv("QTDA_PRECISION", "half", 1);
  try {
    (void)precision_from_env();
    FAIL() << "expected an Error for a malformed QTDA_PRECISION";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QTDA_PRECISION"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace qtda
