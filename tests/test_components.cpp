// Tests for topology/components.hpp (union-find β0).
#include "topology/components.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/random.hpp"
#include "topology/betti.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

TEST(UnionFind, StartsFullySeparated) {
  UnionFind forest(5);
  EXPECT_EQ(forest.count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(forest.find(i), i);
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind forest(4);
  EXPECT_TRUE(forest.unite(0, 1));
  EXPECT_EQ(forest.count(), 3u);
  EXPECT_FALSE(forest.unite(1, 0));  // already merged
  EXPECT_EQ(forest.count(), 3u);
  EXPECT_TRUE(forest.unite(2, 3));
  EXPECT_TRUE(forest.unite(0, 3));
  EXPECT_EQ(forest.count(), 1u);
  EXPECT_EQ(forest.find(0), forest.find(2));
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind forest(2);
  EXPECT_THROW(forest.find(2), Error);
}

TEST(ConnectedComponents, PathAndIsland) {
  NeighborhoodGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // 3 and 4 isolated.
  EXPECT_EQ(connected_components(g), 3u);
}

TEST(ComponentLabels, ConsistentPartition) {
  NeighborhoodGraph g(6);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  const auto labels = component_labels(g);
  ASSERT_EQ(labels.size(), 6u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[2], labels[4]);
  EXPECT_EQ(labels[1], labels[3]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[1]);
  const auto max_label = *std::max_element(labels.begin(), labels.end());
  EXPECT_EQ(max_label, 2u);  // labels are dense in [0, #components)
}

class Betti0FastCrossCheck : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(Betti0FastCrossCheck, MatchesHomologicalBetti0) {
  Rng rng(GetParam() * 3 + 7);
  RandomComplexOptions options;
  options.num_vertices = 12;
  options.max_dimension = 2;
  const auto complex = random_flag_complex(options, rng);
  EXPECT_EQ(betti0_fast(complex), betti_number(complex, 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Betti0FastCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Betti0Fast, SparseVertexIds) {
  // Vertex ids need not be contiguous.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{10, 20}, Simplex{30}}, true);
  EXPECT_EQ(betti0_fast(complex), 2u);
}

TEST(Betti0Fast, EmptyComplexIsZero) {
  EXPECT_EQ(betti0_fast(SimplicialComplex{}), 0u);
}

}  // namespace
}  // namespace qtda
