// Tests for common/cli.hpp.
#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace qtda {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const auto args = parse({"--shots", "500"});
  EXPECT_TRUE(args.has("shots"));
  EXPECT_EQ(args.get_int("shots", 0), 500);
}

TEST(Cli, EqualsForm) {
  const auto args = parse({"--epsilon=2.5"});
  EXPECT_DOUBLE_EQ(args.get_double("epsilon", 0.0), 2.5);
}

TEST(Cli, BooleanFlag) {
  const auto args = parse({"--full"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_FALSE(args.get_bool("quick"));
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  const auto args = parse({"--full", "--shots", "10"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_EQ(args.get_int("shots", 0), 10);
}

TEST(Cli, DefaultsWhenMissing) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "fallback"), "fallback");
}

TEST(Cli, PositionalArguments) {
  const auto args = parse({"input.txt", "--n", "3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, IntList) {
  const auto args = parse({"--shots=100,1000,10000"});
  const auto list = args.get_int_list("shots", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 100);
  EXPECT_EQ(list[1], 1000);
  EXPECT_EQ(list[2], 10000);
}

TEST(Cli, IntListFallback) {
  const auto args = parse({});
  const auto list = args.get_int_list("shots", {7, 8});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], 7);
}

TEST(Cli, ProgramName) {
  const auto args = parse({});
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, NegativeNumberIsValueNotFlag) {
  const auto args = parse({"--offset", "-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace qtda
