// Tests for the serving layer (src/serve/): content-keyed artifact caching,
// protocol round-trips, batched execution, and the bit-identity contract —
// a served estimate must equal the cold CLI path bit for bit, no matter
// which cache levels answered or how requests were coalesced.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/betti_estimator.hpp"
#include "linalg/expm_multiply.hpp"
#include "linalg/matrix_exp.hpp"
#include "linalg/sparse_matrix.hpp"
#include "quantum/pauli.hpp"
#include "quantum/statevector.hpp"
#include "quantum/trotter.hpp"
#include "scoped_env.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/client.hpp"
#include "serve/fingerprint.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "topology/laplacian.hpp"
#include "topology/point_cloud.hpp"
#include "topology/rips.hpp"

namespace qtda {
namespace {

using testing::ScopedSimulatorEnv;

std::vector<std::vector<double>> circle_points(std::size_t n) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  return points;
}

EstimatorOptions sparse_options() {
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  options.shots = 512;
  options.seed = 7;
  return options;
}

// ---------------------------------------------------------------- fingerprints

TEST(ServeFingerprint, NegativeZeroCanonicalized) {
  // −0.0 == +0.0 arithmetically, so the two clouds build identical
  // complexes — the fingerprint must not tell them apart.
  const PointCloud a({{0.0, 1.0}, {2.0, 0.0}});
  const PointCloud b({{-0.0, 1.0}, {2.0, -0.0}});
  EXPECT_EQ(fingerprint_point_cloud(a), fingerprint_point_cloud(b));
}

TEST(ServeFingerprint, DistinctContentDiffers) {
  const PointCloud a({{0.0, 1.0}, {2.0, 0.0}});
  const PointCloud b({{0.0, 1.0}, {2.0, 1e-9}});
  const PointCloud c({{0.0, 1.0}});
  EXPECT_NE(fingerprint_point_cloud(a), fingerprint_point_cloud(b));
  EXPECT_NE(fingerprint_point_cloud(a), fingerprint_point_cloud(c));
}

// ----------------------------------------------------------------- LRU cache

using IntCache = ShardedLruCache<int>;

IntCache::Sized sized_int(int value, std::size_t bytes) {
  return {std::make_shared<const int>(value), bytes};
}

TEST(ServeLruCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  IntCache cache(/*budget_bytes=*/64, /*num_shards=*/1);
  for (int i = 0; i < 3; ++i)
    cache.get_or_create("k" + std::to_string(i), [&] { return sized_int(i, 24); });
  // 3 × 24 = 72 > 64: the oldest entry (k0) must have been evicted.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 64u);

  bool hit = true;
  cache.get_or_create("k0", [&] { return sized_int(0, 24); }, &hit);
  EXPECT_FALSE(hit);  // k0 was evicted
  cache.get_or_create("k2", [&] { return sized_int(2, 24); }, &hit);
  EXPECT_TRUE(hit);   // k2 is the hottest entry
}

TEST(ServeLruCache, HitRefreshesRecency) {
  IntCache cache(/*budget_bytes=*/50, /*num_shards=*/1);
  cache.get_or_create("a", [&] { return sized_int(1, 20); });
  cache.get_or_create("b", [&] { return sized_int(2, 20); });
  cache.get_or_create("a", [&] { return sized_int(1, 20); });  // refresh a
  cache.get_or_create("c", [&] { return sized_int(3, 20); });  // evicts b

  bool hit = false;
  cache.get_or_create("a", [&] { return sized_int(1, 20); }, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_create("b", [&] { return sized_int(2, 20); }, &hit);
  EXPECT_FALSE(hit);
}

TEST(ServeLruCache, OversizedValueServedButNeverCached) {
  IntCache cache(/*budget_bytes=*/64, /*num_shards=*/1);
  const auto value = cache.get_or_create(
      "huge", [&] { return sized_int(9, 1000); });
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 9);
  EXPECT_EQ(cache.stats().entries, 0u);
  bool hit = true;
  cache.get_or_create("huge", [&] { return sized_int(9, 1000); }, &hit);
  EXPECT_FALSE(hit);
}

// ----------------------------------------------------------------- plan keys

TEST(ServePlanKey, EveryAxisSeparatesKeys) {
  ScopedSimulatorEnv env;
  ScopedSimulatorEnv::clear();
  EstimatorOptions base = sparse_options();

  std::set<std::string> keys;
  const auto insert = [&](std::uint64_t fp, int k,
                          const EstimatorOptions& options) {
    keys.insert(ArtifactStore::plan_key(fp, k, options));
  };
  insert(1, 1, base);
  insert(2, 1, base);  // different complex content
  insert(1, 2, base);  // different homology dimension

  EstimatorOptions variant = base;
  variant.precision = Precision::kFloat32;
  insert(1, 1, variant);

  variant = base;
  variant.backend = EstimatorBackend::kCircuitTrotter;
  insert(1, 1, variant);
  variant.trotter.steps = 5;
  insert(1, 1, variant);
  variant.trotter.steps = 5;
  variant.trotter.order = 2;
  insert(1, 1, variant);
  variant.trotter.group_commuting = false;
  insert(1, 1, variant);

  variant = base;
  variant.mixed_state = MixedStateMode::kSampledBasis;
  insert(1, 1, variant);

  variant = base;
  variant.precision_qubits = 5;
  insert(1, 1, variant);

  variant = base;
  variant.delta = 0.25;
  insert(1, 1, variant);

  variant = base;
  variant.exact_reference_max_dim = 0;
  insert(1, 1, variant);

  EXPECT_EQ(keys.size(), 12u);  // no two option sets may collide
}

TEST(ServePlanKey, FusionEnvironmentIsAKeyAxis) {
  ScopedSimulatorEnv env;
  ScopedSimulatorEnv::clear();
  const EstimatorOptions options = sparse_options();
  const std::string fused = ArtifactStore::plan_key(1, 1, options);

  setenv("QTDA_FUSE", "0", 1);
  const std::string unfused = ArtifactStore::plan_key(1, 1, options);
  EXPECT_NE(fused, unfused);

  setenv("QTDA_FUSE", "1", 1);
  setenv("QTDA_FUSE_WIDTH", "2", 1);
  const std::string narrow = ArtifactStore::plan_key(1, 1, options);
  EXPECT_NE(fused, narrow);
  EXPECT_NE(unfused, narrow);
}

// ------------------------------------------------------------- artifact store

TEST(ServeArtifactStore, WarmResolveHitsEveryLevelWithTheSamePlan) {
  ArtifactStore store;
  const PointCloud cloud(circle_points(8));
  const EstimatorOptions options = sparse_options();

  const ResolvedArtifacts cold = store.resolve(cloud, 1.0, 1, options);
  EXPECT_FALSE(cold.complex_hit);
  EXPECT_FALSE(cold.laplacian_hit);
  EXPECT_FALSE(cold.plan_hit);
  ASSERT_NE(cold.plan, nullptr);

  const ResolvedArtifacts warm = store.resolve(cloud, 1.0, 1, options);
  EXPECT_TRUE(warm.complex_hit);
  EXPECT_TRUE(warm.laplacian_hit);
  EXPECT_TRUE(warm.plan_hit);
  EXPECT_EQ(warm.plan.get(), cold.plan.get());  // literally the same artifact
  EXPECT_EQ(store.plan_stats().entries, 1u);
}

TEST(ServeArtifactStore, TranslatedCloudSharesEverythingPastTheComplex) {
  // A rigid translation changes every coordinate (different cloud
  // fingerprint) but no distance: the induced complex is identical, so the
  // Laplacian and plan levels — keyed on the *complex* fingerprint — hit.
  ArtifactStore store;
  const EstimatorOptions options = sparse_options();
  auto points = circle_points(8);
  const ResolvedArtifacts first =
      store.resolve(PointCloud(points), 1.0, 1, options);
  for (auto& p : points) {
    p[0] += 10.0;
    p[1] -= 3.0;
  }
  const ResolvedArtifacts second =
      store.resolve(PointCloud(points), 1.0, 1, options);
  EXPECT_FALSE(second.complex_hit);
  EXPECT_TRUE(second.laplacian_hit);
  EXPECT_TRUE(second.plan_hit);
  EXPECT_EQ(second.plan.get(), first.plan.get());
  EXPECT_EQ(second.complex_fingerprint, first.complex_fingerprint);
}

TEST(ServeArtifactStore, PrecisionNeverAliasesPlans) {
  ArtifactStore store;
  const PointCloud cloud(circle_points(8));
  EstimatorOptions options = sparse_options();
  const ResolvedArtifacts f64 = store.resolve(cloud, 1.0, 1, options);
  options.precision = Precision::kFloat32;
  const ResolvedArtifacts f32 = store.resolve(cloud, 1.0, 1, options);
  EXPECT_FALSE(f32.plan_hit);
  EXPECT_NE(f32.plan.get(), f64.plan.get());
  EXPECT_EQ(store.plan_stats().entries, 2u);
}

TEST(ServeArtifactStore, TinyBudgetStillServesWithoutCaching) {
  // A budget far below one plan's footprint: every resolve computes fresh
  // artifacts (served, never admitted) instead of failing or thrashing.
  ArtifactStoreOptions tiny;
  tiny.budget_bytes = 512;
  tiny.shards = 1;
  ArtifactStore store(tiny);
  const PointCloud cloud(circle_points(8));
  const EstimatorOptions options = sparse_options();
  const ResolvedArtifacts first = store.resolve(cloud, 1.0, 1, options);
  const ResolvedArtifacts second = store.resolve(cloud, 1.0, 1, options);
  ASSERT_NE(first.plan, nullptr);
  ASSERT_NE(second.plan, nullptr);
  EXPECT_FALSE(second.plan_hit);
  EXPECT_EQ(store.plan_stats().entries, 0u);

  // And the fresh plans still agree bit for bit.
  const BettiEstimate a = estimate_betti_with_plan(first.plan->compiled, options);
  const BettiEstimate b =
      estimate_betti_with_plan(second.plan->compiled, options);
  EXPECT_EQ(a.zero_counts, b.zero_counts);
}

// ----------------------------------------------------------------- protocol

TEST(ServeProtocol, RequestRoundTrips) {
  EstimateRequest request;
  request.id = "r42";
  request.epsilon = 1.0 / 3.0;
  request.k = 2;
  request.options.backend = EstimatorBackend::kCircuitTrotter;
  request.options.precision_qubits = 5;
  request.options.shots = 123;
  request.options.seed = 99;
  request.options.delta = 0.1;
  request.options.mixed_state = MixedStateMode::kSampledBasis;
  request.options.precision = Precision::kFloat32;
  request.options.trotter.steps = 3;
  request.options.trotter.order = 2;
  request.deadline_ms = 250;
  request.points = {{0.1, 0.2}, {1.0 / 7.0, -0.25}};

  const EstimateRequest parsed = parse_request(format_request(request));
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.epsilon, request.epsilon);  // %.17g round-trips exactly
  EXPECT_EQ(parsed.k, request.k);
  EXPECT_EQ(parsed.options.backend, request.options.backend);
  EXPECT_EQ(parsed.options.precision_qubits, request.options.precision_qubits);
  EXPECT_EQ(parsed.options.shots, request.options.shots);
  EXPECT_EQ(parsed.options.seed, request.options.seed);
  EXPECT_EQ(parsed.options.delta, request.options.delta);
  EXPECT_EQ(parsed.options.mixed_state, request.options.mixed_state);
  EXPECT_EQ(parsed.options.precision, request.options.precision);
  EXPECT_EQ(parsed.options.trotter.steps, request.options.trotter.steps);
  EXPECT_EQ(parsed.options.trotter.order, request.options.trotter.order);
  EXPECT_EQ(parsed.deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed.points, request.points);
}

TEST(ServeProtocol, ResponseRoundTrips) {
  EstimateResponse response;
  response.id = "r7";
  response.ok = true;
  response.estimate.estimated_betti = 1.0 + 1.0 / 3.0;
  response.estimate.rounded_betti = 1;
  response.estimate.zero_probability = 0.125;
  response.estimate.exact_zero_probability = 0.126;
  response.estimate.zero_counts = 64;
  response.estimate.shots = 512;
  response.estimate.system_qubits = 3;
  response.estimate.precision_qubits = 4;
  response.estimate.circuit_gates = 99;
  response.estimate.circuit_depth = 12;
  response.complex_hit = true;
  response.plan_hit = true;
  response.batch_size = 4;

  const EstimateResponse parsed = parse_response(format_response(response));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.id, response.id);
  EXPECT_EQ(parsed.estimate.estimated_betti, response.estimate.estimated_betti);
  EXPECT_EQ(parsed.estimate.zero_counts, response.estimate.zero_counts);
  EXPECT_EQ(parsed.estimate.shots, response.estimate.shots);
  EXPECT_TRUE(parsed.complex_hit);
  EXPECT_FALSE(parsed.laplacian_hit);
  EXPECT_TRUE(parsed.plan_hit);
  EXPECT_EQ(parsed.batch_size, 4u);
}

TEST(ServeProtocol, ErrorResponseRoundTrips) {
  EstimateResponse response;
  response.id = "r9";
  response.ok = false;
  response.error = "points disagree on dimension";
  const EstimateResponse parsed = parse_response(format_response(response));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.id, "r9");
  EXPECT_EQ(parsed.error, "points disagree on dimension");
}

TEST(ServeProtocol, MalformedLinesThrow) {
  EXPECT_THROW(classify_request_line("launch_missiles"), Error);
  EXPECT_THROW(parse_request("estimate"), Error);  // no points
  EXPECT_THROW(parse_request("estimate points=1,2;3"), Error);  // ragged
  EXPECT_THROW(parse_request("estimate bogus=1 points=0,0;1,1"), Error);
  EXPECT_EQ(classify_request_line("ping"), ServeCommand::kPing);
  EXPECT_EQ(classify_request_line("stats"), ServeCommand::kStats);
  EXPECT_EQ(classify_request_line("shutdown"), ServeCommand::kShutdown);
}

// ------------------------------------------------------- served bit-identity

TEST(ServeBitIdentity, ServedEstimateMatchesCliPathColdAndWarm) {
  const auto points = circle_points(8);
  const EstimatorOptions options = sparse_options();

  // The cold CLI path the paper experiments run.
  const BettiEstimate cli =
      estimate_betti(rips_complex(PointCloud(points), 1.0, 2), 1, options);

  BettiServer server;
  EstimateRequest request;
  request.id = "t";
  request.points = points;
  request.epsilon = 1.0;
  request.k = 1;
  request.options = options;

  const EstimateResponse cold = server.handle(request);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.plan_hit);
  EXPECT_EQ(cold.estimate.zero_counts, cli.zero_counts);
  EXPECT_EQ(cold.estimate.estimated_betti, cli.estimated_betti);
  EXPECT_EQ(cold.estimate.exact_zero_probability, cli.exact_zero_probability);
  EXPECT_EQ(cold.estimate.rounded_betti, cli.rounded_betti);
  EXPECT_EQ(cold.estimate.circuit_gates, cli.circuit_gates);

  const EstimateResponse warm = server.handle(request);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.plan_hit);
  EXPECT_TRUE(warm.complex_hit);
  EXPECT_TRUE(warm.laplacian_hit);
  EXPECT_EQ(warm.estimate.zero_counts, cli.zero_counts);
  EXPECT_EQ(warm.estimate.estimated_betti, cli.estimated_betti);
}

TEST(ServeBitIdentity, EmptyComplexShortCircuitsLikeEstimateBetti) {
  BettiServer server;
  EstimateRequest request;
  request.points = {{0.0, 0.0}, {100.0, 0.0}};  // no edges at ε = 1
  request.epsilon = 1.0;
  request.k = 1;
  request.options = sparse_options();
  const EstimateResponse response = server.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.estimate.estimated_betti, 0.0);
  EXPECT_EQ(response.estimate.rounded_betti, 0u);
  EXPECT_EQ(response.estimate.shots, request.options.shots);
}

// ------------------------------------------------------------------ batching

TEST(ServeBatch, BatchedExecutionIsBitIdenticalToSerial) {
  const SimplicialComplex complex =
      rips_complex(PointCloud(circle_points(8)), 1.0, 2);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);
  EstimatorOptions base = sparse_options();
  const CompiledEstimate compiled = compile_betti_estimate(laplacian, base);

  std::vector<EstimatorOptions> requests(5, base);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].seed = 1000 + 17 * i;
    requests[i].shots = 128 + 64 * i;  // shots may vary inside one batch
  }
  const std::vector<BettiEstimate> batched =
      estimate_betti_batch(compiled, requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const BettiEstimate serial =
        estimate_betti_with_plan(compiled, requests[i]);
    EXPECT_EQ(batched[i].zero_counts, serial.zero_counts) << "request " << i;
    EXPECT_EQ(batched[i].estimated_betti, serial.estimated_betti);
    EXPECT_EQ(batched[i].shots, serial.shots);
  }
}

TEST(ServeBatch, RejectsRequestsOutsideTheBatchableRegime) {
  const SimplicialComplex complex =
      rips_complex(PointCloud(circle_points(8)), 1.0, 2);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);
  EstimatorOptions base = sparse_options();
  const CompiledEstimate compiled = compile_betti_estimate(laplacian, base);

  // Sampled-basis mixtures draw their basis states per request — one shared
  // evolution cannot serve them.
  EstimatorOptions sampled = base;
  sampled.mixed_state = MixedStateMode::kSampledBasis;
  EXPECT_THROW(estimate_betti_batch(compiled, {sampled}), Error);

  // Requests inside one batch must share the engine configuration.
  EstimatorOptions f32 = base;
  f32.precision = Precision::kFloat32;
  EXPECT_THROW(estimate_betti_batch(compiled, {base, f32}), Error);
}

// ------------------------------------------------------------ loopback serve

TEST(ServeServer, ConcurrentLoopbackClientsGetBitIdenticalAnswers) {
  const auto points = circle_points(8);
  EstimatorOptions options = sparse_options();
  options.shots = 256;

  // Ground truth per seed via the cold CLI path.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  const SimplicialComplex complex =
      rips_complex(PointCloud(points), 1.0, 2);
  std::vector<std::uint64_t> expected(kThreads * kPerThread);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EstimatorOptions request_options = options;
    request_options.seed = 100 + i;
    expected[i] = estimate_betti(complex, 1, request_options).zero_counts;
  }

  BettiServer server;
  LoopbackTransport transport;
  server.start(transport);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      ServeClient client(transport.connect());
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t index = static_cast<std::size_t>(t * kPerThread + i);
        EstimateRequest request;
        request.points = points;
        request.epsilon = 1.0;
        request.k = 1;
        request.options = options;
        request.options.seed = 100 + index;
        const EstimateResponse response = client.estimate(request);
        if (!response.ok) failures.fetch_add(1);
        else if (response.estimate.zero_counts != expected[index])
          mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  ServeClient observer(transport.connect());
  const std::string stats = observer.stats();
  EXPECT_EQ(stats.rfind("stats ", 0), 0u) << stats;
  EXPECT_NE(stats.find("admitted="), std::string::npos);
  observer.shutdown();
  server.stop();

  const ServerStats totals = server.stats();
  EXPECT_GE(totals.admitted, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(totals.errors, 0u);
}

// --------------------------------------------------------- expm memo bounds

TEST(ServeExpmCache, CountsHitsAndMissesAndStaysBounded) {
  expm_coefficient_cache_clear();
  ExpmCoefficientCacheStats stats = expm_coefficient_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);

  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  const SparseExpOperator first(a, 0.5, 0.0, 2.0);
  stats = expm_coefficient_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  const SparseExpOperator second(a, 0.5, 0.0, 2.0);
  stats = expm_coefficient_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(second.coefficients().get(), first.coefficients().get());

  // Flood with distinct θ: the memo must evict instead of growing without
  // bound (the long-running daemon condition).
  for (int i = 0; i < 600; ++i)
    SparseExpOperator flood(a, 0.5 + 0.001 * (i + 1), 0.0, 2.0);
  stats = expm_coefficient_cache_stats();
  EXPECT_LE(stats.entries, 512u);
  EXPECT_GE(stats.evictions, 89u);  // 601 distinct keys into 512 slots
  expm_coefficient_cache_clear();
  EXPECT_EQ(expm_coefficient_cache_stats().entries, 0u);
}

// ----------------------------------------------------------- trotter grouping

TEST(TrotterGrouping, PartitionsBySharedBasisSignature) {
  const PauliSum sum({{0.3, PauliString("XZ")},
                      {0.5, PauliString("XI")},
                      {0.7, PauliString("ZI")},
                      {0.9, PauliString("IZ")},
                      {1.1, PauliString("YY")}});
  const auto groups = group_commuting_terms(sum);
  ASSERT_EQ(groups.size(), 3u);
  // First-occurrence order, original order inside each family.
  ASSERT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[0][0].string.to_string(), "XZ");
  EXPECT_EQ(groups[0][1].string.to_string(), "XI");
  ASSERT_EQ(groups[1].size(), 2u);
  EXPECT_EQ(groups[1][0].string.to_string(), "ZI");
  EXPECT_EQ(groups[1][1].string.to_string(), "IZ");
  ASSERT_EQ(groups[2].size(), 1u);
  EXPECT_EQ(groups[2][0].string.to_string(), "YY");
  EXPECT_EQ(groups[2][0].coefficient, 1.1);
}

TEST(TrotterGrouping, GroupedCircuitIsSmallerAndExactForACommutingFamily) {
  // XZ and XI share the basis signature X⊗I: one wall pair serves both, and
  // because they commute exactly the grouped and ungrouped circuits realize
  // the *same* unitary — so here grouping must change gate count only.
  const PauliSum sum({{0.3, PauliString("XZ")}, {0.5, PauliString("XI")}});
  const double time = 0.9;
  TrotterOptions grouped_options;
  grouped_options.group_commuting = true;
  TrotterOptions ungrouped_options;
  ungrouped_options.group_commuting = false;
  const Circuit grouped = trotter_circuit(sum, time, grouped_options, 2);
  const Circuit ungrouped = trotter_circuit(sum, time, ungrouped_options, 2);
  EXPECT_LT(grouped.gate_count(), ungrouped.gate_count());

  double worst = 0.0;
  for (std::uint64_t basis = 0; basis < 4; ++basis) {
    Statevector g(2), u(2);
    g.set_basis_state(basis);
    u.set_basis_state(basis);
    g.apply_circuit(grouped);
    u.apply_circuit(ungrouped);
    for (std::uint64_t row = 0; row < 4; ++row)
      worst = std::max(worst, std::abs(g.amplitude(row) - u.amplitude(row)));
  }
  EXPECT_LT(worst, 1e-12);

  // And both match the dense reference e^{i·t·H} (commuting ⇒ no Trotter
  // error even in one step).
  RealMatrix h(4, 4);
  const ComplexMatrix dense = sum.matrix();
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) h(r, c) = dense(r, c).real();
  const ComplexMatrix reference = unitary_exp(h, time);
  double vs_reference = 0.0;
  for (std::uint64_t col = 0; col < 4; ++col) {
    Statevector g(2);
    g.set_basis_state(col);
    g.apply_circuit(grouped);
    for (std::uint64_t row = 0; row < 4; ++row)
      vs_reference = std::max(vs_reference,
                              std::abs(g.amplitude(row) - reference(row, col)));
  }
  EXPECT_LT(vs_reference, 1e-12);
}

}  // namespace
}  // namespace qtda
