// Tests for core/analysis.hpp: leakage decomposition and the precision
// recommendation.
#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

RealMatrix paper_delta1() {
  return RealMatrix{{3, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0},
                    {0, 0, 3, -1, -1, 0}, {0, -1, -1, 2, 1, -1},
                    {0, -1, -1, 1, 2, 1}, {0, 0, 0, -1, 1, 2}};
}

TEST(Analysis, WorkedExampleDecomposition) {
  const auto analysis = analyze_estimator_error(paper_delta1(), 3, 6.0);
  EXPECT_EQ(analysis.kernel_dimension, 1u);
  EXPECT_EQ(analysis.system_qubits, 3u);
  EXPECT_NEAR(analysis.ideal_zero_probability, 0.125, 1e-12);
  // quickstart's exact p(0) is 0.137: leakage ≈ 0.012.
  EXPECT_NEAR(analysis.exact_zero_probability, 0.137, 0.002);
  EXPECT_NEAR(analysis.leakage,
              analysis.exact_zero_probability - 0.125, 1e-12);
  EXPECT_NEAR(analysis.betti_bias, 8.0 * analysis.leakage, 1e-12);
  EXPECT_GT(analysis.spectral_gap_phase, 0.0);
  EXPECT_LT(analysis.spectral_gap_phase, 1.0);
}

TEST(Analysis, LeakageIsNonnegativeAndShrinksWithPrecision) {
  Rng rng(5);
  for (int rep = 0; rep < 5; ++rep) {
    RandomComplexOptions options;
    options.num_vertices = 7;
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) == 0) continue;
    const auto laplacian = combinatorial_laplacian(complex, 1);
    double previous = 1e9;
    for (std::size_t t = 1; t <= 10; ++t) {
      const auto analysis = analyze_estimator_error(laplacian, t);
      EXPECT_GE(analysis.leakage, -1e-12);
      EXPECT_LE(analysis.leakage, previous + 1e-12);
      previous = analysis.leakage;
    }
    EXPECT_LT(previous, 1e-3);
  }
}

TEST(Analysis, KernelMatchesClassicalBetti) {
  Rng rng(9);
  for (int rep = 0; rep < 8; ++rep) {
    RandomComplexOptions options;
    options.num_vertices = 8;
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) == 0) continue;
    const auto analysis = analyze_estimator_error(
        combinatorial_laplacian(complex, 1), 4);
    EXPECT_EQ(analysis.kernel_dimension, betti_number(complex, 1));
  }
}

TEST(Analysis, ExactProbabilityMatchesEstimatorField) {
  const auto analysis = analyze_estimator_error(paper_delta1(), 5, 6.0);
  EstimatorOptions options;
  options.precision_qubits = 5;
  options.shots = 1;
  options.delta = 6.0;
  const auto estimate = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_NEAR(analysis.exact_zero_probability,
              estimate.exact_zero_probability, 1e-12);
}

TEST(Analysis, ZeroLaplacianHasNoGap) {
  const auto analysis = analyze_estimator_error(RealMatrix(2, 2), 3);
  // All eigenvalues of the original block are zero; the padding block
  // contributes the only nonzero phases... which exist, so the kernel is 2.
  EXPECT_EQ(analysis.kernel_dimension, 2u);
  EXPECT_NEAR(analysis.ideal_zero_probability, 1.0, 1e-9);
}

TEST(RecommendedPrecision, MonotoneInTarget) {
  const auto strict =
      recommended_precision_qubits(paper_delta1(), 0.01, 6.0);
  const auto loose = recommended_precision_qubits(paper_delta1(), 0.5, 6.0);
  EXPECT_GE(strict, loose);
  // The recommendation actually achieves its target.
  const auto analysis =
      analyze_estimator_error(paper_delta1(), strict, 6.0);
  EXPECT_LE(analysis.betti_bias, 0.01);
}

TEST(RecommendedPrecision, WorkedExampleNeedsFewQubitsForRounding) {
  // Rounding to the nearest integer only needs bias < 0.5: the paper's
  // t = 3 choice is in this regime.
  const auto t = recommended_precision_qubits(paper_delta1(), 0.49, 6.0);
  EXPECT_LE(t, 3u);
}

TEST(RecommendedPrecision, UnreachableTargetThrows) {
  EXPECT_THROW(
      recommended_precision_qubits(paper_delta1(), 1e-12, 6.0, 4),
      Error);
}

}  // namespace
}  // namespace qtda
