// Tests for core/analytic_qpe.hpp, including circuit-vs-analytic agreement.
#include "core/analytic_qpe.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/matrix_exp.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "quantum/executor.hpp"
#include "quantum/mixed_state.hpp"
#include "quantum/qpe.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

TEST(AnalyticQpe, AllZeroEigenvaluesGiveCertainZero) {
  EXPECT_DOUBLE_EQ(analytic_zero_probability({0.0, 0.0, 0.0}, 4), 1.0);
}

TEST(AnalyticQpe, ExactHalfPhaseNeverHitsZero) {
  // Eigenvalue π corresponds to θ = 1/2, rejected with probability 1.
  EXPECT_NEAR(analytic_zero_probability({kPi}, 3), 0.0, 1e-12);
}

TEST(AnalyticQpe, MixtureAveragesKernels) {
  // {0, π} mixture: (1 + 0)/2.
  EXPECT_NEAR(analytic_zero_probability({0.0, kPi}, 3), 0.5, 1e-12);
}

TEST(AnalyticQpe, DistributionSumsToOne) {
  Rng rng(5);
  RealVector eigenvalues;
  for (int i = 0; i < 7; ++i) eigenvalues.push_back(rng.uniform(0.0, 6.0));
  for (std::size_t t : {1u, 3u, 5u}) {
    const auto dist = analytic_outcome_distribution(eigenvalues, t);
    double total = 0.0;
    for (double p : dist) total += p;
    EXPECT_NEAR(total, 1.0, 1e-10);
    EXPECT_EQ(dist.size(), std::size_t{1} << t);
  }
}

TEST(AnalyticQpe, ZeroBinMatchesDistribution) {
  Rng rng(7);
  RealVector eigenvalues;
  for (int i = 0; i < 5; ++i) eigenvalues.push_back(rng.uniform(0.0, 6.0));
  for (std::size_t t : {2u, 4u}) {
    const auto dist = analytic_outcome_distribution(eigenvalues, t);
    EXPECT_NEAR(dist[0], analytic_zero_probability(eigenvalues, t), 1e-12);
  }
}

TEST(SampleZeroCounts, DeterministicAndBounded) {
  Rng a(9), b(9);
  const auto c1 = sample_zero_counts(0.3, 10000, a);
  const auto c2 = sample_zero_counts(0.3, 10000, b);
  EXPECT_EQ(c1, c2);
  EXPECT_LE(c1, 10000u);
  EXPECT_NEAR(static_cast<double>(c1), 3000.0, 300.0);
}

TEST(SampleZeroCounts, ClampsRoundoff) {
  Rng rng(11);
  EXPECT_EQ(sample_zero_counts(1.0 + 5e-13, 100, rng), 100u);
  EXPECT_EQ(sample_zero_counts(-5e-13, 100, rng), 0u);
}

/// The critical equivalence: the analytic p(0) must equal the exact-circuit
/// QPE zero-probability for the maximally mixed input, for the very padded
/// Laplacians the estimator uses.
class CircuitAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CircuitAgreement, AnalyticEqualsPurifiedCircuit) {
  const std::size_t t = GetParam();
  // Worked-example Laplacian, padded & scaled with δ = λmax.
  RealMatrix delta1{{3, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0},
                    {0, 0, 3, -1, -1, 0}, {0, -1, -1, 2, 1, -1},
                    {0, -1, -1, 1, 2, 1}, {0, 0, 0, -1, 1, 2}};
  const auto scaled = rescale_laplacian(pad_laplacian(delta1), 6.0);
  const std::size_t q = scaled.num_qubits;

  // Analytic value.
  const double analytic = analytic_zero_probability(
      symmetric_eigenvalues(scaled.matrix), t);

  // Full circuit: purification + QPE with exact controlled powers.
  QpeLayout layout{t, q, q};
  Circuit circuit(layout.total());
  append_mixed_state_preparation(circuit, layout.ancilla_wires(),
                                 layout.system_wires());
  const HamiltonianExponential exponential(scaled.matrix);
  const Circuit qpe = build_qpe_circuit_dense(
      layout,
      [&](std::uint64_t power) {
        return exponential.unitary(static_cast<double>(power));
      });
  circuit.append_circuit(qpe);
  const auto state = run_circuit(circuit);
  const auto marginal = state.marginal_probabilities(layout.precision_wires());

  EXPECT_NEAR(marginal[0], analytic, 1e-8) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(PrecisionQubits, CircuitAgreement,
                         ::testing::Values(1, 2, 3, 4));

TEST(CircuitAgreementFull, WholeDistributionMatches) {
  // Beyond the zero bin: the entire outcome distribution agrees.
  RealMatrix small{{2.0, -1.0}, {-1.0, 2.0}};
  const auto scaled = rescale_laplacian(pad_laplacian(small), 3.0);
  const std::size_t t = 3;
  const auto analytic = analytic_outcome_distribution(
      symmetric_eigenvalues(scaled.matrix), t);

  QpeLayout layout{t, scaled.num_qubits, scaled.num_qubits};
  Circuit circuit(layout.total());
  append_mixed_state_preparation(circuit, layout.ancilla_wires(),
                                 layout.system_wires());
  const HamiltonianExponential exponential(scaled.matrix);
  circuit.append_circuit(build_qpe_circuit_dense(
      layout, [&](std::uint64_t power) {
        return exponential.unitary(static_cast<double>(power));
      }));
  const auto marginal =
      run_circuit(circuit).marginal_probabilities(layout.precision_wires());
  for (std::size_t m = 0; m < analytic.size(); ++m)
    EXPECT_NEAR(marginal[m], analytic[m], 1e-8) << "m=" << m;
}

}  // namespace
}  // namespace qtda
