// Lint fixture: must trip [complex-scalar].  Not compiled; consumed by
// scripts/lint.py --self-test only.  Emulates a hard-coded complex128
// inside the scalar-templated simulation spine.
#include <complex>
#include <vector>

#include "quantum/types.hpp"

namespace qtda_fixture {

template <typename Real>
double pinned_norm(const std::vector<std::complex<Real>>& amplitudes) {
  std::complex<double> accumulator{0.0, 0.0};  // pins one precision
  for (const auto& amplitude : amplitudes) accumulator += amplitude;
  return accumulator.real();
}

}  // namespace qtda_fixture
