// Lint fixture: must trip [include-path].  Not compiled; consumed by
// scripts/lint.py --self-test only.
#include "../common/error.hpp"
#include "types.hpp"

namespace qtda_fixture {}
