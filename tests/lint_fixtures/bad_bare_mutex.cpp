#pragma once
// Fixture: bare std::mutex / std::condition_variable must trip the
// bare-mutex rule — library code locks through the capability-annotated
// qtda::Mutex / qtda::CondVar wrappers so -Wthread-safety can check it.
#include <condition_variable>
#include <mutex>

namespace qtda {

struct BadQueue {
  std::mutex mutex;
  std::condition_variable ready;
  int depth = 0;
};

}  // namespace qtda
