// Lint fixture: must trip [determinism].  Not compiled; consumed by
// scripts/lint.py --self-test only.
#include <random>

#include "common/random.hpp"

namespace qtda_fixture {

unsigned rogue_seed() {
  std::random_device entropy;  // non-reproducible seeding
  return entropy();
}

}  // namespace qtda_fixture
