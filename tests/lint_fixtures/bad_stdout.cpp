// Lint fixture: must trip [stdout].  Not compiled; consumed by
// scripts/lint.py --self-test only.
#include <iostream>

#include "common/logging.hpp"

namespace qtda_fixture {

void chatty_library_code(int value) {
  std::cout << "value = " << value << '\n';  // library code owning stdout
}

}  // namespace qtda_fixture
