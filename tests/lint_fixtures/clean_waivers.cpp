// Lint fixture: must produce NO findings.  Not compiled; consumed by
// scripts/lint.py --self-test only.  Exercises both waiver forms (inline
// and standalone-comment block) plus patterns that look close to the
// rules but are legal.
#include <complex>

#include "common/logging.hpp"
#include "common/random.hpp"

namespace qtda_fixture {

// This block widens into the double accumulator on purpose — it emulates
// a precision-boundary helper.  qtda-lint: allow(complex-scalar)
inline double boundary_norm(const std::complex<double>& amplitude) {
  return amplitude.real() * amplitude.real() +
         amplitude.imag() * amplitude.imag();
}

inline double inline_waiver(const std::complex<double>& a) {  // qtda-lint: allow(complex-scalar)
  return a.real();
}

// Near-misses that must NOT trip:
//   std::cout << "commented-out code is ignored";
inline const char* mentions_in_string() {
  return "std::random_device and printf( are fine inside string literals";
}

inline int snprintf_is_fine(char* buffer, int size) {
  return size > 0 ? static_cast<int>(buffer[0]) : 0;  // std::snprintf users
}

}  // namespace qtda_fixture
