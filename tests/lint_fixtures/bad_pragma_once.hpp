// Lint fixture: must trip [pragma-once].  Not compiled; consumed by
// scripts/lint.py --self-test only.  An include-guarded header without
// #pragma once as its first directive.
#ifndef QTDA_FIXTURE_BAD_PRAGMA_ONCE_HPP
#define QTDA_FIXTURE_BAD_PRAGMA_ONCE_HPP

#include "quantum/types.hpp"

#endif  // QTDA_FIXTURE_BAD_PRAGMA_ONCE_HPP
