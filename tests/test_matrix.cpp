// Tests for linalg/dense_matrix.hpp and linalg/matrix_ops.hpp.
#include <gtest/gtest.h>

#include <complex>

#include "common/error.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {
namespace {

TEST(DenseMatrix, ZeroInitialized) {
  RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
}

TEST(DenseMatrix, InitializerList) {
  RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((RealMatrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(DenseMatrix, Identity) {
  const auto id = RealMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(DenseMatrix, Equality) {
  RealMatrix a{{1.0, 2.0}};
  RealMatrix b{{1.0, 2.0}};
  RealMatrix c{{1.0, 3.0}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixOps, MatmulKnownProduct) {
  RealMatrix a{{1, 2}, {3, 4}};
  RealMatrix b{{5, 6}, {7, 8}};
  const auto c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixOps, MatmulShapeMismatchThrows) {
  RealMatrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(MatrixOps, MatmulIdentityIsNoop) {
  RealMatrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(matmul(a, RealMatrix::identity(2)) == a);
  EXPECT_TRUE(matmul(RealMatrix::identity(2), a) == a);
}

TEST(MatrixOps, MatvecKnown) {
  RealMatrix a{{1, 2}, {3, 4}};
  const auto y = matvec(a, RealVector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixOps, TransposeRoundTrip) {
  RealMatrix a{{1, 2, 3}, {4, 5, 6}};
  const auto t = transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_TRUE(transpose(t) == a);
}

TEST(MatrixOps, AdjointConjugates) {
  ComplexMatrix a(1, 2);
  a(0, 0) = {1.0, 2.0};
  a(0, 1) = {3.0, -4.0};
  const auto t = adjoint(a);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t(0, 0), std::complex<double>(1.0, -2.0));
  EXPECT_EQ(t(1, 0), std::complex<double>(3.0, 4.0));
}

TEST(MatrixOps, AddSubtractScale) {
  RealMatrix a{{1, 2}};
  RealMatrix b{{3, 5}};
  EXPECT_TRUE(add(a, b) == (RealMatrix{{4, 7}}));
  EXPECT_TRUE(subtract(b, a) == (RealMatrix{{2, 3}}));
  EXPECT_TRUE(scale(a, 2.0) == (RealMatrix{{2, 4}}));
}

TEST(MatrixOps, KroneckerShapeAndValues) {
  ComplexMatrix a{{std::complex<double>(0.0, 0.0), std::complex<double>(1.0, 0.0)},
                  {std::complex<double>(1.0, 0.0), std::complex<double>(0.0, 0.0)}};
  const auto id = ComplexMatrix::identity(2);
  const auto k = kronecker(a, id);  // X ⊗ I
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_EQ(k(0, 2), std::complex<double>(1.0, 0.0));
  EXPECT_EQ(k(1, 3), std::complex<double>(1.0, 0.0));
  EXPECT_EQ(k(2, 0), std::complex<double>(1.0, 0.0));
  EXPECT_EQ(k(0, 1), std::complex<double>(0.0, 0.0));
}

TEST(MatrixOps, FrobeniusNorm) {
  RealMatrix a{{3, 4}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

TEST(MatrixOps, MaxAbsDiff) {
  RealMatrix a{{1, 2}}, b{{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(MatrixOps, SymmetryPredicate) {
  EXPECT_TRUE(is_symmetric(RealMatrix{{1, 2}, {2, 3}}));
  EXPECT_FALSE(is_symmetric(RealMatrix{{1, 2}, {2.1, 3}}, 1e-3));
  EXPECT_FALSE(is_symmetric(RealMatrix(2, 3)));
}

TEST(MatrixOps, HermitianPredicate) {
  ComplexMatrix h(2, 2);
  h(0, 0) = 1.0;
  h(1, 1) = 2.0;
  h(0, 1) = {0.0, 1.0};
  h(1, 0) = {0.0, -1.0};
  EXPECT_TRUE(is_hermitian(h));
  h(1, 0) = {0.0, 1.0};
  EXPECT_FALSE(is_hermitian(h));
}

TEST(MatrixOps, UnitaryPredicate) {
  ComplexMatrix h(2, 2);
  const double s = 1.0 / std::sqrt(2.0);
  h(0, 0) = s;
  h(0, 1) = s;
  h(1, 0) = s;
  h(1, 1) = -s;
  EXPECT_TRUE(is_unitary(h));
  h(1, 1) = s;
  EXPECT_FALSE(is_unitary(h));
}

TEST(MatrixOps, Trace) {
  EXPECT_DOUBLE_EQ(trace(RealMatrix{{1, 9}, {9, 2}}), 3.0);
  EXPECT_THROW(trace(RealMatrix(2, 3)), Error);
}

TEST(MatrixOps, ToComplexPreservesValues) {
  const auto c = to_complex(RealMatrix{{1, -2}});
  EXPECT_EQ(c(0, 0), std::complex<double>(1.0, 0.0));
  EXPECT_EQ(c(0, 1), std::complex<double>(-2.0, 0.0));
}

}  // namespace
}  // namespace qtda
