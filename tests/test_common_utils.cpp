// Tests for the remaining common/ utilities: error macros, logging, timer.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"

namespace qtda {
namespace {

TEST(ErrorMacro, PassingConditionIsSilent) {
  EXPECT_NO_THROW(QTDA_REQUIRE(1 + 1 == 2, "never shown"));
}

TEST(ErrorMacro, FailureThrowsQtdaError) {
  EXPECT_THROW(QTDA_REQUIRE(false, "boom"), Error);
}

TEST(ErrorMacro, MessageCarriesStreamedContent) {
  try {
    const int k = 7;
    QTDA_REQUIRE(k < 5, "k=" << k << " out of range");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("k=7 out of range"), std::string::npos);
    EXPECT_NE(what.find("k < 5"), std::string::npos);  // the condition text
    EXPECT_NE(what.find("test_common_utils.cpp"), std::string::npos);
  }
}

TEST(ErrorMacro, IsARuntimeError) {
  try {
    QTDA_REQUIRE(false, "x");
  } catch (const std::runtime_error&) {
    SUCCEED();
    return;
  }
  FAIL() << "Error must derive from std::runtime_error";
}

TEST(Logging, LevelFiltering) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output check needed).
  QTDA_INFO << "suppressed info message";
  QTDA_WARN << "suppressed warning";
  set_log_level(old_level);
}

TEST(Logging, StreamingCompiles) {
  set_log_level(LogLevel::kError);  // keep test output clean
  QTDA_DEBUG << "value=" << 42 << " pi=" << 3.14;
  set_log_level(LogLevel::kInfo);
  SUCCEED();
}

TEST(Logging, ThreadSafety) {
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) QTDA_DEBUG << "thread " << t << " " << i;
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_level(LogLevel::kInfo);
  SUCCEED();
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // generous upper bound for loaded CI machines
  EXPECT_NEAR(timer.milliseconds(), timer.seconds() * 1e3,
              timer.seconds() * 50);
}

TEST(Timer, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

}  // namespace
}  // namespace qtda
