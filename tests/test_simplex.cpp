// Tests for topology/simplex.hpp.
#include "topology/simplex.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.hpp"

namespace qtda {
namespace {

TEST(Simplex, SortsVertices) {
  Simplex s{3, 1, 2};
  ASSERT_EQ(s.vertex_count(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 2u);
  EXPECT_EQ(s[2], 3u);
  EXPECT_EQ(s.dimension(), 2);
}

TEST(Simplex, DuplicateVertexThrows) {
  EXPECT_THROW((Simplex{1, 1}), Error);
}

TEST(Simplex, DimensionOfVertexIsZero) {
  EXPECT_EQ((Simplex{7}).dimension(), 0);
}

TEST(Simplex, FaceWithoutDropsCorrectVertex) {
  Simplex s{1, 2, 3};
  EXPECT_EQ(s.face_without(0), (Simplex{2, 3}));
  EXPECT_EQ(s.face_without(1), (Simplex{1, 3}));
  EXPECT_EQ(s.face_without(2), (Simplex{1, 2}));
  EXPECT_THROW(s.face_without(3), Error);
}

TEST(Simplex, FacetsEnumeration) {
  Simplex s{0, 1, 2, 3};
  const auto facets = s.facets();
  ASSERT_EQ(facets.size(), 4u);
  for (const auto& f : facets) {
    EXPECT_EQ(f.dimension(), 2);
    EXPECT_TRUE(s.has_face(f));
  }
}

TEST(Simplex, VertexFacetsAreEmptySimplicesList) {
  // facets() of a 0-simplex would be empty simplices; the library returns
  // one empty-vertex simplex per convention — verify it has dimension -1.
  Simplex v{4};
  const auto facets = v.facets();
  ASSERT_EQ(facets.size(), 1u);
  EXPECT_EQ(facets[0].dimension(), -1);
}

TEST(Simplex, HasFaceSubsets) {
  Simplex s{1, 3, 5};
  EXPECT_TRUE(s.has_face(Simplex{1}));
  EXPECT_TRUE(s.has_face(Simplex{3, 5}));
  EXPECT_TRUE(s.has_face(Simplex{1, 3, 5}));
  EXPECT_FALSE(s.has_face(Simplex{2}));
  EXPECT_FALSE(s.has_face(Simplex{1, 2}));
}

TEST(Simplex, ContainsVertex) {
  Simplex s{2, 4, 8};
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(3));
}

TEST(Simplex, LexicographicOrder) {
  EXPECT_LT((Simplex{1, 2}), (Simplex{1, 3}));
  EXPECT_LT((Simplex{1}), (Simplex{1, 2}));  // prefix orders first
  EXPECT_LT((Simplex{1, 9}), (Simplex{2, 3}));
}

TEST(Simplex, EqualityAndHash) {
  Simplex a{1, 2, 3};
  Simplex b{3, 2, 1};
  EXPECT_EQ(a, b);
  SimplexHash h;
  EXPECT_EQ(h(a), h(b));
  std::unordered_set<Simplex, SimplexHash> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
}

TEST(Simplex, ToString) {
  EXPECT_EQ((Simplex{1, 2, 3}).to_string(), "{1,2,3}");
  EXPECT_EQ((Simplex{9}).to_string(), "{9}");
}

}  // namespace
}  // namespace qtda
