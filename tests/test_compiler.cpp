/// \file test_compiler.cpp
/// \brief Circuit compiler tests: fusion equivalence across every simulator
/// backend, the QTDA_FUSE=0 bit-identity guarantee, noise-slot preservation
/// (error placement and RNG draw order unchanged by compilation), compiler
/// statistics, and the environment overrides.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/backend.hpp"
#include "quantum/compiler.hpp"
#include "quantum/noise.hpp"
#include "scoped_env.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace {

using namespace qtda;

/// A random 2^m×2^m unitary: e^{iH} of a random symmetric H.
ComplexMatrix random_unitary(std::size_t m, Rng& rng) {
  const std::size_t dim = std::size_t{1} << m;
  RealMatrix h(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      h(i, j) = h(j, i) = rng.uniform(-1.0, 1.0);
  return HamiltonianExponential(h).unitary();
}

/// A random circuit mixing every IR gate kind: named single-qubit gates and
/// rotations, controlled gates, swaps, dense two-qubit unitaries, and
/// matrix-free operator gates over non-trailing targets.
Circuit random_circuit(std::size_t num_qubits, std::size_t num_gates,
                       Rng& rng) {
  Circuit circuit(num_qubits);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const std::size_t q = rng.uniform_index(num_qubits);
    std::size_t p = rng.uniform_index(num_qubits);
    while (p == q) p = rng.uniform_index(num_qubits);
    switch (rng.uniform_index(10)) {
      case 0: circuit.h(q); break;
      case 1: circuit.x(q); break;
      case 2: circuit.t(q); break;
      case 3: circuit.rz(q, rng.uniform(-2.0, 2.0)); break;
      case 4: circuit.ry(q, rng.uniform(-2.0, 2.0)); break;
      case 5: circuit.cnot(p, q); break;
      case 6: circuit.controlled_phase(p, q, rng.uniform(-2.0, 2.0)); break;
      case 7: circuit.swap(p, q); break;
      case 8: {
        circuit.unitary(random_unitary(2, rng),
                        {std::min(p, q), std::max(p, q)});
        break;
      }
      default: {
        const auto op = std::make_shared<DenseOperator>(random_unitary(2, rng));
        circuit.operator_gate(op, {std::min(p, q), std::max(p, q)});
        break;
      }
    }
  }
  circuit.add_global_phase(0.3);
  return circuit;
}

std::vector<Amplitude> backend_amplitudes(const SimulatorBackend& backend) {
  if (const auto* sv = dynamic_cast<const StatevectorBackend*>(&backend))
    return sv->state().amplitudes();
  const auto* sh = dynamic_cast<const ShardedStatevectorBackend*>(&backend);
  return sh->state().amplitudes();
}

/// Direct backend construction (not make_simulator): these tests pin the
/// per-engine behavior, so a QTDA_SIMULATOR override must not redirect them.
std::unique_ptr<SimulatorBackend> build_backend(SimulatorKind kind,
                                                std::size_t num_qubits) {
  switch (kind) {
    case SimulatorKind::kStatevector:
      return std::make_unique<StatevectorBackend>(num_qubits);
    case SimulatorKind::kShardedStatevector:
      return std::make_unique<ShardedStatevectorBackend>(num_qubits, 3);
    case SimulatorKind::kDensityMatrix:
      return std::make_unique<DensityMatrixBackend>(num_qubits);
  }
  return nullptr;
}

class FusionEquivalence : public ::testing::TestWithParam<SimulatorKind> {};

TEST_P(FusionEquivalence, RandomCircuitsAgreeTo1e12) {
  const SimulatorKind kind = GetParam();
  constexpr std::size_t kQubits = 5;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Circuit circuit = random_circuit(kQubits, 24, rng);

    CompilerOptions fused;
    fused.fuse = true;
    fused.fuse_width = 1 + seed % 4;  // widths 2..5 across seeds
    const ExecutionPlan plan = compile_circuit(circuit, fused);

    const auto reference = build_backend(kind, kQubits);
    reference->prepare_basis_state(1);
    reference->apply_circuit(circuit);
    const auto compiled = build_backend(kind, kQubits);
    compiled->prepare_basis_state(1);
    compiled->apply_plan(plan);

    if (kind == SimulatorKind::kDensityMatrix) {
      // Amplitudes are not addressable through ρ; compare the full joint
      // distribution plus purity instead.
      std::vector<std::size_t> all(kQubits);
      for (std::size_t q = 0; q < kQubits; ++q) all[q] = q;
      const auto pr = reference->marginal_probabilities(all);
      const auto pc = compiled->marginal_probabilities(all);
      for (std::size_t i = 0; i < pr.size(); ++i)
        EXPECT_NEAR(pr[i], pc[i], 1e-12) << "seed " << seed << " outcome " << i;
      const auto* dr = dynamic_cast<const DensityMatrixBackend*>(&*reference);
      const auto* dc = dynamic_cast<const DensityMatrixBackend*>(&*compiled);
      EXPECT_NEAR(dr->state().purity(), dc->state().purity(), 1e-12);
    } else {
      const auto ar = backend_amplitudes(*reference);
      const auto ac = backend_amplitudes(*compiled);
      for (std::size_t i = 0; i < ar.size(); ++i)
        EXPECT_NEAR(std::abs(ar[i] - ac[i]), 0.0, 1e-12)
            << "seed " << seed << " amplitude " << i;
    }
  }
}

TEST_P(FusionEquivalence, UnfusedPlanIsBitIdentical) {
  const SimulatorKind kind = GetParam();
  if (kind == SimulatorKind::kDensityMatrix) GTEST_SKIP()
      << "amplitudes not addressable through the density matrix";
  constexpr std::size_t kQubits = 5;
  Rng rng(77);
  const Circuit circuit = random_circuit(kQubits, 30, rng);

  CompilerOptions unfused;
  unfused.fuse = false;  // the QTDA_FUSE=0 path
  const ExecutionPlan plan = compile_circuit(circuit, unfused);
  EXPECT_EQ(plan.ops().size(), circuit.gate_count());

  const auto reference = build_backend(kind, kQubits);
  reference->prepare_basis_state(3);
  reference->apply_circuit(circuit);
  const auto compiled = build_backend(kind, kQubits);
  compiled->prepare_basis_state(3);
  compiled->apply_plan(plan);

  const auto ar = backend_amplitudes(*reference);
  const auto ac = backend_amplitudes(*compiled);
  for (std::size_t i = 0; i < ar.size(); ++i) {
    EXPECT_EQ(ar[i].real(), ac[i].real()) << "amplitude " << i;
    EXPECT_EQ(ar[i].imag(), ac[i].imag()) << "amplitude " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FusionEquivalence,
                         ::testing::Values(SimulatorKind::kStatevector,
                                           SimulatorKind::kShardedStatevector,
                                           SimulatorKind::kDensityMatrix),
                         [](const auto& param_info) {
                           std::string name =
                               simulator_kind_name(param_info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Compiler, NoisePlanKeepsErrorPlacementAndRngOrder) {
  // The draw-sequence guarantee: a plan compiled for noisy execution walks
  // gate by gate, so the stochastic error positions and every RNG draw
  // match run_noisy_trajectory on the raw IR *bit for bit* — even though
  // the caller asked for fusion.
  Rng circuit_rng(11);
  const Circuit circuit = random_circuit(5, 30, circuit_rng);
  const NoiseModel noise{0.05, 0.1};

  CompilerOptions options;  // fusion on...
  options.preserve_noise_slots = true;  // ...but noise slots pin the walk
  const ExecutionPlan plan = compile_circuit(circuit, options);
  EXPECT_TRUE(plan.preserves_noise_slots());
  EXPECT_EQ(plan.ops().size(), circuit.gate_count());

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng raw_rng(seed);
    Rng plan_rng(seed);
    const Statevector raw = run_noisy_trajectory(circuit, noise, raw_rng);
    const Statevector compiled = run_noisy_trajectory(plan, noise, plan_rng);
    for (std::uint64_t i = 0; i < raw.dimension(); ++i) {
      ASSERT_EQ(raw.amplitude(i).real(), compiled.amplitude(i).real())
          << "seed " << seed << " amplitude " << i;
      ASSERT_EQ(raw.amplitude(i).imag(), compiled.amplitude(i).imag())
          << "seed " << seed << " amplitude " << i;
    }
    // Identical draw counts: the generators are in the same state after.
    EXPECT_EQ(raw_rng.uniform(), plan_rng.uniform()) << "seed " << seed;
  }
}

TEST(Compiler, BackendNoisyPlanMatchesCircuitWalk) {
  Rng circuit_rng(13);
  const Circuit circuit = random_circuit(4, 20, circuit_rng);
  const NoiseModel noise{0.08, 0.15};
  CompilerOptions options;
  options.preserve_noise_slots = true;
  const ExecutionPlan plan = compile_circuit(circuit, options);

  for (SimulatorKind kind :
       {SimulatorKind::kStatevector, SimulatorKind::kShardedStatevector,
        SimulatorKind::kDensityMatrix}) {
    const auto reference = build_backend(kind, 4);
    const auto compiled = build_backend(kind, 4);
    Rng ref_rng(21);
    Rng plan_rng(21);
    reference->prepare_basis_state(0);
    reference->apply_circuit_with_noise(circuit, noise, ref_rng);
    compiled->prepare_basis_state(0);
    compiled->apply_plan_with_noise(plan, noise, plan_rng);
    const auto pr = reference->marginal_probabilities({0, 1, 2, 3});
    const auto pc = compiled->marginal_probabilities({0, 1, 2, 3});
    for (std::size_t i = 0; i < pr.size(); ++i)
      EXPECT_EQ(pr[i], pc[i])
          << simulator_kind_name(kind) << " outcome " << i;
    EXPECT_EQ(ref_rng.uniform(), plan_rng.uniform())
        << simulator_kind_name(kind);
  }
}

TEST(Compiler, NoisyExecutionRejectsFusedPlan) {
  Circuit circuit(2);
  circuit.h(0);
  circuit.cnot(0, 1);
  CompilerOptions options;  // no noise slots
  const ExecutionPlan plan = compile_circuit(circuit, options);
  StatevectorBackend backend(2);
  Rng rng(5);
  EXPECT_THROW(
      backend.apply_plan_with_noise(plan, NoiseModel{0.1, 0.1}, rng), Error);
}

TEST(Compiler, ControlledPhaseLadderFusesIntoOneDiagonal) {
  // The QFT/QPE workhorse: every pair rung is diagonal, so the whole
  // ladder collapses into a single table-lookup pass.
  Circuit circuit(6);
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a + 1; b < 6; ++b)
      circuit.controlled_phase(a, b, 0.1 * static_cast<double>(a + b));
  const ExecutionPlan plan = compile_circuit(circuit, CompilerOptions{});
  ASSERT_EQ(plan.ops().size(), 1u);
  EXPECT_EQ(plan.stats().gates_before, 15u);
  EXPECT_EQ(plan.stats().gates_after, 1u);
  EXPECT_EQ(plan.stats().fused_blocks, 1u);
  EXPECT_EQ(plan.stats().diagonal_blocks, 1u);
  ASSERT_GT(plan.stats().block_width_histogram.size(), 6u);
  EXPECT_EQ(plan.stats().block_width_histogram[6], 1u);
  const CompiledOp& op = plan.ops()[0];
  EXPECT_EQ(op.kind, CompiledOp::Kind::kDiagonal);
  EXPECT_EQ(op.fused_gates, 15u);
  EXPECT_EQ(op.diagonal.size(), 64u);
}

TEST(Compiler, HWallStaysVerbatimUnderTheCostModel) {
  // A wall of H's has no profitable fusion single-threaded: a 2^m dense
  // block costs more multiplies than the m sweeps it would replace, so the
  // cost model keeps the gates verbatim rather than pessimize.
  Circuit circuit(8);
  for (std::size_t q = 0; q < 8; ++q) circuit.h(q);
  const ExecutionPlan plan = compile_circuit(circuit, CompilerOptions{});
  EXPECT_EQ(plan.ops().size(), 8u);
  EXPECT_EQ(plan.stats().fused_blocks, 0u);
  for (const CompiledOp& op : plan.ops())
    EXPECT_EQ(op.kind, CompiledOp::Kind::kSingleQubit);
}

TEST(Compiler, SameWireChainFusesIntoOneSingleQubitOp) {
  Circuit circuit(3);
  for (int r = 0; r < 4; ++r) {
    circuit.h(1);
    circuit.t(1);
  }
  const ExecutionPlan plan = compile_circuit(circuit, CompilerOptions{});
  ASSERT_EQ(plan.ops().size(), 1u);
  EXPECT_EQ(plan.ops()[0].kind, CompiledOp::Kind::kSingleQubit);
  EXPECT_EQ(plan.ops()[0].fused_gates, 8u);
}

TEST(Compiler, FusionReachesAcrossWireDisjointGates) {
  // H(0), Op(1,2), H(0): the trailing H commutes past the operator gate and
  // merges with the leading one.
  Circuit circuit(3);
  circuit.h(0);
  Rng rng(3);
  circuit.operator_gate(std::make_shared<DenseOperator>(random_unitary(2, rng)),
                        {1, 2});
  circuit.h(0);
  const ExecutionPlan plan = compile_circuit(circuit, CompilerOptions{});
  ASSERT_EQ(plan.ops().size(), 2u);
  EXPECT_EQ(plan.stats().operator_gates, 1u);
  // The merged H·H block comes first (cluster creation order).
  EXPECT_EQ(plan.ops()[0].fused_gates, 2u);
  EXPECT_EQ(plan.ops()[1].kind, CompiledOp::Kind::kOperator);
}

TEST(Compiler, OperatorGatesPrecomputeLayout) {
  Circuit circuit(4);
  Rng rng(9);
  const auto op = std::make_shared<DenseOperator>(random_unitary(2, rng));
  circuit.operator_gate(op, {2, 3}, {0});  // trailing targets, one control
  const ExecutionPlan plan = compile_circuit(circuit, CompilerOptions{});
  ASSERT_EQ(plan.ops().size(), 1u);
  const CompiledOp& compiled = plan.ops()[0];
  EXPECT_EQ(compiled.kind, CompiledOp::Kind::kOperator);
  EXPECT_TRUE(compiled.contiguous);
  // Control bit fixed to 1, one free qubit → 2 block bases.
  EXPECT_EQ(compiled.bases.size(), 2u);
}

/// Minimal engine exercising the generic SimulatorBackend defaults —
/// apply_plan is deliberately NOT overridden, so this pins the fallback
/// path unknown future engines would rely on.
class GenericBackend final : public SimulatorBackend {
 public:
  explicit GenericBackend(std::size_t num_qubits) : state_(num_qubits) {}
  std::string name() const override { return "generic"; }
  Precision precision() const override { return Precision::kFloat64; }
  std::size_t num_qubits() const override { return state_.num_qubits(); }
  void prepare_basis_state(std::uint64_t index) override {
    state_.set_basis_state(index);
  }
  void apply_gate(const Gate& gate) override { state_.apply_gate(gate); }
  void apply_circuit(const Circuit& circuit) override {
    state_.apply_circuit(circuit);
  }
  void apply_global_phase(double phi) override {
    state_.apply_global_phase(phi);
  }
  void apply_operator(const LinearOperator& op,
                      const std::vector<std::size_t>& targets,
                      const std::vector<std::size_t>& controls) override {
    state_.apply_operator(op, targets, controls);
  }
  void apply_depolarizing(std::size_t qubit, double probability,
                          Rng& rng) override {
    maybe_apply_depolarizing(state_, qubit, probability, rng);
  }
  std::vector<double> marginal_probabilities(
      const std::vector<std::size_t>& qubits) const override {
    return state_.marginal_probabilities(qubits);
  }
  std::vector<std::uint64_t> sample(const std::vector<std::size_t>& qubits,
                                    std::size_t shots,
                                    Rng& rng) const override {
    return state_.sample_counts(qubits, shots, rng);
  }
  const Statevector& state() const { return state_; }

 private:
  Statevector state_;
};

TEST(Compiler, GenericBackendExecutesWideDiagonals) {
  // A full controlled-phase ladder over 10 wires fuses into one diagonal
  // wider than the 256-entry densification bound; the non-overridden
  // apply_plan must still execute it (controlled sub-diagonal split).
  constexpr std::size_t kQubits = 10;
  Circuit circuit(kQubits);
  circuit.h(3);  // non-diagonal neighbours on both sides of the ladder
  for (std::size_t a = 0; a < kQubits; ++a)
    for (std::size_t b = a + 1; b < kQubits; ++b)
      circuit.controlled_phase(a, b, 0.05 * static_cast<double>(a + 2 * b));
  circuit.h(7);
  const ExecutionPlan plan = compile_circuit(circuit, CompilerOptions{});
  bool has_wide_diagonal = false;
  for (const CompiledOp& op : plan.ops())
    has_wide_diagonal = has_wide_diagonal ||
                        (op.kind == CompiledOp::Kind::kDiagonal &&
                         op.diagonal.size() > 256);
  ASSERT_TRUE(has_wide_diagonal);

  GenericBackend reference(kQubits);
  reference.prepare_basis_state(5);
  reference.apply_circuit(circuit);
  GenericBackend compiled(kQubits);
  compiled.prepare_basis_state(5);
  compiled.apply_plan(plan);
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << kQubits); ++i)
    ASSERT_NEAR(std::abs(reference.state().amplitude(i) -
                         compiled.state().amplitude(i)),
                0.0, 1e-12)
        << "amplitude " << i;
}

TEST(Compiler, EnvOverridesParseAndValidate) {
  qtda::testing::ScopedSimulatorEnv guard;
  setenv("QTDA_FUSE", "0", 1);
  unsetenv("QTDA_FUSE_WIDTH");
  EXPECT_FALSE(compiler_options_from_env().fuse);
  setenv("QTDA_FUSE", "1", 1);
  setenv("QTDA_FUSE_WIDTH", "6", 1);
  CompilerOptions options = compiler_options_from_env();
  EXPECT_TRUE(options.fuse);
  EXPECT_EQ(options.fuse_width, 6u);
  // The width override bounds the diagonal tables too.
  EXPECT_EQ(options.diagonal_width, 6u);
  setenv("QTDA_FUSE", "yes", 1);
  EXPECT_THROW(compiler_options_from_env(), Error);
  setenv("QTDA_FUSE", "1", 1);
  setenv("QTDA_FUSE_WIDTH", "0", 1);
  EXPECT_THROW(compiler_options_from_env(), Error);
}

TEST(Compiler, EstimatorFusedMatchesUnfused) {
  // End-to-end plumbing: the estimator's compiled path (default) against
  // the escape hatch, same seed.  The amplitudes agree to ~1e-12, so the
  // multinomial draws land identically except on ~1e-12-wide boundary
  // slivers — equality of counts is the expected outcome.
  Rng rng(31);
  RandomComplexOptions complex_options;
  complex_options.num_vertices = 7;
  complex_options.max_dimension = 2;
  auto complex = random_flag_complex(complex_options, rng);
  while (complex.count(1) == 0)
    complex = random_flag_complex(complex_options, rng);

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  options.shots = 4000;

  qtda::testing::ScopedSimulatorEnv guard;
  unsetenv("QTDA_FUSE");
  unsetenv("QTDA_FUSE_WIDTH");
  const auto fused = estimate_betti(complex, 1, options);
  setenv("QTDA_FUSE", "0", 1);
  const auto unfused = estimate_betti(complex, 1, options);
  EXPECT_EQ(fused.zero_counts, unfused.zero_counts);
  EXPECT_EQ(fused.rounded_betti, unfused.rounded_betti);
}

}  // namespace
