/// \file test_bit_identity.cpp
/// \brief Pins the scalar double-precision arithmetic to the historical
/// (pre-SIMD-refactor) results, bit for bit.
///
/// The expectations below were captured from the tree before the vector
/// kernels and the precision template landed, with the engines running their
/// plain scalar loops.  Under `QTDA_SIMD=0` every engine must still produce
/// exactly these bytes — the refactor's core promise, asserted by the CI
/// scalar leg.  With SIMD active the suite skips: the vector kernels are
/// bit-identical for the sweeps by construction (same products, same
/// rounding), but the CSR matvec deliberately lane-splits its dot products,
/// so whole-workload fingerprints are only pinned for the scalar paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "bit_identity_scenarios.hpp"
#include "common/cpu_features.hpp"

namespace qtda {
namespace {

using testing::bit_identity_fingerprints;
using testing::BitIdentityFingerprint;

// Captured before the SIMD/precision refactor (scalar double arithmetic).
const std::map<std::string, std::uint64_t>& golden_fingerprints() {
  static const std::map<std::string, std::uint64_t> golden = {
      {"dense_circuit", 0x2b45dc7ffcab148cULL},
      {"dense_marginal", 0x14f273652935766fULL},
      {"dense_plan_fused", 0x8aaf3a8094c26c63ULL},
      {"dense_plan_unfused", 0x2b45dc7ffcab148cULL},
      {"sharded_circuit", 0x2b45dc7ffcab148cULL},
      {"sharded_marginal", 0x14f273652935766fULL},
      {"sharded_plan_fused", 0x8aaf3a8094c26c63ULL},
      {"density_noisy", 0x8a395d560f45e781ULL},
      {"trajectory_seed42", 0x5fe0a203105a2182ULL},
      {"dense_operator", 0xa82f3991137a8210ULL},
      {"dense_large", 0x07de12e830060383ULL},
      {"dense_large_marginal", 0x5e9c457708de6583ULL},
  };
  return golden;
}

TEST(BitIdentity, ScalarDoubleResultsMatchHistoricalFingerprints) {
  if (active_simd_level() != SimdLevel::kScalar) {
    GTEST_SKIP() << "fingerprints pin the scalar paths; run with QTDA_SIMD=0";
  }
  const std::vector<BitIdentityFingerprint> actual =
      bit_identity_fingerprints();
  ASSERT_EQ(actual.size(), golden_fingerprints().size());
  for (const BitIdentityFingerprint& fp : actual) {
    const auto it = golden_fingerprints().find(fp.name);
    ASSERT_NE(it, golden_fingerprints().end())
        << "scenario \"" << fp.name << "\" has no committed expectation";
    EXPECT_EQ(fp.hash, it->second)
        << "scenario \"" << fp.name
        << "\" no longer reproduces the historical bytes";
  }
}

// The dense/sharded/unfused coincidences (three fingerprints sharing one
// value) are part of the contract: the unfused plan and the sharded engine
// replay exactly the dense gate-by-gate arithmetic.  Assert the coincidence
// itself at every SIMD level — it must hold for the vector kernels too.
TEST(BitIdentity, EnginesAgreeByteForByteAtEverySimdLevel) {
  const std::vector<BitIdentityFingerprint> actual =
      bit_identity_fingerprints();
  std::map<std::string, std::uint64_t> by_name;
  for (const BitIdentityFingerprint& fp : actual) by_name[fp.name] = fp.hash;
  EXPECT_EQ(by_name.at("dense_circuit"), by_name.at("dense_plan_unfused"));
  EXPECT_EQ(by_name.at("dense_circuit"), by_name.at("sharded_circuit"));
  EXPECT_EQ(by_name.at("dense_marginal"), by_name.at("sharded_marginal"));
  EXPECT_EQ(by_name.at("dense_plan_fused"), by_name.at("sharded_plan_fused"));
}

}  // namespace
}  // namespace qtda
